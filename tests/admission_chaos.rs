//! Chaos testing for the multi-tenant query server: under fault
//! storms and overload, every offered job must end in exactly one of
//! three states — **answered by its deadline**, **refused with a
//! structured [`RefusalReason`]**, or **shed with a structured
//! reason** — never a silent deadline blowout. On top of that, a
//! seeded multi-job run must replay **byte-identically** (outcome
//! JSON and trace JSONL both) at any worker count and across
//! repeated runs.
//!
//! 1. **Storm sweeps** — transient/corruption/spike storms at swept
//!    rates; the acceptance invariant holds in every cell.
//! 2. **Refusal taxonomy** — impossible deadlines are `Infeasible`,
//!    load-squeezed jobs are `Overloaded`, mid-batch evictions are
//!    `Shed`, and each reason rides both `JobState` and
//!    `ReportHealth`.
//! 3. **Fault isolation** — a job over a corrupt region degrades
//!    alone; a broken expression fails alone at admission.
//! 4. **CI matrix hook** — one storm batch at `ERAM_WORKERS`
//!    (default 4) against the serial reference.
//! 5. **Property** — arbitrary seeds, storms, and worker counts
//!    replay identically (proptest).

use std::time::Duration;

use proptest::prelude::*;

use eram_core::{
    Concurrency, Database, JobState, QueryServer, RefusalReason, ServerJob, ServerOutcome, Tracer,
};
use eram_relalg::{CmpOp, Expr, Predicate};
use eram_storage::{ColumnType, FaultPlan, Schema, Tuple, Value};

/// True when running against the offline stand-in crates (see
/// `offline/README.md`): the stub rand's streams differ from real
/// `rand`, so tests whose pass/fail depends on the exact stream (not
/// just determinism) skip, and the stub serde cannot serialize.
fn stub_toolchain() -> bool {
    std::env::var_os("ERAM_OFFLINE_STUBS").is_some()
}

fn build_db(seed: u64) -> Database {
    let mut db = Database::sim_default(seed);
    let schema = Schema::new(vec![("k", ColumnType::Int), ("g", ColumnType::Int)]).padded_to(200);
    db.load_relation(
        "t",
        schema,
        (0..10_000).map(|i| Tuple::new(vec![Value::Int(i), Value::Int(i % 10)])),
    )
    .unwrap();
    db
}

fn sel(k: i64) -> Expr {
    Expr::relation("t").select(Predicate::col_cmp(1, CmpOp::Lt, k))
}

/// A mixed-deadline, mixed-value batch that exercises admission,
/// execution, and (under storms) shedding.
fn storm_batch() -> Vec<ServerJob> {
    vec![
        ServerJob::count("fast", sel(3), Duration::from_secs(4)),
        ServerJob::count("mid", sel(5), Duration::from_secs(10)).with_value(2.0),
        ServerJob::count("slow", sel(7), Duration::from_secs(18)).with_value(0.5),
        ServerJob::count("tail", sel(9), Duration::from_secs(26))
            .with_desired_quota(Duration::from_secs(4)),
    ]
}

/// The acceptance invariant, checked in every chaos cell.
fn assert_no_silent_blowouts(outcome: &ServerOutcome, cell: &str) {
    for job in &outcome.jobs {
        match &job.state {
            JobState::Done => assert!(
                job.met(),
                "[{cell}] {} finished {:?} past deadline {:?}",
                job.name,
                job.finished_at,
                job.deadline
            ),
            JobState::Refused { reason } => {
                assert_eq!(
                    job.health.refusal,
                    Some(*reason),
                    "[{cell}] {}: reason must ride ReportHealth too",
                    job.name
                );
                assert_eq!(job.granted_quota, Duration::ZERO);
                assert!(job.estimate.is_none());
            }
            JobState::Failed { error } => {
                assert!(!error.is_empty(), "[{cell}] {}: empty error", job.name)
            }
        }
    }
    let s = &outcome.stats;
    assert_eq!(s.deadlines_missed, 0, "[{cell}] silent deadline blowout");
    assert_eq!(s.offered, outcome.jobs.len() as u64);
    assert_eq!(
        s.offered,
        s.admitted + s.refused + s.failed_at_admission(outcome)
    );
    assert_eq!(s.admitted, s.completed + s.shed + s.failed_mid_run(outcome));
}

/// Split helpers: stats only track total failures, so recover the
/// admission/mid-run split from the reports (admission failures never
/// got a quota and never started).
trait FailureSplit {
    fn failed_at_admission(&self, outcome: &ServerOutcome) -> u64;
    fn failed_mid_run(&self, outcome: &ServerOutcome) -> u64;
}

impl FailureSplit for eram_core::ServerStats {
    fn failed_at_admission(&self, outcome: &ServerOutcome) -> u64 {
        outcome
            .jobs
            .iter()
            .filter(|j| {
                matches!(j.state, JobState::Failed { .. }) && j.granted_quota == Duration::ZERO
            })
            .count() as u64
    }
    fn failed_mid_run(&self, outcome: &ServerOutcome) -> u64 {
        outcome
            .jobs
            .iter()
            .filter(|j| {
                matches!(j.state, JobState::Failed { .. }) && j.granted_quota > Duration::ZERO
            })
            .count() as u64
    }
}

#[test]
fn storm_sweep_never_misses_an_admitted_deadline() {
    if stub_toolchain() {
        eprintln!("skipped: sweep cells are tuned to real rand streams");
        return;
    }
    // (label, transient, corrupt, spike rate)
    let sweep = [
        ("clean", 0.0, 0.0, 0.0),
        ("t=5%", 0.05, 0.0, 0.0),
        ("t=15%", 0.15, 0.0, 0.0),
        ("c=5%", 0.0, 0.05, 0.0),
        ("t=10% c=5%", 0.10, 0.05, 0.0),
        ("spikes=50%", 0.0, 0.0, 0.50),
        ("t=10% c=5% spikes=30%", 0.10, 0.05, 0.30),
    ];
    for (i, (label, transient, corrupt, spikes)) in sweep.iter().enumerate() {
        let mut db = build_db(100 + i as u64);
        if *transient > 0.0 || *corrupt > 0.0 || *spikes > 0.0 {
            db.inject_faults(
                FaultPlan::new(31 + i as u64)
                    .with_transient(*transient)
                    .with_corruption(*corrupt)
                    .with_spikes(*spikes, Duration::from_millis(500)),
            );
        }
        let outcome = QueryServer::new().run(&mut db, storm_batch());
        assert_no_silent_blowouts(&outcome, label);
        // The batch is sized so the clean cell admits everything.
        if *transient == 0.0 && *corrupt == 0.0 && *spikes == 0.0 {
            assert_eq!(outcome.stats.admitted, 4, "[{label}]");
            assert_eq!(outcome.stats.deadlines_met, 4, "[{label}]");
        }
    }
}

#[test]
fn refusal_taxonomy_is_structured_and_complete() {
    let mut db = build_db(7);
    let jobs = vec![
        // Cannot fit even alone: 50 ms deadline vs the 100 ms
        // documented minimum.
        ServerJob::count("impossible", sel(5), Duration::from_millis(50)),
        // Fits alone, but the two greedy admitted jobs squeeze it out.
        ServerJob::count("greedy-1", sel(5), Duration::from_secs(6))
            .with_min_quota(Duration::from_secs(3)),
        ServerJob::count("greedy-2", sel(5), Duration::from_secs(7))
            .with_min_quota(Duration::from_secs(3)),
        ServerJob::count("squeezed", sel(5), Duration::from_secs(8))
            .with_min_quota(Duration::from_secs(3)),
    ];
    let outcome = QueryServer::new().run(&mut db, jobs);
    let by_name = |name: &str| outcome.jobs.iter().find(|j| j.name == name).unwrap();
    assert_eq!(
        by_name("impossible").state,
        JobState::Refused {
            reason: RefusalReason::Infeasible
        }
    );
    assert_eq!(
        by_name("squeezed").state,
        JobState::Refused {
            reason: RefusalReason::Overloaded
        }
    );
    // The reasons survive a JSON round trip (the wire format a client
    // would branch on). Skipped under the offline serde stub.
    if !stub_toolchain() {
        let json = outcome.to_json();
        assert!(json.contains("\"infeasible\""), "{json}");
        assert!(json.contains("\"overloaded\""), "{json}");
        let back: ServerOutcome = serde_json::from_str(&json).unwrap();
        assert_eq!(back, outcome);
    }
    assert_no_silent_blowouts(&outcome, "taxonomy");
}

#[test]
fn spike_storm_sheds_with_structured_reason() {
    let mut db = build_db(23);
    // Every read is spiked by a full second once jobs run: the two
    // half-second-quota jobs overshoot ~2.5x, the refit learns it,
    // and the replan sheds the low-value tail job whose 1.2 s
    // minimum no longer fits its deflated grant.
    db.inject_faults(FaultPlan::new(9).with_spikes(1.0, Duration::from_secs(1)));
    let jobs = vec![
        ServerJob::count("a", sel(5), Duration::from_secs(2))
            .with_desired_quota(Duration::from_millis(500))
            .with_min_quota(Duration::from_millis(100)),
        ServerJob::count("b", sel(5), Duration::from_secs(4))
            .with_desired_quota(Duration::from_millis(500))
            .with_min_quota(Duration::from_millis(100)),
        ServerJob::count("cheap", sel(5), Duration::from_secs_f64(4.4))
            .with_min_quota(Duration::from_millis(1200))
            .with_value(0.1),
    ];
    let outcome = QueryServer::new().run(&mut db, jobs);
    assert_eq!(
        outcome.stats.admitted, 3,
        "the storm is invisible at admission"
    );
    let cheap = outcome.jobs.iter().find(|j| j.name == "cheap").unwrap();
    assert!(
        cheap.state.is_shed(),
        "expected shed, got {:?}",
        cheap.state
    );
    assert_eq!(cheap.health.refusal, Some(RefusalReason::Shed));
    assert_no_silent_blowouts(&outcome, "spike-shed");
}

#[test]
fn corrupt_blocks_degrade_one_tenant_not_the_batch() {
    let mut db = build_db(13);
    db.inject_faults(FaultPlan::new(5).with_corruption(0.06));
    let outcome = QueryServer::new().run(&mut db, storm_batch());
    assert_no_silent_blowouts(&outcome, "corruption");
    for job in &outcome.jobs {
        assert!(job.state.is_done(), "{}: {:?}", job.name, job.state);
        // Degradation is per-job accounting: exactly the jobs that
        // lost blocks are flagged, and none of them lost the batch.
        assert_eq!(
            job.health.degraded,
            job.health.blocks_lost > 0,
            "{}",
            job.name
        );
    }
    let report = outcome
        .jobs
        .iter()
        .map(|j| &j.health)
        .fold((0, 0), |(f, l), h| (f + h.faults_seen, l + h.blocks_lost));
    assert!(report.0 > 0, "the storm must have been observed somewhere");
}

#[test]
fn broken_expression_fails_alone_without_burning_quota() {
    let mut db = build_db(37);
    let mut jobs = storm_batch();
    jobs.push(ServerJob::count(
        "broken",
        Expr::relation("no_such_relation"),
        Duration::from_secs(9),
    ));
    let outcome = QueryServer::new().run(&mut db, jobs);
    let broken = outcome.jobs.iter().find(|j| j.name == "broken").unwrap();
    assert!(matches!(broken.state, JobState::Failed { .. }));
    assert_eq!(broken.granted_quota, Duration::ZERO, "caught at admission");
    assert_eq!(outcome.stats.failed, 1);
    assert_eq!(
        outcome.stats.deadlines_met, 4,
        "the other four still answer"
    );
    assert_no_silent_blowouts(&outcome, "broken-expr");
}

/// Runs one storm batch at the given worker count and returns the
/// replay artifacts (outcome JSON + trace JSONL).
fn run_storm(seed: u64, transient: f64, spikes: f64, workers: usize) -> (String, String) {
    let mut db = build_db(seed);
    if transient > 0.0 || spikes > 0.0 {
        db.inject_faults(
            FaultPlan::new(seed ^ 0xC4A0)
                .with_transient(transient)
                .with_spikes(spikes, Duration::from_millis(400)),
        );
    }
    let tracer = Tracer::recording(db.disk().clock().clone());
    let outcome = QueryServer::new()
        .workers(workers)
        .metrics(true)
        .tracer(tracer.clone())
        .run(&mut db, storm_batch());
    (outcome.to_json(), tracer.to_jsonl())
}

#[test]
fn ci_selected_worker_count_matches_the_serial_reference() {
    if stub_toolchain() {
        eprintln!("skipped: offline serde stub cannot serialize the replay artifacts");
        return;
    }
    let workers: usize = std::env::var("ERAM_WORKERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let (json_1, trace_1) = run_storm(51, 0.08, 0.2, 1);
    let (json_w, trace_w) = run_storm(51, 0.08, 0.2, workers);
    assert_eq!(json_1, json_w, "workers={workers} (from ERAM_WORKERS)");
    assert_eq!(trace_1, trace_w, "workers={workers} (from ERAM_WORKERS)");
    assert!(!trace_1.is_empty());
}

/// `run_storm` with the SLO ledger and decision audit enabled.
fn run_storm_with_ledger(
    seed: u64,
    transient: f64,
    spikes: f64,
    workers: usize,
) -> (ServerOutcome, String) {
    let mut db = build_db(seed);
    if transient > 0.0 || spikes > 0.0 {
        db.inject_faults(
            FaultPlan::new(seed ^ 0xC4A0)
                .with_transient(transient)
                .with_spikes(spikes, Duration::from_millis(400)),
        );
    }
    let tracer = Tracer::recording(db.disk().clock().clone());
    let outcome = QueryServer::new()
        .workers(workers)
        .metrics(true)
        .ledger(true)
        .tracer(tracer.clone())
        .run(&mut db, storm_batch());
    (outcome, tracer.to_jsonl())
}

/// The forensics acceptance criterion, end to end: the ledger and
/// decision audit are pure observation. Trace JSONL is byte-identical
/// with the ledger on or off, the ledger-stripped outcome JSON is
/// byte-identical to the ledger-off outcome, and the ledger itself
/// replays byte-identically across worker counts — all under the same
/// fault storm the equivalence matrix runs.
#[test]
fn ledger_is_pure_observation_across_worker_counts() {
    if stub_toolchain() {
        eprintln!("skipped: offline serde stub cannot serialize the replay artifacts");
        return;
    }
    let workers: usize = std::env::var("ERAM_WORKERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let (json_off, trace_off) = run_storm(51, 0.08, 0.2, 1);
    for w in [1usize, workers] {
        let (outcome, trace_on) = run_storm_with_ledger(51, 0.08, 0.2, w);
        assert_eq!(
            trace_on, trace_off,
            "ledger must not touch the trace (workers={w})"
        );
        let ledger = outcome.ledger.as_ref().expect("ledger was requested");
        assert!(!ledger.decisions.is_empty(), "the audit narrates the batch");
        let with_json = outcome.to_json();
        let mut stripped = outcome.clone();
        stripped.ledger = None;
        assert_eq!(
            stripped.to_json(),
            json_off,
            "stripping the ledger restores the exact ledger-off bytes (workers={w})"
        );
        // The ledger-carrying outcome itself is worker-invariant.
        let (again, _) = run_storm_with_ledger(51, 0.08, 0.2, 1);
        assert_eq!(again.to_json(), with_json, "workers={w} vs 1");
    }
}

/// `run_storm_with_ledger` under an explicit concurrency mode.
fn run_storm_mode(
    seed: u64,
    transient: f64,
    spikes: f64,
    workers: usize,
    mode: Concurrency,
) -> (ServerOutcome, String) {
    let mut db = build_db(seed);
    if transient > 0.0 || spikes > 0.0 {
        db.inject_faults(
            FaultPlan::new(seed ^ 0xC4A0)
                .with_transient(transient)
                .with_spikes(spikes, Duration::from_millis(400)),
        );
    }
    let tracer = Tracer::recording(db.disk().clock().clone());
    let outcome = QueryServer::new()
        .workers(workers)
        .metrics(true)
        .ledger(true)
        .concurrency(mode)
        .tracer(tracer.clone())
        .run(&mut db, storm_batch());
    (outcome, tracer.to_jsonl())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The concurrency acceptance criterion: per-job reports, the
    /// ledger, the metrics, and every trace byte are identical across
    /// `--concurrency seq|interleaved` at any worker count — only the
    /// schedule report and the per-tenant sharing counters it feeds
    /// may differ between modes, and those differ *deterministically*
    /// (byte-identical across worker counts and repeats within a
    /// mode).
    #[test]
    fn any_storm_batch_is_concurrency_mode_invariant(
        seed in any::<u64>(),
        transient in 0.0f64..0.15,
        spikes in 0.0f64..0.4,
        workers in 2usize..=8,
    ) {
        if stub_toolchain() {
            eprintln!("skipped: offline serde stub cannot serialize the replay artifacts");
            return Ok(());
        }
        let (seq, seq_trace) = run_storm_mode(seed, transient, spikes, 1, Concurrency::Sequential);
        let (inter, inter_trace) =
            run_storm_mode(seed, transient, spikes, 1, Concurrency::Interleaved);
        prop_assert_eq!(&seq_trace, &inter_trace, "trace bytes must be mode-invariant");
        prop_assert_eq!(
            seq.stripped_of_schedule().to_json(),
            inter.stripped_of_schedule().to_json(),
            "stripped outcomes must be mode-invariant"
        );
        // Within each mode the full outcome (schedule and sharing
        // counters included) replays across worker counts.
        let (seq_w, seq_w_trace) =
            run_storm_mode(seed, transient, spikes, workers, Concurrency::Sequential);
        prop_assert_eq!(&seq_trace, &seq_w_trace, "workers={}", workers);
        prop_assert_eq!(seq.to_json(), seq_w.to_json(), "workers={}", workers);
        let (inter_w, inter_w_trace) =
            run_storm_mode(seed, transient, spikes, workers, Concurrency::Interleaved);
        prop_assert_eq!(&inter_trace, &inter_w_trace, "workers={}", workers);
        prop_assert_eq!(inter.to_json(), inter_w.to_json(), "workers={}", workers);
        // The schedule is always reported; the oracle never pools.
        let s = seq.schedule.as_ref().expect("schedule rides every outcome");
        prop_assert_eq!(s.blocks_shared, 0);
        prop_assert_eq!(s.concurrency, Concurrency::Sequential);
        let i = inter.schedule.as_ref().expect("schedule rides every outcome");
        prop_assert_eq!(i.concurrency, Concurrency::Interleaved);
        prop_assert_eq!(s.virtual_makespan, i.virtual_makespan);
        // And both modes uphold the serving contract.
        assert_no_silent_blowouts(&seq, "mode=seq");
        assert_no_silent_blowouts(&inter, "mode=interleaved");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Any seeded storm batch replays byte-identically: across worker
    /// counts and across repeated runs.
    #[test]
    fn any_storm_batch_replays_byte_identically(
        seed in any::<u64>(),
        transient in 0.0f64..0.15,
        spikes in 0.0f64..0.4,
        workers in 2usize..=8,
    ) {
        if stub_toolchain() {
            eprintln!("skipped: offline serde stub cannot serialize the replay artifacts");
            return Ok(());
        }
        let (json_1, trace_1) = run_storm(seed, transient, spikes, 1);
        let (json_w, trace_w) = run_storm(seed, transient, spikes, workers);
        prop_assert_eq!(&json_1, &json_w, "workers={}", workers);
        prop_assert_eq!(&trace_1, &trace_w, "workers={}", workers);
        // Repetition at the same worker count is also identical.
        let (json_r, trace_r) = run_storm(seed, transient, spikes, 1);
        prop_assert_eq!(&json_1, &json_r);
        prop_assert_eq!(&trace_1, &trace_r);
        // And the invariant holds for whatever the storm produced.
        let outcome: ServerOutcome = serde_json::from_str(&json_1).unwrap();
        assert_no_silent_blowouts(&outcome, "proptest");
    }
}
