//! Integration tests for SUM/AVG — the paper's `f(E)` with the COUNT
//! restriction lifted.

use std::time::Duration;

use eram_core::{AggregateFn, Database, EngineError};
use eram_relalg::{eval, CmpOp, Expr, Predicate};
use eram_storage::{ColumnType, Schema, Tuple, Value};

fn db(seed: u64) -> Database {
    let mut db = Database::sim_default(seed);
    for (name, stride) in [("r", 1i64), ("s", 2i64)] {
        let schema =
            Schema::new(vec![("k", ColumnType::Int), ("amount", ColumnType::Int)]).padded_to(200);
        db.load_relation(
            name,
            schema,
            (0..10_000)
                .map(|i| Tuple::new(vec![Value::Int(i * stride), Value::Int((i * 37) % 1_000)])),
        )
        .unwrap();
    }
    db
}

/// Exact SUM over column `col` of the expression's output.
fn exact_sum(db: &Database, expr: &Expr, col: usize) -> f64 {
    eval::eval(expr, db.catalog())
        .unwrap()
        .iter()
        .map(|t| t.value(col).as_int().unwrap() as f64)
        .sum()
}

#[test]
fn sum_census_is_exact() {
    let mut db = db(1);
    let expr = Expr::relation("r").select(Predicate::col_cmp(1, CmpOp::Lt, 500));
    let truth = exact_sum(&db, &expr, 1);
    let out = db
        .sum(expr, 1)
        .within(Duration::from_secs(1_000_000))
        .run()
        .unwrap();
    assert!(
        (out.estimate.estimate - truth).abs() < 1e-6,
        "{} vs {truth}",
        out.estimate.estimate
    );
    assert_eq!(out.estimate.variance, 0.0);
}

#[test]
fn sum_estimate_lands_near_truth_under_quota() {
    let mut db = db(2);
    let expr = Expr::relation("r").select(Predicate::col_cmp(1, CmpOp::Lt, 500));
    let truth = exact_sum(&db, &expr, 1);
    let out = db
        .sum(expr, 1)
        .within(Duration::from_secs(10))
        .seed(4)
        .run()
        .unwrap();
    let rel = (out.estimate.estimate - truth).abs() / truth;
    assert!(
        rel < 0.3,
        "rel err {rel}: {} vs {truth}",
        out.estimate.estimate
    );
    let (lo, hi) = out.estimate.ci(0.95);
    assert!(lo <= hi && lo >= 0.0);
    assert!(hi.is_finite(), "CI must be finite even without an N clamp");
}

#[test]
fn sum_is_unbiased_in_ensemble() {
    let expr = Expr::relation("r").select(Predicate::col_cmp(1, CmpOp::Lt, 500));
    let mut total = 0.0;
    let runs = 40;
    let mut truth = 0.0;
    for seed in 0..runs {
        let mut db = db(100 + seed);
        truth = exact_sum(&db, &expr, 1);
        let out = db
            .sum(expr.clone(), 1)
            .within(Duration::from_secs(10))
            .seed(seed)
            .run()
            .unwrap();
        total += out.estimate.estimate;
    }
    let mean = total / runs as f64;
    assert!(
        (mean - truth).abs() / truth < 0.05,
        "ensemble mean {mean} vs truth {truth}"
    );
}

#[test]
fn sum_over_union_uses_inclusion_exclusion() {
    let mut db = db(3);
    let expr = Expr::relation("r").union(Expr::relation("s"));
    let truth = exact_sum(&db, &expr, 1);
    let out = db
        .sum(expr, 1)
        .within(Duration::from_secs(1_000_000))
        .run()
        .unwrap();
    assert!(
        (out.estimate.estimate - truth).abs() < 1e-6,
        "{} vs {truth}",
        out.estimate.estimate
    );
}

#[test]
fn avg_census_is_exact() {
    let mut db = db(4);
    let expr = Expr::relation("r").select(Predicate::col_cmp(1, CmpOp::Ge, 900));
    let sum = exact_sum(&db, &expr, 1);
    let count = db.exact_count(&expr).unwrap() as f64;
    let out = db
        .avg(expr, 1)
        .within(Duration::from_secs(1_000_000))
        .run()
        .unwrap();
    assert!(
        (out.estimate.estimate - sum / count).abs() < 1e-9,
        "{} vs {}",
        out.estimate.estimate,
        sum / count
    );
}

#[test]
fn avg_estimate_under_quota_is_close() {
    let mut db = db(5);
    let expr = Expr::relation("r").select(Predicate::col_cmp(1, CmpOp::Lt, 800));
    let sum = exact_sum(&db, &expr, 1);
    let count = db.exact_count(&expr).unwrap() as f64;
    let truth = sum / count;
    let out = db
        .avg(expr, 1)
        .within(Duration::from_secs(8))
        .seed(11)
        .run()
        .unwrap();
    let rel = (out.estimate.estimate - truth).abs() / truth;
    assert!(rel < 0.15, "avg rel err {rel}");
}

#[test]
fn avg_rejects_union_difference() {
    let mut db = db(6);
    let expr = Expr::relation("r").union(Expr::relation("s"));
    let err = db
        .avg(expr, 1)
        .within(Duration::from_secs(1))
        .run()
        .unwrap_err();
    assert!(matches!(err, EngineError::UnsupportedAggregate(_)));
}

#[test]
fn sum_rejects_projection_root_and_bad_columns() {
    let mut db = db(7);
    let err = db
        .sum(Expr::relation("r").project(vec![1]), 0)
        .within(Duration::from_secs(1))
        .run()
        .unwrap_err();
    assert!(matches!(err, EngineError::UnsupportedAggregate(_)));

    let err = db
        .sum(Expr::relation("r"), 9)
        .within(Duration::from_secs(1))
        .run()
        .unwrap_err();
    assert!(matches!(err, EngineError::Expr(_)));
}

#[test]
fn aggregate_fn_default_is_count() {
    assert_eq!(AggregateFn::default(), AggregateFn::Count);
    // Fresh databases so the device jitter streams match too.
    let expr = Expr::relation("r").select(Predicate::col_cmp(1, CmpOp::Lt, 10));
    let via_count = db(8)
        .count(expr.clone())
        .within(Duration::from_secs(5))
        .seed(1)
        .run()
        .unwrap();
    let via_aggregate = db(8)
        .aggregate(AggregateFn::Count, expr)
        .within(Duration::from_secs(5))
        .seed(1)
        .run()
        .unwrap();
    assert_eq!(via_count.estimate, via_aggregate.estimate);
}
