//! Integration tests for SUM/AVG — the paper's `f(E)` with the COUNT
//! restriction lifted.

use std::time::Duration;

use eram_core::{AggregateFn, Database, EngineError};
use eram_relalg::{eval, CmpOp, Expr, Predicate};
use eram_storage::{ColumnType, Schema, Tuple, Value};

fn db(seed: u64) -> Database {
    let mut db = Database::sim_default(seed);
    for (name, stride) in [("r", 1i64), ("s", 2i64)] {
        let schema =
            Schema::new(vec![("k", ColumnType::Int), ("amount", ColumnType::Int)]).padded_to(200);
        db.load_relation(
            name,
            schema,
            (0..10_000)
                .map(|i| Tuple::new(vec![Value::Int(i * stride), Value::Int((i * 37) % 1_000)])),
        )
        .unwrap();
    }
    db
}

/// Exact SUM over column `col` of the expression's output.
fn exact_sum(db: &Database, expr: &Expr, col: usize) -> f64 {
    eval::eval(expr, db.catalog())
        .unwrap()
        .iter()
        .map(|t| t.value(col).as_int().unwrap() as f64)
        .sum()
}

#[test]
fn sum_census_is_exact() {
    let mut db = db(1);
    let expr = Expr::relation("r").select(Predicate::col_cmp(1, CmpOp::Lt, 500));
    let truth = exact_sum(&db, &expr, 1);
    let out = db
        .sum(expr, 1)
        .within(Duration::from_secs(1_000_000))
        .run()
        .unwrap();
    assert!(
        (out.estimate.estimate - truth).abs() < 1e-6,
        "{} vs {truth}",
        out.estimate.estimate
    );
    assert_eq!(out.estimate.variance, 0.0);
}

#[test]
fn sum_estimate_lands_near_truth_under_quota() {
    let mut db = db(2);
    let expr = Expr::relation("r").select(Predicate::col_cmp(1, CmpOp::Lt, 500));
    let truth = exact_sum(&db, &expr, 1);
    let out = db
        .sum(expr, 1)
        .within(Duration::from_secs(10))
        .seed(4)
        .run()
        .unwrap();
    let rel = (out.estimate.estimate - truth).abs() / truth;
    assert!(
        rel < 0.3,
        "rel err {rel}: {} vs {truth}",
        out.estimate.estimate
    );
    let (lo, hi) = out.estimate.ci(0.95);
    assert!(lo <= hi && lo >= 0.0);
    assert!(hi.is_finite(), "CI must be finite even without an N clamp");
}

#[test]
fn sum_is_unbiased_in_ensemble() {
    let expr = Expr::relation("r").select(Predicate::col_cmp(1, CmpOp::Lt, 500));
    let mut total = 0.0;
    let runs = 40;
    let mut truth = 0.0;
    for seed in 0..runs {
        let mut db = db(100 + seed);
        truth = exact_sum(&db, &expr, 1);
        let out = db
            .sum(expr.clone(), 1)
            .within(Duration::from_secs(10))
            .seed(seed)
            .run()
            .unwrap();
        total += out.estimate.estimate;
    }
    let mean = total / runs as f64;
    assert!(
        (mean - truth).abs() / truth < 0.05,
        "ensemble mean {mean} vs truth {truth}"
    );
}

#[test]
fn sum_over_union_uses_inclusion_exclusion() {
    let mut db = db(3);
    let expr = Expr::relation("r").union(Expr::relation("s"));
    let truth = exact_sum(&db, &expr, 1);
    let out = db
        .sum(expr, 1)
        .within(Duration::from_secs(1_000_000))
        .run()
        .unwrap();
    assert!(
        (out.estimate.estimate - truth).abs() < 1e-6,
        "{} vs {truth}",
        out.estimate.estimate
    );
}

#[test]
fn avg_census_is_exact() {
    let mut db = db(4);
    let expr = Expr::relation("r").select(Predicate::col_cmp(1, CmpOp::Ge, 900));
    let sum = exact_sum(&db, &expr, 1);
    let count = db.exact_count(&expr).unwrap() as f64;
    let out = db
        .avg(expr, 1)
        .within(Duration::from_secs(1_000_000))
        .run()
        .unwrap();
    assert!(
        (out.estimate.estimate - sum / count).abs() < 1e-9,
        "{} vs {}",
        out.estimate.estimate,
        sum / count
    );
}

#[test]
fn avg_estimate_under_quota_is_close() {
    let mut db = db(5);
    let expr = Expr::relation("r").select(Predicate::col_cmp(1, CmpOp::Lt, 800));
    let sum = exact_sum(&db, &expr, 1);
    let count = db.exact_count(&expr).unwrap() as f64;
    let truth = sum / count;
    let out = db
        .avg(expr, 1)
        .within(Duration::from_secs(8))
        .seed(11)
        .run()
        .unwrap();
    let rel = (out.estimate.estimate - truth).abs() / truth;
    assert!(rel < 0.15, "avg rel err {rel}");
}

#[test]
fn avg_rejects_union_difference() {
    let mut db = db(6);
    let expr = Expr::relation("r").union(Expr::relation("s"));
    let err = db
        .avg(expr, 1)
        .within(Duration::from_secs(1))
        .run()
        .unwrap_err();
    assert!(matches!(err, EngineError::UnsupportedAggregate(_)));
}

#[test]
fn sum_rejects_projection_root_and_bad_columns() {
    let mut db = db(7);
    let err = db
        .sum(Expr::relation("r").project(vec![1]), 0)
        .within(Duration::from_secs(1))
        .run()
        .unwrap_err();
    assert!(matches!(err, EngineError::UnsupportedAggregate(_)));

    let err = db
        .sum(Expr::relation("r"), 9)
        .within(Duration::from_secs(1))
        .run()
        .unwrap_err();
    assert!(matches!(err, EngineError::Expr(_)));
}

#[test]
fn aggregate_fn_default_is_count() {
    assert_eq!(AggregateFn::default(), AggregateFn::Count);
    // Fresh databases so the device jitter streams match too.
    let expr = Expr::relation("r").select(Predicate::col_cmp(1, CmpOp::Lt, 10));
    let via_count = db(8)
        .count(expr.clone())
        .within(Duration::from_secs(5))
        .seed(1)
        .run()
        .unwrap();
    let via_aggregate = db(8)
        .aggregate(AggregateFn::Count, expr)
        .within(Duration::from_secs(5))
        .seed(1)
        .run()
        .unwrap();
    assert_eq!(via_count.estimate, via_aggregate.estimate);
}

// ---------------------------------------------------------------------------
// GROUP BY: per-group stopping, small-group exact fallback, hard-deadline
// partial answers.
// ---------------------------------------------------------------------------

/// A relation built for grouped aggregates: `k` (key), `amount`
/// (value column), `grp` (Int grouping column). `spread` controls the
/// per-group value dispersion: group `g`'s amounts are
/// `base[g] + (i * 37 % spread[g])`.
fn grouped_db(seed: u64, sizes: &[u64], base: &[i64], spread: &[i64]) -> Database {
    let mut db = Database::sim_default(seed);
    let schema = Schema::new(vec![
        ("k", ColumnType::Int),
        ("amount", ColumnType::Int),
        ("grp", ColumnType::Int),
    ])
    .padded_to(200);
    let mut tuples = Vec::new();
    let mut k = 0i64;
    for (g, &n) in sizes.iter().enumerate() {
        for i in 0..n as i64 {
            tuples.push(Tuple::new(vec![
                Value::Int(k),
                Value::Int(base[g] + (i * 37) % spread[g].max(1)),
                Value::Int(g as i64),
            ]));
            k += 1;
        }
    }
    // Interleave the groups so sampled blocks mix them (a sorted load
    // would make small groups invisible until late blocks).
    tuples.sort_by_key(|t| t.value(0).as_int().unwrap() % 997);
    db.load_relation("g", schema, tuples).unwrap();
    db
}

/// Exact per-group (count, sum) of the expression's output, keyed by
/// the Int value of `group_col`.
fn exact_groups(
    db: &Database,
    expr: &Expr,
    value_col: usize,
    group_col: usize,
) -> std::collections::BTreeMap<i64, (u64, f64)> {
    let mut out = std::collections::BTreeMap::new();
    for t in eval::eval(expr, db.catalog()).unwrap().iter() {
        let key = t.value(group_col).as_int().unwrap();
        let v = t.value(value_col).as_int().unwrap() as f64;
        let e = out.entry(key).or_insert((0u64, 0.0f64));
        e.0 += 1;
        e.1 += v;
    }
    out
}

#[test]
fn grouped_count_census_is_exact_per_group() {
    let mut db = grouped_db(21, &[4_000, 3_000, 2_000, 1_000], &[0; 4], &[100; 4]);
    let expr = Expr::relation("g").select(Predicate::col_cmp(1, CmpOp::Lt, 60));
    let truth = exact_groups(&db, &expr, 1, 2);
    let out = db
        .aggregate(AggregateFn::CountBy { group: 2 }, expr)
        .within(Duration::from_secs(1_000_000))
        .run()
        .unwrap();
    assert_eq!(out.report.groups.len(), truth.len());
    for g in &out.report.groups {
        let (count, _) = truth[&g.key];
        assert!(
            (g.estimate.estimate - count as f64).abs() < 1e-6,
            "group {}: {} vs {}",
            g.key,
            g.estimate.estimate,
            count
        );
        assert_eq!(g.tuples_seen, count, "census sees every qualifying tuple");
        assert!(g.exact, "census without freezing is exact");
        assert_eq!(g.estimate.variance, 0.0);
    }
    // The scalar composite agrees with the group total.
    let total: f64 = truth.values().map(|(c, _)| *c as f64).sum();
    assert!((out.estimate.estimate - total).abs() < 1e-6);
}

#[test]
fn grouped_sum_census_is_exact_per_group() {
    let mut db = grouped_db(22, &[5_000, 3_000, 2_000], &[0, 500, 100], &[100, 40, 900]);
    let expr = Expr::relation("g").select(Predicate::col_cmp(0, CmpOp::Lt, 9_000));
    let truth = exact_groups(&db, &expr, 1, 2);
    let out = db
        .aggregate(
            AggregateFn::SumBy {
                column: 1,
                group: 2,
            },
            expr,
        )
        .within(Duration::from_secs(1_000_000))
        .run()
        .unwrap();
    assert_eq!(out.report.groups.len(), truth.len());
    for g in &out.report.groups {
        let (_, sum) = truth[&g.key];
        assert!(
            (g.estimate.estimate - sum).abs() < 1e-6,
            "group {}: {} vs {sum}",
            g.key,
            g.estimate.estimate
        );
        assert!(g.exact);
    }
}

#[test]
fn grouped_avg_census_matches_exact_group_means() {
    let mut db = grouped_db(23, &[4_000, 4_000], &[100, 900], &[50, 700]);
    let expr = Expr::relation("g");
    let truth = exact_groups(&db, &expr, 1, 2);
    let out = db
        .aggregate(
            AggregateFn::AvgBy {
                column: 1,
                group: 2,
            },
            expr,
        )
        .within(Duration::from_secs(1_000_000))
        .run()
        .unwrap();
    for g in &out.report.groups {
        let (count, sum) = truth[&g.key];
        let mean = sum / count as f64;
        assert!(
            (g.estimate.estimate - mean).abs() < 1e-9,
            "group {}: {} vs {mean}",
            g.key,
            g.estimate.estimate
        );
    }
}

#[test]
fn per_group_stopping_freezes_tight_groups_and_frees_quota() {
    // Group 0 is large with near-constant amounts (its CI tightens
    // fast); group 1 is smaller with widely spread amounts (slow).
    let mut db = grouped_db(24, &[7_000, 3_000], &[1_000, 0], &[3, 9_999]);
    let expr = Expr::relation("g");
    let out = db
        .aggregate(
            AggregateFn::SumBy {
                column: 1,
                group: 2,
            },
            expr,
        )
        .within(Duration::from_secs(500))
        .stopping(eram_core::StoppingCriterion::GroupErrorBound {
            target: 0.10,
            confidence: 0.95,
            min_tuples: 25,
        })
        .seed(13)
        .run()
        .unwrap();
    assert_eq!(out.report.groups.len(), 2);
    let tight = &out.report.groups[0];
    let loose = &out.report.groups[1];
    assert!(
        tight.converged_at_stage.is_some(),
        "the near-constant group must converge under a generous quota"
    );
    // The tight group never converges after the loose one: freezing it
    // early is what concentrates the remaining quota.
    if let (Some(t), Some(l)) = (tight.converged_at_stage, loose.converged_at_stage) {
        assert!(t <= l, "tight group froze at {t}, loose at {l}");
    }
    // A frozen group keeps its CI honest: half-width within target.
    let (lo, hi) = tight.estimate.ci(0.95);
    let half = (hi - lo) / 2.0;
    assert!(
        half <= 0.10 * tight.estimate.estimate + 1e-9,
        "frozen group must meet its precision target: {half} vs {}",
        tight.estimate.estimate
    );
}

#[test]
fn small_group_exact_fallback_matches_full_evaluation() {
    // Group 1 has only 40 qualifying tuples — under `min_tuples: 80`
    // it can never freeze, so it rides to the census and lands exact.
    let mut db = grouped_db(25, &[9_960, 40], &[0, 5_000], &[1_000, 200]);
    let expr = Expr::relation("g");
    let truth = exact_groups(&db, &expr, 1, 2);
    let out = db
        .aggregate(
            AggregateFn::SumBy {
                column: 1,
                group: 2,
            },
            expr,
        )
        .within(Duration::from_secs(1_000_000))
        .stopping(eram_core::StoppingCriterion::GroupErrorBound {
            target: 0.15,
            confidence: 0.95,
            min_tuples: 80,
        })
        .seed(5)
        .run()
        .unwrap();
    let small = out
        .report
        .groups
        .iter()
        .find(|g| g.key == 1)
        .expect("small group delivered");
    let (count, sum) = truth[&1];
    assert!(small.exact, "a group below min_tuples falls back to exact");
    assert!(small.converged_at_stage.is_none(), "it never froze");
    assert_eq!(small.tuples_seen, count);
    assert!(
        (small.estimate.estimate - sum).abs() < 1e-6,
        "{} vs {sum}",
        small.estimate.estimate
    );
    assert_eq!(small.estimate.variance, 0.0, "census collapses the CI");
}

#[test]
fn zero_estimate_group_never_freezes_as_converged_at_zero() {
    // Regression: the per-group freeze used a raw
    // `relative_half_width <= target` comparison. A group whose
    // running estimate is 0 has an *infinite* relative half-width,
    // and `INFINITY <= INFINITY` is true — so under an unbounded
    // target (a census-only "freeze whatever you have past
    // min_tuples" policy) the group froze as "converged at 0" and
    // pinned that snapshot for the rest of the run. The shared
    // `error_bound_satisfied` gate now rejects non-positive
    // estimates and non-finite half-widths in both the scalar and
    // grouped paths.
    use eram_core::GroupedAccumulator;

    let agg = AggregateFn::SumBy {
        column: 1,
        group: 2,
    };
    let zeros: Vec<Tuple> = (0..10)
        .map(|i| Tuple::new(vec![Value::Int(i), Value::Int(0), Value::Int(7)]))
        .collect();
    let mut acc = GroupedAccumulator::new();
    acc.absorb(&zeros, 2, Some(1));
    let all_frozen = acc.check_convergence(1, agg, 10_000.0, 100.0, f64::INFINITY, 0.95, 5);
    assert!(
        !all_frozen,
        "a zero-estimate group must not satisfy the bound"
    );
    let snap = &acc.snapshots(agg, 10_000.0, 100.0)[0];
    assert!(
        !snap.frozen && snap.converged_at.is_none(),
        "group with running estimate 0 froze as converged-at-0"
    );

    // A group with a positive running estimate still freezes under
    // the same unbounded target — the gate only rejects degenerate
    // estimates, not the freeze mechanism.
    let spikes: Vec<Tuple> = (0..10)
        .map(|i| Tuple::new(vec![Value::Int(i), Value::Int(50), Value::Int(8)]))
        .collect();
    acc.absorb(&spikes, 2, Some(1));
    acc.check_convergence(2, agg, 10_000.0, 200.0, f64::INFINITY, 0.95, 5);
    let snaps = acc.snapshots(agg, 10_000.0, 200.0);
    let spiky = snaps.iter().find(|s| s.key == 8).unwrap();
    let zeroed = snaps.iter().find(|s| s.key == 7).unwrap();
    assert!(spiky.frozen, "positive estimates may still freeze");
    assert!(!zeroed.frozen, "the zero group stays live across stages");
}

#[test]
fn all_zero_group_rides_to_census_instead_of_freezing() {
    // End-to-end: group 1's amounts are all zero. Under an unbounded
    // per-group target it used to freeze at the first post-min_tuples
    // check (inexact, converged_at set); now it can never satisfy the
    // bound, rides to the census, and lands exact.
    let mut db = grouped_db(27, &[6_000, 4_000], &[500, 0], &[300, 1]);
    let expr = Expr::relation("g");
    let out = db
        .aggregate(
            AggregateFn::SumBy {
                column: 1,
                group: 2,
            },
            expr,
        )
        .within(Duration::from_secs(1_000_000))
        .stopping(eram_core::StoppingCriterion::GroupErrorBound {
            target: f64::INFINITY,
            confidence: 0.95,
            min_tuples: 25,
        })
        .seed(11)
        .run()
        .unwrap();
    let zero_group = out
        .report
        .groups
        .iter()
        .find(|g| g.key == 1)
        .expect("all-zero group delivered");
    assert!(
        zero_group.converged_at_stage.is_none(),
        "an all-zero group must never freeze as converged at 0"
    );
    assert!(zero_group.exact, "it rides to the census and lands exact");
    assert_eq!(zero_group.estimate.estimate, 0.0);
    assert_eq!(zero_group.estimate.variance, 0.0);
}

#[test]
fn hard_deadline_abort_leaves_partial_groups_with_honest_cis() {
    let expr = Expr::relation("g");
    // Ensemble check: per-group estimates under a tight hard deadline
    // stay unbiased (mean near truth), and every delivered group
    // carries a finite, nonzero CI.
    let runs = 25u64;
    let mut means = std::collections::BTreeMap::new();
    let mut truth = std::collections::BTreeMap::new();
    for seed in 0..runs {
        let mut db = grouped_db(300 + seed, &[6_000, 4_000], &[200, 800], &[400, 600]);
        truth = exact_groups(&db, &expr, 1, 2);
        let out = db
            .aggregate(
                AggregateFn::SumBy {
                    column: 1,
                    group: 2,
                },
                expr.clone(),
            )
            .within(Duration::from_secs(4))
            .seed(seed)
            .run()
            .unwrap();
        assert_eq!(out.report.groups.len(), 2, "both groups delivered");
        for g in &out.report.groups {
            assert!(g.tuples_seen > 0);
            assert!(!g.exact);
            assert!(g.estimate.variance > 0.0, "partial answers carry real CIs");
            let (lo, hi) = g.estimate.ci(0.95);
            assert!(lo.is_finite() && hi.is_finite() && lo < hi);
            *means.entry(g.key).or_insert(0.0) += g.estimate.estimate / runs as f64;
        }
    }
    for (key, mean) in &means {
        let (_, sum) = truth[key];
        let rel = (mean - sum).abs() / sum;
        assert!(
            rel < 0.10,
            "group {key} ensemble mean {mean} vs truth {sum} (rel {rel})"
        );
    }
}

#[test]
fn grouped_rejects_union_and_projection_root() {
    let mut db = grouped_db(26, &[500, 500], &[0, 0], &[10, 10]);
    let err = db
        .aggregate(
            AggregateFn::CountBy { group: 2 },
            // Two overlapping selections: a genuine 3-term
            // inclusion–exclusion rewrite (a self-union would
            // simplify to a single trivial term and be accepted).
            Expr::relation("g")
                .select(Predicate::col_cmp(0, CmpOp::Lt, 700))
                .union(Expr::relation("g").select(Predicate::col_cmp(0, CmpOp::Ge, 300))),
        )
        .within(Duration::from_secs(1))
        .run()
        .unwrap_err();
    assert!(matches!(err, EngineError::UnsupportedAggregate(_)));

    // Column indices are valid against the projection's output schema,
    // so this reaches (and trips) the projection-root rejection.
    let err = db
        .aggregate(
            AggregateFn::SumBy {
                column: 0,
                group: 1,
            },
            Expr::relation("g").project(vec![1, 2]),
        )
        .within(Duration::from_secs(1))
        .run()
        .unwrap_err();
    assert!(matches!(err, EngineError::UnsupportedAggregate(_)));

    // A non-Int grouping column is rejected at validation.
    let err = db
        .aggregate(AggregateFn::CountBy { group: 9 }, Expr::relation("g"))
        .within(Duration::from_secs(1))
        .run()
        .unwrap_err();
    assert!(matches!(err, EngineError::Expr(_)));
}
