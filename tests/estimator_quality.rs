//! Statistical quality of the delivered estimates: near-unbiasedness
//! and confidence-interval coverage over seed ensembles, through the
//! whole engine (not just the estimator math, which eram-sampling
//! unit-tests).

use std::time::Duration;

use eram_bench::{Workload, WorkloadKind};

struct Ensemble {
    mean: f64,
    coverage: f64,
}

fn run_ensemble(kind: WorkloadKind, quota: Duration, runs: u64, confidence: f64) -> Ensemble {
    let mut sum = 0.0;
    let mut covered = 0u64;
    let mut truth = 0.0;
    for seed in 0..runs {
        let mut w = Workload::build(kind, 9_000 + seed);
        truth = w.truth as f64;
        let out =
            w.db.count(w.expr.clone())
                .within(quota)
                .seed(seed)
                .run()
                .unwrap();
        sum += out.estimate.estimate;
        let (lo, hi) = out.estimate.ci(confidence);
        if lo <= truth && truth <= hi {
            covered += 1;
        }
    }
    Ensemble {
        mean: sum / runs as f64 / truth.max(1.0),
        coverage: covered as f64 / runs as f64,
    }
}

#[test]
fn select_estimates_are_nearly_unbiased() {
    let e = run_ensemble(
        WorkloadKind::Select {
            output_tuples: 5_000,
        },
        Duration::from_secs(10),
        60,
        0.95,
    );
    assert!(
        (e.mean - 1.0).abs() < 0.05,
        "ensemble mean/truth = {}, want ≈ 1",
        e.mean
    );
    assert!(
        e.coverage >= 0.85,
        "95% CI coverage through the engine = {}",
        e.coverage
    );
}

#[test]
fn join_estimates_have_right_magnitude() {
    let e = run_ensemble(
        WorkloadKind::Join {
            output_tuples: 70_000,
        },
        Duration::from_secs(10),
        40,
        0.95,
    );
    // Join sampling at this scale is noisy; demand the right order of
    // magnitude on the ensemble mean and non-trivial coverage.
    assert!(
        e.mean > 0.5 && e.mean < 2.0,
        "ensemble mean/truth = {}",
        e.mean
    );
    assert!(e.coverage >= 0.6, "coverage = {}", e.coverage);
}

#[test]
fn intersect_estimates_improve_with_quota() {
    let short = run_ensemble(
        WorkloadKind::Intersect { overlap: 5_000 },
        Duration::from_secs_f64(2.5),
        30,
        0.95,
    );
    let long = run_ensemble(
        WorkloadKind::Intersect { overlap: 5_000 },
        Duration::from_secs(30),
        30,
        0.95,
    );
    // More quota → more space blocks → ensemble mean closer to truth.
    let short_err = (short.mean - 1.0).abs();
    let long_err = (long.mean - 1.0).abs();
    assert!(
        long_err <= short_err + 0.05,
        "accuracy should not degrade with quota: {short_err} → {long_err}"
    );
    assert!(long_err < 0.35, "30 s intersect mean/truth = {}", long.mean);
}

#[test]
fn zero_output_selection_estimates_zero() {
    for seed in 0..10u64 {
        let mut w = Workload::build(WorkloadKind::Select { output_tuples: 0 }, seed);
        let out =
            w.db.count(w.expr.clone())
                .within(Duration::from_secs(10))
                .seed(seed)
                .run()
                .unwrap();
        assert_eq!(out.estimate.estimate, 0.0, "seed {seed}");
    }
}
