//! Decoded-run-cache equivalence, locked down end to end.
//!
//! The binary-operator run cache serves old runs from memory while
//! still charging every simulated block read from file metadata
//! ("charge from metadata, serve from memory"). The observable
//! contract is therefore the same as the worker pool's: a seeded
//! `SimClock` run must produce a **byte-identical**
//! [`eram_core::ExecutionReport`] (as JSON) and a byte-identical
//! JSONL trace with the cache at any size — including off — at any
//! worker count, and under injected storage faults.

use std::sync::Arc;
use std::time::Duration;

use eram_bench::{Workload, WorkloadKind};
use eram_core::{AggregateFn, Database, Tracer};
use eram_relalg::{CmpOp, Expr, Predicate};
use eram_storage::{
    ColumnType, DeviceProfile, Disk, FaultPlan, HeapFile, RunCache, Schema, SimClock, Tuple, Value,
};

/// True under the offline stand-in crates (see `offline/README.md`):
/// the stub serde cannot serialize the replay artifacts.
fn stub_serde() -> bool {
    serde_json::to_string(&0u32).is_err()
}

/// Runs one seeded workload query and returns the serialized report
/// plus the JSONL trace. `cache_tuples` of `None` keeps the engine's
/// default run-cache bound.
fn run_workload(
    kind: WorkloadKind,
    workers: usize,
    seed: u64,
    quota: Duration,
    cache_tuples: Option<usize>,
    faults: Option<FaultPlan>,
) -> (String, String) {
    let mut w = Workload::build_on(kind, seed, 0);
    if let Some(plan) = faults {
        w.db.disk().set_fault_plan(plan);
    }
    let tracer = Tracer::recording(w.db.disk().clock().clone());
    let mut query =
        w.db.count(w.expr.clone())
            .within(quota)
            .workers(workers)
            .seed(seed ^ 0x5EED)
            .tracer(tracer.clone());
    if let Some(tuples) = cache_tuples {
        query = query.run_cache(tuples);
    }
    let out = query.run().expect("workload query must execute");
    (
        serde_json::to_string(&out.report).expect("report serializes"),
        tracer.to_jsonl(),
    )
}

#[test]
fn join_reports_are_byte_identical_with_cache_on_and_off() {
    if stub_serde() {
        eprintln!("skipped: offline serde stub cannot serialize the replay artifacts");
        return;
    }
    let kind = WorkloadKind::Join {
        output_tuples: 70_000,
    };
    let quota = Duration::from_secs_f64(2.5);
    for workers in [1, 4] {
        let (report_on, trace_on) = run_workload(kind, workers, 42, quota, None, None);
        let (report_off, trace_off) = run_workload(kind, workers, 42, quota, Some(0), None);
        assert!(!trace_on.is_empty());
        assert_eq!(
            report_on, report_off,
            "ExecutionReport diverged with the run cache off at workers={workers}"
        );
        assert_eq!(
            trace_on, trace_off,
            "trace diverged with the run cache off at workers={workers}"
        );
    }
}

#[test]
fn tiny_cache_bounds_are_also_invisible() {
    if stub_serde() {
        eprintln!("skipped: offline serde stub cannot serialize the replay artifacts");
        return;
    }
    // A cache far too small to hold every run forces constant
    // eviction and re-decode; the simulated results must not notice.
    let kind = WorkloadKind::Join {
        output_tuples: 70_000,
    };
    let quota = Duration::from_secs_f64(2.5);
    let (report_default, trace_default) = run_workload(kind, 1, 17, quota, None, None);
    let (report_tiny, trace_tiny) = run_workload(kind, 1, 17, quota, Some(64), None);
    assert_eq!(report_default, report_tiny);
    assert_eq!(trace_default, trace_tiny);
}

/// A grouped-SUM run over an interleaved three-group relation; the
/// run cache must stay invisible to the per-group report too.
fn run_grouped_sum(workers: usize, seed: u64, cache_tuples: Option<usize>) -> (String, String) {
    let mut db = Database::sim_default(seed);
    let schema = Schema::new(vec![
        ("k", ColumnType::Int),
        ("amount", ColumnType::Int),
        ("grp", ColumnType::Int),
    ])
    .padded_to(200);
    let mut tuples = Vec::new();
    let mut k = 0i64;
    for (g, (n, spread)) in [(6_000i64, 5i64), (3_000, 800), (1_000, 90)]
        .into_iter()
        .enumerate()
    {
        for i in 0..n {
            tuples.push(Tuple::new(vec![
                Value::Int(k),
                Value::Int((i * 37) % spread),
                Value::Int(g as i64),
            ]));
            k += 1;
        }
    }
    tuples.sort_by_key(|t| t.value(0).as_int().unwrap() % 997);
    db.load_relation("g", schema, tuples).unwrap();
    let tracer = Tracer::recording(db.disk().clock().clone());
    let expr = Expr::relation("g").select(Predicate::col_cmp(1, CmpOp::Lt, 700));
    let mut query = db
        .aggregate(
            AggregateFn::SumBy {
                column: 1,
                group: 2,
            },
            expr,
        )
        .within(Duration::from_secs_f64(2.5))
        .workers(workers)
        .seed(seed ^ 0x5EED)
        .tracer(tracer.clone());
    if let Some(tuples) = cache_tuples {
        query = query.run_cache(tuples);
    }
    let out = query.run().expect("grouped query must execute");
    (
        serde_json::to_string(&out.report).expect("report serializes"),
        tracer.to_jsonl(),
    )
}

#[test]
fn grouped_sum_reports_are_byte_identical_with_cache_on_and_off() {
    if stub_serde() {
        eprintln!("skipped: offline serde stub cannot serialize the replay artifacts");
        return;
    }
    for workers in [1, 4] {
        let (report_on, trace_on) = run_grouped_sum(workers, 37, None);
        let (report_off, trace_off) = run_grouped_sum(workers, 37, Some(0));
        assert!(report_on.contains("\"groups\""), "grouped report present");
        assert_eq!(
            report_on, report_off,
            "grouped report diverged with the run cache off at workers={workers}"
        );
        assert_eq!(trace_on, trace_off);
    }
}

#[test]
fn faulted_runs_stay_identical_with_and_without_the_cache() {
    if stub_serde() {
        eprintln!("skipped: offline serde stub cannot serialize the replay artifacts");
        return;
    }
    // Corrupt and transient faults make run re-reads lossy; degraded
    // reads must bypass the cache, so cached and uncached executions
    // still agree charge for charge and tuple for tuple.
    let kind = WorkloadKind::Join {
        output_tuples: 70_000,
    };
    let quota = Duration::from_secs_f64(2.5);
    let plan = || FaultPlan::new(9).with_corruption(0.05).with_transient(0.05);
    for workers in [1, 4] {
        let (report_on, trace_on) = run_workload(kind, workers, 23, quota, None, Some(plan()));
        let (report_off, trace_off) = run_workload(kind, workers, 23, quota, Some(0), Some(plan()));
        assert_eq!(
            report_on, report_off,
            "faulted run diverged with the run cache off at workers={workers}"
        );
        assert_eq!(trace_on, trace_off);
    }
}

#[test]
fn heavy_chaos_cannot_expose_stale_cached_runs() {
    if stub_serde() {
        eprintln!("skipped: offline serde stub cannot serialize the replay artifacts");
        return;
    }
    // Much heavier degradation than the leg above: with one in five
    // run-block reads corrupted or transiently lost, most runs come
    // back incomplete, which drives the degraded-read invalidation
    // path in `read_run` on nearly every stage. Cached, tiny-cached,
    // and uncached executions must still agree byte for byte.
    let kind = WorkloadKind::Join {
        output_tuples: 70_000,
    };
    let quota = Duration::from_secs_f64(2.5);
    let plan = || FaultPlan::new(31).with_corruption(0.2).with_transient(0.2);
    for workers in [1, 4] {
        let (report_on, trace_on) = run_workload(kind, workers, 51, quota, None, Some(plan()));
        let (report_tiny, trace_tiny) =
            run_workload(kind, workers, 51, quota, Some(256), Some(plan()));
        let (report_off, trace_off) = run_workload(kind, workers, 51, quota, Some(0), Some(plan()));
        assert_eq!(
            report_on, report_off,
            "heavy-chaos run diverged with the run cache off at workers={workers}"
        );
        assert_eq!(
            report_tiny, report_off,
            "heavy-chaos run diverged with a tiny run cache at workers={workers}"
        );
        assert_eq!(trace_on, trace_off);
        assert_eq!(trace_tiny, trace_off);
    }
}

/// Regression for the run-cache staleness bug: a decoded run cached
/// before its file was rewritten (or freed) kept being served by
/// file id, because nothing tied the cache entry to the file's
/// on-disk content. This mirrors the executor's exact protocol —
/// decode once, cache under the file's content version, look up with
/// the *current* version — and fails on the pre-fix cache, which
/// keyed entries by `FileId` alone.
#[test]
fn cached_run_never_serves_pre_overwrite_tuples() {
    let clock = Arc::new(SimClock::new());
    let disk = Disk::new(clock, DeviceProfile::sun_3_60().without_jitter(), 5);
    let schema = Schema::new(vec![("a", ColumnType::Int), ("b", ColumnType::Int)]).padded_to(200);
    let old: Vec<Tuple> = (0..5)
        .map(|i| Tuple::new(vec![Value::Int(i), Value::Int(10 + i)]))
        .collect();
    let file = HeapFile::load(disk.clone(), schema.clone(), old.clone()).unwrap();

    let mut cache = RunCache::new(1_000);
    let decoded: Arc<[Tuple]> = file.scan_uncharged().unwrap().into();
    cache.put(file.file_id(), file.version(), decoded);
    assert!(cache.get(file.file_id(), file.version()).is_some());

    // A fault event rewrites the run's only block in place with
    // different tuples (encoded via a donor file on the same disk).
    let new: Vec<Tuple> = (0..5)
        .map(|i| Tuple::new(vec![Value::Int(100 + i), Value::Int(0)]))
        .collect();
    let donor = HeapFile::load(disk.clone(), schema, new.clone()).unwrap();
    let donor_block = disk.read_block_uncharged(donor.file_id(), 0).unwrap();
    disk.write_block(file.file_id(), 0, donor_block).unwrap();

    // The disk now answers with the new tuples...
    assert_eq!(file.scan_uncharged().unwrap(), new);
    // ...so the cache must not keep answering with the old ones: the
    // overwrite advanced the file's version and the stale entry dies
    // on lookup instead of being served.
    assert!(
        cache.get(file.file_id(), file.version()).is_none(),
        "run cache served pre-overwrite tuples for a rewritten file"
    );

    // Freeing a file advances its version too, so a run cached
    // before the free can never be served afterwards either.
    let mut cache2 = RunCache::new(1_000);
    cache2.put(donor.file_id(), donor.version(), new.into());
    let donor_id = donor.file_id();
    donor.free();
    assert!(
        cache2.get(donor_id, disk.file_version(donor_id)).is_none(),
        "run cache served tuples for a freed file"
    );
}
