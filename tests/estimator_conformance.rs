//! Statistical conformance harness for the estimator algebra: every
//! [`AggregateEstimator`] instance (COUNT, SUM, AVG, and their
//! inclusion–exclusion composition) must be **unbiased** and must
//! produce confidence intervals that **achieve their nominal
//! coverage** under simple random sampling without replacement.
//!
//! Method: seeded multi-replication Monte Carlo. For each population
//! shape, draw `REPS` independent SRS samples, form the estimator's
//! snapshot from each, and check
//!
//! 1. **Unbiasedness** — the replication mean of the estimates lands
//!    within a few Monte-Carlo standard errors of the ground truth;
//! 2. **Coverage** — the fraction of nominal-95% CIs containing the
//!    truth is at least [`MIN_COVERAGE`] (90%: ~5 points of slack
//!    below nominal absorbs both the normal approximation and the
//!    coverage estimate's own ~1% Monte-Carlo error at 400 reps).
//!
//! The COUNT path is additionally cross-checked against the
//! `goodman.rs` oracle: the `DistinctCount` instance must reproduce
//! `goodman_estimate` exactly on the same occupancies.
//!
//! The harness is pure sampling-layer code (no database, no serde),
//! so it runs identically under the offline stub toolchain — the stub
//! rand is a different RNG, but conformance is a property of the
//! estimator algebra, not of a particular random stream. One cell is
//! the exception: the shared-draw validity cell at the bottom drives
//! the full server to prove that pooled block draws leave every
//! estimator's input stream untouched.

use rand::rngs::StdRng;
use rand::SeedableRng;

use eram_sampling::{
    goodman_estimate, sample_without_replacement, AggregateEstimator, CountEstimate, DistinctCount,
    DistinctEstimator, Linear, RatioAvg, SrsCount, SrsSum,
};

use proptest::prelude::*;

/// Replications per conformance cell.
const REPS: u64 = 400;
/// Sample size per replication.
const M: u64 = 250;
/// Population size.
const N: u64 = 10_000;
/// Required empirical coverage of nominal-95% intervals.
const MIN_COVERAGE: f64 = 0.90;

/// A synthetic population: `ones[i]` says whether point `i`
/// qualifies, `values[i]` is its value column.
struct Population {
    ones: Vec<bool>,
    values: Vec<f64>,
}

impl Population {
    /// Deterministic population: selectivity `sel`, values on an
    /// arithmetic lattice with dispersion `spread` shifted by `base`
    /// (skew-free but non-constant, so SUM and AVG have real
    /// variance).
    fn build(sel: f64, base: f64, spread: f64) -> Self {
        let cut = (sel * N as f64) as u64;
        let ones: Vec<bool> = (0..N).map(|i| (i * 7919) % N < cut).collect();
        let values: Vec<f64> = (0..N)
            .map(|i| base + ((i * 37) % 100) as f64 / 100.0 * spread)
            .collect();
        Population { ones, values }
    }

    fn true_count(&self) -> f64 {
        self.ones.iter().filter(|&&b| b).count() as f64
    }

    fn true_sum(&self) -> f64 {
        self.ones
            .iter()
            .zip(&self.values)
            .filter(|(b, _)| **b)
            .map(|(_, v)| *v)
            .sum()
    }

    fn true_avg(&self) -> f64 {
        self.true_sum() / self.true_count()
    }

    /// One SRS replication: sample statistics for every estimator.
    fn draw(&self, seed: u64) -> SampleStats {
        let mut rng = StdRng::seed_from_u64(seed);
        let idx = sample_without_replacement(N, M, &mut rng);
        let mut s = SampleStats::default();
        for i in idx {
            let i = i as usize;
            if self.ones[i] {
                s.ones += 1.0;
                s.sum += self.values[i];
                s.sum_sq += self.values[i] * self.values[i];
            }
        }
        s
    }
}

#[derive(Default)]
struct SampleStats {
    ones: f64,
    sum: f64,
    sum_sq: f64,
}

impl SampleStats {
    fn count(&self) -> CountEstimate {
        SrsCount {
            total_points: N as f64,
            points_sampled: M as f64,
            ones: self.ones,
        }
        .snapshot()
    }

    fn sum(&self) -> CountEstimate {
        SrsSum {
            total_points: N as f64,
            points_sampled: M as f64,
            sum: self.sum,
            sum_sq: self.sum_sq,
        }
        .snapshot()
    }

    fn avg(&self) -> CountEstimate {
        RatioAvg {
            ones: self.ones,
            points_sampled: M as f64,
            total_points: N as f64,
            sum: self.sum,
            sum_sq: self.sum_sq,
        }
        .snapshot()
    }
}

/// Runs the Monte-Carlo cell for one estimator and asserts both
/// conformance properties.
fn assert_conformant(label: &str, truth: f64, seed_base: u64, draw: impl Fn(u64) -> CountEstimate) {
    let mut covered = 0u64;
    let mut mean = 0.0;
    let mut var_accum = 0.0;
    for r in 0..REPS {
        let est = draw(seed_base + r);
        let (lo, hi) = est.ci(0.95);
        if lo <= truth && truth <= hi {
            covered += 1;
        }
        mean += est.estimate / REPS as f64;
        var_accum += (est.estimate - truth) * (est.estimate - truth) / REPS as f64;
    }
    let coverage = covered as f64 / REPS as f64;
    assert!(
        coverage >= MIN_COVERAGE,
        "[{label}] empirical coverage {coverage:.3} below {MIN_COVERAGE}"
    );
    // Unbiasedness: the replication mean must sit within ~5 MC
    // standard errors of the truth (ratio estimators carry an O(1/m)
    // bias well inside this band).
    let mc_se = (var_accum / REPS as f64).sqrt();
    let tol = 5.0 * mc_se + 1e-9;
    assert!(
        (mean - truth).abs() <= tol,
        "[{label}] replication mean {mean} vs truth {truth} (tol {tol})"
    );
}

#[test]
fn count_estimator_is_unbiased_with_valid_coverage() {
    let pop = Population::build(0.5, 0.0, 100.0);
    assert_conformant("count", pop.true_count(), 0xC0, |seed| {
        pop.draw(seed).count()
    });
}

#[test]
fn sum_estimator_is_unbiased_with_valid_coverage() {
    let pop = Population::build(0.5, 50.0, 300.0);
    assert_conformant("sum", pop.true_sum(), 0x50, |seed| pop.draw(seed).sum());
}

#[test]
fn avg_estimator_is_unbiased_with_valid_coverage() {
    let pop = Population::build(0.6, 200.0, 150.0);
    assert_conformant("avg", pop.true_avg(), 0xA0, |seed| pop.draw(seed).avg());
}

#[test]
fn linear_composition_keeps_coverage_for_inclusion_exclusion() {
    // count(A ∪ B) = count(A) + count(B) − count(A ∩ B), each term
    // estimated from an independent SRS — the composed CI must still
    // cover the union's true size.
    let a = Population::build(0.5, 0.0, 1.0);
    let b = Population::build(0.3, 0.0, 1.0);
    let both: Vec<bool> = a.ones.iter().zip(&b.ones).map(|(x, y)| *x && *y).collect();
    let union_truth = a
        .ones
        .iter()
        .zip(&b.ones)
        .filter(|(x, y)| **x || **y)
        .count() as f64;
    let count_of = |ones: &[bool], seed: u64| {
        let mut rng = StdRng::seed_from_u64(seed);
        let idx = sample_without_replacement(N, M, &mut rng);
        let hits = idx.iter().filter(|&&i| ones[i as usize]).count() as f64;
        SrsCount {
            total_points: N as f64,
            points_sampled: M as f64,
            ones: hits,
        }
        .snapshot()
    };
    assert_conformant("union", union_truth, 0x10E, |seed| {
        Linear::new()
            .with(1, count_of(&a.ones, seed))
            .with(1, count_of(&b.ones, seed ^ 0x9E37_79B9))
            .with(-1, count_of(&both, seed ^ 0x85EB_CA6B))
            .snapshot()
    });
}

#[test]
fn distinct_count_matches_the_goodman_oracle_exactly() {
    // The algebra's DistinctCount instance must reproduce the
    // goodman.rs closed form on identical occupancies — same estimate,
    // same feasible-range clamp.
    for (population, occupancies) in [
        (1_000.0, vec![1u64, 1, 2, 3, 1]),
        (5_000.0, vec![2u64, 2, 2, 2]),
        (100.0, vec![1u64; 60]),
        (10_000.0, vec![5u64, 1, 1, 1, 1, 1, 7]),
    ] {
        let sample: u64 = occupancies.iter().sum();
        let algebra = DistinctCount {
            distinct: DistinctEstimator::Goodman,
            population,
            occupancies: &occupancies,
            points_sampled: sample as f64,
            total_points: population,
        }
        .snapshot();
        let oracle = goodman_estimate(population, &occupancies);
        assert!(
            (algebra.estimate - oracle).abs() < 1e-9,
            "algebra {} vs oracle {oracle} (N={population})",
            algebra.estimate
        );
    }
}

/// Shared-draw validity cell: when the server pools co-resident
/// base-relation reads (`--concurrency interleaved`), each
/// subscriber still draws its *own* seeded sample stream and is
/// charged for every read — the pool only dedups the physical device
/// work. So each job's estimate and confidence interval must be
/// byte-identical to the sequential oracle, where every job reads the
/// device alone. Sharing is an I/O-layer optimization, not a
/// statistical coupling: the unbiasedness and coverage properties
/// proved by the cells above transfer verbatim to shared-draw
/// execution.
#[test]
fn shared_draws_do_not_perturb_the_estimators() {
    use eram_core::{Concurrency, Database, QueryServer, ServerJob};
    use eram_relalg::Expr;
    use eram_storage::{ColumnType, Schema, Tuple, Value};
    use std::time::Duration;

    let run = |mode: Concurrency| {
        let mut db = Database::sim_default(77);
        let schema = Schema::new(vec![("k", ColumnType::Int)]).padded_to(200);
        db.load_relation(
            "t",
            schema,
            (0..N).map(|i| Tuple::new(vec![Value::Int(i as i64)])),
        )
        .unwrap();
        let jobs = vec![
            ServerJob::count("x", Expr::relation("t"), Duration::from_secs(8)),
            ServerJob::count("y", Expr::relation("t"), Duration::from_secs(16)),
        ];
        QueryServer::new().concurrency(mode).run(&mut db, jobs)
    };
    let seq = run(Concurrency::Sequential);
    let inter = run(Concurrency::Interleaved);
    assert_eq!(
        seq.jobs, inter.jobs,
        "per-job reports must not see the sharing"
    );
    for (s, i) in seq.jobs.iter().zip(&inter.jobs) {
        let (se, ie) = (
            s.estimate.expect("job completed"),
            i.estimate.expect("job completed"),
        );
        assert_eq!(
            se.estimate.to_bits(),
            ie.estimate.to_bits(),
            "{}: estimate must be bit-identical",
            s.name
        );
        let (slo, shi) = se.ci(0.95);
        let (ilo, ihi) = ie.ci(0.95);
        assert_eq!(
            (slo.to_bits(), shi.to_bits()),
            (ilo.to_bits(), ihi.to_bits()),
            "{}: CI must be bit-identical",
            s.name
        );
    }
    // And the sharing actually happened: two co-resident scans of the
    // same relation fed from one pool.
    let sched = inter.schedule.as_ref().expect("schedule rides the outcome");
    assert!(sched.blocks_shared > 0, "no draws were pooled");
    assert_eq!(seq.schedule.as_ref().unwrap().blocks_shared, 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Conformance holds across population shapes, not just the
    /// hand-picked cells: any moderate selectivity and value
    /// dispersion keeps COUNT/SUM/AVG unbiased with valid coverage.
    #[test]
    fn conformance_holds_across_population_shapes(
        sel in 0.25f64..0.75,
        base in 10.0f64..500.0,
        spread in 20.0f64..400.0,
        seed_base in any::<u32>(),
    ) {
        let pop = Population::build(sel, base, spread);
        let seed_base = u64::from(seed_base);
        assert_conformant("count", pop.true_count(), seed_base, |s| pop.draw(s).count());
        assert_conformant("sum", pop.true_sum(), seed_base ^ 0x5A5A, |s| pop.draw(s).sum());
        assert_conformant("avg", pop.true_avg(), seed_base ^ 0xA5A5, |s| pop.draw(s).avg());
    }
}
