//! Serial-vs-parallel equivalence, locked down end to end.
//!
//! The worker pool only ever touches *pure* stage work (block decode,
//! run merges); every charge, trace record, RNG draw, and deadline
//! check stays on the calling thread in canonical order. The
//! observable contract is therefore strong: a seeded `SimClock` run
//! must produce a **byte-identical** [`eram_core::ExecutionReport`]
//! (as JSON) and a byte-identical JSONL trace at *any* worker count.
//!
//! 1. **Fixed-seed identity** — the Figure 5.3 join workload at
//!    `workers ∈ {2, 4, 8}` against the `workers = 1` reference.
//! 2. **Hard-deadline identity** — a selection run that aborts
//!    mid-stage, covering the mid-draw unconsume/pending path.
//! 3. **CI matrix hook** — one run at `ERAM_WORKERS` (default 4)
//!    against the serial reference, so the suite pins a specific
//!    worker count per CI job.
//! 4. **Property** — arbitrary seeds, quotas, and worker counts
//!    replay identically (proptest).
//! 5. **Cache stress** — the sharded [`eram_storage::BlockCache`]
//!    under concurrent readers/writers keeps exact hit/miss
//!    accounting and never exceeds capacity.

use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;

use eram_bench::{Workload, WorkloadKind};
use eram_core::{AggregateFn, Database, Tracer};
use eram_relalg::{CmpOp, Expr, Predicate};
use eram_storage::{Block, BlockCache, ColumnType, Schema, Tuple, Value};

/// True under the offline stand-in crates (see `offline/README.md`):
/// the stub serde cannot serialize the replay artifacts.
fn stub_serde() -> bool {
    serde_json::to_string(&0u32).is_err()
}

/// Runs one seeded workload query at the given worker count and
/// returns the serialized report plus the JSONL trace.
fn run_workload(
    kind: WorkloadKind,
    workers: usize,
    seed: u64,
    quota: Duration,
) -> (String, String) {
    let mut w = Workload::build_on(kind, seed, 0);
    let tracer = Tracer::recording(w.db.disk().clock().clone());
    let out =
        w.db.count(w.expr.clone())
            .within(quota)
            .workers(workers)
            .seed(seed ^ 0x5EED)
            .tracer(tracer.clone())
            .run()
            .expect("workload query must execute");
    (
        serde_json::to_string(&out.report).expect("report serializes"),
        tracer.to_jsonl(),
    )
}

#[test]
fn join_replays_byte_identically_at_any_worker_count() {
    if stub_serde() {
        eprintln!("skipped: offline serde stub cannot serialize the replay artifacts");
        return;
    }
    let kind = WorkloadKind::Join {
        output_tuples: 70_000,
    };
    let quota = Duration::from_secs_f64(2.5);
    let (report_1, trace_1) = run_workload(kind, 1, 42, quota);
    assert!(!trace_1.is_empty());
    for workers in [2, 4, 8] {
        let (report_w, trace_w) = run_workload(kind, workers, 42, quota);
        assert_eq!(
            report_1, report_w,
            "ExecutionReport diverged at workers={workers}"
        );
        assert_eq!(trace_1, trace_w, "trace diverged at workers={workers}");
    }
}

#[test]
fn hard_deadline_abort_replays_identically_under_workers() {
    if stub_serde() {
        eprintln!("skipped: offline serde stub cannot serialize the replay artifacts");
        return;
    }
    // A quota this tight forces the deadline to fire mid-stage, so the
    // runs exercise the abort path (sampler rewind + banked pending
    // tuples) — which must also be charge-for-charge deterministic.
    let kind = WorkloadKind::Select {
        output_tuples: 10_000,
    };
    let quota = Duration::from_millis(600);
    let (report_1, trace_1) = run_workload(kind, 1, 7, quota);
    for workers in [2, 4, 8] {
        let (report_w, trace_w) = run_workload(kind, workers, 7, quota);
        assert_eq!(
            report_1, report_w,
            "abort path diverged at workers={workers}"
        );
        assert_eq!(trace_1, trace_w);
    }
}

/// A three-group relation with distinct per-group value dispersion,
/// interleaved so sampled blocks mix the groups.
fn grouped_db(seed: u64) -> Database {
    let mut db = Database::sim_default(seed);
    let schema = Schema::new(vec![
        ("k", ColumnType::Int),
        ("amount", ColumnType::Int),
        ("grp", ColumnType::Int),
    ])
    .padded_to(200);
    let mut tuples = Vec::new();
    let mut k = 0i64;
    for (g, (n, spread)) in [(6_000i64, 5i64), (3_000, 800), (1_000, 90)]
        .into_iter()
        .enumerate()
    {
        for i in 0..n {
            tuples.push(Tuple::new(vec![
                Value::Int(k),
                Value::Int((i * 37) % spread),
                Value::Int(g as i64),
            ]));
            k += 1;
        }
    }
    tuples.sort_by_key(|t| t.value(0).as_int().unwrap() % 997);
    db.load_relation("g", schema, tuples).unwrap();
    db
}

/// Runs one grouped-SUM query (per-group stopping enabled by the
/// engine's defaults) and returns the serialized report plus the
/// JSONL trace.
fn run_grouped_sum(workers: usize, seed: u64, quota: Duration) -> (String, String) {
    let mut db = grouped_db(seed);
    let tracer = Tracer::recording(db.disk().clock().clone());
    let expr = Expr::relation("g").select(Predicate::col_cmp(1, CmpOp::Lt, 700));
    let out = db
        .aggregate(
            AggregateFn::SumBy {
                column: 1,
                group: 2,
            },
            expr,
        )
        .within(quota)
        .workers(workers)
        .seed(seed ^ 0x5EED)
        .tracer(tracer.clone())
        .run()
        .expect("grouped query must execute");
    (
        serde_json::to_string(&out.report).expect("report serializes"),
        tracer.to_jsonl(),
    )
}

#[test]
fn grouped_sum_replays_byte_identically_at_any_worker_count() {
    if stub_serde() {
        eprintln!("skipped: offline serde stub cannot serialize the replay artifacts");
        return;
    }
    // The per-group report (group keys, per-group CIs, freeze stages)
    // must be byte-stable under the worker pool, exactly like the
    // scalar report.
    let quota = Duration::from_secs_f64(2.5);
    let (report_1, trace_1) = run_grouped_sum(1, 31, quota);
    assert!(report_1.contains("\"groups\""), "grouped report present");
    for workers in [2, 4, 8] {
        let (report_w, trace_w) = run_grouped_sum(workers, 31, quota);
        assert_eq!(
            report_1, report_w,
            "grouped report diverged at workers={workers}"
        );
        assert_eq!(trace_1, trace_w, "trace diverged at workers={workers}");
    }
}

#[test]
fn grouped_sum_deadline_abort_replays_identically_under_workers() {
    if stub_serde() {
        eprintln!("skipped: offline serde stub cannot serialize the replay artifacts");
        return;
    }
    // A quota too tight for census forces a mid-run stop with partial
    // per-group answers; the abort path must stay deterministic.
    let quota = Duration::from_millis(400);
    let (report_1, trace_1) = run_grouped_sum(1, 53, quota);
    for workers in [2, 4, 8] {
        let (report_w, trace_w) = run_grouped_sum(workers, 53, quota);
        assert_eq!(
            report_1, report_w,
            "grouped abort diverged at workers={workers}"
        );
        assert_eq!(trace_1, trace_w);
    }
}

#[test]
fn ci_selected_worker_count_matches_the_serial_reference() {
    if stub_serde() {
        eprintln!("skipped: offline serde stub cannot serialize the replay artifacts");
        return;
    }
    let workers: usize = std::env::var("ERAM_WORKERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let kind = WorkloadKind::Intersect { overlap: 5_000 };
    let quota = Duration::from_secs_f64(2.5);
    let (report_1, trace_1) = run_workload(kind, 1, 11, quota);
    let (report_w, trace_w) = run_workload(kind, workers, 11, quota);
    assert_eq!(report_1, report_w, "workers={workers} (from ERAM_WORKERS)");
    assert_eq!(trace_1, trace_w, "workers={workers} (from ERAM_WORKERS)");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any seed, quota, and worker count replays the serial run
    /// byte-for-byte — reports and traces both.
    #[test]
    fn any_run_replays_identically_in_parallel(
        seed in any::<u64>(),
        quota_ms in 200u64..3_000,
        workers in 2usize..=8,
        output_thousands in 0u64..=10,
    ) {
        if stub_serde() {
            eprintln!("skipped: offline serde stub cannot serialize the replay artifacts");
            return Ok(());
        }
        let kind = WorkloadKind::Select { output_tuples: output_thousands * 1_000 };
        let quota = Duration::from_millis(quota_ms);
        let (report_1, trace_1) = run_workload(kind, 1, seed, quota);
        let (report_w, trace_w) = run_workload(kind, workers, seed, quota);
        prop_assert_eq!(report_1, report_w, "workers={}", workers);
        prop_assert_eq!(trace_1, trace_w, "workers={}", workers);
    }
}

fn tagged_block(tag: u8) -> Arc<Block> {
    let mut b = Block::zeroed(32);
    b.bytes_mut()[0] = tag;
    Arc::new(b)
}

#[test]
fn contended_cache_keeps_exact_accounting_and_bounds() {
    let capacity = 64;
    let cache = BlockCache::with_shards(capacity, 8);
    // Pre-populate the lower key range so readers see real hits.
    for i in 0..capacity as u64 {
        cache.put(0, i, tagged_block(i as u8));
    }
    let threads = 8;
    let lookups_per_thread = 2_000u64;
    std::thread::scope(|scope| {
        for t in 0..threads {
            let cache = &cache;
            scope.spawn(move || {
                for j in 0..lookups_per_thread {
                    // Deterministic per-thread walk over twice the
                    // capacity: half the keys were pre-populated, half
                    // miss and get inserted under contention.
                    let key = (t as u64 * 7 + j * 13) % (2 * capacity as u64);
                    match cache.get(0, key) {
                        Some(block) => {
                            // A hit must return the block that was put
                            // under this key — no cross-key tearing.
                            assert_eq!(block.bytes()[0], key as u8, "torn read for key {key}");
                        }
                        None => cache.put(0, key, tagged_block(key as u8)),
                    }
                }
            });
        }
    });
    let total_lookups = threads as u64 * lookups_per_thread;
    assert_eq!(
        cache.hits() + cache.misses(),
        total_lookups,
        "every lookup is exactly one hit or one miss"
    );
    assert!(cache.hits() > 0, "pre-populated keys must hit");
    assert!(cache.misses() > 0, "the upper key range must miss");
    assert!(
        cache.len() <= capacity,
        "eviction must hold the capacity bound under contention: {} > {capacity}",
        cache.len()
    );
    // The cache stays coherent after the storm: whatever is resident
    // reads back with the right payload.
    for key in 0..(2 * capacity as u64) {
        if let Some(block) = cache.get(0, key) {
            assert_eq!(block.bytes()[0], key as u8);
        }
    }
}

#[test]
fn invalidation_under_concurrent_readers_stays_consistent() {
    let capacity = 32;
    let cache = BlockCache::with_shards(capacity, 4);
    std::thread::scope(|scope| {
        // Writer thread: repeatedly fills file 1 and wipes it.
        scope.spawn(|| {
            for round in 0..200u64 {
                for i in 0..8 {
                    cache.put(1, i, tagged_block((round % 251) as u8));
                }
                cache.invalidate_file(1);
            }
        });
        // Reader threads: hammer both a stable file and the churning
        // one; stable entries must never be collaterally invalidated.
        for _ in 0..4 {
            scope.spawn(|| {
                for i in 0..8u64 {
                    cache.put(2, i, tagged_block(100 + i as u8));
                }
                for j in 0..2_000u64 {
                    let _ = cache.get(1, j % 8);
                    if let Some(block) = cache.get(2, j % 8) {
                        assert_eq!(block.bytes()[0], 100 + (j % 8) as u8);
                    }
                }
            });
        }
    });
    cache.invalidate_file(1);
    for i in 0..8u64 {
        assert!(
            cache.get(1, i).is_none(),
            "file 1 must be fully invalidated"
        );
    }
}
