//! End-to-end integration: the full pipeline (PIE rewrite → compiled
//! terms → stage loop → estimate) against exact ground truth, across
//! every operator, both clock modes, and all strategies.

use std::time::Duration;

use eram_bench::{Workload, WorkloadKind};
use eram_core::{
    Database, HeuristicStrategy, OneAtATimeInterval, SingleInterval, StoppingCriterion,
};
use eram_relalg::{CmpOp, Expr, Predicate};
use eram_storage::{ColumnType, Schema, Tuple, Value};

fn small_db(seed: u64) -> Database {
    let mut db = Database::sim_default(seed);
    for (name, stride, modulo) in [("r", 1i64, 50i64), ("s", 3i64, 40i64)] {
        let schema =
            Schema::new(vec![("k", ColumnType::Int), ("g", ColumnType::Int)]).padded_to(200);
        db.load_relation(
            name,
            schema,
            (0..4_000).map(|i| Tuple::new(vec![Value::Int(i * stride), Value::Int(i % modulo)])),
        )
        .unwrap();
    }
    db
}

/// With a quota comfortably above a full census, every operator's
/// estimate must be exact (the loop drains the point space and
/// reports zero variance).
#[test]
fn census_quota_is_exact_for_every_operator() {
    let mut db = small_db(1);
    let huge = Duration::from_secs(1_000_000);
    let queries = vec![
        Expr::relation("r").select(Predicate::col_cmp(1, CmpOp::Lt, 10)),
        Expr::relation("r").project(vec![1]),
        Expr::relation("r").intersect(Expr::relation("s")),
        Expr::relation("r").union(Expr::relation("s")),
        Expr::relation("r").difference(Expr::relation("s")),
    ];
    for expr in queries {
        let truth = db.exact_count(&expr).unwrap() as f64;
        let out = db.count(expr.clone()).within(huge).seed(9).run().unwrap();
        assert!(
            (out.estimate.estimate - truth).abs() < 1e-6,
            "census must be exact for {expr}: {} vs {truth}",
            out.estimate.estimate
        );
    }
}

/// Join census through the full loop (multi-stage, full fulfillment).
#[test]
fn join_census_is_exact() {
    let mut db = small_db(2);
    let expr = Expr::relation("r").join(Expr::relation("s"), vec![(1, 1)]);
    let truth = db.exact_count(&expr).unwrap() as f64;
    let out = db
        .count(expr)
        .within(Duration::from_secs(10_000_000))
        .seed(5)
        .run()
        .unwrap();
    assert!(
        (out.estimate.estimate - truth).abs() < 1e-6,
        "{} vs {truth}",
        out.estimate.estimate
    );
}

/// Paper workloads end to end: reasonable estimates inside the quota.
#[test]
fn paper_workloads_estimate_within_quota() {
    for (kind, quota, tolerance) in [
        (
            WorkloadKind::Select {
                output_tuples: 5_000,
            },
            Duration::from_secs(10),
            0.25,
        ),
        (
            WorkloadKind::Select { output_tuples: 0 },
            Duration::from_secs(10),
            f64::INFINITY, // zero truth: just must terminate sanely
        ),
    ] {
        let mut w = Workload::build(kind, 77);
        let truth = w.truth;
        let out =
            w.db.count(w.expr.clone())
                .within(quota)
                .seed(3)
                .run()
                .unwrap();
        assert!(out.report.utilization() <= 1.0);
        assert!(out.report.completed_stages() >= 1);
        if truth > 0 {
            let rel = (out.estimate.estimate - truth as f64).abs() / truth as f64;
            assert!(rel < tolerance, "rel error {rel} for {kind:?}");
        } else {
            assert!(out.estimate.estimate < 500.0, "zero-truth runaway estimate");
        }
    }
}

/// Every strategy completes the loop and respects the quota's hard
/// view.
#[test]
fn all_strategies_run_the_paper_select() {
    let strategies: Vec<Box<dyn eram_core::TimeControlStrategy>> = vec![
        Box::new(OneAtATimeInterval::new(0.0)),
        Box::new(OneAtATimeInterval::new(48.0)),
        Box::new(SingleInterval::new(2.0)),
        Box::new(HeuristicStrategy::new(0.5, 1.25)),
        Box::new(HeuristicStrategy::probing(0.2, 1.1)),
    ];
    for (i, strategy) in strategies.into_iter().enumerate() {
        let mut w = Workload::build(
            WorkloadKind::Select {
                output_tuples: 5_000,
            },
            100 + i as u64,
        );
        let config = eram_core::QueryConfig {
            strategy,
            ..Default::default()
        };
        let out =
            w.db.count(w.expr.clone())
                .within(Duration::from_secs(10))
                .config(config)
                .seed(i as u64)
                .run()
                .unwrap();
        assert!(out.report.completed_stages() >= 1, "strategy {i} idle");
        assert!(out.report.utilization() > 0.1, "strategy {i} wasted quota");
    }
}

/// The wall-clock mode executes the same pipeline against real time.
#[test]
fn wall_clock_mode_end_to_end() {
    let mut db = Database::wall(4);
    let schema = Schema::new(vec![("v", ColumnType::Int)]);
    db.load_relation(
        "w",
        schema,
        (0..50_000).map(|i| Tuple::new(vec![Value::Int(i % 1000)])),
    )
    .unwrap();
    let expr = Expr::relation("w").select(Predicate::col_cmp(0, CmpOp::Lt, 100));
    let start = std::time::Instant::now();
    let out = db
        .count(expr)
        .within(Duration::from_millis(300))
        .run()
        .unwrap();
    // Real time respected (with scheduling slack).
    assert!(start.elapsed() < Duration::from_secs(3));
    assert!(out.estimate.estimate > 0.0);
}

/// Hard vs soft views of the same seeded run: the hard estimate never
/// uses post-quota work, the soft one may.
#[test]
fn hard_view_is_a_prefix_of_soft_view() {
    let build = || {
        Workload::build(
            WorkloadKind::Select {
                output_tuples: 5_000,
            },
            55,
        )
    };
    let mut soft_w = build();
    let soft = soft_w
        .db
        .count(soft_w.expr.clone())
        .within(Duration::from_secs(6))
        .stopping(StoppingCriterion::SoftDeadline)
        .strategy(OneAtATimeInterval::new(0.0))
        .seed(1234)
        .run()
        .unwrap();
    // The hard-view estimate recorded in the report equals the
    // estimate of the last within-quota stage.
    let last_ok = soft.report.stages.iter().rfind(|s| s.within_quota);
    if let Some(stage) = last_ok {
        assert_eq!(stage.estimate, soft.report.final_estimate);
    } else {
        assert_eq!(soft.report.final_estimate.points_sampled, 0.0);
    }
}

/// Deterministic replay: identical seeds → identical reports.
#[test]
fn seeded_runs_replay_exactly() {
    let run = || {
        let mut w = Workload::build(WorkloadKind::Intersect { overlap: 3_000 }, 31);
        let out =
            w.db.count(w.expr.clone())
                .within(Duration::from_secs_f64(2.5))
                .seed(42)
                .run()
                .unwrap();
        out.report
    };
    assert_eq!(run(), run());
}

/// The file-backed block store runs the whole pipeline too: same
/// estimates as in-memory under the same seed.
#[test]
fn file_backed_store_end_to_end() {
    let dir = std::env::temp_dir().join(format!("eram-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let run = |db: &mut Database| {
        let schema =
            Schema::new(vec![("k", ColumnType::Int), ("g", ColumnType::Int)]).padded_to(200);
        db.load_relation(
            "t",
            schema,
            (0..4_000).map(|i| Tuple::new(vec![Value::Int(i), Value::Int(i % 50)])),
        )
        .unwrap();
        let expr = Expr::relation("t").select(Predicate::col_cmp(1, CmpOp::Lt, 10));
        db.count(expr)
            .within(Duration::from_secs(5))
            .seed(77)
            .run()
            .unwrap()
    };

    let mut mem_db = Database::sim(eram_storage::DeviceProfile::sun_3_60(), 42);
    let mem = run(&mut mem_db);
    let mut file_db =
        Database::sim_file_backed(eram_storage::DeviceProfile::sun_3_60(), 42, &dir).unwrap();
    let file = run(&mut file_db);

    assert_eq!(mem.estimate, file.estimate);
    assert_eq!(
        mem.report.blocks_evaluated(),
        file.report.blocks_evaluated()
    );
    // Real files were created for the relation and temporaries.
    assert!(std::fs::read_dir(&dir).unwrap().count() > 0);
    let _ = std::fs::remove_dir_all(&dir);
}
