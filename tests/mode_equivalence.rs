//! Property tests: evaluation modes agree where they must.
//!
//! * Full fulfillment drained to a census finds *exactly* the true
//!   count, whatever the stage schedule.
//! * Main-memory evaluation produces identical results to
//!   disk-resident evaluation under the same seed (it only changes
//!   cost, never answers).
//! * Partial fulfillment covers a subset of full fulfillment's
//!   points, and a single full-relation stage makes them equal.

use std::sync::Arc;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use eram_core::ops::{Fulfillment, MemoryMode, PhysTree, PlanOptions, StageEnv};
use eram_core::SelectivityDefaults;
use eram_relalg::{eval, Catalog, CmpOp, Expr, Predicate};
use eram_storage::{ColumnType, DeviceProfile, Disk, HeapFile, Schema, SimClock, Tuple, Value};

fn setup(rows_a: &[(i64, i64)], rows_b: &[(i64, i64)]) -> (Arc<Disk>, Catalog) {
    let disk = Disk::new(
        Arc::new(SimClock::new()),
        DeviceProfile::sun_3_60().without_jitter(),
        3,
    );
    let mut cat = Catalog::new();
    for (name, rows) in [("a", rows_a), ("b", rows_b)] {
        let schema =
            Schema::new(vec![("x", ColumnType::Int), ("y", ColumnType::Int)]).padded_to(100);
        let hf = HeapFile::load(
            disk.clone(),
            schema,
            rows.iter()
                .map(|&(x, y)| Tuple::new(vec![Value::Int(x), Value::Int(y)])),
        )
        .unwrap();
        cat.register(name, hf);
    }
    (disk, cat)
}

/// Distinct tuples only: the paper models relations as *sets* ("a
/// relation instance I with |r| tuples is modeled as a set"), and the
/// engine trusts that — duplicates would make the physical count a
/// multiset count while the exact evaluator dedups.
fn arb_rows() -> impl Strategy<Value = Vec<(i64, i64)>> {
    prop::collection::vec(0i64..6, 1..60).prop_map(|ys| {
        ys.into_iter()
            .enumerate()
            .map(|(i, y)| (i as i64, y))
            .collect()
    })
}

fn arb_sji() -> impl Strategy<Value = Expr> {
    prop_oneof![
        (0i64..6).prop_map(|k| Expr::relation("a").select(Predicate::col_cmp(1, CmpOp::Lt, k))),
        Just(Expr::relation("a").intersect(Expr::relation("b"))),
        Just(Expr::relation("a").join(Expr::relation("b"), vec![(0, 0)])),
        (0i64..6).prop_map(|k| {
            Expr::relation("a")
                .select(Predicate::col_cmp(1, CmpOp::Ge, k))
                .intersect(Expr::relation("b"))
        }),
    ]
}

fn drain(
    expr: &Expr,
    disk: &Arc<Disk>,
    cat: &Catalog,
    options: PlanOptions,
    seed: u64,
    fractions: &[f64],
) -> PhysTree {
    let mut tree = PhysTree::build(
        expr,
        cat,
        disk,
        &SelectivityDefaults::default(),
        options,
        &mut StdRng::seed_from_u64(seed),
    )
    .unwrap();
    let mut i = 0;
    while !tree.exhausted() && i < 64 {
        let f = fractions[i % fractions.len()];
        let mut env = StageEnv::new(disk.clone(), None, f);
        tree.advance(&mut env).unwrap();
        i += 1;
    }
    assert!(tree.exhausted(), "drain did not converge");
    tree
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn full_fulfillment_census_is_exact(
        rows_a in arb_rows(),
        rows_b in arb_rows(),
        expr in arb_sji(),
        seed in 0u64..1000,
        f1 in 0.05f64..0.9,
        f2 in 0.05f64..0.9,
    ) {
        let (disk, cat) = setup(&rows_a, &rows_b);
        let truth = eval::exact_count(&expr, &cat).unwrap() as f64;
        let tree = drain(
            &expr,
            &disk,
            &cat,
            Fulfillment::Full.into(),
            seed,
            &[f1, f2],
        );
        prop_assert_eq!(tree.ones_found(), truth, "{}", expr);
        prop_assert_eq!(tree.points_covered(), tree.total_points());
    }

    #[test]
    fn main_memory_matches_disk_resident(
        rows_a in arb_rows(),
        rows_b in arb_rows(),
        expr in arb_sji(),
        seed in 0u64..1000,
        f in 0.1f64..0.8,
    ) {
        let (disk, cat) = setup(&rows_a, &rows_b);
        let on_disk = drain(
            &expr, &disk, &cat,
            PlanOptions { fulfillment: Fulfillment::Full, memory: MemoryMode::DiskResident, ..PlanOptions::default() },
            seed, &[f],
        );
        let in_mem = drain(
            &expr, &disk, &cat,
            PlanOptions { fulfillment: Fulfillment::Full, memory: MemoryMode::MainMemory, ..PlanOptions::default() },
            seed, &[f],
        );
        prop_assert_eq!(on_disk.ones_found(), in_mem.ones_found());
        prop_assert_eq!(on_disk.points_covered(), in_mem.points_covered());
    }

    #[test]
    fn partial_is_a_subset_and_single_stage_is_census(
        rows_a in arb_rows(),
        rows_b in arb_rows(),
        seed in 0u64..1000,
    ) {
        let expr = Expr::relation("a").intersect(Expr::relation("b"));
        let (disk, cat) = setup(&rows_a, &rows_b);
        let truth = eval::exact_count(&expr, &cat).unwrap() as f64;

        // Multi-stage partial covers no more than multi-stage full.
        let full = drain(&expr, &disk, &cat, Fulfillment::Full.into(), seed, &[0.4]);
        let partial = drain(
            &expr, &disk, &cat,
            PlanOptions { fulfillment: Fulfillment::Partial, memory: MemoryMode::DiskResident, ..PlanOptions::default() },
            seed, &[0.4],
        );
        prop_assert!(partial.points_covered() <= full.points_covered());
        prop_assert!(partial.ones_found() <= full.ones_found() + 1e-9);

        // One full-relation stage: partial == census too.
        let partial_one = drain(
            &expr, &disk, &cat,
            PlanOptions { fulfillment: Fulfillment::Partial, memory: MemoryMode::DiskResident, ..PlanOptions::default() },
            seed, &[1.0],
        );
        prop_assert_eq!(partial_one.ones_found(), truth);
    }
}
