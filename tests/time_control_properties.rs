//! Property tests on the time-control loop's invariants.

use std::time::Duration;

use proptest::prelude::*;

use eram_bench::{harness::run_trial, TrialConfig, WorkloadKind};
use eram_core::{Database, OneAtATimeInterval, StoppingCriterion};
use eram_relalg::{CmpOp, Expr, Predicate};
use eram_storage::{ColumnType, Schema, Tuple, Value};

fn tiny_db(seed: u64, rows: i64) -> Database {
    let mut db = Database::sim_default(seed);
    let schema = Schema::new(vec![("k", ColumnType::Int), ("g", ColumnType::Int)]).padded_to(200);
    db.load_relation(
        "t",
        schema,
        (0..rows).map(|i| Tuple::new(vec![Value::Int(i), Value::Int(i % 7)])),
    )
    .unwrap();
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Whatever the quota, seed, and d_β: utilization ∈ [0,1], the
    /// hard-deadline overspend is at most block-granularity, blocks
    /// and stages are consistent, and the estimate is within the
    /// point space.
    #[test]
    fn report_invariants_hold(
        quota_ms in 50u64..8_000,
        seed in 0u64..500,
        d_beta in prop::sample::select(vec![0.0, 12.0, 48.0]),
        rows in 500i64..6_000,
    ) {
        let mut db = tiny_db(seed, rows);
        let expr = Expr::relation("t").select(Predicate::col_cmp(1, CmpOp::Lt, 3));
        let out = db
            .count(expr)
            .within(Duration::from_millis(quota_ms))
            .strategy(OneAtATimeInterval::new(d_beta))
            .stopping(StoppingCriterion::HardDeadline)
            .seed(seed)
            .run()
            .unwrap();
        let r = &out.report;
        prop_assert!(r.utilization() >= 0.0 && r.utilization() <= 1.0);
        prop_assert!(r.wasted() <= r.quota);
        // Hard deadline: abort happens at block granularity, which is
        // ≤ ~120 ms of simulated time on this device.
        prop_assert!(r.overspend() <= Duration::from_millis(250),
            "overspend {:?}", r.overspend());
        prop_assert_eq!(r.completed_stages(),
            r.stages.iter().filter(|s| s.within_quota).count());
        let blocks: u64 = r.stages.iter().filter(|s| s.within_quota)
            .map(|s| s.blocks_drawn).sum();
        prop_assert_eq!(blocks, r.blocks_evaluated());
        prop_assert!(out.estimate.estimate >= 0.0);
        prop_assert!(out.estimate.estimate <= out.estimate.total_points.max(1.0));
        prop_assert!(out.estimate.variance >= 0.0);
        // Stage numbering is 1..=k in order.
        for (i, s) in r.stages.iter().enumerate() {
            prop_assert_eq!(s.stage, i + 1);
        }
    }

    /// The quota is monotone in information: a strictly larger quota
    /// (same seed) never samples fewer points.
    #[test]
    fn more_quota_never_means_fewer_points(
        seed in 0u64..200,
        base_ms in 300u64..2_000,
    ) {
        let run = |ms: u64| {
            let mut db = tiny_db(seed, 4_000);
            let expr = Expr::relation("t").select(Predicate::col_cmp(1, CmpOp::Lt, 3));
            db.count(expr)
                .within(Duration::from_millis(ms))
                .seed(seed)
                .run()
                .unwrap()
                .estimate
                .points_sampled
        };
        // 4× the quota with the same sampling seed: the block
        // permutation is identical, so coverage can only grow.
        prop_assert!(run(4 * base_ms) >= run(base_ms));
    }

    /// Trials never panic across the paper workload grid, and the
    /// harness columns stay in range.
    #[test]
    fn harness_columns_in_range(
        seed in 0u64..100,
        d_beta in prop::sample::select(vec![0.0, 24.0, 72.0]),
        out_tuples in prop::sample::select(vec![0u64, 2_500, 5_000, 10_000]),
    ) {
        let cfg = TrialConfig::paper(
            WorkloadKind::Select { output_tuples: out_tuples },
            Duration::from_secs(4),
            d_beta,
        );
        let t = run_trial(&cfg, seed);
        prop_assert!(t.utilization >= 0.0 && t.utilization <= 1.0);
        prop_assert!(t.stages <= 100);
        prop_assert!(t.ovsp_secs >= 0.0);
        prop_assert!(t.overspent == (t.ovsp_secs > 0.0));
    }
}

/// Aggregate risk ordering: large d_β must not overspend more often
/// than d_β = 0 (checked over a seed ensemble, not per-run).
#[test]
fn risk_decreases_with_d_beta_in_aggregate() {
    let risk = |d_beta: f64| {
        let cfg = TrialConfig::paper(
            WorkloadKind::Select {
                output_tuples: 5_000,
            },
            Duration::from_secs(6),
            d_beta,
        );
        let mut overspent = 0;
        for seed in 0..40u64 {
            if run_trial(&cfg, seed).overspent {
                overspent += 1;
            }
        }
        overspent
    };
    let low = risk(0.0);
    let high = risk(72.0);
    assert!(
        high <= low,
        "risk must not increase with d_beta: {high} vs {low} / 40 runs"
    );
    assert!(low >= 5, "d_beta = 0 should carry real risk, saw {low}/40");
}
