//! The observability layer's contract, locked down end to end:
//!
//! 1. **Determinism** — same data seed + query seed on a `SimClock`
//!    produce a byte-identical JSONL trace, run after run.
//! 2. **Golden trace** — one Figure 5.1 selection query's trace is
//!    pinned under `tests/golden/`; any drift in the span taxonomy,
//!    record schema, or charged timestamps fails with a line diff.
//!    Regenerate with `BLESS=1 cargo test -p eram-bench --test
//!    observability` after an intentional change.
//! 3. **Accounting invariants** — stage spans partition the charged
//!    time, the `execute` span equals `total_elapsed`, and the
//!    metrics snapshot agrees with the fault injector, the report
//!    health, and the device counters.
//! 4. **Well-formedness** (property-based) — for arbitrary
//!    expressions and quotas: spans nest, stage indices and
//!    timestamps are monotone, every executed stage emits exactly one
//!    stopping check, and every run emits exactly one terminal stop.
//!
//! Set `ERAM_TRACE_OUT=<path>` to dump the determinism trace as a CI
//! artifact.

use std::collections::BTreeMap;
use std::path::Path;
use std::time::Duration;

use proptest::prelude::*;

use eram_core::{
    Database, MetricsSnapshot, Profiler, QueryServer, ReportHealth, ServerJob, StoppingCriterion,
    TraceKind, TraceRecord, Tracer, SCHEMA_VERSION,
};
use eram_relalg::{CmpOp, Expr, Predicate};
use eram_storage::{ColumnType, FaultPlan, Schema, Tuple, Value};

/// True under the offline stand-in crates (see `offline/README.md`):
/// the stub serde cannot serialize, so JSONL-producing tests skip.
fn stub_serde() -> bool {
    serde_json::to_string(&0u32).is_err()
}

/// The paper's Figure 5.1 artificial relation: 10 000 tuples of
/// 200 bytes, value column uniform over 0..100 so `#1 < 50` selects
/// 5 000 tuples.
fn fig51_db(seed: u64) -> Database {
    let mut db = Database::sim_default(seed);
    let schema = Schema::new(vec![("k", ColumnType::Int), ("v", ColumnType::Int)]).padded_to(200);
    db.load_relation(
        "r",
        schema,
        (0..10_000).map(|i| Tuple::new(vec![Value::Int(i), Value::Int(i % 100)])),
    )
    .unwrap();
    db
}

fn fig51_expr() -> Expr {
    Expr::relation("r").select(Predicate::col_cmp(1, CmpOp::Lt, 50))
}

/// One deterministic Figure 5.1 selection run with a recording
/// tracer; returns the JSONL trace and the records.
fn fig51_trace() -> (String, Vec<TraceRecord>) {
    let mut db = fig51_db(42);
    let tracer = Tracer::recording(db.disk().clock().clone());
    db.count(fig51_expr())
        .within(Duration::from_secs(10))
        .seed(7)
        .tracer(tracer.clone())
        .run()
        .unwrap();
    (tracer.to_jsonl(), tracer.records())
}

#[test]
fn identical_seeds_yield_byte_identical_jsonl() {
    if stub_serde() {
        eprintln!("skipped: offline serde stub cannot serialize");
        return;
    }
    let (a, _) = fig51_trace();
    let (b, _) = fig51_trace();
    assert!(!a.is_empty());
    assert_eq!(a, b, "same seed + SimClock must replay byte-identically");
    // The first line is the versioned schema header, not a record.
    assert_eq!(
        a.lines().next().unwrap(),
        format!("{{\"schema_version\":{SCHEMA_VERSION}}}")
    );
    if let Some(path) = std::env::var_os("ERAM_TRACE_OUT") {
        std::fs::write(&path, &a).expect("ERAM_TRACE_OUT must be writable");
    }
}

/// The profiler is pure observation: attaching it must not perturb
/// the charged clock, the RNG, the trace, or the report — at any
/// worker count. This is the end-to-end (Database-level) counterpart
/// of the executor's unit test.
#[test]
fn profiling_never_perturbs_trace_or_report() {
    if stub_serde() {
        eprintln!("skipped: offline serde stub cannot serialize");
        return;
    }
    let run = |profile: bool, workers: usize| {
        let mut db = fig51_db(42);
        let tracer = Tracer::recording(db.disk().clock().clone());
        let profiler = if profile {
            Profiler::recording(db.disk().clock().clone())
        } else {
            Profiler::disabled()
        };
        let out = db
            .count(fig51_expr())
            .within(Duration::from_secs(10))
            .seed(7)
            .tracer(tracer.clone())
            .profiler(profiler)
            .workers(workers)
            .run()
            .unwrap();
        (out, tracer.to_jsonl())
    };
    let (base, base_trace) = run(false, 1);
    assert!(base.report.profile.is_none());
    for workers in [1usize, 4] {
        let (prof, prof_trace) = run(true, workers);
        assert_eq!(prof_trace, base_trace, "workers={workers}");
        assert_eq!(
            prof.estimate.estimate.to_bits(),
            base.estimate.estimate.to_bits()
        );
        let snap = prof.report.profile.as_ref().expect("profiler attached");
        assert_eq!(snap.schema_version, SCHEMA_VERSION);
        assert!(snap.total_wall_ns() > 0);
        // Everything except the profile field is byte-identical.
        let strip = |r: &eram_core::ExecutionReport| {
            let mut v = serde_json::to_value(r).unwrap();
            v.as_object_mut().unwrap().remove("profile");
            v
        };
        assert_eq!(
            strip(&prof.report),
            strip(&base.report),
            "workers={workers}"
        );
    }
}

const GOLDEN: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../tests/golden/fig5_1_select.trace.jsonl"
);

#[test]
fn golden_trace_is_stable() {
    if stub_serde() {
        eprintln!("skipped: offline serde stub cannot serialize");
        return;
    }
    let (trace, _) = fig51_trace();
    let path = Path::new(GOLDEN);
    if std::env::var_os("BLESS").is_some() || !path.exists() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(path, &trace).unwrap();
        eprintln!("blessed golden trace at {}", path.display());
        return;
    }
    let golden = std::fs::read_to_string(path).unwrap();
    if trace != golden {
        let diff = trace
            .lines()
            .zip(golden.lines())
            .enumerate()
            .find(|(_, (new, old))| new != old);
        match diff {
            Some((i, (new, old))) => panic!(
                "trace drifted from golden at line {} —\n  golden: {old}\n  new:    {new}\n\
                 (re-bless with BLESS=1 if the change is intentional)",
                i + 1
            ),
            None => panic!(
                "trace drifted from golden: {} vs {} lines \
                 (re-bless with BLESS=1 if the change is intentional)",
                trace.lines().count(),
                golden.lines().count()
            ),
        }
    }
}

const GOLDEN_GROUPED: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../tests/golden/groupby_sum.trace.jsonl"
);

/// One deterministic grouped-SUM run with a recording tracer: two
/// interleaved groups with distinct value dispersion, so the trace
/// pins the per-group stopping taxonomy too.
fn grouped_trace() -> String {
    let mut db = Database::sim_default(42);
    let schema = Schema::new(vec![
        ("k", ColumnType::Int),
        ("amount", ColumnType::Int),
        ("grp", ColumnType::Int),
    ])
    .padded_to(200);
    let mut tuples = Vec::new();
    for i in 0..10_000i64 {
        tuples.push(Tuple::new(vec![
            Value::Int(i),
            Value::Int((i * 37) % if i % 3 == 0 { 5 } else { 800 }),
            Value::Int(i % 3),
        ]));
    }
    tuples.sort_by_key(|t| t.value(0).as_int().unwrap() % 997);
    db.load_relation("g", schema, tuples).unwrap();
    let tracer = Tracer::recording(db.disk().clock().clone());
    db.aggregate(
        eram_core::AggregateFn::SumBy {
            column: 1,
            group: 2,
        },
        Expr::relation("g").select(Predicate::col_cmp(1, CmpOp::Lt, 700)),
    )
    .within(Duration::from_secs(3))
    .seed(7)
    .tracer(tracer.clone())
    .run()
    .unwrap();
    tracer.to_jsonl()
}

#[test]
fn golden_grouped_trace_is_stable() {
    if stub_serde() {
        // Also keeps the stub toolchain from blessing a bogus golden.
        eprintln!("skipped: offline serde stub cannot serialize");
        return;
    }
    let trace = grouped_trace();
    let path = Path::new(GOLDEN_GROUPED);
    if std::env::var_os("BLESS").is_some() || !path.exists() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(path, &trace).unwrap();
        eprintln!("blessed grouped golden trace at {}", path.display());
        return;
    }
    let golden = std::fs::read_to_string(path).unwrap();
    if trace != golden {
        let diff = trace
            .lines()
            .zip(golden.lines())
            .enumerate()
            .find(|(_, (new, old))| new != old);
        match diff {
            Some((i, (new, old))) => panic!(
                "grouped trace drifted from golden at line {} —\n  golden: {old}\n  new:    {new}\n\
                 (re-bless with BLESS=1 if the change is intentional)",
                i + 1
            ),
            None => panic!(
                "grouped trace drifted from golden: {} vs {} lines \
                 (re-bless with BLESS=1 if the change is intentional)",
                trace.lines().count(),
                golden.lines().count()
            ),
        }
    }
}

#[test]
fn stage_spans_partition_the_charged_time() {
    let mut db = fig51_db(42);
    let tracer = Tracer::recording(db.disk().clock().clone());
    let out = db
        .count(fig51_expr())
        .within(Duration::from_secs(10))
        .seed(7)
        .tracer(tracer.clone())
        .run()
        .unwrap();
    let records = tracer.records();
    let total_ns = out.report.total_elapsed.as_nanos() as u64;
    let stage_dur: u64 = records
        .iter()
        .filter(|r| r.kind == TraceKind::End && r.name == "stage")
        .map(|r| r.dur_ns.unwrap())
        .sum();
    assert_eq!(
        stage_dur, total_ns,
        "stage span durations must sum to ExecutionReport::total_elapsed"
    );
    let execute_dur = records
        .iter()
        .find(|r| r.kind == TraceKind::End && r.name == "execute")
        .and_then(|r| r.dur_ns)
        .unwrap();
    assert_eq!(execute_dur, total_ns, "root span must cover the whole run");
    // Per-stage span durations match the per-stage reports.
    let stage_ends: Vec<u64> = records
        .iter()
        .filter(|r| r.kind == TraceKind::End && r.name == "stage")
        .map(|r| r.dur_ns.unwrap())
        .collect();
    let reported: Vec<u64> = out
        .report
        .stages
        .iter()
        .map(|s| s.actual_cost.as_nanos() as u64)
        .collect();
    assert_eq!(stage_ends, reported);
}

#[test]
fn metrics_agree_with_injector_health_and_device_counters() {
    let mut db = fig51_db(1);
    db.inject_faults(
        FaultPlan::new(0x0B5E)
            .with_transient(0.08)
            .with_corruption(0.02),
    );
    let faults_before = db.fault_stats().expect("plan armed");
    let disk_before = db.disk().stats();
    let out = db
        .count(fig51_expr())
        .within(Duration::from_secs(10))
        .seed(3)
        .metrics(true)
        .run()
        .unwrap();
    let disk_after = db.disk().stats();
    let faults_after = db.fault_stats().expect("plan still armed");
    let m = out.report.metrics.as_ref().expect("metrics requested");

    // Loop-level counters mirror the report's health block.
    let h = out.report.health;
    assert_eq!(m.counter("core.faults_seen"), h.faults_seen);
    assert_eq!(m.counter("core.retries"), h.retries);
    assert_eq!(m.counter("core.blocks_lost"), h.blocks_lost);

    // Storage counters are exact deltas of the device's lifetime
    // totals across the run.
    assert_eq!(
        m.counter("storage.block_reads"),
        disk_after.block_reads - disk_before.block_reads
    );
    assert_eq!(
        m.counter("storage.checksum_verifies"),
        disk_after.checksum_verifies - disk_before.checksum_verifies
    );

    // The fault metrics are exactly what the injector reports.
    let transient = faults_after.transient_errors - faults_before.transient_errors;
    let corrupt = faults_after.corrupt_reads - faults_before.corrupt_reads;
    assert_eq!(m.counter("storage.faults_transient"), transient);
    assert_eq!(m.counter("storage.faults_corrupt"), corrupt);
    assert!(transient + corrupt > 0, "8%+2% rates must fault");
    // Every injected error surfaced to the loop as an observed fault.
    assert_eq!(h.faults_seen, transient + corrupt);

    // Per-stage histograms have one observation per stage.
    assert_eq!(
        m.histogram("stage.actual_secs").map(|hist| hist.count),
        Some(out.report.stages.len() as u64)
    );
    assert_eq!(m.counter("core.stages"), out.report.stages.len() as u64);
}

#[test]
fn retry_and_block_loss_events_ride_the_trace() {
    let mut db = fig51_db(2);
    db.inject_faults(FaultPlan::new(0xBAD5EED).with_transient(0.20));
    let tracer = Tracer::recording(db.disk().clock().clone());
    let out = db
        .count(fig51_expr())
        .within(Duration::from_secs(10))
        .seed(5)
        .tracer(tracer.clone())
        .run()
        .unwrap();
    let records = tracer.records();
    let retries = records.iter().filter(|r| r.name == "retry").count() as u64;
    assert_eq!(
        retries, out.report.health.retries,
        "one retry event per charged retry"
    );
    let lost = records.iter().filter(|r| r.name == "block_lost").count() as u64;
    assert_eq!(lost, out.report.health.blocks_lost);
}

#[test]
fn report_health_serde_round_trips_with_partial_defaults() {
    if stub_serde() {
        eprintln!("skipped: offline serde stub cannot serialize");
        return;
    }
    let h = ReportHealth {
        faults_seen: 4,
        retries: 2,
        blocks_lost: 1,
        degraded: true,
        refusal: None,
    };
    let json = serde_json::to_string(&h).unwrap();
    let back: ReportHealth = serde_json::from_str(&json).unwrap();
    assert_eq!(back, h);
    // Fields default individually: an older writer's partial object
    // deserializes instead of erroring.
    let partial: ReportHealth = serde_json::from_str(r#"{"retries": 7}"#).unwrap();
    assert_eq!(
        partial,
        ReportHealth {
            retries: 7,
            ..ReportHealth::default()
        }
    );
    let empty: ReportHealth = serde_json::from_str("{}").unwrap();
    assert_eq!(empty, ReportHealth::default());
}

#[test]
fn metrics_snapshot_counters_survive_the_report_round_trip() {
    if stub_serde() {
        eprintln!("skipped: offline serde stub cannot serialize");
        return;
    }
    let mut db = fig51_db(3);
    let out = db
        .count(fig51_expr())
        .within(Duration::from_secs(5))
        .seed(9)
        .metrics(true)
        .run()
        .unwrap();
    let json = serde_json::to_string(&out.report).unwrap();
    assert!(json.contains("metrics"));
    let back: eram_core::ExecutionReport = serde_json::from_str(&json).unwrap();
    assert_eq!(back.metrics, out.report.metrics);
    // Both the report and its embedded snapshot carry the schema tag.
    assert_eq!(out.report.schema_version, SCHEMA_VERSION);
    assert_eq!(back.schema_version, SCHEMA_VERSION);
    let m: &MetricsSnapshot = back.metrics.as_ref().unwrap();
    assert_eq!(m.schema_version, SCHEMA_VERSION);
    assert!(!m.is_empty());
    assert!(m.counter("storage.block_reads") > 0);
}

/// Structural checks on one trace: spans nest properly, timestamps
/// and stage indices are monotone, each executed stage has exactly
/// one stopping check and one convergence record, and exactly one
/// terminal stop event exists.
fn assert_well_formed(records: &[TraceRecord]) {
    let mut span_stack: Vec<&str> = Vec::new();
    let mut last_t = 0u64;
    let mut last_stage = 0usize;
    for rec in records {
        assert!(rec.t_ns >= last_t, "timestamps must be monotone");
        last_t = rec.t_ns;
        assert!(rec.stage >= last_stage, "stage indices must be monotone");
        last_stage = rec.stage;
        match rec.kind {
            TraceKind::Begin => span_stack.push(rec.name.as_str()),
            TraceKind::End => {
                let open = span_stack.pop().expect("End without matching Begin");
                assert_eq!(open, rec.name, "spans must nest (LIFO)");
                assert!(rec.dur_ns.is_some(), "End records carry a duration");
            }
            TraceKind::Event | TraceKind::Stage => {}
        }
    }
    assert!(span_stack.is_empty(), "unclosed spans: {span_stack:?}");

    let count = |kind: TraceKind, name: &str| {
        records
            .iter()
            .filter(|r| r.kind == kind && r.name == name)
            .count()
    };
    let stages = count(TraceKind::End, "stage");
    assert_eq!(
        count(TraceKind::Event, "stopping_check"),
        stages,
        "exactly one stopping check per executed stage"
    );
    assert_eq!(
        count(TraceKind::Stage, "convergence"),
        stages,
        "exactly one convergence record per executed stage"
    );
    assert_eq!(
        count(TraceKind::Event, "stop"),
        1,
        "exactly one terminal stop event per run"
    );
    assert_eq!(count(TraceKind::End, "execute"), 1);
}

fn small_db(seed: u64) -> Database {
    let mut db = Database::sim_default(seed);
    let schema = Schema::new(vec![("k", ColumnType::Int), ("v", ColumnType::Int)]).padded_to(200);
    db.load_relation(
        "t",
        schema,
        (0..500).map(|i| Tuple::new(vec![Value::Int(i), Value::Int(i % 100)])),
    )
    .unwrap();
    db
}

fn arbitrary_expr() -> impl Strategy<Value = Expr> {
    prop_oneof![
        (0i64..100).prop_map(|k| Expr::relation("t").select(Predicate::col_cmp(1, CmpOp::Lt, k))),
        Just(Expr::relation("t").project(vec![1])),
        Just(Expr::relation("t").union(Expr::relation("t"))),
        Just(Expr::relation("t").intersect(Expr::relation("t"))),
        // Rewrites to the empty expression: the trace must still be
        // well formed (a lone execute span plus a stop event).
        Just(Expr::relation("t").difference(Expr::relation("t"))),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Arbitrary expressions, quotas, and seeds always produce a
    /// well-formed trace with partitioning stage spans.
    #[test]
    fn any_run_produces_a_well_formed_trace(
        expr in arbitrary_expr(),
        quota_ms in 100u64..5_000,
        seed in any::<u64>(),
        soft in any::<bool>(),
    ) {
        let mut db = small_db(seed ^ 0x0B5);
        let tracer = Tracer::recording(db.disk().clock().clone());
        let out = db
            .count(expr)
            .within(Duration::from_millis(quota_ms))
            .stopping(if soft {
                StoppingCriterion::SoftDeadline
            } else {
                StoppingCriterion::HardDeadline
            })
            .seed(seed)
            .tracer(tracer.clone())
            .run()
            .unwrap();
        let records = tracer.records();
        assert_well_formed(&records);
        let stage_dur: u64 = records
            .iter()
            .filter(|r| r.kind == TraceKind::End && r.name == "stage")
            .map(|r| r.dur_ns.unwrap())
            .sum();
        prop_assert_eq!(stage_dur, out.report.total_elapsed.as_nanos() as u64);
        if stub_serde() {
            eprintln!("skipping JSONL round trip: offline serde stub cannot serialize");
            return Ok(());
        }
        // The trace round-trips through JSONL without loss (first
        // line is the schema header, not a record).
        let jsonl = tracer.to_jsonl();
        let mut lines = jsonl.lines();
        let header: serde_json::Value =
            serde_json::from_str(lines.next().unwrap()).unwrap();
        prop_assert_eq!(
            header.get("schema_version").and_then(|v| v.as_u64()),
            Some(u64::from(SCHEMA_VERSION))
        );
        let back: Vec<TraceRecord> = lines
            .map(|l| serde_json::from_str(l).unwrap())
            .collect();
        prop_assert_eq!(back, records);
    }
}

/// Every record name the tracer and server emit, including the
/// decision audit (`server.decision`).
const RECORD_NAMES: [&str; 16] = [
    "execute",
    "stage",
    "block_draw",
    "revise_selectivities",
    "plan_stage",
    "group_convergence",
    "convergence",
    "stopping_check",
    "stop",
    "retry",
    "block_lost",
    "server.admit",
    "server.refuse",
    "server.shed",
    "server.refit",
    "server.decision",
];

/// An arbitrary field value of the shapes the taxonomy uses: bools,
/// counters, finite floats, labels, and homogeneous arrays.
fn arbitrary_field_value() -> impl Strategy<Value = serde_json::Value> {
    prop_oneof![
        any::<bool>().prop_map(serde_json::Value::from),
        any::<u64>().prop_map(serde_json::Value::from),
        any::<i64>().prop_map(serde_json::Value::from),
        any::<f64>()
            .prop_filter("finite", |f| f.is_finite())
            .prop_map(serde_json::Value::from),
        "[a-z_:.]{1,16}".prop_map(serde_json::Value::from),
        proptest::collection::vec(any::<u64>(), 0..4).prop_map(serde_json::Value::from),
    ]
}

fn arbitrary_record() -> impl Strategy<Value = TraceRecord> {
    let kind = prop_oneof![
        Just(TraceKind::Begin),
        Just(TraceKind::End),
        Just(TraceKind::Event),
        Just(TraceKind::Stage),
    ];
    let name = proptest::sample::select(RECORD_NAMES.to_vec());
    let fields = proptest::collection::vec(("[a-z_]{1,12}", arbitrary_field_value()), 0..5);
    (kind, name, 0usize..32, any::<u64>(), any::<u64>(), fields).prop_map(
        |(kind, name, stage, t_ns, dur, fields)| TraceRecord {
            t_ns,
            kind,
            name: name.to_string(),
            stage,
            // The schema carries durations on End records only.
            dur_ns: (kind == TraceKind::End).then_some(dur),
            fields: fields.into_iter().collect(),
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every record type the tracer and server can emit — including
    /// `server.decision` — parses back from its JSONL line and
    /// re-serializes byte-identically.
    #[test]
    fn any_record_type_reserializes_byte_identically(record in arbitrary_record()) {
        if stub_serde() {
            eprintln!("skipped: offline serde stub cannot serialize");
            return Ok(());
        }
        let line = serde_json::to_string(&record).unwrap();
        let back: TraceRecord = serde_json::from_str(&line).unwrap();
        prop_assert_eq!(&back, &record);
        prop_assert_eq!(serde_json::to_string(&back).unwrap(), line);
    }
}

/// The same property over a real serving trace: every line a
/// ledger-enabled faulted serve emits — decision audit included —
/// round-trips byte-identically through [`TraceRecord`].
#[test]
fn server_trace_lines_round_trip_byte_identically() {
    if stub_serde() {
        eprintln!("skipped: offline serde stub cannot serialize");
        return;
    }
    let mut db = small_db(11);
    db.inject_faults(FaultPlan::new(5).with_transient(0.05));
    let tracer = Tracer::recording(db.disk().clock().clone());
    let expr = Expr::relation("t").select(Predicate::col_cmp(1, CmpOp::Lt, 50));
    let jobs = vec![
        ServerJob::count("alpha", expr.clone(), Duration::from_secs(6)),
        ServerJob::count("tiny", expr, Duration::from_millis(1)),
    ];
    QueryServer::new()
        .ledger(true)
        .tracer(tracer.clone())
        .run(&mut db, jobs);
    let jsonl = tracer.to_jsonl();
    let mut decisions = 0usize;
    for line in jsonl.lines().skip(1) {
        let back: TraceRecord = serde_json::from_str(line).expect("every line parses");
        assert_eq!(
            serde_json::to_string(&back).unwrap(),
            line,
            "re-serialization is byte-identical"
        );
        if back.name == "server.decision" {
            decisions += 1;
            let action = back.fields.get("action").and_then(|v| v.as_str());
            assert!(action.is_some(), "decisions carry their action");
        }
    }
    assert!(
        decisions >= 3,
        "admit + refuse + grant/done decisions in the audit: {decisions}"
    );
}

#[test]
fn trace_stop_reasons_are_from_the_documented_set() {
    let known: [&str; 9] = [
        "max_stages",
        "census_complete",
        "quota_exhausted",
        "leftover_too_small",
        "value_tail_unprofitable",
        "aborted",
        "quota_expired",
        "precision_satisfied",
        "empty_rewrite",
    ];
    let mut seen: BTreeMap<String, usize> = BTreeMap::new();
    let cases: [(Expr, Duration); 3] = [
        // Hard deadline on a big relation: expires mid-flight.
        (fig51_expr(), Duration::from_secs(10)),
        // Census: quota vastly exceeds a full scan of the relation.
        (
            Expr::relation("r").select(Predicate::col_cmp(1, CmpOp::Lt, 50)),
            Duration::from_secs(100_000),
        ),
        // Empty rewrite.
        (
            Expr::relation("r").difference(Expr::relation("r")),
            Duration::from_secs(5),
        ),
    ];
    for (i, (expr, quota)) in cases.into_iter().enumerate() {
        let mut db = fig51_db(20 + i as u64);
        let tracer = Tracer::recording(db.disk().clock().clone());
        db.count(expr)
            .within(quota)
            .seed(i as u64)
            .tracer(tracer.clone())
            .run()
            .unwrap();
        let records = tracer.records();
        let stop = records
            .iter()
            .find(|r| r.name == "stop")
            .expect("every run emits a stop event");
        let reason = stop
            .fields
            .get("reason")
            .and_then(|v| v.as_str())
            .expect("stop carries a reason")
            .to_string();
        assert!(known.contains(&reason.as_str()), "unknown reason {reason}");
        *seen.entry(reason).or_insert(0) += 1;
    }
    assert!(
        seen.contains_key("census_complete"),
        "huge quota must reach census: {seen:?}"
    );
    assert!(
        seen.contains_key("empty_rewrite"),
        "self-difference must short-circuit: {seen:?}"
    );
}
