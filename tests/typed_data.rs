//! End-to-end coverage for non-integer column types: floats, strings
//! and booleans flow through loading, the textual query language, the
//! exact evaluator, and the sampling engine identically.

use std::time::Duration;

use eram_core::Database;
use eram_relalg::{parse_expr, CmpOp, Expr, Predicate};
use eram_storage::{ColumnType, Schema, Tuple, Value};

fn db(seed: u64) -> Database {
    let mut db = Database::sim_default(seed);
    let schema = Schema::new(vec![
        ("id", ColumnType::Int),
        ("score", ColumnType::Float),
        ("tier", ColumnType::Str { width: 8 }),
        ("active", ColumnType::Bool),
    ])
    .padded_to(200);
    db.load_relation(
        "users",
        schema,
        (0..5_000).map(|i| {
            Tuple::new(vec![
                Value::Int(i),
                Value::Float(f64::from(i as i32 % 100) / 10.0),
                Value::Str(["gold", "silver", "bronze"][(i % 3) as usize].into()),
                Value::Bool(i % 4 == 0),
            ])
        }),
    )
    .unwrap();
    db
}

#[test]
fn float_predicate_census_is_exact() {
    let mut db = db(1);
    let expr = Expr::relation("users").select(Predicate::col_cmp(1, CmpOp::Lt, 2.5));
    let truth = db.exact_count(&expr).unwrap() as f64;
    assert!(truth > 0.0);
    let out = db
        .count(expr)
        .within(Duration::from_secs(1_000_000))
        .run()
        .unwrap();
    assert_eq!(out.estimate.estimate, truth);
}

#[test]
fn string_predicate_through_the_query_language() {
    let mut db = db(2);
    let expr = parse_expr(r#"select[#2 = "gold" and #3 = true](users)"#).unwrap();
    let truth = db.exact_count(&expr).unwrap();
    // gold ⇔ id % 3 == 0; active ⇔ id % 4 == 0 ⇒ id % 12 == 0.
    assert_eq!(truth, 5_000 / 12 + 1);
    let out = db
        .count(expr)
        .within(Duration::from_secs(10))
        .seed(7)
        .run()
        .unwrap();
    let rel = (out.estimate.estimate - truth as f64).abs() / truth as f64;
    assert!(
        rel < 0.5,
        "estimate {} vs truth {truth}",
        out.estimate.estimate
    );
}

#[test]
fn float_sum_and_avg() {
    let mut db = db(3);
    let expr = Expr::relation("users").select(Predicate::col_cmp(3, CmpOp::Eq, true));
    let out = db
        .avg(expr.clone(), 1)
        .within(Duration::from_secs(1_000_000))
        .run()
        .unwrap();
    // Exact average of score over the active subset.
    let rows = eram_relalg::eval::eval(&expr, db.catalog()).unwrap();
    let exact: f64 = rows
        .iter()
        .map(|t| t.value(1).as_float().unwrap())
        .sum::<f64>()
        / rows.len() as f64;
    assert!((out.estimate.estimate - exact).abs() < 1e-9);
}

#[test]
fn string_projection_counts_tiers() {
    let mut db = db(4);
    let expr = Expr::relation("users").project(vec![2]);
    assert_eq!(db.exact_count(&expr).unwrap(), 3);
    let out = db
        .count(expr)
        .within(Duration::from_secs(1_000_000))
        .run()
        .unwrap();
    assert_eq!(out.estimate.estimate, 3.0);
}

#[test]
fn mixed_type_intersection() {
    // Two relations with identical typed rows in a sub-range.
    let mut db = Database::sim_default(5);
    let schema = Schema::new(vec![
        ("k", ColumnType::Int),
        ("label", ColumnType::Str { width: 6 }),
    ])
    .padded_to(100);
    let make = |lo: i64, hi: i64| {
        (lo..hi).map(|i| Tuple::new(vec![Value::Int(i), Value::Str(format!("v{}", i % 50))]))
    };
    db.load_relation("a", schema.clone(), make(0, 1_000))
        .unwrap();
    db.load_relation("b", schema, make(600, 1_600)).unwrap();
    let expr = Expr::relation("a").intersect(Expr::relation("b"));
    assert_eq!(db.exact_count(&expr).unwrap(), 400);
    let out = db
        .count(expr)
        .within(Duration::from_secs(1_000_000))
        .run()
        .unwrap();
    assert_eq!(out.estimate.estimate, 400.0);
}
