//! Row-vs-columnar layout equivalence, locked down end to end.
//!
//! [`BlockLayout::Columnar`] changes how sampled blocks are decoded
//! and how the pure-CPU operator kernels traverse a stage's data —
//! per-column predicate bitmaps, gather-only materialization, merge
//! keys read straight off key columns. It must change *nothing* else:
//! a seeded `SimClock` run must produce a **byte-identical**
//! [`eram_core::ExecutionReport`] (as JSON) and a byte-identical
//! JSONL trace under either layout, at any worker count, under
//! deadline aborts, and under injected storage faults — the same
//! contract the worker pool and the run cache are held to.

use std::time::Duration;

use eram_bench::{Workload, WorkloadKind};
use eram_core::{AggregateFn, BlockLayout, Database, ExecutionReport, Tracer};
use eram_relalg::{CmpOp, Expr, Predicate};
use eram_storage::{ColumnType, FaultPlan, Schema, Tuple, Value};

/// True under the offline stand-in crates (see `offline/README.md`):
/// the stub serde cannot serialize the replay artifacts.
fn stub_serde() -> bool {
    serde_json::to_string(&0u32).is_err()
}

/// Renders a run's artifacts for comparison: the serialized report
/// plus the JSONL trace with real serde, or an equally-discriminating
/// `Debug` rendering of the same structures under the offline stubs
/// (every field participates either way, so the tests stay meaningful
/// offline instead of skipping).
fn render(report: &ExecutionReport, tracer: &Tracer) -> (String, String) {
    if stub_serde() {
        (format!("{report:?}"), format!("{:?}", tracer.records()))
    } else {
        (
            serde_json::to_string(report).expect("report serializes"),
            tracer.to_jsonl(),
        )
    }
}

/// Runs one seeded workload query under the given layout and returns
/// the rendered report plus trace.
fn run_workload(
    kind: WorkloadKind,
    layout: BlockLayout,
    workers: usize,
    seed: u64,
    quota: Duration,
    faults: Option<FaultPlan>,
) -> (String, String) {
    let mut w = Workload::build_on(kind, seed, 0);
    if let Some(plan) = faults {
        w.db.disk().set_fault_plan(plan);
    }
    let tracer = Tracer::recording(w.db.disk().clock().clone());
    let out =
        w.db.count(w.expr.clone())
            .within(quota)
            .workers(workers)
            .block_layout(layout)
            .seed(seed ^ 0x5EED)
            .tracer(tracer.clone())
            .run()
            .expect("workload query must execute");
    render(&out.report, &tracer)
}

#[test]
fn join_reports_are_byte_identical_across_layouts() {
    // The join path exercises every columnar kernel at once: leaf
    // decode, ingest key extraction, prekeyed sorts, and run merges.
    let kind = WorkloadKind::Join {
        output_tuples: 70_000,
    };
    let quota = Duration::from_secs_f64(2.5);
    for workers in [1, 4] {
        let (report_row, trace_row) =
            run_workload(kind, BlockLayout::Row, workers, 42, quota, None);
        let (report_col, trace_col) =
            run_workload(kind, BlockLayout::Columnar, workers, 42, quota, None);
        assert!(!trace_row.is_empty());
        assert_eq!(
            report_row, report_col,
            "ExecutionReport diverged across layouts at workers={workers}"
        );
        assert_eq!(
            trace_row, trace_col,
            "trace diverged across layouts at workers={workers}"
        );
    }
}

#[test]
fn intersect_reports_are_byte_identical_across_layouts() {
    // Intersection keys on the whole tuple (`KeySpec::Whole`), the
    // one ingest shape with no precomputed key column — the columnar
    // path must fall back to the ordinary sort and still agree.
    let kind = WorkloadKind::Intersect { overlap: 5_000 };
    let quota = Duration::from_secs_f64(2.5);
    for workers in [1, 4] {
        let (report_row, trace_row) =
            run_workload(kind, BlockLayout::Row, workers, 11, quota, None);
        let (report_col, trace_col) =
            run_workload(kind, BlockLayout::Columnar, workers, 11, quota, None);
        assert_eq!(
            report_row, report_col,
            "intersect diverged across layouts at workers={workers}"
        );
        assert_eq!(trace_row, trace_col);
    }
}

#[test]
fn hard_deadline_abort_is_identical_across_layouts() {
    // A quota this tight fires the deadline mid-stage: the abort path
    // banks decoded rows as pending tuples, which the next columnar
    // stage must deliver as the delta's row prefix ahead of its
    // columnar blocks — in exactly the row path's order.
    let kind = WorkloadKind::Select {
        output_tuples: 10_000,
    };
    let quota = Duration::from_millis(600);
    for workers in [1, 4] {
        let (report_row, trace_row) = run_workload(kind, BlockLayout::Row, workers, 7, quota, None);
        let (report_col, trace_col) =
            run_workload(kind, BlockLayout::Columnar, workers, 7, quota, None);
        assert_eq!(
            report_row, report_col,
            "abort path diverged across layouts at workers={workers}"
        );
        assert_eq!(trace_row, trace_col);
    }
}

#[test]
fn faulted_runs_are_identical_across_layouts() {
    // Lost and corrupt blocks shrink the sample; both layouts must
    // drop exactly the same clusters and charge exactly the same
    // retries.
    let kind = WorkloadKind::Join {
        output_tuples: 70_000,
    };
    let quota = Duration::from_secs_f64(2.5);
    let plan = || FaultPlan::new(9).with_corruption(0.05).with_transient(0.05);
    for workers in [1, 4] {
        let (report_row, trace_row) =
            run_workload(kind, BlockLayout::Row, workers, 23, quota, Some(plan()));
        let (report_col, trace_col) = run_workload(
            kind,
            BlockLayout::Columnar,
            workers,
            23,
            quota,
            Some(plan()),
        );
        assert_eq!(
            report_row, report_col,
            "faulted run diverged across layouts at workers={workers}"
        );
        assert_eq!(trace_row, trace_col);
    }
}

/// A three-group relation with distinct per-group value dispersion,
/// interleaved so sampled blocks mix the groups.
fn grouped_db(seed: u64) -> Database {
    let mut db = Database::sim_default(seed);
    let schema = Schema::new(vec![
        ("k", ColumnType::Int),
        ("amount", ColumnType::Int),
        ("grp", ColumnType::Int),
    ])
    .padded_to(200);
    let mut tuples = Vec::new();
    let mut k = 0i64;
    for (g, (n, spread)) in [(6_000i64, 5i64), (3_000, 800), (1_000, 90)]
        .into_iter()
        .enumerate()
    {
        for i in 0..n {
            tuples.push(Tuple::new(vec![
                Value::Int(k),
                Value::Int((i * 37) % spread),
                Value::Int(g as i64),
            ]));
            k += 1;
        }
    }
    tuples.sort_by_key(|t| t.value(0).as_int().unwrap() % 997);
    db.load_relation("g", schema, tuples).unwrap();
    db
}

/// Runs one grouped-SUM query under the given layout and returns the
/// serialized report plus the JSONL trace.
fn run_grouped_sum(layout: BlockLayout, workers: usize, seed: u64) -> (String, String) {
    let mut db = grouped_db(seed);
    let tracer = Tracer::recording(db.disk().clock().clone());
    let expr = Expr::relation("g").select(Predicate::col_cmp(1, CmpOp::Lt, 700));
    let out = db
        .aggregate(
            AggregateFn::SumBy {
                column: 1,
                group: 2,
            },
            expr,
        )
        .within(Duration::from_secs_f64(2.5))
        .workers(workers)
        .block_layout(layout)
        .seed(seed ^ 0x5EED)
        .tracer(tracer.clone())
        .run()
        .expect("grouped query must execute");
    render(&out.report, &tracer)
}

#[test]
fn grouped_sum_reports_are_byte_identical_across_layouts() {
    for workers in [1, 4] {
        let (report_row, trace_row) = run_grouped_sum(BlockLayout::Row, workers, 37);
        let (report_col, trace_col) = run_grouped_sum(BlockLayout::Columnar, workers, 37);
        assert!(report_row.contains("groups"), "grouped report present");
        assert_eq!(
            report_row, report_col,
            "grouped report diverged across layouts at workers={workers}"
        );
        assert_eq!(trace_row, trace_col);
    }
}

/// A SUM over a bare relation (no operator above the leaf): the root
/// delta reaches the executor's value accumulator still in columnar
/// form, exercising the boundary materialization.
#[test]
fn bare_leaf_sum_is_identical_across_layouts() {
    let run = |layout: BlockLayout, workers: usize| {
        let mut db = grouped_db(97);
        let tracer = Tracer::recording(db.disk().clock().clone());
        let out = db
            .aggregate(AggregateFn::Sum { column: 1 }, Expr::relation("g"))
            .within(Duration::from_secs_f64(1.5))
            .workers(workers)
            .block_layout(layout)
            .seed(0xBEEF)
            .tracer(tracer.clone())
            .run()
            .expect("bare-leaf query must execute");
        render(&out.report, &tracer)
    };
    for workers in [1, 4] {
        let (report_row, trace_row) = run(BlockLayout::Row, workers);
        let (report_col, trace_col) = run(BlockLayout::Columnar, workers);
        assert_eq!(
            report_row, report_col,
            "bare-leaf sum diverged across layouts at workers={workers}"
        );
        assert_eq!(trace_row, trace_col);
    }
}
