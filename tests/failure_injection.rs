//! Failure injection and degenerate inputs: the engine must degrade
//! gracefully, never panic, and keep its reports consistent.

use std::time::Duration;

use eram_core::{Database, EngineError, OneAtATimeInterval, QueryConfig, StoppingCriterion};
use eram_relalg::{CmpOp, Expr, ExprError, Predicate};
use eram_storage::{ColumnType, Schema, Tuple, Value};

fn db_with(rows: i64, seed: u64) -> Database {
    let mut db = Database::sim_default(seed);
    let schema =
        Schema::new(vec![("k", ColumnType::Int), ("g", ColumnType::Int)]).padded_to(200);
    db.load_relation(
        "t",
        schema,
        (0..rows).map(|i| Tuple::new(vec![Value::Int(i), Value::Int(i % 5)])),
    )
    .unwrap();
    db
}

#[test]
fn empty_relation_is_handled() {
    let mut db = db_with(0, 1);
    let out = db
        .count(Expr::relation("t").select(Predicate::True))
        .within(Duration::from_secs(2))
        .run()
        .unwrap();
    assert_eq!(out.estimate.estimate, 0.0);
    assert_eq!(out.estimate.variance, 0.0);
}

#[test]
fn empty_side_of_binary_operators() {
    let mut db = db_with(1_000, 2);
    let schema =
        Schema::new(vec![("k", ColumnType::Int), ("g", ColumnType::Int)]).padded_to(200);
    db.load_relation("empty", schema, std::iter::empty())
        .unwrap();
    for expr in [
        Expr::relation("t").intersect(Expr::relation("empty")),
        Expr::relation("t").join(Expr::relation("empty"), vec![(0, 0)]),
        Expr::relation("empty").union(Expr::relation("t")),
    ] {
        let truth = db.exact_count(&expr).unwrap() as f64;
        let out = db
            .count(expr)
            .within(Duration::from_secs(30))
            .run()
            .unwrap();
        // Either exact (census reached) or a sane non-negative value.
        assert!(out.estimate.estimate >= 0.0);
        if truth == 0.0 {
            assert_eq!(out.estimate.estimate, 0.0);
        }
    }
}

#[test]
fn quota_smaller_than_one_block_read() {
    let mut db = db_with(10_000, 3);
    let out = db
        .count(Expr::relation("t").select(Predicate::True))
        .within(Duration::from_millis(1))
        .run()
        .unwrap();
    assert_eq!(out.report.completed_stages(), 0);
    assert_eq!(out.estimate.points_sampled, 0.0);
    assert_eq!(out.report.blocks_evaluated(), 0);
}

#[test]
fn zero_quota() {
    let mut db = db_with(1_000, 4);
    let out = db
        .count(Expr::relation("t"))
        .within(Duration::ZERO)
        .run()
        .unwrap();
    assert!(out.report.stages.is_empty());
}

#[test]
fn max_stages_caps_the_loop() {
    let mut db = db_with(10_000, 5);
    let config = QueryConfig {
        strategy: Box::new(OneAtATimeInterval::new(72.0)),
        max_stages: 2,
        ..Default::default()
    };
    let out = db
        .count(Expr::relation("t").select(Predicate::col_cmp(1, CmpOp::Lt, 2)))
        .within(Duration::from_secs(600))
        .config(config)
        .run()
        .unwrap();
    assert!(out.report.stages.len() <= 2);
}

#[test]
fn unknown_relation_is_an_expr_error() {
    let mut db = db_with(10, 6);
    let err = db
        .count(Expr::relation("ghost"))
        .within(Duration::from_secs(1))
        .run()
        .unwrap_err();
    assert!(matches!(
        err,
        EngineError::Expr(ExprError::UnknownRelation(_))
    ));
}

#[test]
fn projection_over_difference_is_rejected_not_wrong() {
    let mut db = db_with(100, 7);
    let expr = Expr::relation("t")
        .difference(Expr::relation("t"))
        .project(vec![0]);
    let err = db
        .count(expr)
        .within(Duration::from_secs(1))
        .run()
        .unwrap_err();
    assert!(matches!(
        err,
        EngineError::Expr(ExprError::ProjectionOverSetOp)
    ));
}

#[test]
fn self_join_uses_independent_dimensions() {
    // r ⋈ r: two occurrences of the same relation are two point-space
    // dimensions with independent samplers.
    let mut db = db_with(1_000, 8);
    let expr = Expr::relation("t").join(Expr::relation("t"), vec![(0, 0)]);
    let truth = db.exact_count(&expr).unwrap() as f64; // 1000 (key is unique)
    let out = db
        .count(expr)
        .within(Duration::from_secs(120))
        .run()
        .unwrap();
    assert!(out.estimate.estimate >= 0.0);
    assert!(
        out.estimate.estimate <= truth * 50.0,
        "runaway self-join estimate {}",
        out.estimate.estimate
    );
}

#[test]
fn error_bound_with_zero_truth_falls_back_to_deadline() {
    let mut db = db_with(5_000, 9);
    // Impossible precision target on a zero count: the deadline must
    // still end the query.
    let out = db
        .count(Expr::relation("t").select(Predicate::False))
        .within(Duration::from_secs(5))
        .stopping(StoppingCriterion::Combined(vec![
            StoppingCriterion::HardDeadline,
            StoppingCriterion::ErrorBound {
                target: 0.01,
                confidence: 0.99,
            },
        ]))
        .run()
        .unwrap();
    assert!(out.report.total_elapsed <= Duration::from_secs(6));
    assert_eq!(out.estimate.estimate, 0.0);
}

#[test]
fn repeated_queries_on_one_database_are_independent() {
    let mut db = db_with(10_000, 10);
    let expr = Expr::relation("t").select(Predicate::col_cmp(1, CmpOp::Eq, 0));
    let first = db
        .count(expr.clone())
        .within(Duration::from_secs(5))
        .run()
        .unwrap();
    let second = db
        .count(expr)
        .within(Duration::from_secs(5))
        .run()
        .unwrap();
    // The second query starts from a fresh deadline even though the
    // simulated clock has advanced past the first quota.
    assert!(second.report.completed_stages() >= 1);
    assert!(first.report.completed_stages() >= 1);
}
