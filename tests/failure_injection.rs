//! Failure injection and degenerate inputs: the engine must degrade
//! gracefully, never panic, and keep its reports consistent.
//!
//! The second half is a chaos suite against the storage layer's
//! deterministic [`FaultPlan`] injector: transient read errors,
//! checksum-detected corruption, and latency spikes at swept rates,
//! with the invariants that every run returns an estimate, the hard
//! deadline holds (retry backoff is charged to the clock), lost
//! blocks flag the report as degraded, and identical seeds replay to
//! bit-identical reports.

use std::time::Duration;

use proptest::prelude::*;

use eram_core::{Database, EngineError, OneAtATimeInterval, QueryConfig, StoppingCriterion};
use eram_relalg::{CmpOp, Expr, ExprError, Predicate};
use eram_storage::{ColumnType, FaultPlan, Schema, Tuple, Value};

fn db_with(rows: i64, seed: u64) -> Database {
    let mut db = Database::sim_default(seed);
    let schema = Schema::new(vec![("k", ColumnType::Int), ("g", ColumnType::Int)]).padded_to(200);
    db.load_relation(
        "t",
        schema,
        (0..rows).map(|i| Tuple::new(vec![Value::Int(i), Value::Int(i % 5)])),
    )
    .unwrap();
    db
}

#[test]
fn empty_relation_is_handled() {
    let mut db = db_with(0, 1);
    let out = db
        .count(Expr::relation("t").select(Predicate::True))
        .within(Duration::from_secs(2))
        .run()
        .unwrap();
    assert_eq!(out.estimate.estimate, 0.0);
    assert_eq!(out.estimate.variance, 0.0);
}

#[test]
fn empty_side_of_binary_operators() {
    let mut db = db_with(1_000, 2);
    let schema = Schema::new(vec![("k", ColumnType::Int), ("g", ColumnType::Int)]).padded_to(200);
    db.load_relation("empty", schema, std::iter::empty())
        .unwrap();
    for expr in [
        Expr::relation("t").intersect(Expr::relation("empty")),
        Expr::relation("t").join(Expr::relation("empty"), vec![(0, 0)]),
        Expr::relation("empty").union(Expr::relation("t")),
    ] {
        let truth = db.exact_count(&expr).unwrap() as f64;
        let out = db
            .count(expr)
            .within(Duration::from_secs(30))
            .run()
            .unwrap();
        // Either exact (census reached) or a sane non-negative value.
        assert!(out.estimate.estimate >= 0.0);
        if truth == 0.0 {
            assert_eq!(out.estimate.estimate, 0.0);
        }
    }
}

#[test]
fn quota_smaller_than_one_block_read() {
    let mut db = db_with(10_000, 3);
    let out = db
        .count(Expr::relation("t").select(Predicate::True))
        .within(Duration::from_millis(1))
        .run()
        .unwrap();
    assert_eq!(out.report.completed_stages(), 0);
    assert_eq!(out.estimate.points_sampled, 0.0);
    assert_eq!(out.report.blocks_evaluated(), 0);
}

#[test]
fn zero_quota() {
    let mut db = db_with(1_000, 4);
    let out = db
        .count(Expr::relation("t"))
        .within(Duration::ZERO)
        .run()
        .unwrap();
    assert!(out.report.stages.is_empty());
}

#[test]
fn max_stages_caps_the_loop() {
    let mut db = db_with(10_000, 5);
    let config = QueryConfig {
        strategy: Box::new(OneAtATimeInterval::new(72.0)),
        max_stages: 2,
        ..Default::default()
    };
    let out = db
        .count(Expr::relation("t").select(Predicate::col_cmp(1, CmpOp::Lt, 2)))
        .within(Duration::from_secs(600))
        .config(config)
        .run()
        .unwrap();
    assert!(out.report.stages.len() <= 2);
}

#[test]
fn unknown_relation_is_an_expr_error() {
    let mut db = db_with(10, 6);
    let err = db
        .count(Expr::relation("ghost"))
        .within(Duration::from_secs(1))
        .run()
        .unwrap_err();
    assert!(matches!(
        err,
        EngineError::Expr(ExprError::UnknownRelation(_))
    ));
}

#[test]
fn projection_over_difference_is_rejected_not_wrong() {
    let mut db = db_with(100, 7);
    let expr = Expr::relation("t")
        .difference(Expr::relation("t"))
        .project(vec![0]);
    let err = db
        .count(expr)
        .within(Duration::from_secs(1))
        .run()
        .unwrap_err();
    assert!(matches!(
        err,
        EngineError::Expr(ExprError::ProjectionOverSetOp)
    ));
}

#[test]
fn self_join_uses_independent_dimensions() {
    // r ⋈ r: two occurrences of the same relation are two point-space
    // dimensions with independent samplers.
    let mut db = db_with(1_000, 8);
    let expr = Expr::relation("t").join(Expr::relation("t"), vec![(0, 0)]);
    let truth = db.exact_count(&expr).unwrap() as f64; // 1000 (key is unique)
    let out = db
        .count(expr)
        .within(Duration::from_secs(120))
        .run()
        .unwrap();
    assert!(out.estimate.estimate >= 0.0);
    assert!(
        out.estimate.estimate <= truth * 50.0,
        "runaway self-join estimate {}",
        out.estimate.estimate
    );
}

#[test]
fn error_bound_with_zero_truth_falls_back_to_deadline() {
    let mut db = db_with(5_000, 9);
    // Impossible precision target on a zero count: the deadline must
    // still end the query.
    let out = db
        .count(Expr::relation("t").select(Predicate::False))
        .within(Duration::from_secs(5))
        .stopping(StoppingCriterion::Combined(vec![
            StoppingCriterion::HardDeadline,
            StoppingCriterion::ErrorBound {
                target: 0.01,
                confidence: 0.99,
            },
        ]))
        .run()
        .unwrap();
    assert!(out.report.total_elapsed <= Duration::from_secs(6));
    assert_eq!(out.estimate.estimate, 0.0);
}

/// The paper's Figure 5.1 selection setup (10 000 tuples, 10 s quota)
/// with ≥5% transient faults and ≥1% corruption: every seeded run
/// must deliver an estimate under the hard deadline, and any run that
/// lost blocks must say so.
#[test]
fn chaos_selection_200_runs_all_deliver_under_faults() {
    let mut db = db_with(10_000, 11);
    let expr = Expr::relation("t").select(Predicate::col_cmp(1, CmpOp::Lt, 2));
    let truth = db.exact_count(&expr).unwrap() as f64; // 4000
    let quota = Duration::from_secs(10);
    let mut degraded_runs = 0usize;
    let mut faulted_runs = 0usize;
    let mut covered = 0usize;
    for i in 0..200u64 {
        db.inject_faults(
            FaultPlan::new(0xC4A0_5000 + i)
                .with_transient(0.05)
                .with_corruption(0.01),
        );
        let out = db
            .count(expr.clone())
            .within(quota)
            .seed(i)
            .run()
            .expect("faulted run still delivers");
        // Hard deadline at block granularity, even mid-retry.
        assert!(
            out.report.overspend() < Duration::from_millis(300),
            "run {i} overspent {:?}",
            out.report.overspend()
        );
        assert!(out.estimate.estimate >= 0.0);
        let h = out.report.health;
        assert_eq!(h.degraded, h.blocks_lost > 0, "run {i}");
        assert!(h.retries <= h.faults_seen.saturating_mul(4), "run {i}");
        if h.faults_seen > 0 {
            faulted_runs += 1;
        }
        if h.degraded {
            degraded_runs += 1;
        }
        let (lo, hi) = out.estimate.ci(0.95);
        if lo <= truth && truth <= hi {
            covered += 1;
        }
    }
    // At 5% + 1% rates, faults and losses are statistically certain
    // across 200 runs of hundreds of block reads each.
    assert!(faulted_runs > 150, "only {faulted_runs} runs saw faults");
    assert!(degraded_runs > 0, "no run lost a block");
    // Degradation widens the interval but must not break coverage.
    assert!(
        covered >= 150,
        "95% CI covered truth in only {covered}/200 runs"
    );
}

/// Retry backoff is charged to the clock, so a fault storm cannot
/// stretch the hard deadline: a tiny quota under heavy transient
/// faults still ends on time.
#[test]
fn hard_deadline_holds_mid_retry_storm() {
    let mut db = db_with(10_000, 12);
    db.inject_faults(FaultPlan::new(77).with_transient(0.5));
    let out = db
        .count(Expr::relation("t").select(Predicate::True))
        .within(Duration::from_secs(1))
        .run()
        .unwrap();
    assert!(out.report.overspend() < Duration::from_millis(300));
    assert!(out.report.utilization() <= 1.0);
}

/// Latency spikes consume quota like any other device time.
#[test]
fn latency_spikes_eat_quota_not_correctness() {
    let mut db = db_with(10_000, 13);
    db.inject_faults(FaultPlan::new(5).with_spikes(0.2, Duration::from_millis(200)));
    let expr = Expr::relation("t").select(Predicate::col_cmp(1, CmpOp::Lt, 2));
    let out = db
        .count(expr)
        .within(Duration::from_secs(10))
        .run()
        .unwrap();
    // Spikes are delays, not faults: nothing is lost or degraded.
    assert_eq!(out.report.health.blocks_lost, 0);
    assert!(!out.report.health.degraded);
    assert!(out.report.overspend() < Duration::from_millis(500));
}

/// Same data seed, same fault plan, same query seed → the entire
/// execution report replays bit-identically.
#[test]
fn fault_injection_replay_is_bit_identical() {
    let run = || {
        let mut db = db_with(10_000, 14);
        db.inject_faults(
            FaultPlan::new(0xD00D)
                .with_transient(0.08)
                .with_corruption(0.02),
        );
        let expr = Expr::relation("t").select(Predicate::col_cmp(1, CmpOp::Lt, 2));
        let out = db
            .count(expr)
            .within(Duration::from_secs(10))
            .seed(99)
            .run()
            .unwrap();
        serde_json::to_string(&out.report)
    };
    let (a, b) = (run(), run());
    let (Ok(a), Ok(b)) = (a, b) else {
        eprintln!("skipped: offline serde stub cannot serialize");
        return;
    };
    assert_eq!(a, b);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// No seeded fault plan — any rates, any seed, spikes included —
    /// may panic the engine or break report invariants.
    #[test]
    fn any_fault_plan_degrades_gracefully(
        seed in any::<u64>(),
        transient in 0.0f64..=1.0,
        corrupt in 0.0f64..=1.0,
        spike_rate in 0.0f64..=0.5,
        spike_ms in 0u64..200,
    ) {
        let mut db = db_with(1_000, seed ^ 0xBAD);
        db.inject_faults(
            FaultPlan::new(seed)
                .with_transient(transient)
                .with_corruption(corrupt)
                .with_spikes(spike_rate, Duration::from_millis(spike_ms)),
        );
        let out = db
            .count(Expr::relation("t").select(Predicate::col_cmp(1, CmpOp::Lt, 2)))
            .within(Duration::from_secs(2))
            .run()
            .unwrap();
        prop_assert!(out.report.utilization() <= 1.0);
        prop_assert!(out.estimate.estimate >= 0.0);
        prop_assert!(out.estimate.estimate.is_finite());
        let h = out.report.health;
        prop_assert_eq!(h.degraded, h.blocks_lost > 0);
        // Whatever happened, the hard deadline held.
        prop_assert!(out.report.overspend() < Duration::from_millis(300));
    }
}

#[test]
fn repeated_queries_on_one_database_are_independent() {
    let mut db = db_with(10_000, 10);
    let expr = Expr::relation("t").select(Predicate::col_cmp(1, CmpOp::Eq, 0));
    let first = db
        .count(expr.clone())
        .within(Duration::from_secs(5))
        .run()
        .unwrap();
    let second = db.count(expr).within(Duration::from_secs(5)).run().unwrap();
    // The second query starts from a fresh deadline even though the
    // simulated clock has advanced past the first quota.
    assert!(second.report.completed_stages() >= 1);
    assert!(first.report.completed_stages() >= 1);
}
