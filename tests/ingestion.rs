//! Ingestion round-trip: every supported input format must load the
//! same logical relation into **byte-identical** storage, and queries
//! over it must be byte-identical too — across formats, across block
//! layouts, and across worker counts.
//!
//! The pipeline under test: fixture file → [`IngestFormat`] reader →
//! [`Database::load_ingest`] → [`HeapFile`] pages → seeded query.
//! Equality is checked at the strongest level available at each step:
//! raw page bytes for storage, serialized [`ExecutionReport`]s (plus
//! JSONL traces) for execution.

use std::path::PathBuf;
use std::time::Duration;

use eram_core::{BlockLayout, Database, Tracer};
use eram_relalg::{CmpOp, Expr, Predicate};
use eram_storage::{write_parquet_subset, ColumnType, IngestFormat, Schema, Tuple, Value};

fn stub_serde() -> bool {
    serde_json::to_string(&0u32).is_err()
}

/// Four-column schema covering every [`ColumnType`], padded to the
/// paper's 200-byte tuples (5 per block).
fn schema() -> Schema {
    Schema::new(vec![
        ("id", ColumnType::Int),
        ("price", ColumnType::Float),
        ("ok", ColumnType::Bool),
        ("name", ColumnType::Str { width: 12 }),
    ])
    .padded_to(200)
}

/// The canonical fixture rows, duplicate-heavy on `ok` and `name`.
fn rows(n: usize) -> Vec<Tuple> {
    (0..n)
        .map(|i| {
            Tuple::new(vec![
                Value::Int(i as i64),
                Value::Float(i as f64 * 0.25),
                Value::Bool(i % 3 == 0),
                Value::Str(format!("name{}", i % 7)),
            ])
        })
        .collect()
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("eram-ingest-{name}-{}", std::process::id()))
}

/// Writes the fixture in all three formats and returns
/// `(format, path)` pairs. Caller removes the files.
fn write_fixtures(n: usize) -> Vec<(IngestFormat, PathBuf)> {
    let rows = rows(n);
    let csv_path = tmp("fixture.csv");
    let csv: String = std::iter::once("id,price,ok,name\n".to_string())
        .chain(rows.iter().map(|t| {
            format!(
                "{},{},{},{}\n",
                t.value(0).as_int().unwrap(),
                t.value(1).as_float().unwrap(),
                t.value(2).as_bool().unwrap(),
                t.value(3).as_str().unwrap(),
            )
        }))
        .collect();
    std::fs::write(&csv_path, csv).unwrap();

    let jsonl_path = tmp("fixture.jsonl");
    let jsonl: String = rows
        .iter()
        .map(|t| {
            format!(
                "{{\"id\": {}, \"price\": {}, \"ok\": {}, \"name\": \"{}\"}}\n",
                t.value(0).as_int().unwrap(),
                t.value(1).as_float().unwrap(),
                t.value(2).as_bool().unwrap(),
                t.value(3).as_str().unwrap(),
            )
        })
        .collect();
    std::fs::write(&jsonl_path, jsonl).unwrap();

    let parquet_path = tmp("fixture.parquet");
    std::fs::write(
        &parquet_path,
        write_parquet_subset(&schema(), &rows).unwrap(),
    )
    .unwrap();

    vec![
        (IngestFormat::Csv { has_header: true }, csv_path),
        (IngestFormat::JsonLines, jsonl_path),
        (IngestFormat::Parquet, parquet_path),
    ]
}

#[test]
fn all_formats_load_byte_identical_heap_files() {
    let fixtures = write_fixtures(137); // partial tail block on purpose
    let mut page_images: Vec<(IngestFormat, Vec<Vec<u8>>)> = Vec::new();
    for (format, path) in &fixtures {
        let mut db = Database::sim_default(1);
        let n = db.load_ingest("r", schema(), path, *format).unwrap();
        assert_eq!(n, 137, "{format:?} lost rows");
        let hf = db.catalog().relation("r").unwrap();
        assert_eq!(hf.scan_uncharged().unwrap(), rows(137), "{format:?}");
        // Strongest check: the raw on-device pages, not just the
        // decoded tuples — padding and encoding must agree exactly.
        let pages: Vec<Vec<u8>> = (0..hf.num_blocks())
            .map(|b| {
                db.disk()
                    .read_block_uncharged(hf.file_id(), b)
                    .unwrap()
                    .bytes()
                    .to_vec()
            })
            .collect();
        page_images.push((*format, pages));
    }
    let (_, reference) = &page_images[0];
    for (format, pages) in &page_images[1..] {
        assert_eq!(
            pages, reference,
            "{format:?} produced different page bytes than CSV"
        );
    }
    for (_, path) in fixtures {
        let _ = std::fs::remove_file(path);
    }
}

#[test]
fn queries_over_any_format_are_identical_across_layouts_and_workers() {
    let fixtures = write_fixtures(600);
    let run = |format: IngestFormat, path: &PathBuf, layout: BlockLayout, workers: usize| {
        let mut db = Database::sim_default(5);
        db.load_ingest("r", schema(), path, format).unwrap();
        let tracer = Tracer::recording(db.disk().clock().clone());
        let expr = Expr::relation("r").select(Predicate::col_cmp(0, CmpOp::Lt, 300));
        let out = db
            .count(expr)
            .within(Duration::from_secs(2))
            .workers(workers)
            .block_layout(layout)
            .seed(19)
            .tracer(tracer.clone())
            .run()
            .expect("query over ingested relation must execute");
        if stub_serde() {
            // The offline serde stand-ins cannot serialize; a `Debug`
            // rendering still covers every field.
            (
                format!("{:?}", out.report),
                format!("{:?}", tracer.records()),
            )
        } else {
            (
                serde_json::to_string(&out.report).expect("report serializes"),
                tracer.to_jsonl(),
            )
        }
    };
    let (ref_format, ref_path) = &fixtures[0];
    let (ref_report, ref_trace) = run(*ref_format, ref_path, BlockLayout::Row, 1);
    for (format, path) in &fixtures {
        for layout in [BlockLayout::Row, BlockLayout::Columnar] {
            for workers in [1, 4] {
                let (report, trace) = run(*format, path, layout, workers);
                assert_eq!(
                    report, ref_report,
                    "report diverged: {format:?} {layout:?} workers={workers}"
                );
                assert_eq!(
                    trace, ref_trace,
                    "trace diverged: {format:?} {layout:?} workers={workers}"
                );
            }
        }
    }
    for (_, path) in fixtures {
        let _ = std::fs::remove_file(path);
    }
}

#[test]
fn malformed_inputs_fail_loudly_not_partially() {
    let bad_jsonl = tmp("bad.jsonl");
    std::fs::write(&bad_jsonl, "[1, 2.0, true, \"ok\"]\n[\"oops\"]\n").unwrap();
    let mut db = Database::sim_default(3);
    let err = db
        .load_ingest("r", schema(), &bad_jsonl, IngestFormat::JsonLines)
        .unwrap_err();
    assert!(
        err.to_string().contains("line 2"),
        "error must name the offending line: {err}"
    );
    assert!(
        db.catalog().relation("r").is_none(),
        "a failed load must not register a partial relation"
    );
    let _ = std::fs::remove_file(bad_jsonl);
}
