#!/usr/bin/env sh
# Regenerates everything under results/: the human-readable paper
# tables (*.txt), the machine-readable flight-recorder output
# (BENCH_*.json), and the fast CI baselines (results/ci/) that the
# bench-regression job gates against.
#
# The simulated columns are pure functions of the seeds, so the .txt
# tables and every BENCH `simulated` section are identical on any
# machine; only the wall-clock stats differ (which is why CI compares
# with --ignore-wall).
#
# Usage: scripts/regen_results.sh [RUNS]
#   RUNS defaults to 200 (the paper's trial count per row).
set -eu

cd "$(dirname "$0")/.."
RUNS="${1:-200}"
mkdir -p results results/ci

run() {
    bin="$1"
    shift
    echo "=== $bin $*" >&2
    cargo run --release -p eram-bench --bin "$bin" -- "$@" \
        > "results/$bin.txt"
}

# Full sweeps: the paper tables plus BENCH_<suite>.json, both in
# results/ (BENCH path is the binary's default next to the tables).
run fig5_1_select --runs "$RUNS"
run fig5_2_intersect --runs "$RUNS"
run fig5_3_join --runs "$RUNS"
run abl_strategies --runs "$RUNS"
run abl_adaptive_costs --runs "$RUNS"
run abl_fulfillment --runs "$RUNS"
run abl_estimator_accuracy --runs "$RUNS"
run abl_memory_mode --runs "$RUNS"
run abl_prestored --runs "$RUNS"
run abl_clustering --runs "$RUNS"
run abl_faults --runs "$RUNS"
run abl_convergence
run abl_groupby --runs 50
run abl_parallel --runs 50
run abl_layout --runs 50
# Whole-batch cells: the binary clamps runs to 20 internally.
run abl_admission --runs 10

# Fast CI baselines: MUST use the same flags as the bench-regression
# job in .github/workflows/ci.yml (bench-diff compares the config
# section exactly; changing either side means re-blessing the other).
echo "=== CI baselines (fast sweeps)" >&2
cargo run --release -p eram-bench --bin fig5_1_select -- \
    --runs 20 --json results/ci/BENCH_fig5_1_select.json > /dev/null
cargo run --release -p eram-bench --bin abl_faults -- \
    --runs 20 --json results/ci/BENCH_abl_faults.json > /dev/null
cargo run --release -p eram-bench --bin abl_parallel -- \
    --runs 5 --json results/ci/BENCH_abl_parallel.json > /dev/null
cargo run --release -p eram-bench --bin abl_admission -- \
    --runs 5 --json results/ci/BENCH_abl_admission.json > /dev/null
cargo run --release -p eram-bench --bin abl_groupby -- \
    --runs 5 --json results/ci/BENCH_abl_groupby.json > /dev/null
cargo run --release -p eram-bench --bin abl_layout -- \
    --runs 5 --json results/ci/BENCH_abl_layout.json > /dev/null

echo "done — review git diff under results/ and commit" >&2
