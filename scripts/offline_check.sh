#!/usr/bin/env sh
# Type-checks (or smoke-tests) the workspace in a container with no
# reachable crates registry, by temporarily pointing the external
# dependencies at the stub crates under offline/stubs/. See
# offline/README.md for what this can and cannot validate.
#
# Usage:
#   scripts/offline_check.sh                 # cargo check --workspace --all-targets
#   scripts/offline_check.sh check <args>    # cargo check <args>
#   scripts/offline_check.sh test <args>     # cargo test <args>
set -eu

cd "$(dirname "$0")/.."

MANIFEST=Cargo.toml
BACKUP=Cargo.toml.offline-backup

[ -f "$BACKUP" ] && { echo "stale $BACKUP exists; resolve it first" >&2; exit 2; }
cp "$MANIFEST" "$BACKUP"

restore() {
    mv "$BACKUP" "$MANIFEST"
    rm -f Cargo.lock
}
trap restore EXIT INT TERM

# Swap each external [workspace.dependencies] entry for its stub path.
# The stub serde keeps a real `derive` feature, so the feature-carrying
# entry still resolves.
sed -i \
    -e 's|^rand = .*$|rand = { path = "offline/stubs/rand" }|' \
    -e 's|^parking_lot = .*$|parking_lot = { path = "offline/stubs/parking_lot" }|' \
    -e 's|^serde = .*$|serde = { path = "offline/stubs/serde", features = ["derive"] }|' \
    -e 's|^serde_json = .*$|serde_json = { path = "offline/stubs/serde_json" }|' \
    -e 's|^proptest = .*$|proptest = { path = "offline/stubs/proptest" }|' \
    -e 's|^criterion = .*$|criterion = { path = "offline/stubs/criterion" }|' \
    "$MANIFEST"

cmd="${1:-check}"
[ $# -gt 0 ] && shift

# Tests whose pass/fail depends on the exact random stream (not just
# determinism) check this marker and skip under the stand-in rand.
export ERAM_OFFLINE_STUBS=1

case "$cmd" in
    check)
        if [ $# -eq 0 ]; then
            cargo check --workspace --all-targets --offline
        else
            cargo check --offline "$@"
        fi
        ;;
    test)
        cargo test --offline "$@"
        ;;
    *)
        cargo "$cmd" --offline "$@"
        ;;
esac
