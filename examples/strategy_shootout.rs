//! Side-by-side run of the three time-control strategies of
//! Section 3.3 on one query — the qualitative comparison the paper
//! makes ("the first approach may have a better control of the
//! overall risk ... the second ... much less computation"), made
//! concrete.
//!
//! ```sh
//! cargo run --release --example strategy_shootout
//! ```

use std::time::Duration;

use eram_core::{
    Database, HeuristicStrategy, OneAtATimeInterval, QueryConfig, SingleInterval,
    StoppingCriterion, TimeControlStrategy,
};
use eram_relalg::{CmpOp, Expr, Predicate};
use eram_storage::{ColumnType, Schema, Tuple, Value};

fn main() {
    let mut db = Database::sim_default(21);
    let schema =
        Schema::new(vec![("id", ColumnType::Int), ("grade", ColumnType::Int)]).padded_to(200);
    db.load_relation(
        "parts",
        schema,
        (0..10_000).map(|i| Tuple::new(vec![Value::Int(i), Value::Int((i * 613) % 100)])),
    )
    .expect("load parts");

    let defective = Expr::relation("parts").select(Predicate::col_cmp(1, CmpOp::Lt, 25));
    let truth = db.exact_count(&defective).expect("truth");
    println!("true defective count: {truth}   quota: 10 s (soft, to expose overspend)\n");
    println!(
        "{:<26} | {:>6} | {:>9} | {:>12} | {:>6} | {:>8}",
        "strategy", "stages", "blocks", "utilization%", "ovsp", "estimate"
    );
    println!("{}", "-".repeat(82));

    let strategies: Vec<(&str, Box<dyn TimeControlStrategy>)> = vec![
        (
            "one-at-a-time (d_beta=0)",
            Box::new(OneAtATimeInterval::new(0.0)),
        ),
        (
            "one-at-a-time (d_beta=24)",
            Box::new(OneAtATimeInterval::new(24.0)),
        ),
        ("single-interval (d=2)", Box::new(SingleInterval::new(2.0))),
        (
            "heuristic (half, 1.25x)",
            Box::new(HeuristicStrategy::new(0.5, 1.25)),
        ),
    ];

    for (name, strategy) in strategies {
        let config = QueryConfig {
            strategy,
            stopping: StoppingCriterion::SoftDeadline,
            ..QueryConfig::default()
        };
        let result = db
            .count(defective.clone())
            .within(Duration::from_secs(10))
            .config(config)
            .seed(0xBEEF)
            .run()
            .expect("count");
        println!(
            "{:<26} | {:>6} | {:>9} | {:>12.1} | {:>6.2?} | {:>8.0}",
            name,
            result.report.completed_stages(),
            result.report.blocks_evaluated(),
            100.0 * result.report.utilization(),
            result.report.overspend(),
            result.estimate.estimate,
        );
    }
    println!(
        "\nRisk-averse settings waste less on aborted work but pay more stage overhead; \
         d_beta=0 bets half the runs on finishing exactly at the wire."
    );
}
