//! The "impatient user" scenario from the paper's introduction:
//! "The time constraint can be set to ... minutes (e.g., an
//! interactive environment with an 'impatient' user)."
//!
//! ```sh
//! cargo run --release --example impatient_analyst
//! ```
//!
//! An analyst asks the *same* aggregate question with progressively
//! larger time budgets and watches the confidence interval tighten —
//! the trade the whole paper is about. The query is a composite one
//! (`COUNT` of a union of two filtered relations), so the
//! inclusion–exclusion rewrite and multi-term evaluation are
//! exercised too.

use std::time::Duration;

use eram_core::Database;
use eram_relalg::{CmpOp, Expr, Predicate};
use eram_storage::{ColumnType, Schema, Tuple, Value};

fn load(db: &mut Database, name: &str, salt: i64) {
    let schema = Schema::new(vec![
        ("user_id", ColumnType::Int),
        ("score", ColumnType::Int),
    ])
    .padded_to(200);
    db.load_relation(
        name,
        schema,
        (0..10_000).map(|i| Tuple::new(vec![Value::Int(i), Value::Int((i * 131 + salt) % 10_000)])),
    )
    .expect("load relation");
}

fn main() {
    let mut db = Database::sim_default(7);
    load(&mut db, "web_signups", 0);
    load(&mut db, "mobile_signups", 4_211);

    // Users with high scores on either channel:
    // COUNT(σ(web) ∪ σ(mobile)).
    let high = |rel: &str| Expr::relation(rel).select(Predicate::col_cmp(1, CmpOp::Ge, 8_000));
    let expr = high("web_signups").union(high("mobile_signups"));
    let truth = db.exact_count(&expr).expect("ground truth");
    println!("question: how many distinct high-score signup rows across channels?");
    println!("exact answer (computed offline): {truth}\n");

    println!(
        "{:>8} | {:>9} | {:>19} | {:>7} | {:>7}",
        "quota", "estimate", "95% interval", "stages", "blocks"
    );
    println!("{}", "-".repeat(62));
    for secs in [2u64, 5, 20, 60] {
        let result = db
            .count(expr.clone())
            .within(Duration::from_secs(secs))
            .seed(1000 + secs)
            .run()
            .expect("count");
        let (lo, hi) = result.estimate.ci(0.95);
        let note = if result.estimate.points_sampled == 0.0 {
            "  (quota below minimum stage — no information)"
        } else {
            ""
        };
        println!(
            "{:>6} s | {:>9.0} | [{:>7.0}, {:>7.0}] | {:>7} | {:>7}{note}",
            secs,
            result.estimate.estimate,
            lo,
            hi,
            result.report.completed_stages(),
            result.report.blocks_evaluated(),
        );
    }
    println!("\nMore patience → more blocks → a tighter interval, never a blown deadline.");
}
