//! Multiuser real-time scheduling — the paper's second motivation:
//! "By precisely fixing the execution times of database queries in a
//! transaction, accurate estimates for transaction execution times
//! become possible. This in turn plays an important role in
//! minimizing the number of transactions that miss their deadlines
//! [AbMo 88]."
//!
//! ```sh
//! cargo run --release --example rt_scheduler
//! ```
//!
//! A queue of aggregate queries, each with its own absolute deadline,
//! runs under two policies on the same simulated device:
//!
//! * **exact-first**: each query is evaluated exactly (a full scan) —
//!   execution time is whatever it is, and queue delay cascades into
//!   missed deadlines;
//! * **quota-EDF**: earliest-deadline-first, with each query's time
//!   quota *fixed in advance* to fit its slack — every transaction
//!   meets its deadline and pays for it only in estimate precision.

use std::time::Duration;

use eram_core::{Database, EdfScheduler, QueryJob};
use eram_relalg::{CmpOp, Expr, Predicate};
use eram_storage::{ColumnType, Schema, Tuple, Value};

fn jobs() -> Vec<QueryJob> {
    let sel = |k: i64| Expr::relation("events").select(Predicate::col_cmp(1, CmpOp::Lt, k));
    vec![
        QueryJob::count("dash-alpha", sel(2_000), Duration::from_secs(8)),
        QueryJob::count("dash-beta", sel(5_000), Duration::from_secs(16)),
        QueryJob::count(
            "audit-gamma",
            Expr::relation("events").intersect(Expr::relation("mirror")),
            Duration::from_secs(26),
        ),
        QueryJob::count("dash-delta", sel(500), Duration::from_secs(34)),
    ]
}

fn fresh_db() -> Database {
    let mut db = Database::sim_default(7);
    let schema = Schema::new(vec![
        ("id", ColumnType::Int),
        ("metric", ColumnType::Int),
        ("pad", ColumnType::Int),
    ])
    .padded_to(200);
    // All columns are functions of the row id, so the two relations
    // genuinely overlap on whole tuples (7 500 in common).
    let rows = |salt: i64| {
        (0..10_000).map(move |i| {
            let id = i + salt;
            Tuple::new(vec![
                Value::Int(id),
                Value::Int((id * 7919) % 10_000),
                Value::Int(id),
            ])
        })
    };
    db.load_relation("events", schema.clone(), rows(0)).unwrap();
    db.load_relation("mirror", schema, rows(2_500)).unwrap();
    db
}

fn run_policy(quota_edf: bool) -> (usize, usize) {
    let mut db = fresh_db();
    println!(
        "--- policy: {} ---",
        if quota_edf {
            "quota-EDF (this paper)"
        } else {
            "exact-first"
        }
    );

    let mut queue = jobs();
    if !quota_edf {
        // Exact evaluation: an effectively unbounded quota, so each
        // query runs to a census and queue delay cascades.
        for job in &mut queue {
            job.desired_quota = Duration::from_secs(1_000_000);
            job.min_quota = Duration::ZERO;
        }
    }
    let truths: Vec<f64> = queue
        .iter()
        .map(|j| db.exact_count(&j.expr).unwrap() as f64)
        .collect();
    let deadlines: Vec<Duration> = queue.iter().map(|j| j.deadline).collect();

    // The library's EDF scheduler with slack-based admission; the
    // exact-first policy abuses it by demanding census-sized quotas.
    let scheduler = EdfScheduler::new(0.98);
    let outcomes = if quota_edf {
        scheduler.run(&mut db, queue)
    } else {
        // Without quota fixing, admission control cannot help: grant
        // whatever each job asks for.
        let mut relaxed = queue;
        for job in &mut relaxed {
            job.deadline = Duration::from_secs(1_000_000);
        }
        scheduler.run(&mut db, relaxed)
    };

    let mut met = 0;
    for ((o, truth), deadline) in outcomes.iter().zip(&truths).zip(&deadlines) {
        let ok = o.result.is_some() && o.finished_at <= *deadline;
        if ok {
            met += 1;
        }
        let (answer, note) = match &o.result {
            Some(out) => {
                let e = out.estimate.estimate;
                let rel = if *truth > 0.0 {
                    format!("rel.err {:.1}%", 100.0 * (e - truth).abs() / truth)
                } else {
                    "truth 0".into()
                };
                (
                    e,
                    format!("{} stages, {rel}", out.report.completed_stages()),
                )
            }
            None => (f64::NAN, "refused at admission".into()),
        };
        println!(
            "  {:<12} deadline {:>5.1}s  finished {:>6.1}s  {}  answer ≈ {:>6.0} ({note})",
            o.name,
            deadline.as_secs_f64(),
            o.finished_at.as_secs_f64(),
            if ok { "MET   " } else { "MISSED" },
            answer,
        );
    }
    println!();
    (met, truths.len())
}

fn main() {
    let (exact_met, total) = run_policy(false);
    let (edf_met, _) = run_policy(true);
    println!("deadlines met: exact-first {exact_met}/{total}, quota-EDF {edf_met}/{total}");
    assert!(edf_met >= exact_met);
}
