//! An interactive shell over the textual query language — the
//! closest thing to sitting at the 1989 ERAM prototype.
//!
//! ```sh
//! cargo run --release --example repl
//! ```
//!
//! Three demo relations are preloaded (`orders`, `customers`,
//! `returns`). Commands:
//!
//! ```text
//! count <expr> within <seconds>     time-constrained estimate
//! exact <expr>                      exact COUNT (offline, uncharged)
//! relations                         list loaded relations
//! help | quit
//! ```
//!
//! Example queries:
//!
//! ```text
//! count select[#1 < 2500](orders) within 5
//! count join[#0=#0](orders, customers) within 2.5
//! count (select[#1 < 100](orders) union returns) within 10
//! exact project[#2](orders)
//! ```

use std::io::{BufRead, Write};
use std::time::Duration;

use eram_core::Database;
use eram_relalg::parse_expr;
use eram_storage::{ColumnType, Schema, Tuple, Value};

fn load_demo(db: &mut Database) {
    let schema = |n: &str| {
        Schema::new(vec![
            (format!("{n}_id"), ColumnType::Int),
            ("amount".to_string(), ColumnType::Int),
            ("region".to_string(), ColumnType::Int),
        ])
        .padded_to(200)
    };
    db.load_relation(
        "orders",
        schema("order"),
        (0..10_000).map(|i| {
            Tuple::new(vec![
                Value::Int(i),
                Value::Int((i * 7919) % 5_000),
                Value::Int(i % 12),
            ])
        }),
    )
    .unwrap();
    db.load_relation(
        "customers",
        schema("customer"),
        (0..10_000).map(|i| {
            Tuple::new(vec![
                Value::Int(i * 2),
                Value::Int((i * 271) % 5_000),
                Value::Int(i % 12),
            ])
        }),
    )
    .unwrap();
    db.load_relation(
        "returns",
        schema("return"),
        (0..10_000).map(|i| {
            Tuple::new(vec![
                Value::Int(i * 3),
                Value::Int((i * 13) % 5_000),
                Value::Int(i % 12),
            ])
        }),
    )
    .unwrap();
}

fn main() {
    let mut db = Database::sim_default(2026);
    load_demo(&mut db);
    println!("eram interactive shell — simulated SUN 3/60; type `help` for commands");

    let stdin = std::io::stdin();
    let mut line = String::new();
    loop {
        print!("eram> ");
        std::io::stdout().flush().ok();
        line.clear();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break; // EOF
        }
        let input = line.trim();
        if input.is_empty() {
            continue;
        }
        match dispatch(&mut db, input) {
            Ok(true) => break,
            Ok(false) => {}
            Err(msg) => println!("error: {msg}"),
        }
    }
}

/// Returns Ok(true) to quit.
fn dispatch(db: &mut Database, input: &str) -> Result<bool, String> {
    if input == "quit" || input == "exit" {
        return Ok(true);
    }
    if input == "help" {
        println!("  count <expr> within <seconds>   estimate COUNT under a time quota");
        println!("  exact <expr>                    exact COUNT (no quota)");
        println!("  relations                       list loaded relations");
        println!("  quit");
        return Ok(false);
    }
    if input == "relations" {
        for name in db.catalog().names() {
            let r = db.catalog().relation(name).expect("stored");
            println!(
                "  {name}: {} tuples, {} blocks",
                r.num_tuples(),
                r.num_blocks()
            );
        }
        return Ok(false);
    }
    if let Some(rest) = input.strip_prefix("exact ") {
        let expr = parse_expr(rest.trim()).map_err(|e| e.to_string())?;
        let n = db.exact_count(&expr).map_err(|e| e.to_string())?;
        println!("  exact COUNT = {n}");
        return Ok(false);
    }
    if let Some(rest) = input.strip_prefix("count ") {
        let (expr_text, quota_text) = rest
            .rsplit_once(" within ")
            .ok_or("usage: count <expr> within <seconds>")?;
        let expr = parse_expr(expr_text.trim()).map_err(|e| e.to_string())?;
        let secs: f64 = quota_text
            .trim()
            .parse()
            .map_err(|_| "quota must be a number of seconds")?;
        if !secs.is_finite() || secs < 0.0 {
            return Err("quota must be a non-negative number of seconds".into());
        }
        let out = db
            .count(expr)
            .within(Duration::from_secs_f64(secs))
            .run()
            .map_err(|e| e.to_string())?;
        let (lo, hi) = out.estimate.ci(0.95);
        println!(
            "  ≈ {:.0}   (95% CI [{lo:.0}, {hi:.0}])",
            out.estimate.estimate
        );
        println!(
            "  {} stages, {} blocks, {:.1}% of the {secs} s quota used, sampled {:.2}% of the point space",
            out.report.completed_stages(),
            out.report.blocks_evaluated(),
            100.0 * out.report.utilization(),
            100.0 * out.estimate.sampling_fraction(),
        );
        return Ok(false);
    }
    Err(format!("unknown command {input:?}; try `help`"))
}
