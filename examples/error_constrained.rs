//! Error-constrained evaluation (Section 3.2's second family of
//! stopping criteria): "stop whenever the precision of estimation has
//! met the user's requirement" — here, a ±5 % relative half-width at
//! 95 % confidence, with the time quota as a backstop.
//!
//! ```sh
//! cargo run --release --example error_constrained
//! ```

use std::time::Duration;

use eram_core::{Database, HeuristicStrategy, StoppingCriterion};
use eram_relalg::{CmpOp, Expr, Predicate};
use eram_storage::{ColumnType, Schema, Tuple, Value};

fn main() {
    let mut db = Database::sim_default(3);
    let schema =
        Schema::new(vec![("id", ColumnType::Int), ("status", ColumnType::Int)]).padded_to(200);
    db.load_relation(
        "events",
        schema,
        (0..10_000).map(|i| Tuple::new(vec![Value::Int(i), Value::Int((i * 17) % 5)])),
    )
    .expect("load events");

    let failed = Expr::relation("events").select(Predicate::col_cmp(1, CmpOp::Eq, 0));
    let truth = db.exact_count(&failed).expect("truth");

    for (target, confidence) in [(0.20, 0.95), (0.05, 0.95), (0.02, 0.99)] {
        let result = db
            .count(failed.clone())
            .within(Duration::from_secs(600)) // generous backstop
            // Probing strategy: small stages, so the loop can stop as
            // soon as the precision target is met instead of sizing
            // one stage to the whole quota.
            .strategy(HeuristicStrategy::probing(0.03, 1.25))
            .stopping(StoppingCriterion::Combined(vec![
                StoppingCriterion::HardDeadline,
                StoppingCriterion::ErrorBound { target, confidence },
            ]))
            .seed(17)
            .run()
            .expect("error-constrained count");
        let (lo, hi) = result.estimate.ci(confidence);
        println!(
            "target ±{:>4.0}% @{:.0}%: stopped after {:>6.1?} ({} stages, {} blocks); \
             estimate {:>5.0} ∈ [{lo:>5.0}, {hi:>5.0}], truth {truth}",
            100.0 * target,
            100.0 * confidence,
            result.report.total_elapsed,
            result.report.completed_stages(),
            result.report.blocks_evaluated(),
            result.estimate.estimate,
        );
        assert!(
            result.estimate.relative_half_width(confidence) <= target + 1e-9,
            "precision contract violated"
        );
    }
    println!("\nTighter targets buy more stages; the quota only backstops.");
}
