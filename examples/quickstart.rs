//! Quickstart: estimate `COUNT(σ(orders))` within a 10-second quota.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Loads a 10 000-tuple relation onto the simulated 1989 device the
//! paper's experiments ran on, asks for the count of orders over a
//! price threshold within 10 simulated seconds, and prints the
//! estimate with its confidence interval and the stage-by-stage
//! account of how the quota was spent.

use std::time::Duration;

use eram_core::Database;
use eram_relalg::{CmpOp, Expr, Predicate};
use eram_storage::{ColumnType, Schema, Tuple, Value};

fn main() {
    // A database on the simulated SUN 3/60 (deterministic under the
    // seed; a 10-second experiment takes microseconds of real time).
    let mut db = Database::sim_default(42);

    // orders(id, price_cents, region) — 10 000 tuples of 200 bytes,
    // 5 per 1 KB disk block, exactly the paper's geometry.
    let schema = Schema::new(vec![
        ("id", ColumnType::Int),
        ("price_cents", ColumnType::Int),
        ("region", ColumnType::Int),
    ])
    .padded_to(200);
    db.load_relation(
        "orders",
        schema,
        (0..10_000).map(|i| {
            Tuple::new(vec![
                Value::Int(i),
                Value::Int((i * 7919) % 100_000), // pseudo-random prices
                Value::Int(i % 12),
            ])
        }),
    )
    .expect("load orders");

    // COUNT(σ_{price ≥ 75 000}(orders)) — evaluate within 10 s.
    let expr = Expr::relation("orders").select(Predicate::col_cmp(1, CmpOp::Ge, 75_000));
    let truth = db.exact_count(&expr).expect("ground truth");

    let result = db
        .count(expr)
        .within(Duration::from_secs(10))
        .run()
        .expect("time-constrained count");

    let (lo, hi) = result.estimate.ci(0.95);
    println!("COUNT estimate : {:.0}", result.estimate.estimate);
    println!("95% interval   : [{lo:.0}, {hi:.0}]");
    println!("exact answer   : {truth}");
    println!(
        "sampled        : {:.0} of {:.0} tuples ({:.1}%)",
        result.estimate.points_sampled,
        result.estimate.total_points,
        100.0 * result.estimate.sampling_fraction()
    );
    println!();
    println!(
        "quota 10 s → {} stages, {:.1}% utilization, {} blocks, overspend {:?}",
        result.report.completed_stages(),
        100.0 * result.report.utilization(),
        result.report.blocks_evaluated(),
        result.report.overspend(),
    );
    for s in &result.report.stages {
        println!(
            "  stage {}: f = {:.4}, predicted {:>7.2?}, actual {:>7.2?}, {} blocks{}",
            s.stage,
            s.fraction,
            s.predicted_cost,
            s.actual_cost,
            s.blocks_drawn,
            if s.within_quota { "" } else { "  (past quota)" },
        );
    }
}
