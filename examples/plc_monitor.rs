//! The real-time motivation: "We are presently using the approach of
//! this paper to build a database system for programmable logic
//! controllers [OzHO 88]" — queries whose answers are only useful if
//! they arrive before a hard control deadline.
//!
//! ```sh
//! cargo run --release --example plc_monitor
//! ```
//!
//! A controller scans a table of sensor readings every cycle and must
//! answer "how many readings are out of tolerance?" within a
//! **250 ms hard deadline** — a stale answer is useless, so an
//! aborted stage's work is discarded and the last in-quota estimate
//! is reported. We run on the simulated *modern* device profile with
//! millisecond-scale quotas.

use std::time::Duration;

use eram_core::{Database, OneAtATimeInterval, StoppingCriterion};
use eram_relalg::{CmpOp, Expr, Predicate};
use eram_storage::{ColumnType, Schema, Tuple, Value};

fn main() {
    let mut db = Database::sim_modern(99);

    // readings(sensor_id, millivolts) — 2 million rows, 51 per block:
    // a full scan takes ~1 s on the simulated device, so a 250 ms
    // deadline genuinely forces sampling.
    let schema = Schema::new(vec![
        ("sensor_id", ColumnType::Int),
        ("millivolts", ColumnType::Int),
    ])
    .padded_to(20);
    db.load_relation(
        "readings",
        schema,
        (0..2_000_000).map(|i| {
            // ~1.2 % of readings drift out of the 4–6 V window.
            let mv = 5_000 + ((i * 37) % 2_000) - 1_000 + if i % 83 == 0 { 1_500 } else { 0 };
            Tuple::new(vec![Value::Int(i), Value::Int(mv)])
        }),
    )
    .expect("load readings");

    let out_of_tolerance = Expr::relation("readings").select(
        Predicate::col_cmp(1, CmpOp::Lt, 4_000).or(Predicate::col_cmp(1, CmpOp::Gt, 6_000)),
    );
    let truth = db.exact_count(&out_of_tolerance).expect("ground truth");
    println!("true out-of-tolerance readings: {truth}\n");

    // Five control cycles, each with a hard 250 ms budget. The PLC
    // trips an alarm if the estimated count exceeds the threshold.
    let alarm_threshold = 20_000.0;
    for cycle in 1..=5 {
        let result = db
            .count(out_of_tolerance.clone())
            .within(Duration::from_millis(250))
            .strategy(OneAtATimeInterval::new(24.0))
            .stopping(StoppingCriterion::HardDeadline)
            .seed(5_000 + cycle)
            .run()
            .expect("cycle query");
        let est = result.estimate.estimate;
        let (lo, hi) = result.estimate.ci(0.99);
        let status = if lo > alarm_threshold {
            "ALARM"
        } else if hi < alarm_threshold {
            "ok"
        } else {
            "uncertain → widen next cycle"
        };
        println!(
            "cycle {cycle}: est {est:>7.0} (99% CI [{lo:>6.0}, {hi:>6.0}]) \
             in {:>5.1?} of 250 ms quota, {} stages → {status}",
            result.report.total_elapsed,
            result.report.completed_stages(),
        );
        assert!(
            result.report.overspend() < Duration::from_millis(5),
            "hard deadline must hold to block granularity"
        );
    }
}
