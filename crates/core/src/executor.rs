//! The time-constrained query evaluation algorithm (Figure 3.1).
//!
//! "Essentially, the algorithm repetitively gets a set of sample disk
//! blocks and evaluates the estimator until the stopping criterion is
//! satisfied. Each iteration of the while-loop is called a *stage*,
//! and includes the steps of determining the sample size, retrieving
//! and evaluating the sample tuples, and computing an estimate of
//! COUNT(E)."
//!
//! [`execute_count`] drives the loop: it rewrites `COUNT(E)` by
//! inclusion–exclusion, compiles each term to a [`PhysTree`], arms
//! the [`Deadline`], and then alternates
//! Revise-Selectivities → Sample-Size-Determine → sample → evaluate →
//! estimate, adapting the cost-model coefficients from each stage's
//! measured step timings. Under a hard constraint the in-flight stage
//! is aborted the moment the quota expires (the paper's timer
//! interrupt) and its work is discarded from the answer.

use std::sync::Arc;
use std::time::Duration;

use eram_relalg::{push_selections, Catalog, Expr, ExprError, PieRewrite};
use eram_sampling::{
    AggregateEstimator, CountEstimate, DistinctCount, DistinctEstimator, Linear, SrsCount,
};
use eram_storage::{Deadline, DeviceOp, Disk, DiskStats, FaultStats, StorageError};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde_json::Value as JsonValue;

use crate::aggregate::{
    avg_estimate, sum_estimate, AggregateFn, GroupSnapshot, GroupedAccumulator, TermValues,
};
use crate::costs::{CostCoeff, CostModel};
use crate::obs::{MetricsRegistry, MetricsSnapshot, Phase, Profiler, Tracer};
use crate::ops::{
    BlockLayout, Fulfillment, MemoryMode, PhysTree, PlanOptions, StageEnv, StageError, StageHealth,
    DEFAULT_RUN_CACHE_TUPLES,
};
use crate::predict::{solve_fraction_with, SelPolicy};
use crate::report::{ExecutionReport, GroupReport, ReportHealth, StageReport};
use crate::retry::RetryPolicy;
use crate::seltrack::SelectivityDefaults;
use crate::stopping::StoppingCriterion;
use crate::strategy::StagePlan;
use crate::strategy::TimeControlStrategy;

/// Errors from setting up or running a time-constrained count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The expression failed validation or rewriting.
    Expr(ExprError),
    /// The aggregate function cannot be evaluated on this expression
    /// (AVG over union/difference, SUM/AVG over a projection root).
    UnsupportedAggregate(String),
    /// An unrecoverable storage fault ended the query. Transient
    /// faults are retried and lost clusters are absorbed by estimator
    /// renormalization before this is ever surfaced.
    Storage(StorageError),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Expr(e) => write!(f, "expression error: {e}"),
            EngineError::UnsupportedAggregate(msg) => {
                write!(f, "unsupported aggregate: {msg}")
            }
            EngineError::Storage(e) => write!(f, "storage error: {e}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ExprError> for EngineError {
    fn from(e: ExprError) -> Self {
        EngineError::Expr(e)
    }
}

impl From<StorageError> for EngineError {
    fn from(e: StorageError) -> Self {
        EngineError::Storage(e)
    }
}

/// Everything a time-constrained execution needs besides the query.
pub struct ExecParams<'a> {
    /// The time-control strategy.
    pub strategy: &'a dyn TimeControlStrategy,
    /// When to stop.
    pub stopping: StoppingCriterion,
    /// Initial cost-model coefficients (adapted during the run unless
    /// frozen).
    pub cost_model: CostModel,
    /// Stage-1 selectivity assumptions.
    pub defaults: SelectivityDefaults,
    /// Full or partial fulfillment for binary operators.
    pub fulfillment: Fulfillment,
    /// Disk-resident (the prototype) or main-memory evaluation.
    pub memory: MemoryMode,
    /// Seed for the block samplers.
    pub seed: u64,
    /// Safety cap on the number of stages.
    pub max_stages: usize,
    /// Distinct-count estimator for projection roots (the paper uses
    /// Goodman's).
    pub distinct: DistinctEstimator,
    /// When the leftover cannot fund a full-fulfillment stage, try a
    /// cheaper partial-fulfillment stage before giving up — the
    /// paper's suggestion ("the partial fulfillment sampling plan may
    /// have its place here to use the small amount of time left").
    pub hybrid_leftover: bool,
    /// Apply selection pushdown before compiling (on by default;
    /// semantically equivalence-preserving).
    pub optimize: bool,
    /// How transient storage faults are retried. Backoff is charged
    /// to the clock, so retries consume quota like real I/O.
    pub retry: RetryPolicy,
    /// Trace sink for stage-loop spans and events. Disabled by
    /// default; every emission site is a single branch when disabled.
    pub tracer: Tracer,
    /// Collect a [`MetricsSnapshot`] into `ExecutionReport::metrics`.
    /// Off by default; collection happens outside the stage loop
    /// (baseline before, deltas after), so it never touches the hot
    /// path.
    pub collect_metrics: bool,
    /// Phase profiler for the performance flight recorder. Disabled
    /// by default (one branch per site); when recording, a
    /// [`ProfileSnapshot`](crate::obs::ProfileSnapshot) lands in
    /// `ExecutionReport::profile`. Profiling is pure observation:
    /// seeded results are byte-identical with it on or off.
    pub profiler: Profiler,
    /// Worker threads for the pure-CPU portions of each stage (block
    /// decode, run merges). Charges, trace events, and deadline
    /// checks stay on the calling thread in canonical order, so a
    /// seeded run is byte-identical at any worker count; `1` (the
    /// default) runs everything inline.
    pub workers: usize,
    /// Bound (in tuples) on each binary node's decoded-run cache;
    /// `0` disables it. Old runs are still charged their block reads
    /// from file metadata and only skip the re-decode, so the cache
    /// is a wall-clock optimization: seeded results are
    /// byte-identical with it on or off.
    pub run_cache_tuples: usize,
    /// Decode target for sampled blocks: row tuples (the original
    /// path) or per-column typed arrays with bitmap selection. Like
    /// `workers`, a wall-clock-only choice — seeded reports and
    /// traces are byte-identical under either layout.
    pub block_layout: BlockLayout,
    /// Cooperative stage gate for interleaved serving: when set, the
    /// stage loop calls it once at the top of every iteration, letting
    /// the query server park this job until its turn at the (virtual)
    /// device comes up. Purely a scheduling hook — it must not charge
    /// the clock — so execution under a gate is byte-identical to
    /// `None` (the default, which runs stages back-to-back).
    pub stage_yield: Option<&'a (dyn Fn() + Sync)>,
}

impl<'a> ExecParams<'a> {
    /// Defaults: hard deadline, generic cost model, Figure 3.3
    /// selectivities, full fulfillment.
    pub fn new(strategy: &'a dyn TimeControlStrategy) -> Self {
        ExecParams {
            strategy,
            stopping: StoppingCriterion::HardDeadline,
            cost_model: CostModel::generic_default(),
            defaults: SelectivityDefaults::default(),
            fulfillment: Fulfillment::Full,
            memory: MemoryMode::DiskResident,
            seed: 0,
            max_stages: 1_000,
            distinct: DistinctEstimator::Goodman,
            hybrid_leftover: false,
            optimize: true,
            retry: RetryPolicy::default(),
            tracer: Tracer::disabled(),
            collect_metrics: false,
            profiler: Profiler::disabled(),
            workers: 1,
            run_cache_tuples: DEFAULT_RUN_CACHE_TUPLES,
            block_layout: BlockLayout::default(),
            stage_yield: None,
        }
    }
}

/// The result of a time-constrained count.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecOutcome {
    /// The estimate delivered to the caller (under a hard constraint,
    /// the one from the last stage that completed within the quota).
    pub estimate: CountEstimate,
    /// Full accounting of the run.
    pub report: ExecutionReport,
}

fn zero_estimate() -> CountEstimate {
    CountEstimate {
        estimate: 0.0,
        variance: 0.0,
        points_sampled: 0.0,
        total_points: 0.0,
    }
}

/// The count estimate for one compiled term in its current state —
/// `û = N·(y/m)` with the SRS variance for ordinary roots, Goodman's
/// estimator over group occupancies for projection roots.
pub fn term_estimate(tree: &PhysTree) -> CountEstimate {
    term_estimate_with(tree, DistinctEstimator::Goodman)
}

/// [`term_estimate`] with a configurable distinct-count estimator for
/// projection roots (Goodman is the paper's choice; Chao1/jackknife
/// are the stable alternatives).
pub fn term_estimate_with(tree: &PhysTree, distinct: DistinctEstimator) -> CountEstimate {
    let n = tree.total_points();
    let m = tree.points_covered();
    if m <= 0.0 {
        return CountEstimate {
            estimate: 0.0,
            variance: 0.0,
            points_sampled: 0.0,
            total_points: n,
        };
    }
    if let Some((child_out, child_points)) = tree.projection_child_stats() {
        // Projection root: Goodman's estimator over the sampled group
        // occupancies, with the pre-projection population size plugged
        // in from the child's own estimate ([HouO 88]'s refinement).
        // Variance: SRS plug-in on the distinct rate — a documented
        // approximation (the paper reports no closed-form Goodman
        // variance either).
        let occupancies = tree.occupancies().expect("projection root");
        let sample: u64 = occupancies.iter().sum();
        let child_sel = if child_points > 0.0 {
            child_out / child_points
        } else {
            0.0
        };
        let population = (n * child_sel).max(sample as f64);
        return DistinctCount {
            distinct,
            population,
            occupancies: &occupancies,
            points_sampled: m,
            total_points: n,
        }
        .snapshot();
    }
    SrsCount {
        total_points: n,
        points_sampled: m,
        ones: tree.ones_found(),
    }
    .snapshot()
}

/// Combines term estimates with their inclusion–exclusion
/// coefficients — a [`Linear`] composition in the estimator algebra
/// (terms treated as independent — they share leaf samples only when
/// the same relation occurs in several terms, and the paper's
/// variance bookkeeping makes the same simplification). Grouped
/// aggregates combine like their scalar counterpart: the composite
/// estimate is the whole-expression aggregate, with per-group
/// answers carried separately by the [`GroupedAccumulator`].
fn combine(
    coefficients: &[i64],
    trees: &[PhysTree],
    values: &[TermValues],
    agg: AggregateFn,
    distinct: DistinctEstimator,
) -> CountEstimate {
    let scalar = agg.scalar();
    if let AggregateFn::Avg { .. } = scalar {
        // Validated earlier: AVG has exactly one +1 term.
        let tree = &trees[0];
        return avg_estimate(
            tree.ones_found(),
            tree.points_covered(),
            tree.total_points(),
            &values[0],
        );
    }
    let mut linear = Linear::new();
    for ((&c, tree), tv) in coefficients.iter().zip(trees).zip(values) {
        let e = match scalar {
            AggregateFn::Count => term_estimate_with(tree, distinct),
            AggregateFn::Sum { .. } => sum_estimate(tree.total_points(), tree.points_covered(), tv),
            AggregateFn::Avg { .. } => unreachable!("handled above"),
            grouped => unreachable!("scalar() returned grouped aggregate {grouped}"),
        };
        linear.push(c, e);
    }
    linear.snapshot()
}

/// Storage counter values captured before the stage loop runs, so the
/// metrics snapshot reports this run's deltas rather than the disk's
/// lifetime totals.
type MetricsBaseline = (DiskStats, Option<(u64, u64)>, Option<FaultStats>);

/// Builds the metrics snapshot from storage-counter deltas and the
/// per-stage reports. Runs once, after the loop — never on the hot
/// path.
fn metrics_snapshot(
    disk: &Disk,
    baseline: MetricsBaseline,
    stages: &[StageReport],
    health: &StageHealth,
    blocks_drawn: u64,
) -> MetricsSnapshot {
    let (s0, cache0, faults0) = baseline;
    let s1 = disk.stats();
    let mut reg = MetricsRegistry::new();
    reg.add("storage.block_reads", s1.block_reads - s0.block_reads);
    reg.add("storage.block_writes", s1.block_writes - s0.block_writes);
    reg.add("storage.tuple_cpu", s1.tuple_cpu - s0.tuple_cpu);
    reg.add("storage.compares", s1.compares - s0.compares);
    reg.add(
        "storage.checksum_verifies",
        s1.checksum_verifies - s0.checksum_verifies,
    );
    if let Some((hits1, misses1)) = disk.cache_stats() {
        let (hits0, misses0) = cache0.unwrap_or((0, 0));
        reg.add("storage.cache_hits", hits1 - hits0);
        reg.add("storage.cache_misses", misses1 - misses0);
    }
    if let Some(f1) = disk.fault_stats() {
        let f0 = faults0.unwrap_or_default();
        reg.add(
            "storage.faults_transient",
            f1.transient_errors - f0.transient_errors,
        );
        reg.add(
            "storage.faults_corrupt",
            f1.corrupt_reads - f0.corrupt_reads,
        );
        reg.add(
            "storage.latency_spikes",
            f1.latency_spikes - f0.latency_spikes,
        );
    }
    reg.add("core.stages", stages.len() as u64);
    reg.add(
        "core.stages_completed",
        stages.iter().filter(|s| s.within_quota).count() as u64,
    );
    reg.add("core.faults_seen", health.faults_seen);
    reg.add("core.retries", health.retries);
    reg.add("core.blocks_lost", health.blocks_lost);
    reg.add("core.blocks_drawn", blocks_drawn);
    for s in stages {
        reg.observe("stage.actual_secs", s.actual_cost.as_secs_f64());
        reg.observe("stage.fraction", s.fraction);
        reg.observe("stage.blocks", s.blocks_drawn as f64);
        reg.observe("stage.variance", s.estimate.variance);
        reg.observe("stage.rel_half_width", s.estimate.relative_half_width(0.95));
        reg.observe("estimate.trajectory", s.estimate.estimate);
    }
    reg.snapshot()
}

/// Runs `COUNT(expr)` within `quota` against `catalog` on `disk`.
pub fn execute_count(
    disk: &Arc<Disk>,
    catalog: &Catalog,
    expr: &Expr,
    quota: Duration,
    params: ExecParams<'_>,
) -> Result<ExecOutcome, EngineError> {
    execute_aggregate(disk, catalog, expr, AggregateFn::Count, quota, params)
}

/// Runs `f(expr)` within `quota`, where `f` is COUNT, SUM, or AVG —
/// the paper's general problem statement with its COUNT restriction
/// lifted. SUM shares COUNT's machinery (it is additive, so the
/// inclusion–exclusion rewrite applies); AVG requires a
/// union/difference-free expression and no projection root.
pub fn execute_aggregate(
    disk: &Arc<Disk>,
    catalog: &Catalog,
    expr: &Expr,
    agg: AggregateFn,
    quota: Duration,
    params: ExecParams<'_>,
) -> Result<ExecOutcome, EngineError> {
    agg.validate(expr, catalog)?;
    // Normalize (selection pushdown shrinks every sorted run the
    // full-fulfillment plan re-merges), then transform f(E) into
    // Σᵢ cᵢ·f(Eᵢ') (Section 2).
    let optimized;
    let expr = if params.optimize {
        optimized = push_selections(expr.clone(), &|name| {
            catalog.schema_of(name).map(eram_storage::Schema::arity)
        });
        &optimized
    } else {
        expr
    };
    let rewrite = PieRewrite::rewrite(expr)?;
    if matches!(agg, AggregateFn::Avg { .. }) && !rewrite.is_trivial() {
        return Err(EngineError::UnsupportedAggregate(
            "AVG is not additive: the expression must be free of union/difference".into(),
        ));
    }
    if agg.group_by().is_some() && !rewrite.is_trivial() {
        return Err(EngineError::UnsupportedAggregate(
            "GROUP BY requires a union/difference-free expression".into(),
        ));
    }
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut trees: Vec<PhysTree> = Vec::with_capacity(rewrite.terms.len());
    let mut coefficients: Vec<i64> = Vec::with_capacity(rewrite.terms.len());
    for term in &rewrite.terms {
        trees.push(PhysTree::build(
            &term.expr,
            catalog,
            disk,
            &params.defaults,
            PlanOptions {
                fulfillment: params.fulfillment,
                memory: params.memory,
                run_cache_tuples: params.run_cache_tuples,
                block_layout: params.block_layout,
            },
            &mut rng,
        )?);
        coefficients.push(term.coefficient);
    }
    if (agg.column().is_some() || agg.group_by().is_some())
        && trees.iter().any(PhysTree::projection_root)
    {
        return Err(EngineError::UnsupportedAggregate(
            "SUM/AVG/GROUP BY over a projection's distinct groups is not supported".into(),
        ));
    }
    let mut values = vec![TermValues::default(); trees.len()];
    // GROUP BY state: the accumulator partitions qualifying tuples by
    // key, the bound (if any) drives per-group freezing, and the
    // delivered snapshots trail the last stage whose answer the
    // stopping discipline lets us hand out.
    let mut grouped = agg.group_by().map(|_| GroupedAccumulator::new());
    let group_bound = params.stopping.group_error_bound();
    let mut delivered_groups: Vec<GroupSnapshot> = Vec::new();
    let mut groups_converged = false;

    let tracer = params.tracer.clone();
    let profiler = params.profiler.clone();
    let baseline: Option<MetricsBaseline> = params
        .collect_metrics
        .then(|| (disk.stats(), disk.cache_stats(), disk.fault_stats()));
    let deadline = Deadline::new(disk.clock().clone(), quota);
    // The root span opens at the same clock instant the deadline is
    // armed and closes right as `total_elapsed` is read, so its
    // duration equals the report's elapsed time exactly.
    let root_span = tracer.span("execute");
    let hard = params.stopping.is_hard();
    // Value-function tail ([AbGM 88]): past the quota, keep going
    // only while the next stage is expected to raise
    // value(t) × precision. Ignored under a hard constraint.
    let value_tail = if hard {
        None
    } else {
        params
            .stopping
            .value_function()
            .filter(|zero_at| *zero_at > quota)
    };
    let mut model = params.cost_model;
    let mut stages: Vec<StageReport> = Vec::new();
    let mut history: Vec<CountEstimate> = Vec::new();
    let mut health = StageHealth::default();
    let mut hard_estimate = {
        let _phase = profiler.phase(Phase::EstimatorMath);
        combine(&coefficients, &trees, &values, agg, params.distinct)
    };

    if trees.is_empty() {
        // The rewrite proved COUNT(E) = 0 (e.g. E = A − A).
        tracer.event("stop", || {
            vec![("reason", JsonValue::from("empty_rewrite"))]
        });
        let metrics = baseline.map(|b| metrics_snapshot(disk, b, &stages, &health, 0));
        drop(root_span);
        let report = ExecutionReport {
            schema_version: crate::obs::SCHEMA_VERSION,
            quota,
            stages,
            total_elapsed: deadline.spent(),
            final_estimate: zero_estimate(),
            groups: Vec::new(),
            health: ReportHealth::default(),
            metrics,
            profile: profiler.snapshot(),
        };
        return Ok(ExecOutcome {
            estimate: zero_estimate(),
            report,
        });
    }

    let mut stop_reason = "max_stages";
    while stages.len() < params.max_stages {
        if let Some(gate) = params.stage_yield {
            gate();
        }
        if trees.iter().all(PhysTree::exhausted) {
            stop_reason = "census_complete";
            break; // census complete — the estimate is exact
        }
        let in_tail = value_tail.is_some() && deadline.expired();
        let remaining = match value_tail {
            Some(zero_at) if in_tail => zero_at.saturating_sub(deadline.spent()),
            _ => deadline.remaining(),
        };
        if remaining.is_zero() {
            stop_reason = "quota_exhausted";
            break;
        }
        let stage_no = stages.len() + 1;
        tracer.set_stage(stage_no);
        profiler.set_stage(stage_no);
        {
            let _phase = profiler.phase(Phase::SelectivityRevision);
            tracer.event("revise_selectivities", || {
                let sels = trees
                    .iter()
                    .map(|tree| {
                        let mut per_tree = Vec::new();
                        tree.for_each_tracker(&mut |t| {
                            per_tree.push(JsonValue::from(t.revised_selectivity()));
                        });
                        JsonValue::Array(per_tree)
                    })
                    .collect();
                vec![("selectivities", JsonValue::Array(sels))]
            });
        }
        let mut stage_fulfillment: Option<Fulfillment> = None;
        let planning_remaining = if in_tail {
            // A stage sized to the whole decay tail would finish at
            // zero value; offer the strategy only part of the tail so
            // a worthwhile (value × precision) trade exists, and let
            // the utility gate below judge it.
            Duration::from_secs_f64(remaining.as_secs_f64() * 0.5)
        } else {
            remaining
        };
        // The guard covers the hybrid re-planning fallback too; on a
        // `break` out of the match it closes with the loop scope.
        let planning_phase = profiler.phase(Phase::Planning);
        let plan = match params
            .strategy
            .plan_stage(&trees, &model, planning_remaining, stage_no)
        {
            Some(plan) => plan,
            None if params.hybrid_leftover
                && params.fulfillment == Fulfillment::Full
                && stage_no > 1 =>
            {
                // A full-fulfillment stage no longer fits; see if a
                // partial one squeezes into the leftover.
                let policy = SelPolicy::Mean;
                match solve_fraction_with(
                    &trees,
                    &model,
                    &policy,
                    remaining.as_secs_f64(),
                    0.05,
                    Some(Fulfillment::Partial),
                ) {
                    Some((fraction, p)) => {
                        stage_fulfillment = Some(Fulfillment::Partial);
                        StagePlan {
                            fraction,
                            predicted: Duration::from_secs_f64(p.cost_secs.max(0.0)),
                            predicted_blocks: p.blocks_drawn,
                        }
                    }
                    None => {
                        stop_reason = "leftover_too_small";
                        break;
                    }
                }
            }
            None => {
                // Leftover too small for another stage → wasted.
                stop_reason = "leftover_too_small";
                break;
            }
        };
        drop(planning_phase);
        tracer.event("plan_stage", || {
            vec![
                ("fraction", JsonValue::from(plan.fraction)),
                (
                    "predicted_ns",
                    JsonValue::from(plan.predicted.as_nanos() as u64),
                ),
                ("predicted_blocks", JsonValue::from(plan.predicted_blocks)),
                (
                    "fulfillment",
                    JsonValue::from(match stage_fulfillment {
                        Some(Fulfillment::Partial) => "partial",
                        _ => "full",
                    }),
                ),
            ]
        });
        if in_tail {
            // Marginal-utility gate: run the tail stage only if the
            // decayed value of a later, more precise answer beats
            // delivering the current one now.
            let zero_at = value_tail.expect("in_tail implies a tail");
            let now = deadline.spent();
            let current_est = {
                let _phase = profiler.phase(Phase::EstimatorMath);
                combine(&coefficients, &trees, &values, agg, params.distinct)
            };
            let precision_now = 1.0 / (1.0 + current_est.relative_half_width(0.95).min(1e9));
            let utility_now =
                StoppingCriterion::completion_value(quota, zero_at, now) * precision_now;
            // The CI half-width shrinks like √(m/(m+Δm)).
            let m = current_est.points_sampled.max(1.0);
            let dm = if current_est.points_sampled > 0.0 {
                let blocks_so_far: u64 = trees.iter().map(PhysTree::blocks_drawn).sum();
                plan.predicted_blocks / (blocks_so_far.max(1) as f64) * m
            } else {
                m
            };
            let projected_hw =
                current_est.relative_half_width(0.95).min(1e9) * (m / (m + dm)).sqrt();
            let t_after = now + plan.predicted;
            let utility_after =
                StoppingCriterion::completion_value(quota, zero_at, t_after) / (1.0 + projected_hw);
            if utility_after <= utility_now {
                stop_reason = "value_tail_unprofitable";
                break;
            }
        }

        let stage_start = deadline.spent();
        // Every charge this stage makes (overhead, reads, CPU, retry
        // backoff) lands between this span's endpoints, so its
        // duration equals `StageReport::actual_cost` and the stage
        // spans partition the run's charged time.
        let stage_span = tracer.span("stage");
        let blocks_before: u64 = trees.iter().map(PhysTree::blocks_drawn).sum();

        // The fixed per-stage bookkeeping, measured at run time.
        let t0 = disk.clock().elapsed();
        disk.charge(DeviceOp::StageOverhead);
        let overhead = disk.clock().elapsed() - t0;

        let mut env = StageEnv::new(disk.clone(), hard.then_some(&deadline), plan.fraction);
        env.fulfillment_override = stage_fulfillment;
        env.retry = params.retry;
        env.tracer = tracer.clone();
        env.profiler = profiler.clone();
        env.workers = params.workers.max(1);
        let mut aborted = false;
        let mut storage_failure: Option<StorageError> = None;
        for (tree, tv) in trees.iter_mut().zip(values.iter_mut()) {
            match tree.advance(&mut env) {
                Ok(delta) => {
                    // Value/group accumulation walks row tuples; a
                    // columnar delta (bare-leaf root under the
                    // columnar layout) materializes here. COUNT
                    // queries never look at the rows at all.
                    if agg.column().is_some() || grouped.is_some() {
                        let rows = delta.into_rows();
                        if let Some(col) = agg.column() {
                            tv.absorb(&rows, col);
                        }
                        if let Some(acc) = grouped.as_mut() {
                            let group = agg.group_by().expect("grouped accumulator implies a key");
                            acc.absorb(&rows, group, agg.column());
                        }
                    }
                }
                Err(StageError::Deadline) => {
                    aborted = true;
                    break;
                }
                Err(StageError::Storage(e)) => {
                    storage_failure = Some(e);
                    break;
                }
            }
        }
        health.absorb(env.health);
        if let Some(e) = storage_failure {
            // Not degradable (unknown file, schema mismatch, …): the
            // caller gets the error, not a silently wrong estimate.
            return Err(EngineError::Storage(e));
        }

        // Adapt the cost formulas from this stage's measured steps.
        model.observe(CostCoeff::StageOverhead, 1.0, overhead);
        for obs in &env.observations {
            model.observe(obs.coeff, obs.units, obs.elapsed);
        }

        let actual = deadline.spent() - stage_start;
        drop(stage_span);
        let blocks_after: u64 = trees.iter().map(PhysTree::blocks_drawn).sum();
        let estimate = {
            let _phase = profiler.phase(Phase::EstimatorMath);
            combine(&coefficients, &trees, &values, agg, params.distinct)
        };
        let within = !aborted && deadline.spent() <= quota;
        stages.push(StageReport {
            stage: stage_no,
            fraction: plan.fraction,
            predicted_cost: plan.predicted,
            actual_cost: actual,
            blocks_drawn: blocks_after - blocks_before,
            within_quota: within,
            estimate,
        });
        if within {
            hard_estimate = estimate;
            history.push(estimate);
        } else if !hard {
            // Soft constraint: the overrunning stage still delivers.
            history.push(estimate);
        }
        if let Some(acc) = grouped.as_mut() {
            // Grouped runs have a trivial rewrite, so the one term's
            // (N, m) accounting backs every group's estimator.
            let n = trees[0].total_points();
            let m = trees[0].points_covered();
            if within {
                if let Some((target, confidence, min_tuples)) = group_bound {
                    groups_converged =
                        acc.check_convergence(stage_no, agg, n, m, target, confidence, min_tuples);
                }
            }
            if within || !hard {
                // Mirror the estimate-history rule: a hard-deadline
                // abort must not leak post-quota group state, so the
                // delivered snapshots stay at the last banked stage.
                delivered_groups = acc.snapshots(agg, n, m);
            }
            tracer.stage_record("group_convergence", || {
                let snaps = acc.snapshots(agg, n, m);
                let mut keys = Vec::with_capacity(snaps.len());
                let mut estimates = Vec::with_capacity(snaps.len());
                let mut widths = Vec::with_capacity(snaps.len());
                let mut tuples = Vec::with_capacity(snaps.len());
                let mut frozen = Vec::with_capacity(snaps.len());
                for g in &snaps {
                    keys.push(JsonValue::from(g.key));
                    estimates.push(JsonValue::from(g.estimate.estimate));
                    widths.push(JsonValue::from(g.estimate.relative_half_width(0.95)));
                    tuples.push(JsonValue::from(g.tuples_seen));
                    frozen.push(JsonValue::from(g.frozen));
                }
                vec![
                    ("groups", JsonValue::from(snaps.len() as u64)),
                    (
                        "frozen",
                        JsonValue::from(snaps.iter().filter(|g| g.frozen).count() as u64),
                    ),
                    ("keys", JsonValue::Array(keys)),
                    ("estimates", JsonValue::Array(estimates)),
                    ("rel_half_widths", JsonValue::Array(widths)),
                    ("tuples_seen", JsonValue::Array(tuples)),
                    ("frozen_flags", JsonValue::Array(frozen)),
                    ("all_converged", JsonValue::from(groups_converged)),
                ]
            });
        }
        tracer.stage_record("convergence", || {
            let mut sels = Vec::new();
            for tree in &trees {
                tree.for_each_tracker(&mut |t| {
                    sels.push(JsonValue::from(t.revised_selectivity()));
                });
            }
            vec![
                ("estimate", JsonValue::from(estimate.estimate)),
                ("variance", JsonValue::from(estimate.variance)),
                (
                    "rel_half_width",
                    JsonValue::from(estimate.relative_half_width(0.95)),
                ),
                ("points_sampled", JsonValue::from(estimate.points_sampled)),
                ("blocks_total", JsonValue::from(blocks_after)),
                (
                    "blocks_stage",
                    JsonValue::from(blocks_after - blocks_before),
                ),
                ("fraction", JsonValue::from(plan.fraction)),
                (
                    "spent_ns",
                    JsonValue::from(deadline.spent().as_nanos() as u64),
                ),
                (
                    "remaining_ns",
                    JsonValue::from(deadline.remaining().as_nanos() as u64),
                ),
                ("within_quota", JsonValue::from(within)),
                ("selectivities", JsonValue::Array(sels)),
            ]
        });
        // One stopping check per executed stage, with the decision
        // recorded before the equivalent breaks run. `expired` and
        // `precision_satisfied` are pure reads, so pre-evaluating
        // them does not change loop behaviour.
        let stopping_phase = profiler.phase(Phase::StoppingCheck);
        let expired_now = deadline.expired() && value_tail.is_none();
        // For grouped runs, per-group convergence (every group frozen)
        // is a precision stop: the remaining quota has no loose group
        // left to spend on.
        let precision = params.stopping.precision_satisfied(&history) || groups_converged;
        tracer.event("stopping_check", || {
            vec![
                ("aborted", JsonValue::from(aborted)),
                ("deadline_expired", JsonValue::from(expired_now)),
                ("precision_satisfied", JsonValue::from(precision)),
                ("stop", JsonValue::from(aborted || expired_now || precision)),
            ]
        });
        drop(stopping_phase);
        if aborted {
            stop_reason = "aborted";
            break;
        }
        if expired_now {
            stop_reason = "quota_expired";
            break;
        }
        if precision {
            stop_reason = "precision_satisfied";
            break;
        }
    }
    tracer.event("stop", || vec![("reason", JsonValue::from(stop_reason))]);

    let delivered = if hard {
        hard_estimate
    } else {
        history.last().copied().unwrap_or(hard_estimate)
    };
    let health_report = ReportHealth {
        faults_seen: health.faults_seen,
        retries: health.retries,
        blocks_lost: health.blocks_lost,
        degraded: health.blocks_lost > 0,
        refusal: None,
    };
    let blocks_drawn: u64 = trees.iter().map(PhysTree::blocks_drawn).sum();
    let metrics = baseline.map(|b| metrics_snapshot(disk, b, &stages, &health, blocks_drawn));
    // A completed census makes every still-live group's estimate
    // exact (its variance formulas collapse at m = N) — the
    // small-group fallback. Frozen groups keep their honest sampled
    // snapshot from the stage they converged.
    let census = stop_reason == "census_complete";
    let groups: Vec<GroupReport> = delivered_groups
        .iter()
        .map(|g| GroupReport {
            key: g.key,
            estimate: g.estimate,
            tuples_seen: g.tuples_seen,
            converged_at_stage: g.converged_at,
            exact: census && !g.frozen,
        })
        .collect();
    drop(root_span);
    let report = ExecutionReport {
        schema_version: crate::obs::SCHEMA_VERSION,
        quota,
        stages,
        total_elapsed: deadline.spent(),
        final_estimate: hard_estimate,
        groups,
        health: health_report,
        metrics,
        profile: profiler.snapshot(),
    };
    Ok(ExecOutcome {
        estimate: delivered,
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::{TraceKind, TraceRecord};
    use crate::strategy::OneAtATimeInterval;
    use eram_relalg::{eval, CmpOp, Predicate};
    use eram_storage::{ColumnType, DeviceProfile, HeapFile, Schema, SimClock, Tuple, Value};

    fn setup(jitter: bool) -> (Arc<Disk>, Catalog) {
        let profile = if jitter {
            DeviceProfile::sun_3_60()
        } else {
            DeviceProfile::sun_3_60().without_jitter()
        };
        let disk = Disk::new(Arc::new(SimClock::new()), profile, 23);
        let mut cat = Catalog::new();
        for (name, stride) in [("r", 1i64), ("s", 2i64)] {
            let schema =
                Schema::new(vec![("a", ColumnType::Int), ("b", ColumnType::Int)]).padded_to(200);
            let hf = HeapFile::load(
                disk.clone(),
                schema,
                (0..10_000).map(|i| Tuple::new(vec![Value::Int(i * stride), Value::Int(i % 100)])),
            )
            .unwrap();
            cat.register(name, hf);
        }
        (disk, cat)
    }

    fn run(
        disk: &Arc<Disk>,
        cat: &Catalog,
        expr: &Expr,
        quota: Duration,
        stopping: StoppingCriterion,
        d_beta: f64,
    ) -> ExecOutcome {
        let strategy = OneAtATimeInterval::new(d_beta);
        let mut params = ExecParams::new(&strategy);
        params.stopping = stopping;
        params.seed = 99;
        execute_count(disk, cat, expr, quota, params).unwrap()
    }

    #[test]
    fn select_estimate_lands_near_truth_within_quota() {
        let (disk, cat) = setup(false);
        let expr = Expr::relation("r").select(Predicate::col_cmp(1, CmpOp::Lt, 50));
        let truth = eval::exact_count(&expr, &cat).unwrap() as f64; // 5000
        let out = run(
            &disk,
            &cat,
            &expr,
            Duration::from_secs(10),
            StoppingCriterion::HardDeadline,
            12.0,
        );
        assert!(out.report.completed_stages() >= 1);
        assert!(out.report.utilization() > 0.3);
        let rel_err = (out.estimate.estimate - truth).abs() / truth;
        assert!(
            rel_err < 0.35,
            "estimate {} vs truth {truth} (rel err {rel_err})",
            out.estimate.estimate
        );
        // Hard constraint: the delivered answer existed at the quota.
        assert_eq!(out.estimate, out.report.final_estimate);
    }

    #[test]
    fn soft_deadline_lets_overrunning_stage_finish() {
        let (disk, cat) = setup(true);
        let expr = Expr::relation("r").select(Predicate::col_cmp(1, CmpOp::Lt, 50));
        let out = run(
            &disk,
            &cat,
            &expr,
            Duration::from_secs(5),
            StoppingCriterion::SoftDeadline,
            0.0,
        );
        // No stage was aborted: every reported stage has its full
        // actual cost and an estimate.
        for s in &out.report.stages {
            assert!(s.actual_cost > Duration::ZERO);
        }
    }

    #[test]
    fn hard_deadline_never_delivers_post_quota_work() {
        let (disk, cat) = setup(true);
        let expr = Expr::relation("r").select(Predicate::col_cmp(1, CmpOp::Lt, 50));
        let out = run(
            &disk,
            &cat,
            &expr,
            Duration::from_secs(3),
            StoppingCriterion::HardDeadline,
            0.0,
        );
        // Abort granularity is one block, so the overshoot must be
        // tiny compared to the quota.
        assert!(out.report.overspend() < Duration::from_millis(300));
        assert!(out.report.utilization() <= 1.0);
    }

    #[test]
    fn error_bound_stops_early_with_time_left() {
        let (disk, cat) = setup(false);
        let expr = Expr::relation("r").select(Predicate::col_cmp(1, CmpOp::Lt, 50));
        let out = run(
            &disk,
            &cat,
            &expr,
            Duration::from_secs(3_600),
            StoppingCriterion::Combined(vec![
                StoppingCriterion::HardDeadline,
                StoppingCriterion::ErrorBound {
                    target: 0.10,
                    confidence: 0.95,
                },
            ]),
            12.0,
        );
        assert!(
            out.report.total_elapsed < Duration::from_secs(3_600),
            "should stop long before the huge quota"
        );
        assert!(out.estimate.relative_half_width(0.95) <= 0.10);
    }

    #[test]
    fn census_terminates_loop_with_exact_answer() {
        let (disk, cat) = setup(false);
        let expr = Expr::relation("r").select(Predicate::col_cmp(1, CmpOp::Lt, 50));
        let truth = eval::exact_count(&expr, &cat).unwrap() as f64;
        // Quota vastly exceeding a full scan.
        let out = run(
            &disk,
            &cat,
            &expr,
            Duration::from_secs(100_000),
            StoppingCriterion::HardDeadline,
            0.0,
        );
        assert!((out.estimate.estimate - truth).abs() < 1e-6);
        assert_eq!(out.estimate.variance, 0.0);
    }

    #[test]
    fn union_query_runs_through_pie() {
        let (disk, cat) = setup(false);
        // r ∪ s: the engine must evaluate three terms (r, s, r∩s).
        let expr = Expr::relation("r").union(Expr::relation("s"));
        let truth = eval::exact_count(&expr, &cat).unwrap() as f64; // 15000
        let out = run(
            &disk,
            &cat,
            &expr,
            Duration::from_secs(30),
            StoppingCriterion::HardDeadline,
            12.0,
        );
        assert!(out.report.completed_stages() >= 1);
        let rel = (out.estimate.estimate - truth).abs() / truth;
        assert!(rel < 0.5, "estimate {} vs {truth}", out.estimate.estimate);
    }

    #[test]
    fn self_difference_short_circuits_to_zero() {
        let (disk, cat) = setup(false);
        let expr = Expr::relation("r").difference(Expr::relation("r"));
        let out = run(
            &disk,
            &cat,
            &expr,
            Duration::from_secs(5),
            StoppingCriterion::HardDeadline,
            12.0,
        );
        assert_eq!(out.estimate.estimate, 0.0);
        assert!(out.report.stages.is_empty());
    }

    #[test]
    fn impossible_quota_yields_zero_sample_answer() {
        let (disk, cat) = setup(false);
        let expr = Expr::relation("r").select(Predicate::True);
        let out = run(
            &disk,
            &cat,
            &expr,
            Duration::from_millis(1),
            StoppingCriterion::HardDeadline,
            12.0,
        );
        assert_eq!(out.report.completed_stages(), 0);
        assert_eq!(out.estimate.points_sampled, 0.0);
    }

    #[test]
    fn determinism_under_fixed_seed() {
        let expr = Expr::relation("r").select(Predicate::col_cmp(1, CmpOp::Lt, 50));
        let mut results = Vec::new();
        for _ in 0..2 {
            let (disk, cat) = setup(true);
            let out = run(
                &disk,
                &cat,
                &expr,
                Duration::from_secs(5),
                StoppingCriterion::SoftDeadline,
                12.0,
            );
            results.push((
                out.estimate.estimate.to_bits(),
                out.report.completed_stages(),
                out.report.blocks_evaluated(),
            ));
        }
        assert_eq!(results[0], results[1]);
    }

    #[test]
    fn projection_query_uses_goodman() {
        let (disk, cat) = setup(false);
        let expr = Expr::relation("r").project(vec![1]); // 100 distinct
        let out = run(
            &disk,
            &cat,
            &expr,
            Duration::from_secs(20),
            StoppingCriterion::HardDeadline,
            12.0,
        );
        // Goodman is high-variance, but with a paper-scale sample the
        // estimate must be in a sane range around 100.
        assert!(out.estimate.estimate >= 50.0, "{}", out.estimate.estimate);
        assert!(out.estimate.estimate <= 10_000.0);
    }

    #[test]
    fn selection_pushdown_buys_more_sample_for_the_same_quota() {
        // σ over a join: pushed down, the runs the join re-merges are
        // ~100× smaller, so the same quota covers more blocks.
        let run = |optimize: bool| {
            let (disk, cat) = setup(false);
            let expr = Expr::relation("r")
                .join(Expr::relation("s"), vec![(0, 0)])
                .select(Predicate::col_cmp(1, CmpOp::Lt, 1));
            let strategy = OneAtATimeInterval::new(12.0);
            let mut params = ExecParams::new(&strategy);
            params.stopping = StoppingCriterion::SoftDeadline;
            params.seed = 3;
            params.optimize = optimize;
            execute_count(&disk, &cat, &expr, Duration::from_secs(5), params).unwrap()
        };
        let plain = run(false);
        let pushed = run(true);
        assert!(
            pushed.report.blocks_evaluated() >= plain.report.blocks_evaluated(),
            "pushed {} vs plain {} blocks",
            pushed.report.blocks_evaluated(),
            plain.report.blocks_evaluated()
        );
    }

    #[test]
    fn value_function_tail_extends_past_quota_but_not_to_zero_value() {
        let (disk, cat) = setup(true);
        let expr = Expr::relation("r").select(Predicate::col_cmp(1, CmpOp::Lt, 50));
        let quota = Duration::from_secs(4);
        let zero_at = Duration::from_secs(12);
        let strategy = OneAtATimeInterval::new(12.0);
        let mut params = ExecParams::new(&strategy);
        params.stopping = StoppingCriterion::ValueFunction {
            zero_value_at: zero_at,
        };
        params.seed = 21;
        let out = execute_count(&disk, &cat, &expr, quota, params).unwrap();
        // The decaying tail may buy extra stages past the quota, but
        // running to the zero-value point would be irrational.
        assert!(out.report.total_elapsed < zero_at);
        // The delivered (soft) estimate includes the tail work.
        let last = out.report.stages.last().unwrap();
        assert_eq!(out.estimate, last.estimate);
        // Sanity: the answer is usable.
        assert!(out.estimate.points_sampled > 0.0);
    }

    #[test]
    fn value_function_with_no_tail_behaves_like_soft() {
        let (disk, cat) = setup(false);
        let expr = Expr::relation("r").select(Predicate::col_cmp(1, CmpOp::Lt, 50));
        let quota = Duration::from_secs(4);
        let strategy = OneAtATimeInterval::new(12.0);
        let mut params = ExecParams::new(&strategy);
        // zero_value_at == quota: the filter drops the tail entirely.
        params.stopping = StoppingCriterion::ValueFunction {
            zero_value_at: quota,
        };
        params.seed = 5;
        let out = execute_count(&disk, &cat, &expr, quota, params).unwrap();
        assert!(out.report.total_elapsed <= quota + Duration::from_secs(1));
    }

    #[test]
    fn hybrid_leftover_buys_extra_partial_stage() {
        // Intersection with a quota whose leftover after the usual
        // stages cannot fund a full-fulfillment stage. With the
        // hybrid enabled, a partial stage uses it.
        let run = |hybrid: bool| {
            let (disk, cat) = setup(false);
            let expr = Expr::relation("r").intersect(Expr::relation("s"));
            let strategy = OneAtATimeInterval::new(48.0);
            let mut params = ExecParams::new(&strategy);
            params.stopping = StoppingCriterion::SoftDeadline;
            params.seed = 13;
            params.hybrid_leftover = hybrid;
            execute_count(&disk, &cat, &expr, Duration::from_secs_f64(2.5), params).unwrap()
        };
        let plain = run(false);
        let hybrid = run(true);
        assert!(
            hybrid.report.blocks_evaluated() >= plain.report.blocks_evaluated(),
            "hybrid {} vs plain {} blocks",
            hybrid.report.blocks_evaluated(),
            plain.report.blocks_evaluated()
        );
        assert!(hybrid.report.utilization() >= plain.report.utilization() - 1e-9);
    }

    #[test]
    fn faults_degrade_the_report_not_the_deadline() {
        let (disk, cat) = setup(false);
        disk.set_fault_plan(
            eram_storage::FaultPlan::new(31)
                .with_transient(0.10)
                .with_corruption(0.05),
        );
        let expr = Expr::relation("r").select(Predicate::col_cmp(1, CmpOp::Lt, 50));
        let out = run(
            &disk,
            &cat,
            &expr,
            Duration::from_secs(10),
            StoppingCriterion::HardDeadline,
            12.0,
        );
        let h = out.report.health;
        assert!(h.faults_seen > 0, "10%+5% rates must fault");
        assert_eq!(h.degraded, h.blocks_lost > 0);
        // The hard deadline still holds at block granularity.
        assert!(out.report.overspend() < Duration::from_millis(300));
        assert!(out.estimate.estimate >= 0.0);
    }

    #[test]
    fn fault_free_run_reports_clean_health() {
        let (disk, cat) = setup(false);
        let expr = Expr::relation("r").select(Predicate::col_cmp(1, CmpOp::Lt, 50));
        let out = run(
            &disk,
            &cat,
            &expr,
            Duration::from_secs(5),
            StoppingCriterion::HardDeadline,
            12.0,
        );
        assert_eq!(out.report.health, crate::report::ReportHealth::default());
        assert!(!out.report.health.degraded);
    }

    #[test]
    fn fault_injection_replays_bit_identically() {
        let expr = Expr::relation("r").select(Predicate::col_cmp(1, CmpOp::Lt, 50));
        let mut results = Vec::new();
        for _ in 0..2 {
            let (disk, cat) = setup(true);
            disk.set_fault_plan(
                eram_storage::FaultPlan::new(47)
                    .with_transient(0.08)
                    .with_corruption(0.02),
            );
            let out = run(
                &disk,
                &cat,
                &expr,
                Duration::from_secs(8),
                StoppingCriterion::HardDeadline,
                12.0,
            );
            results.push((
                out.estimate.estimate.to_bits(),
                out.report.health,
                out.report.completed_stages(),
                out.report.blocks_evaluated(),
            ));
        }
        assert_eq!(results[0], results[1]);
    }

    #[test]
    fn trace_and_metrics_capture_the_run() {
        let (disk, cat) = setup(false);
        let expr = Expr::relation("r").select(Predicate::col_cmp(1, CmpOp::Lt, 50));
        let tracer = Tracer::recording(disk.clock().clone());
        let strategy = OneAtATimeInterval::new(12.0);
        let mut params = ExecParams::new(&strategy);
        params.seed = 99;
        params.tracer = tracer.clone();
        params.collect_metrics = true;
        let out = execute_count(&disk, &cat, &expr, Duration::from_secs(10), params).unwrap();

        let records = tracer.records();
        assert!(!records.is_empty());
        // One stage span end per reported stage, each with the stage's
        // charged duration.
        let stage_ends: Vec<&TraceRecord> = records
            .iter()
            .filter(|r| r.kind == TraceKind::End && r.name == "stage")
            .collect();
        assert_eq!(stage_ends.len(), out.report.stages.len());
        let span_sum: u64 = stage_ends.iter().map(|r| r.dur_ns.unwrap()).sum();
        assert_eq!(
            span_sum,
            out.report.total_elapsed.as_nanos() as u64,
            "stage spans must partition the charged time"
        );
        // The root span covers the whole execution.
        let root = records
            .iter()
            .find(|r| r.kind == TraceKind::End && r.name == "execute")
            .unwrap();
        assert_eq!(
            root.dur_ns.unwrap(),
            out.report.total_elapsed.as_nanos() as u64
        );
        // Exactly one stopping check per executed stage and one
        // terminal stop event.
        let checks = records
            .iter()
            .filter(|r| r.name == "stopping_check")
            .count();
        assert_eq!(checks, out.report.stages.len());
        assert_eq!(records.iter().filter(|r| r.name == "stop").count(), 1);

        let metrics = out.report.metrics.as_ref().unwrap();
        assert_eq!(
            metrics.counter("core.stages"),
            out.report.stages.len() as u64
        );
        assert_eq!(
            metrics.counter("core.stages_completed"),
            out.report.completed_stages() as u64
        );
        assert!(metrics.counter("storage.block_reads") > 0);
        assert_eq!(
            metrics.histogram("stage.actual_secs").map(|h| h.count),
            Some(out.report.stages.len() as u64)
        );
    }

    #[test]
    fn disabled_tracer_leaves_reports_unchanged() {
        let expr = Expr::relation("r").select(Predicate::col_cmp(1, CmpOp::Lt, 50));
        let base = {
            let (disk, cat) = setup(false);
            run(
                &disk,
                &cat,
                &expr,
                Duration::from_secs(5),
                StoppingCriterion::HardDeadline,
                12.0,
            )
        };
        let traced = {
            let (disk, cat) = setup(false);
            let strategy = OneAtATimeInterval::new(12.0);
            let mut params = ExecParams::new(&strategy);
            params.stopping = StoppingCriterion::HardDeadline;
            params.seed = 99;
            params.tracer = Tracer::recording(disk.clock().clone());
            params.collect_metrics = true;
            execute_count(&disk, &cat, &expr, Duration::from_secs(5), params).unwrap()
        };
        // Tracing/metrics are pure observation: identical clock
        // charges, identical estimate.
        assert_eq!(
            base.estimate.estimate.to_bits(),
            traced.estimate.estimate.to_bits()
        );
        assert_eq!(base.report.total_elapsed, traced.report.total_elapsed);
        assert_eq!(base.report.stages, traced.report.stages);
    }

    #[test]
    fn profiling_is_pure_observation_at_any_worker_count() {
        if serde_json::to_string(&0u32).is_err() {
            eprintln!("skipped: offline serde stub cannot serialize");
            return;
        }
        let expr = Expr::relation("r").select(Predicate::col_cmp(1, CmpOp::Lt, 50));
        let run_with = |profile: bool, workers: usize| {
            let (disk, cat) = setup(false);
            let strategy = OneAtATimeInterval::new(12.0);
            let mut params = ExecParams::new(&strategy);
            params.stopping = StoppingCriterion::HardDeadline;
            params.seed = 99;
            params.workers = workers;
            let tracer = Tracer::recording(disk.clock().clone());
            params.tracer = tracer.clone();
            if profile {
                params.profiler = Profiler::recording(disk.clock().clone());
            }
            let out = execute_count(&disk, &cat, &expr, Duration::from_secs(5), params).unwrap();
            (out, tracer.to_jsonl())
        };
        let (base, base_trace) = run_with(false, 1);
        assert!(base.report.profile.is_none());
        for workers in [1usize, 4] {
            let (prof, prof_trace) = run_with(true, workers);
            // Identical simulated results: same estimate bits, same
            // charged time, same stage reports, byte-identical trace.
            assert_eq!(
                base.estimate.estimate.to_bits(),
                prof.estimate.estimate.to_bits(),
                "workers={workers}"
            );
            assert_eq!(base.report.total_elapsed, prof.report.total_elapsed);
            assert_eq!(base.report.stages, prof.report.stages);
            assert_eq!(base_trace, prof_trace, "workers={workers}");
            // The report differs only in the profile payload: strip
            // it and the JSON must match byte for byte.
            let mut a = serde_json::to_value(&base.report).unwrap();
            let mut b = serde_json::to_value(&prof.report).unwrap();
            a.as_object_mut().unwrap().remove("profile");
            b.as_object_mut().unwrap().remove("profile");
            assert_eq!(a, b, "workers={workers}");
            assert!(prof.report.profile.is_some());
        }
    }

    #[test]
    fn profile_snapshot_attributes_the_stage_loop() {
        let (disk, cat) = setup(false);
        let expr = Expr::relation("r").select(Predicate::col_cmp(1, CmpOp::Lt, 50));
        let strategy = OneAtATimeInterval::new(12.0);
        let mut params = ExecParams::new(&strategy);
        params.stopping = StoppingCriterion::HardDeadline;
        params.seed = 99;
        params.profiler = Profiler::recording(disk.clock().clone());
        let out = execute_count(&disk, &cat, &expr, Duration::from_secs(5), params).unwrap();
        let snap = out.report.profile.as_ref().unwrap();
        assert_eq!(snap.schema_version, crate::obs::SCHEMA_VERSION);
        // Engine-level phases fire once per stage at minimum.
        for phase in [Phase::Planning, Phase::StoppingCheck, Phase::EstimatorMath] {
            let stats = snap
                .phases
                .get(phase.name())
                .unwrap_or_else(|| panic!("missing phase {}", phase.name()));
            assert!(stats.calls > 0, "{} has no calls", phase.name());
        }
        // Leaf work lands under the leaf operator, engine work under
        // the engine pseudo-operator.
        let leaf = snap.per_operator.get("leaf").expect("leaf operator cell");
        assert!(leaf.contains_key(Phase::RngDraw.name()));
        assert!(leaf.contains_key(Phase::BlockDecode.name()));
        assert!(snap.per_operator.contains_key(crate::obs::ENGINE_OPERATOR));
        // Per-stage attribution covers every executed stage index,
        // plus at most the stage-0 preamble and a final stage that
        // entered planning but stopped before reporting (e.g.
        // leftover_too_small).
        assert!(!snap.per_stage.is_empty());
        assert!(snap.per_stage.len() <= out.report.stages.len() + 2);
        // RNG draws charge simulated time (the sampler charges the
        // clock inside the instrumented region), so sim attribution
        // is non-zero overall.
        assert!(snap.total_sim_ns() > 0);
        assert!(snap.total_wall_ns() > 0);
        let top = snap.top_phases(3);
        assert!(!top.is_empty() && top.len() <= 3);
        // Ranking is by wall time, descending.
        for pair in top.windows(2) {
            assert!(pair[0].1.wall_ns >= pair[1].1.wall_ns);
        }
    }

    #[test]
    fn join_query_estimates_reasonably() {
        let (disk, cat) = setup(false);
        let expr = Expr::relation("r").join(Expr::relation("s"), vec![(0, 0)]);
        let truth = eval::exact_count(&expr, &cat).unwrap() as f64; // 5000
        let strategy = OneAtATimeInterval::new(12.0);
        let mut params = ExecParams::new(&strategy);
        params.defaults = SelectivityDefaults::paper_join_experiment();
        params.seed = 7;
        let out = execute_count(&disk, &cat, &expr, Duration::from_secs(30), params).unwrap();
        assert!(out.report.completed_stages() >= 1);
        // Join sampling on a sparse key space is noisy; require the
        // right order of magnitude.
        assert!(
            out.estimate.estimate < truth * 10.0,
            "estimate {} vs truth {truth}",
            out.estimate.estimate
        );
    }
}
