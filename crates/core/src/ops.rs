//! Sample-space physical operators (Section 4, Figures 4.3–4.7).
//!
//! A PIE term (a Select–Join–Intersect–Project expression) compiles to
//! a [`PhysTree`] whose nodes evaluate *deltas*: at each stage every
//! leaf draws new disk blocks (cluster sampling without replacement)
//! and each operator produces the new output tuples implied by the new
//! inputs.
//!
//! Binary operators implement the paper's **fulfillment plans**: under
//! *full fulfillment*, a stage-`s` sample is combined with every
//! sample of stages `1..s` of the other side (Figure 4.5's
//! `F₁ᵢ ↔ F₂ₖ` grid — "not only between the current samples, but also
//! between the current and all previous ones"), making "the most use
//! of the sampled data ... at the cost of keeping all intermediate
//! results". Under *partial fulfillment* ([HoOT 88a], reconstructed)
//! only same-stage samples are combined — cheaper per stage, fewer
//! points covered.
//!
//! All operators are sort-based, mirroring the algorithms whose cost
//! formulas the time-control strategies evaluate: binary operators
//! write their incoming deltas to temporary files, sort them, and
//! merge sorted runs pairwise (eqs. 4.2–4.4); projection sorts and
//! deduplicates against the cumulative distinct file (Figure 4.7),
//! maintaining group occupancies for Goodman's estimator. Every step
//! charges the device clock *and* reports its measured duration so
//! the adaptive cost model can re-fit its coefficients.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

use eram_relalg::{Catalog, Expr, ExprError, OpKind, Predicate};
use eram_sampling::BlockSampler;
use eram_storage::{
    Block, ColumnarBlock, Deadline, DeviceOp, Disk, HeapFile, RunCache, Schema, StorageError, Tuple,
};
use rand::rngs::StdRng;
use rand::Rng;
use serde_json::Value as JsonValue;

use crate::costs::CostCoeff;
use crate::kernel::{merge_keyed, sort_run, sort_run_with_keys, KeyColumn, KeySpec, MergeKind};
use crate::obs::{Phase, Profiler, Tracer};
use crate::parallel::map_ordered;
use crate::retry::RetryPolicy;
use crate::seltrack::{SelTracker, SelectivityDefaults};

/// Which sample combinations binary operators evaluate each stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Fulfillment {
    /// Combine the new sample with all previous samples of the other
    /// side (the paper's implemented plan).
    #[default]
    Full,
    /// Combine only same-stage samples ([HoOT 88a]'s cheaper plan).
    Partial,
}

/// Where intermediate results live during evaluation.
///
/// The paper's prototype keeps "all the input relations and all the
/// intermediate relations ... always on disks", motivated by very
/// large databases; it also announces a main-memory variant: "after
/// samples are taken, all data processing is confined to the main
/// memory ... the sampling approach with a time-control mechanism
/// can be efficiently implemented and will be very promising for
/// real-time database applications". Both are implemented.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MemoryMode {
    /// Intermediate results are written to and re-read from disk
    /// (the prototype's design; the Section 4 cost formulas).
    #[default]
    DiskResident,
    /// After sample blocks are read, all processing stays in memory:
    /// no temporary files, no output materialization.
    MainMemory,
}

/// How sampled blocks are decoded and flowed between operators.
///
/// Both layouts decode the same on-disk fixed-width pages and produce
/// byte-identical reports and traces — the layout changes only *how*
/// the pure-CPU operator kernels traverse a stage's data, never what
/// they compute or charge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BlockLayout {
    /// Blocks decode to row [`Tuple`]s; operators walk tuples (the
    /// original path, kept verbatim as the oracle).
    #[default]
    Row,
    /// Blocks decode to per-column typed arrays ([`ColumnarBlock`]):
    /// selection evaluates a per-column bitmap and materializes only
    /// surviving rows; merge keys are read straight off key columns.
    Columnar,
}

/// Default [`PlanOptions::run_cache_tuples`] bound: one million tuples
/// (~200 MB of decoded 200-byte paper tuples) shared per binary node.
pub const DEFAULT_RUN_CACHE_TUPLES: usize = 1 << 20;

/// How a term is compiled: fulfillment plan + memory mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanOptions {
    /// Which sample pairs binary operators evaluate.
    pub fulfillment: Fulfillment,
    /// Where intermediate results live.
    pub memory: MemoryMode,
    /// Bound (in tuples) on each binary node's decoded-run cache; `0`
    /// disables it. Full fulfillment re-reads every old run once per
    /// new stage; the cache serves those re-reads from memory while
    /// still charging the exact block reads the uncached path would,
    /// so it is a wall-clock-only optimization — simulated results
    /// are byte-identical either way.
    pub run_cache_tuples: usize,
    /// How sampled blocks are decoded and traversed. Like the worker
    /// count and the run cache, a wall-clock-only choice: reports and
    /// traces are byte-identical under either layout.
    pub block_layout: BlockLayout,
}

impl Default for PlanOptions {
    fn default() -> Self {
        PlanOptions {
            fulfillment: Fulfillment::default(),
            memory: MemoryMode::default(),
            run_cache_tuples: DEFAULT_RUN_CACHE_TUPLES,
            block_layout: BlockLayout::default(),
        }
    }
}

impl From<Fulfillment> for PlanOptions {
    fn from(fulfillment: Fulfillment) -> Self {
        PlanOptions {
            fulfillment,
            ..PlanOptions::default()
        }
    }
}

/// Why a stage ended before completing its planned work.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StageError {
    /// The stage was cut short by the hard deadline; the query is
    /// over and the estimate so far is the answer.
    Deadline,
    /// An unrecoverable storage fault that is neither transient (the
    /// retry policy gave up on those by dropping the block) nor a
    /// lost cluster (absorbed by estimator renormalization) — e.g. an
    /// unknown file or a schema mismatch. The query fails.
    Storage(StorageError),
}

impl std::fmt::Display for StageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StageError::Deadline => write!(f, "stage aborted by the hard deadline"),
            StageError::Storage(e) => write!(f, "stage failed on storage error: {e}"),
        }
    }
}

impl std::error::Error for StageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StageError::Deadline => None,
            StageError::Storage(e) => Some(e),
        }
    }
}

/// Fault-handling counters accumulated while evaluating one stage.
///
/// `blocks_lost` counts clusters dropped from the sample — blocks
/// whose transient faults outlasted the retry budget plus blocks that
/// failed checksum verification. The estimator renormalizes over the
/// surviving blocks automatically, because `points_covered` only ever
/// counts tuples actually read.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageHealth {
    /// Storage faults observed (transient errors + corrupt reads).
    pub faults_seen: u64,
    /// Read attempts re-issued after a transient fault.
    pub retries: u64,
    /// Blocks dropped from the sample as unrecoverable.
    pub blocks_lost: u64,
}

impl StageHealth {
    /// Adds another stage's counters into this one.
    pub fn absorb(&mut self, other: StageHealth) {
        self.faults_seen += other.faults_seen;
        self.retries += other.retries;
        self.blocks_lost += other.blocks_lost;
    }
}

/// One measured operator step, for cost-model adaptation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepObservation {
    /// Which coefficient the step exercises.
    pub coeff: CostCoeff,
    /// How many units of it.
    pub units: f64,
    /// Measured duration.
    pub elapsed: Duration,
}

/// Mutable per-stage environment threaded through `advance`.
pub struct StageEnv<'a> {
    /// The device (charges the clock).
    pub disk: Arc<Disk>,
    /// Hard deadline to honour mid-stage, if any.
    pub deadline: Option<&'a Deadline>,
    /// Sample fraction of this stage.
    pub fraction: f64,
    /// Overrides every binary operator's fulfillment plan for this
    /// stage (the paper's leftover trick: "the partial fulfillment
    /// sampling plan may have its place here to use the small amount
    /// of time left").
    pub fulfillment_override: Option<Fulfillment>,
    /// Collected step timings.
    pub observations: Vec<StepObservation>,
    /// How transient storage faults are retried (backoff is charged
    /// to the clock).
    pub retry: RetryPolicy,
    /// Fault-handling counters accumulated this stage.
    pub health: StageHealth,
    /// Trace sink for block-draw spans and retry/degradation events
    /// (disabled by default — one branch per site).
    pub tracer: Tracer,
    /// Phase profiler for the performance flight recorder (disabled
    /// by default — one branch per site). Pure observation: never
    /// charges the clock, so results are identical with it on or off.
    pub profiler: Profiler,
    /// Worker threads for the pure-CPU portions of a stage (block
    /// decode, run merges). Charged work — clock, tracer, deadline —
    /// always runs on the calling thread in canonical order, so any
    /// value here produces byte-identical results; `1` runs
    /// everything inline.
    pub workers: usize,
}

impl<'a> StageEnv<'a> {
    /// Builds a stage environment with no fulfillment override, the
    /// default retry policy, fresh counters, and inline (single
    /// worker) evaluation.
    pub fn new(disk: Arc<Disk>, deadline: Option<&'a Deadline>, fraction: f64) -> Self {
        StageEnv {
            disk,
            deadline,
            fraction,
            fulfillment_override: None,
            observations: Vec::new(),
            retry: RetryPolicy::default(),
            health: StageHealth::default(),
            tracer: Tracer::disabled(),
            profiler: Profiler::disabled(),
            workers: 1,
        }
    }
}

impl StageEnv<'_> {
    fn expired(&self) -> bool {
        self.deadline.is_some_and(Deadline::expired)
    }

    fn observe(&mut self, coeff: CostCoeff, units: f64, elapsed: Duration) {
        self.observations.push(StepObservation {
            coeff,
            units,
            elapsed,
        });
    }

    fn now(&self) -> Duration {
        self.disk.clock().elapsed()
    }
}

/// A new-output delta produced by one stage of one node.
#[derive(Debug, Clone)]
pub struct Delta {
    /// The new output tuples (row form). Under the columnar layout a
    /// leaf delta carries only its banked pending rows here; freshly
    /// decoded blocks ride in `columnar`.
    pub tuples: Vec<Tuple>,
    /// Freshly decoded blocks in columnar form, ordered after
    /// `tuples`. `None` under [`BlockLayout::Row`] and for every
    /// operator output (operators emit rows).
    pub columnar: Option<Vec<ColumnarBlock>>,
    /// Leaf-level points newly covered by this delta.
    pub leaf_points: f64,
}

impl Delta {
    /// A plain row-form delta.
    pub fn rows(tuples: Vec<Tuple>, leaf_points: f64) -> Self {
        Delta {
            tuples,
            columnar: None,
            leaf_points,
        }
    }

    /// Total records carried, across both forms. Charges and
    /// selectivity accounting key off this so the two layouts charge
    /// identically.
    pub fn record_count(&self) -> usize {
        let columnar: usize = self
            .columnar
            .as_ref()
            .map_or(0, |bs| bs.iter().map(ColumnarBlock::len).sum());
        self.tuples.len() + columnar
    }

    /// Materializes the delta as row tuples, in record order. A no-op
    /// (move) for row-form deltas.
    pub fn into_rows(self) -> Vec<Tuple> {
        match self.columnar {
            None => self.tuples,
            Some(blocks) => {
                let mut rows = self.tuples;
                rows.reserve(blocks.iter().map(ColumnarBlock::len).sum());
                for block in &blocks {
                    rows.extend(block.to_tuples());
                }
                rows
            }
        }
    }
}

/// Backing store of one sorted run.
pub(crate) enum RunData {
    /// On disk, re-read (charged) at every merge — the prototype's
    /// disk-resident design.
    File(HeapFile),
    /// Held in memory — the main-memory variant. Shared immutably so
    /// repeated merges against the run never copy it.
    Mem(Arc<[Tuple]>),
}

/// One sorted run of a binary operator's input (a stage's worth).
pub(crate) struct Run {
    data: RunData,
    tuples: u64,
    /// Merge keys extracted once at ingest, aligned index-for-index
    /// with the run's tuples (Schwartzian transform): merges compare
    /// precomputed keys instead of re-projecting per comparison.
    keys: KeyColumn,
    /// Leaf points the run's delta covered (for coverage accounting).
    leaf_points: f64,
}

pub(crate) struct LeafNode {
    pub(crate) file: HeapFile,
    pub(crate) sampler: BlockSampler,
    pub(crate) cum_tuples: f64,
    /// Tuples of blocks fully read before a mid-draw deadline abort.
    /// They were never delivered in a delta (and are not in
    /// `cum_tuples`), so the next successful stage prepends them —
    /// every point read is accounted exactly once. Banked in row form
    /// under either layout (the abort path is cold).
    pub(crate) pending: Vec<Tuple>,
    /// Decode target for sampled blocks.
    pub(crate) layout: BlockLayout,
}

pub(crate) struct SelectNode {
    pub(crate) child: Box<Node>,
    pub(crate) predicate: Predicate,
    pub(crate) tracker: SelTracker,
    pub(crate) memory: MemoryMode,
    pub(crate) out_blocking: f64,
    pub(crate) cum_out: f64,
    pub(crate) cum_leaf_points: f64,
}

pub(crate) struct ProjectNode {
    pub(crate) child: Box<Node>,
    pub(crate) columns: Vec<usize>,
    pub(crate) tracker: SelTracker,
    pub(crate) memory: MemoryMode,
    pub(crate) out_blocking: f64,
    /// Distinct groups seen so far with their sample occupancies
    /// (Goodman's estimator input).
    pub(crate) occupancy: BTreeMap<Tuple, u64>,
    pub(crate) cum_in: f64,
    pub(crate) cum_leaf_points: f64,
}

pub(crate) enum BinKind {
    Join { on: Vec<(usize, usize)> },
    Intersect,
}

pub(crate) struct BinaryNode {
    pub(crate) kind: BinKind,
    pub(crate) left: Box<Node>,
    pub(crate) right: Box<Node>,
    pub(crate) tracker: SelTracker,
    pub(crate) fulfillment: Fulfillment,
    pub(crate) memory: MemoryMode,
    pub(crate) in_schema_left: Schema,
    pub(crate) in_schema_right: Schema,
    pub(crate) out_blocking: f64,
    pub(crate) left_runs: Vec<Run>,
    pub(crate) right_runs: Vec<Run>,
    /// Bounded cache of decoded old runs (both sides share it). Runs
    /// are charged from file metadata and served from memory, so the
    /// cache changes wall-clock time only — never simulated results.
    pub(crate) run_cache: RunCache,
    pub(crate) cum_out: f64,
    pub(crate) cum_leaf_points: f64,
}

/// A physical operator node.
pub(crate) enum Node {
    Leaf(LeafNode),
    Select(SelectNode),
    Project(ProjectNode),
    Binary(BinaryNode),
}

impl Node {
    /// Leaf points covered so far by this subtree's evaluation.
    pub(crate) fn leaf_points_covered(&self) -> f64 {
        match self {
            Node::Leaf(n) => n.cum_tuples,
            Node::Select(n) => n.cum_leaf_points,
            Node::Project(n) => n.cum_leaf_points,
            Node::Binary(n) => n.cum_leaf_points,
        }
    }

    /// Output tuples produced so far.
    pub(crate) fn cum_output(&self) -> f64 {
        match self {
            Node::Leaf(n) => n.cum_tuples,
            Node::Select(n) => n.cum_out,
            Node::Project(n) => n.occupancy.len() as f64,
            Node::Binary(n) => n.cum_out,
        }
    }

    /// Visits every operator tracker (pre-order).
    pub(crate) fn for_each_tracker<'a>(&'a self, f: &mut dyn FnMut(&'a SelTracker)) {
        match self {
            Node::Leaf(_) => {}
            Node::Select(n) => {
                f(&n.tracker);
                n.child.for_each_tracker(f);
            }
            Node::Project(n) => {
                f(&n.tracker);
                n.child.for_each_tracker(f);
            }
            Node::Binary(n) => {
                f(&n.tracker);
                n.left.for_each_tracker(f);
                n.right.for_each_tracker(f);
            }
        }
    }

    /// Remaining un-drawn blocks, minimized over leaves (0 when any
    /// leaf is exhausted ⇒ no further stage can cover new points for
    /// every dimension... each leaf may still have stock; we stop when
    /// *all* leaves are exhausted).
    pub(crate) fn max_remaining_blocks(&self) -> u64 {
        match self {
            Node::Leaf(n) => n.sampler.remaining(),
            Node::Select(n) => n.child.max_remaining_blocks(),
            Node::Project(n) => n.child.max_remaining_blocks(),
            Node::Binary(n) => n
                .left
                .max_remaining_blocks()
                .max(n.right.max_remaining_blocks()),
        }
    }

    /// The operator label profiled phases are attributed to.
    pub(crate) fn op_label(&self) -> &'static str {
        match self {
            Node::Leaf(_) => "leaf",
            Node::Select(_) => "select",
            Node::Project(_) => "project",
            Node::Binary(n) => match n.kind {
                BinKind::Join { .. } => "join",
                BinKind::Intersect => "intersect",
            },
        }
    }

    /// Advances the subtree by one stage at `env.fraction`, returning
    /// the new-output delta. Phases timed inside are attributed to
    /// this node's operator label (innermost node wins, so a join's
    /// leaf children charge their decode to `leaf`, not `join`).
    pub(crate) fn advance(&mut self, env: &mut StageEnv<'_>) -> Result<Delta, StageError> {
        let _op = env.profiler.operator(self.op_label());
        match self {
            Node::Leaf(n) => n.advance(env),
            Node::Select(n) => n.advance(env),
            Node::Project(n) => n.advance(env),
            Node::Binary(n) => n.advance(env),
        }
    }
}

/// Reads one raw block through the stage's retry policy, leaving the
/// (pure) decode to the caller — deferred to worker threads, or, for
/// cached runs, skipped entirely.
///
/// * Transient faults are retried up to `retry.max_attempts` total
///   attempts, with the backoff *charged to the clock* — recovery
///   consumes quota exactly like extra I/O, and the hard deadline can
///   fire mid-retry.
/// * A block whose transient faults outlast the retry budget, or that
///   fails checksum verification ([`StorageError::Corrupt`]), is
///   dropped: `Ok(None)`, one cluster lost, query continues.
/// * Any other storage error (unknown file, schema mismatch) is not a
///   degradable fault and fails the stage.
fn read_block_resilient_raw(
    env: &mut StageEnv<'_>,
    file: &HeapFile,
    index: u64,
) -> Result<Option<Arc<Block>>, StageError> {
    let policy = env.retry;
    let max_attempts = policy.max_attempts.max(1);
    let mut attempt: u32 = 0;
    loop {
        attempt += 1;
        let fetched = {
            // The block-fetch path through the buffer cache / device.
            let _phase = env.profiler.phase(Phase::Cache);
            file.read_block_raw(index)
        };
        match fetched {
            Ok(block) => return Ok(Some(block)),
            Err(e) if e.is_transient() => {
                env.health.faults_seen += 1;
                if attempt >= max_attempts {
                    env.health.blocks_lost += 1;
                    env.tracer.event("block_lost", || {
                        vec![
                            ("block", JsonValue::from(index)),
                            ("reason", JsonValue::from("retry_exhausted")),
                        ]
                    });
                    return Ok(None);
                }
                env.health.retries += 1;
                let backoff = policy.backoff_for(attempt);
                env.tracer.event("retry", || {
                    vec![
                        ("attempt", JsonValue::from(attempt)),
                        ("backoff_ns", JsonValue::from(backoff.as_nanos() as u64)),
                    ]
                });
                {
                    let _phase = env.profiler.phase(Phase::RetryBackoff);
                    env.disk.clock().charge(backoff);
                }
                if env.expired() {
                    return Err(StageError::Deadline);
                }
            }
            Err(StorageError::Corrupt { .. }) => {
                env.health.faults_seen += 1;
                env.health.blocks_lost += 1;
                env.tracer.event("block_lost", || {
                    vec![
                        ("block", JsonValue::from(index)),
                        ("reason", JsonValue::from("corrupt")),
                    ]
                });
                return Ok(None);
            }
            Err(e) => return Err(StageError::Storage(e)),
        }
    }
}

impl LeafNode {
    fn advance(&mut self, env: &mut StageEnv<'_>) -> Result<Delta, StageError> {
        let total = self.sampler.population();
        let want = ((env.fraction * total as f64).round() as u64)
            .max(1)
            .min(self.sampler.remaining());
        let start = env.now();
        let _draw_span = env.tracer.span("block_draw");
        let indices: Vec<u64> = {
            let _phase = env.profiler.phase(Phase::RngDraw);
            self.sampler.draw(want).to_vec()
        };
        // Fetch phase, serial: every charge, retry, deadline check,
        // and trace event happens on this thread in draw order, so
        // the simulated clock advances identically at any worker
        // count.
        let mut fetched: Vec<(u64, Arc<Block>)> = Vec::with_capacity(indices.len());
        for (k, idx) in indices.iter().enumerate() {
            let aborted = if env.expired() {
                true
            } else {
                // A lost block is a dropped cluster: `cum_tuples`
                // (the points actually covered) doesn't grow for it,
                // so the cluster estimator renormalizes over
                // surviving blocks.
                match read_block_resilient_raw(env, &self.file, *idx) {
                    Ok(Some(block)) => {
                        fetched.push((*idx, block));
                        false
                    }
                    Ok(None) => false,
                    Err(StageError::Deadline) => true,
                    Err(e) => return Err(e),
                }
            };
            if aborted {
                return self.abort_mid_draw(env, (indices.len() - k) as u64, fetched);
            }
        }
        // Decode phase, parallel: pure CPU — touches neither clock
        // nor tracer — fanned out and recombined in draw order. The
        // phase guard wraps the whole fan-out on this thread, so
        // worker-pool time is attributed to `block_decode`. Both
        // layouts decode the same fetched pages; only the in-memory
        // target differs.
        let mut tuples = std::mem::take(&mut self.pending);
        let mut columnar: Option<Vec<ColumnarBlock>> = None;
        match self.layout {
            BlockLayout::Row => {
                let decoded = {
                    let _phase = env.profiler.phase(Phase::BlockDecode);
                    let file = &self.file;
                    map_ordered(env.workers, fetched, |_, (idx, block)| {
                        file.decode_block(idx, &block)
                    })
                };
                tuples.reserve(indices.len() * self.file.blocking_factor());
                for d in decoded {
                    tuples.extend(d.map_err(StageError::Storage)?);
                }
            }
            BlockLayout::Columnar => {
                let decoded = {
                    let _phase = env.profiler.phase(Phase::BlockDecode);
                    let file = &self.file;
                    map_ordered(env.workers, fetched, |_, (idx, block)| {
                        file.decode_block_columnar(idx, &block)
                    })
                };
                let mut blocks = Vec::with_capacity(decoded.len());
                for d in decoded {
                    blocks.push(d.map_err(StageError::Storage)?);
                }
                columnar = Some(blocks);
            }
        }
        env.observe(
            CostCoeff::BlockRead,
            indices.len() as f64,
            env.now() - start,
        );
        let mut delta = Delta {
            tuples,
            columnar,
            leaf_points: 0.0,
        };
        delta.leaf_points = delta.record_count() as f64;
        self.cum_tuples += delta.leaf_points;
        Ok(delta)
    }

    /// Unwinds a draw cut short by the hard deadline before block
    /// `undrawn..` of the draw could be read: the unread indices go
    /// back to the sampler's population (they were never covered, so
    /// leaving them consumed would make those clusters permanently
    /// unsampleable and silently bias the census), while blocks that
    /// *were* read are decoded into `pending` for the next stage.
    /// `cum_tuples` is untouched — points count when delivered.
    fn abort_mid_draw(
        &mut self,
        env: &mut StageEnv<'_>,
        undrawn: u64,
        fetched: Vec<(u64, Arc<Block>)>,
    ) -> Result<Delta, StageError> {
        self.sampler.unconsume(undrawn);
        let decoded = {
            let _phase = env.profiler.phase(Phase::BlockDecode);
            let file = &self.file;
            map_ordered(env.workers, fetched, |_, (idx, block)| {
                file.decode_block(idx, &block)
            })
        };
        for d in decoded {
            self.pending.extend(d.map_err(StageError::Storage)?);
        }
        Err(StageError::Deadline)
    }
}

/// Charges block writes for materializing `n_tuples` tuples at the
/// given blocking factor (used where the 1989 system would write an
/// output file nobody re-reads: select outputs, operator results).
/// Honours the hard deadline between pages — the paper's timer
/// interrupt fires mid-write too.
fn charge_tuple_writes(
    env: &mut StageEnv<'_>,
    n_tuples: f64,
    blocking: f64,
) -> Result<(), StageError> {
    if n_tuples <= 0.0 {
        return Ok(());
    }
    let pages = (n_tuples / blocking.max(1.0)).ceil() as u64;
    let start = env.now();
    for _ in 0..pages {
        if env.expired() {
            return Err(StageError::Deadline);
        }
        env.disk.charge(DeviceOp::BlockWrite);
    }
    env.observe(CostCoeff::WriteTuple, n_tuples, env.now() - start);
    Ok(())
}

/// Charges `units` of tuple-granularity CPU work in chunks, checking
/// the hard deadline between chunks so an abort never trails the
/// quota by more than one chunk's worth of simulated time (the
/// paper's interrupt granularity is the device operation; ours is a
/// block-sized batch).
fn charge_chunked(
    env: &mut StageEnv<'_>,
    make: impl Fn(u64) -> DeviceOp,
    units: u64,
    chunk: u64,
) -> Result<(), StageError> {
    let chunk = chunk.max(1);
    let mut left = units;
    while left > 0 {
        if env.expired() {
            return Err(StageError::Deadline);
        }
        let c = left.min(chunk);
        env.disk.charge(make(c));
        left -= c;
    }
    Ok(())
}

impl SelectNode {
    fn advance(&mut self, env: &mut StageEnv<'_>) -> Result<Delta, StageError> {
        let child = self.child.advance(env)?;
        if env.expired() {
            return Err(StageError::Deadline);
        }
        let n_in = child.record_count();
        let leaf_points = child.leaf_points;
        let start = env.now();
        charge_chunked(env, DeviceOp::TupleCpu, n_in as u64, 5)?;
        // Row prefix (pending-bank rows under either layout) filters
        // tuple-at-a-time; columnar blocks evaluate the predicate as
        // a per-column bitmap and materialize only surviving rows.
        let mut out: Vec<Tuple> = child
            .tuples
            .into_iter()
            .filter(|t| self.predicate.eval(t))
            .collect();
        if let Some(blocks) = child.columnar {
            for block in &blocks {
                let mask = self.predicate.eval_mask(block);
                out.extend(block.gather(&mask));
            }
        }
        env.observe(CostCoeff::ScanTuple, n_in as f64, env.now() - start);
        if self.memory == MemoryMode::DiskResident {
            charge_tuple_writes(env, out.len() as f64, self.out_blocking)?;
        }

        self.tracker.record_stage(out.len() as f64, n_in as f64);
        self.cum_out += out.len() as f64;
        self.cum_leaf_points += leaf_points;
        Ok(Delta::rows(out, leaf_points))
    }
}

/// Sorts tuples by a key spec, charging `n·log₂n` comparisons (in
/// chunks, honouring the hard deadline), and returns the run's key
/// column. Keys are extracted once here (Schwartzian transform) and
/// reused by every later merge instead of being re-projected per
/// comparison.
fn charged_sort(
    env: &mut StageEnv<'_>,
    tuples: &mut Vec<Tuple>,
    spec: &KeySpec,
) -> Result<KeyColumn, StageError> {
    let n = tuples.len();
    if n < 2 {
        return Ok(spec.column_for(tuples));
    }
    let units = n as f64 * (n as f64).log2();
    let start = env.now();
    charge_chunked(env, DeviceOp::Compare, units.ceil() as u64, 128)?;
    let keys = sort_run(tuples, spec);
    env.observe(CostCoeff::SortUnit, units, env.now() - start);
    Ok(keys)
}

/// [`charged_sort`] for a run whose merge keys were already extracted
/// (columnar ingest reads them straight off the key columns):
/// identical charges and observations, with the Schwartzian pairing
/// built from the precomputed keys instead of re-projecting.
fn charged_sort_prekeyed(
    env: &mut StageEnv<'_>,
    tuples: &mut Vec<Tuple>,
    spec: &KeySpec,
    prekeys: Vec<Tuple>,
) -> Result<KeyColumn, StageError> {
    let n = tuples.len();
    if n < 2 {
        return Ok(spec.column_for(tuples));
    }
    let units = n as f64 * (n as f64).log2();
    let start = env.now();
    charge_chunked(env, DeviceOp::Compare, units.ceil() as u64, 128)?;
    let keys = sort_run_with_keys(tuples, prekeys);
    env.observe(CostCoeff::SortUnit, units, env.now() - start);
    Ok(keys)
}

impl ProjectNode {
    fn advance(&mut self, env: &mut StageEnv<'_>) -> Result<Delta, StageError> {
        let child = self.child.advance(env)?;
        if env.expired() {
            return Err(StageError::Deadline);
        }
        let n_in = child.record_count();
        // Step 1+2 (Figure 4.7): project and sort the new tuples.
        // Columnar blocks project straight from their typed columns —
        // only the projected-out values are ever materialized.
        let mut projected: Vec<Tuple> = {
            let start = env.now();
            charge_chunked(env, DeviceOp::TupleCpu, n_in as u64, 5)?;
            let mut p: Vec<Tuple> = child
                .tuples
                .iter()
                .map(|t| t.project(&self.columns))
                .collect();
            if let Some(blocks) = &child.columnar {
                for block in blocks {
                    p.extend((0..block.len()).map(|row| {
                        Tuple::new(
                            self.columns
                                .iter()
                                .map(|&c| block.column(c).value(row))
                                .collect(),
                        )
                    }));
                }
            }
            env.observe(CostCoeff::ScanTuple, n_in as f64, env.now() - start);
            p
        };
        charged_sort(env, &mut projected, &KeySpec::Whole)?;

        // Step 3: merge against the cumulative distinct file,
        // updating occupancies and collecting the new groups.
        let cum = self.occupancy.len() as f64;
        let merge_units = projected.len() as f64 + cum;
        let start = env.now();
        charge_chunked(env, DeviceOp::Compare, merge_units.ceil() as u64, 128)?;
        let mut new_groups: Vec<Tuple> = Vec::new();
        for t in projected {
            if env.expired() {
                return Err(StageError::Deadline);
            }
            match self.occupancy.get_mut(&t) {
                Some(c) => *c += 1,
                None => {
                    self.occupancy.insert(t.clone(), 1);
                    new_groups.push(t);
                }
            }
        }
        env.observe(CostCoeff::MergeTuple, merge_units, env.now() - start);
        if self.memory == MemoryMode::DiskResident {
            // Rewrite the distinct file with the enlarged group set.
            charge_tuple_writes(env, self.occupancy.len() as f64, self.out_blocking)?;
        }

        self.tracker
            .record_stage(new_groups.len() as f64, n_in as f64);
        self.cum_in += n_in as f64;
        self.cum_leaf_points += child.leaf_points;
        Ok(Delta::rows(new_groups, child.leaf_points))
    }
}

/// One merge pair staged for the parallel phase: both runs' tuples
/// and their precomputed key columns.
type StagedPair = (Arc<[Tuple]>, KeyColumn, Arc<[Tuple]>, KeyColumn);

impl BinKind {
    fn op_kind(&self) -> OpKind {
        match self {
            BinKind::Join { .. } => OpKind::Join,
            BinKind::Intersect => OpKind::Intersect,
        }
    }

    /// Key spec for left-side runs (join columns, or the whole tuple
    /// for set intersection).
    fn left_spec(&self) -> KeySpec {
        match self {
            BinKind::Join { on } => KeySpec::Columns(on.iter().map(|&(l, _)| l).collect()),
            BinKind::Intersect => KeySpec::Whole,
        }
    }

    /// Key spec for right-side runs.
    fn right_spec(&self) -> KeySpec {
        match self {
            BinKind::Join { on } => KeySpec::Columns(on.iter().map(|&(_, r)| r).collect()),
            BinKind::Intersect => KeySpec::Whole,
        }
    }

    fn merge_kind(&self) -> MergeKind {
        match self {
            BinKind::Join { .. } => MergeKind::Join,
            BinKind::Intersect => MergeKind::Intersect,
        }
    }
}

impl BinaryNode {
    /// Total tuples across the left-side runs ingested so far.
    pub(crate) fn left_runs_tuples(&self) -> f64 {
        self.left_runs.iter().map(|r| r.tuples as f64).sum()
    }

    /// Total tuples across the right-side runs ingested so far.
    pub(crate) fn right_runs_tuples(&self) -> f64 {
        self.right_runs.iter().map(|r| r.tuples as f64).sum()
    }

    /// Number of left-side runs (one per stage so far).
    pub(crate) fn left_run_count(&self) -> usize {
        self.left_runs.len()
    }

    /// Number of right-side runs (one per stage so far).
    pub(crate) fn right_run_count(&self) -> usize {
        self.right_runs.len()
    }

    fn advance(&mut self, env: &mut StageEnv<'_>) -> Result<Delta, StageError> {
        let dl = self.left.advance(env)?;
        let dr = self.right.advance(env)?;
        if env.expired() {
            return Err(StageError::Deadline);
        }

        // Ingest: sort each delta and persist it as a run
        // (Figures 4.4/4.6 steps 1–2: write to temporary files, sort).
        self.ingest(env, dl, true)?;
        self.ingest(env, dr, false)?;

        // Step 3: merge the new runs against the other side per the
        // fulfillment plan (Figure 4.5's pair grid).
        let mut pair_points = 0.0;
        let mut leaf_points = 0.0;

        let (l_end, r_end) = (self.left_runs.len(), self.right_runs.len());
        let fulfillment = env.fulfillment_override.unwrap_or(self.fulfillment);
        let pairs: Vec<(usize, usize)> = match fulfillment {
            Fulfillment::Full => {
                let mut v = Vec::new();
                // new left × all right (old + new)…
                for r in 0..r_end {
                    v.push((l_end - 1, r));
                }
                // …plus old left × new right.
                for l in 0..l_end - 1 {
                    v.push((l, r_end - 1));
                }
                v
            }
            Fulfillment::Partial => vec![(l_end - 1, r_end - 1)],
        };

        // Charged phase, serial: per-pair run reads, comparison
        // charges, and cost observations in the canonical pair order
        // — the simulated clock and the trace advance exactly as a
        // single-threaded run's would. Old runs are served through the
        // node's decoded-run cache: every block read is still charged
        // (and every fault draw consumed) exactly as the uncached path
        // would; only the re-decode is skipped.
        let (left_spec, right_spec) = (self.kind.left_spec(), self.kind.right_spec());
        let mut staged: Vec<StagedPair> = Vec::with_capacity(pairs.len());
        for &(li, ri) in &pairs {
            if env.expired() {
                return Err(StageError::Deadline);
            }
            let start = env.now();
            let (lt, lk) = read_run(env, &self.left_runs[li], &left_spec, &mut self.run_cache)?;
            let (rt, rk) = read_run(env, &self.right_runs[ri], &right_spec, &mut self.run_cache)?;
            charge_chunked(env, DeviceOp::Compare, (lt.len() + rt.len()) as u64, 128)?;
            env.observe(
                CostCoeff::MergeTuple,
                (lt.len() + rt.len()) as f64,
                env.now() - start,
            );
            let (lrun, rrun) = (&self.left_runs[li], &self.right_runs[ri]);
            pair_points += lrun.tuples as f64 * rrun.tuples as f64;
            leaf_points += lrun.leaf_points * rrun.leaf_points;
            staged.push((lt, lk, rt, rk));
        }
        // Merge phase, parallel: each pair's keyed merge is pure CPU
        // over the staged runs and their precomputed key columns;
        // results concatenate in pair order. The phase guard wraps the
        // whole fan-out on this thread, so worker-pool time is
        // attributed to `run_merge`.
        let merged = {
            let _phase = env.profiler.phase(Phase::RunMerge);
            let mk = self.kind.merge_kind();
            map_ordered(env.workers, staged, move |_, (lt, lk, rt, rk)| {
                merge_keyed(mk, &lt, &lk, &rt, &rk)
            })
        };
        let mut out: Vec<Tuple> = Vec::with_capacity(merged.iter().map(Vec::len).sum());
        for m in merged {
            out.extend(m);
        }

        // Materialize the operator's new output (kept on disk in the
        // prototype's design: "all the intermediate relations are
        // always kept on disks").
        if self.memory == MemoryMode::DiskResident {
            charge_tuple_writes(env, out.len() as f64, self.out_blocking)?;
        }

        self.tracker.record_stage(out.len() as f64, pair_points);
        self.cum_out += out.len() as f64;
        self.cum_leaf_points += leaf_points;
        Ok(Delta::rows(out, leaf_points))
    }

    fn ingest(
        &mut self,
        env: &mut StageEnv<'_>,
        delta: Delta,
        left: bool,
    ) -> Result<(), StageError> {
        let spec = if left {
            self.kind.left_spec()
        } else {
            self.kind.right_spec()
        };
        let leaf_points = delta.leaf_points;
        // Columnar deltas read merge keys straight off the key
        // columns before any row tuple exists; the prekeyed stable
        // sort then reproduces `sort_run`'s order exactly. (A Whole
        // spec keys on the full tuple, so there is nothing to skip —
        // it takes the ordinary path.)
        let prekeys: Option<Vec<Tuple>> = match (&delta.columnar, &spec) {
            (Some(blocks), KeySpec::Columns(_)) => {
                let mut keys: Vec<Tuple> = delta.tuples.iter().map(|t| spec.extract(t)).collect();
                for block in blocks {
                    let mut ks = spec
                        .extract_columnar(block)
                        .expect("a Columns spec extracts keys");
                    keys.append(&mut ks);
                }
                Some(keys)
            }
            _ => None,
        };
        let mut tuples = delta.into_rows();
        let keys = match prekeys {
            Some(prekeys) => charged_sort_prekeyed(env, &mut tuples, &spec, prekeys)?,
            None => charged_sort(env, &mut tuples, &spec)?,
        };
        let n = tuples.len();
        let data = match self.memory {
            MemoryMode::DiskResident => {
                let schema = if left {
                    self.in_schema_left.clone()
                } else {
                    self.in_schema_right.clone()
                };
                let start = env.now();
                let mut file = HeapFile::create(env.disk.clone(), schema, true);
                file.append_all(tuples.iter().cloned())
                    .map_err(StageError::Storage)?;
                file.flush().map_err(StageError::Storage)?;
                env.observe(CostCoeff::WriteTuple, n as f64, env.now() - start);
                // Seed the decoded-run cache with the sorted tuples
                // just written: the fixed-width encoding round-trips
                // bit-faithfully, so they equal what re-decoding the
                // file would produce.
                self.run_cache
                    .put(file.file_id(), file.version(), tuples.into());
                RunData::File(file)
            }
            MemoryMode::MainMemory => RunData::Mem(tuples.into()),
        };
        let run = Run {
            data,
            tuples: n as u64,
            keys,
            leaf_points,
        };
        if left {
            self.left_runs.push(run);
        } else {
            self.right_runs.push(run);
        }
        Ok(())
    }
}

/// Reads a whole sorted run, honouring the deadline at block
/// granularity, and returns it as a shared slice plus its aligned
/// merge-key column. Disk-resident runs charge block reads; in-memory
/// runs are free — that asymmetry *is* the main-memory variant's
/// advantage. Run blocks go through the same retry-or-drop policy as
/// sample blocks: a lost run block under-merges its tuples, which is
/// degradation, not failure.
///
/// The decoded-run cache sits *behind* the charged fetch loop, never
/// in front of it: every block read is charged (and every fault-plan
/// draw consumed) exactly as the uncached path would, and only then
/// is the decoded run served from memory — "charge from metadata,
/// serve from memory". A degraded read (lost blocks) yields a
/// subsequence of the run, so the ingest-time key column no longer
/// aligns; such reads rebuild keys from the surviving tuples and
/// bypass the cache entirely.
fn read_run(
    env: &mut StageEnv<'_>,
    run: &Run,
    spec: &KeySpec,
    cache: &mut RunCache,
) -> Result<(Arc<[Tuple]>, KeyColumn), StageError> {
    match &run.data {
        RunData::File(file) => {
            let mut fetched: Vec<(u64, Arc<Block>)> =
                Vec::with_capacity(file.num_blocks() as usize);
            let mut complete = true;
            for b in 0..file.num_blocks() {
                if env.expired() {
                    return Err(StageError::Deadline);
                }
                match read_block_resilient_raw(env, file, b)? {
                    Some(block) => fetched.push((b, block)),
                    None => complete = false,
                }
            }
            if complete {
                // The version check guards against fault plans that
                // corrupt or rewrite run blocks in place after the
                // run was cached: a stale entry is dropped here
                // instead of served.
                if let Some(tuples) = cache.get(file.file_id(), file.version()) {
                    return Ok((tuples, run.keys.clone()));
                }
            } else {
                // Degraded read: whatever was cached for this file
                // no longer matches what a reader can observe, and
                // the file may be degraded differently next time.
                // Drop the entry rather than leave it to be served
                // by a later complete read of a corrupt file.
                cache.invalidate(file.file_id());
            }
            // Decode phase, parallel: pure CPU over the fetched raw
            // blocks, recombined in block order.
            let decoded = {
                let _phase = env.profiler.phase(Phase::BlockDecode);
                map_ordered(env.workers, fetched, |_, (idx, block)| {
                    file.decode_block(idx, &block)
                })
            };
            let mut out: Vec<Tuple> = Vec::with_capacity(file.num_tuples() as usize);
            for d in decoded {
                out.extend(d.map_err(StageError::Storage)?);
            }
            if complete {
                let shared: Arc<[Tuple]> = out.into();
                cache.put(file.file_id(), file.version(), shared.clone());
                Ok((shared, run.keys.clone()))
            } else {
                let keys = spec.column_for(&out);
                Ok((out.into(), keys))
            }
        }
        RunData::Mem(tuples) => {
            if env.expired() {
                return Err(StageError::Deadline);
            }
            Ok((tuples.clone(), run.keys.clone()))
        }
    }
}

/// A compiled PIE term: the operator tree plus its point-space
/// geometry.
pub struct PhysTree {
    pub(crate) root: Node,
    /// `N` — total points (product of leaf relation cardinalities).
    pub(crate) total_points: f64,
    /// `B` — total space blocks (product of leaf block counts).
    pub(crate) total_space_blocks: f64,
    /// True if the term root is a projection (Goodman estimation).
    pub(crate) projection_root: bool,
}

impl PhysTree {
    /// Compiles a union/difference-free expression against stored
    /// relations. `rng` seeds the per-leaf block samplers.
    pub fn build(
        expr: &Expr,
        catalog: &Catalog,
        disk: &Arc<Disk>,
        defaults: &SelectivityDefaults,
        options: impl Into<PlanOptions>,
        rng: &mut StdRng,
    ) -> Result<PhysTree, ExprError> {
        let options = options.into();
        expr.output_schema(catalog)?; // full validation up front
        let mut total_points = 1.0;
        let mut total_space_blocks = 1.0;
        let root = Self::build_node(
            expr,
            catalog,
            disk,
            defaults,
            options,
            rng,
            &mut total_points,
            &mut total_space_blocks,
        )?;
        Ok(PhysTree {
            root,
            total_points,
            total_space_blocks,
            projection_root: matches!(expr, Expr::Project { .. }),
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn build_node(
        expr: &Expr,
        catalog: &Catalog,
        disk: &Arc<Disk>,
        defaults: &SelectivityDefaults,
        options: PlanOptions,
        rng: &mut StdRng,
        total_points: &mut f64,
        total_space_blocks: &mut f64,
    ) -> Result<Node, ExprError> {
        match expr {
            Expr::Relation(name) => {
                // Re-base the relation onto the execution disk: same
                // backend bytes, but draws charge *this* execution's
                // clock — which is what lets the server run each job
                // on its own lane view of the shared device.
                let file = catalog
                    .relation(name)
                    .ok_or_else(|| ExprError::UnknownRelation(name.clone()))?
                    .clone()
                    .with_disk(disk.clone());
                *total_points *= file.num_tuples() as f64;
                *total_space_blocks *= file.num_blocks() as f64;
                let seed: u64 = rng.gen();
                let mut leaf_rng = <StdRng as rand::SeedableRng>::seed_from_u64(seed);
                let sampler = BlockSampler::new(file.num_blocks(), &mut leaf_rng);
                Ok(Node::Leaf(LeafNode {
                    file,
                    sampler,
                    cum_tuples: 0.0,
                    pending: Vec::new(),
                    layout: options.block_layout,
                }))
            }
            Expr::Select { input, predicate } => {
                let child_points_before = *total_points;
                let child = Self::build_node(
                    input,
                    catalog,
                    disk,
                    defaults,
                    options,
                    rng,
                    total_points,
                    total_space_blocks,
                )?;
                let subtree_points = *total_points / child_points_before.max(1.0);
                let schema = expr.output_schema(catalog)?;
                let blocking = schema.blocking_factor(disk.block_size()) as f64;
                let tracker = SelTracker::new(OpKind::Select, subtree_points, 0.0)
                    .with_initial(defaults.initial_for(OpKind::Select, 0.0));
                Ok(Node::Select(SelectNode {
                    child: Box::new(child),
                    predicate: predicate.clone(),
                    tracker,
                    memory: options.memory,
                    out_blocking: blocking,
                    cum_out: 0.0,
                    cum_leaf_points: 0.0,
                }))
            }
            Expr::Project { input, columns } => {
                let child_points_before = *total_points;
                let child = Self::build_node(
                    input,
                    catalog,
                    disk,
                    defaults,
                    options,
                    rng,
                    total_points,
                    total_space_blocks,
                )?;
                let subtree_points = *total_points / child_points_before.max(1.0);
                let schema = expr.output_schema(catalog)?;
                let blocking = schema.blocking_factor(disk.block_size()) as f64;
                let tracker = SelTracker::new(OpKind::Project, subtree_points, 0.0)
                    .with_initial(defaults.initial_for(OpKind::Project, 0.0));
                Ok(Node::Project(ProjectNode {
                    child: Box::new(child),
                    columns: columns.clone(),
                    tracker,
                    memory: options.memory,
                    out_blocking: blocking,
                    occupancy: BTreeMap::new(),
                    cum_in: 0.0,
                    cum_leaf_points: 0.0,
                }))
            }
            Expr::Join { left, right, on } => Self::build_binary(
                expr,
                BinKind::Join { on: on.clone() },
                left,
                right,
                catalog,
                disk,
                defaults,
                options,
                rng,
                total_points,
                total_space_blocks,
            ),
            Expr::Intersect { left, right } => Self::build_binary(
                expr,
                BinKind::Intersect,
                left,
                right,
                catalog,
                disk,
                defaults,
                options,
                rng,
                total_points,
                total_space_blocks,
            ),
            Expr::Union { .. } | Expr::Difference { .. } => {
                // The PIE rewrite removes these before compilation.
                Err(ExprError::IncompatibleSchemas(
                    "union/difference must be rewritten away before compilation".into(),
                ))
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn build_binary(
        expr: &Expr,
        kind: BinKind,
        left: &Expr,
        right: &Expr,
        catalog: &Catalog,
        disk: &Arc<Disk>,
        defaults: &SelectivityDefaults,
        options: PlanOptions,
        rng: &mut StdRng,
        total_points: &mut f64,
        total_space_blocks: &mut f64,
    ) -> Result<Node, ExprError> {
        let before = *total_points;
        let l = Self::build_node(
            left,
            catalog,
            disk,
            defaults,
            options,
            rng,
            total_points,
            total_space_blocks,
        )?;
        let mid = *total_points;
        let r = Self::build_node(
            right,
            catalog,
            disk,
            defaults,
            options,
            rng,
            total_points,
            total_space_blocks,
        )?;
        let left_points = mid / before.max(1.0);
        let right_points = *total_points / mid.max(1.0);
        let op_kind = kind.op_kind();
        let max_operand = left_points.max(right_points);
        let tracker = SelTracker::new(op_kind, left_points * right_points, max_operand)
            .with_initial(defaults.initial_for(op_kind, max_operand));
        let out_schema = expr.output_schema(catalog)?;
        let blocking = out_schema.blocking_factor(disk.block_size()) as f64;
        Ok(Node::Binary(BinaryNode {
            in_schema_left: left.output_schema(catalog)?,
            in_schema_right: right.output_schema(catalog)?,
            kind,
            left: Box::new(l),
            right: Box::new(r),
            tracker,
            fulfillment: options.fulfillment,
            memory: options.memory,
            out_blocking: blocking,
            left_runs: Vec::new(),
            right_runs: Vec::new(),
            run_cache: RunCache::new(options.run_cache_tuples),
            cum_out: 0.0,
            cum_leaf_points: 0.0,
        }))
    }

    /// `N`, the point-space size.
    pub fn total_points(&self) -> f64 {
        self.total_points
    }

    /// `B`, the space-block count.
    pub fn total_space_blocks(&self) -> f64 {
        self.total_space_blocks
    }

    /// True if the term root is a projection (the count estimate uses
    /// Goodman's estimator over group occupancies).
    pub fn projection_root(&self) -> bool {
        self.projection_root
    }

    /// Leaf points covered so far.
    pub fn points_covered(&self) -> f64 {
        self.root.leaf_points_covered()
    }

    /// Output tuples (or distinct groups) found so far.
    pub fn ones_found(&self) -> f64 {
        self.root.cum_output()
    }

    /// Group occupancies if the root is a projection.
    pub fn occupancies(&self) -> Option<Vec<u64>> {
        match &self.root {
            Node::Project(p) => Some(p.occupancy.values().copied().collect()),
            _ => None,
        }
    }

    /// True when every leaf has drawn its entire relation (census).
    pub fn exhausted(&self) -> bool {
        self.root.max_remaining_blocks() == 0
    }

    /// Advances the whole term by one stage.
    pub fn advance(&mut self, env: &mut StageEnv<'_>) -> Result<Delta, StageError> {
        self.root.advance(env)
    }

    /// Disk blocks drawn so far, summed over operand relations.
    pub fn blocks_drawn(&self) -> u64 {
        fn walk(node: &Node) -> u64 {
            match node {
                Node::Leaf(n) => n.sampler.drawn(),
                Node::Select(n) => walk(&n.child),
                Node::Project(n) => walk(&n.child),
                Node::Binary(n) => walk(&n.left) + walk(&n.right),
            }
        }
        walk(&self.root)
    }

    /// For a projection root: the pre-projection child's cumulative
    /// output tuples and leaf points covered (Goodman's population
    /// plug-in). `None` for other roots.
    pub fn projection_child_stats(&self) -> Option<(f64, f64)> {
        match &self.root {
            Node::Project(p) => Some((p.child.cum_output(), p.child.leaf_points_covered())),
            _ => None,
        }
    }

    /// Visits every operator tracker.
    pub fn for_each_tracker<'a>(&'a self, f: &mut dyn FnMut(&'a SelTracker)) {
        self.root.for_each_tracker(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eram_relalg::CmpOp;
    use eram_storage::{ColumnType, DeviceProfile, SimClock, Value};
    use rand::SeedableRng;

    fn setup(rows: &[(&str, Vec<(i64, i64)>)]) -> (Arc<Disk>, Catalog) {
        let clock = Arc::new(SimClock::new());
        let disk = Disk::new(clock, DeviceProfile::sun_3_60().without_jitter(), 5);
        let mut cat = Catalog::new();
        for (name, data) in rows {
            let schema =
                Schema::new(vec![("a", ColumnType::Int), ("b", ColumnType::Int)]).padded_to(200);
            let hf = HeapFile::load(
                disk.clone(),
                schema,
                data.iter()
                    .map(|&(a, b)| Tuple::new(vec![Value::Int(a), Value::Int(b)])),
            )
            .unwrap();
            cat.register(*name, hf);
        }
        (disk, cat)
    }

    fn env(disk: &Arc<Disk>, fraction: f64) -> StageEnv<'static> {
        StageEnv::new(disk.clone(), None, fraction)
    }

    fn rows(n: i64) -> Vec<(i64, i64)> {
        (0..n).map(|i| (i, i % 10)).collect()
    }

    #[test]
    fn full_census_select_recovers_exact_count() {
        let (disk, cat) = setup(&[("r", rows(100))]);
        let expr = Expr::relation("r").select(Predicate::col_cmp(1, CmpOp::Lt, 3));
        let mut tree = PhysTree::build(
            &expr,
            &cat,
            &disk,
            &SelectivityDefaults::default(),
            Fulfillment::Full,
            &mut StdRng::seed_from_u64(1),
        )
        .unwrap();
        let mut e = env(&disk, 1.0);
        tree.advance(&mut e).unwrap();
        assert!(tree.exhausted());
        assert_eq!(tree.points_covered(), 100.0);
        assert_eq!(tree.ones_found(), 30.0); // b ∈ {0,1,2}
    }

    #[test]
    fn staged_select_accumulates_without_double_counting() {
        let (disk, cat) = setup(&[("r", rows(100))]);
        let expr = Expr::relation("r").select(Predicate::col_cmp(1, CmpOp::Lt, 5));
        let mut tree = PhysTree::build(
            &expr,
            &cat,
            &disk,
            &SelectivityDefaults::default(),
            Fulfillment::Full,
            &mut StdRng::seed_from_u64(2),
        )
        .unwrap();
        let mut covered = 0.0;
        for _ in 0..4 {
            let mut e = env(&disk, 0.25);
            tree.advance(&mut e).unwrap();
            assert!(tree.points_covered() > covered);
            covered = tree.points_covered();
        }
        assert_eq!(tree.points_covered(), 100.0);
        assert_eq!(tree.ones_found(), 50.0);
    }

    #[test]
    fn full_census_intersect_matches_exact() {
        let a: Vec<(i64, i64)> = (0..50).map(|i| (i, 0)).collect();
        let b: Vec<(i64, i64)> = (25..75).map(|i| (i, 0)).collect();
        let (disk, cat) = setup(&[("a", a), ("b", b)]);
        let expr = Expr::relation("a").intersect(Expr::relation("b"));
        let mut tree = PhysTree::build(
            &expr,
            &cat,
            &disk,
            &SelectivityDefaults::default(),
            Fulfillment::Full,
            &mut StdRng::seed_from_u64(3),
        )
        .unwrap();
        // Multiple stages with full fulfillment must still find every
        // cross-stage match.
        for _ in 0..3 {
            let mut e = env(&disk, 0.4);
            tree.advance(&mut e).unwrap();
        }
        assert!(tree.exhausted());
        assert_eq!(tree.ones_found(), 25.0);
        assert_eq!(tree.points_covered(), 2500.0);
    }

    #[test]
    fn full_census_join_matches_exact() {
        let a: Vec<(i64, i64)> = (0..30).map(|i| (i % 5, i)).collect();
        let b: Vec<(i64, i64)> = (0..20).map(|i| (i % 5, -i)).collect();
        let (disk, cat) = setup(&[("a", a.clone()), ("b", b.clone())]);
        let expr = Expr::relation("a").join(Expr::relation("b"), vec![(0, 0)]);
        let mut tree = PhysTree::build(
            &expr,
            &cat,
            &disk,
            &SelectivityDefaults::default(),
            Fulfillment::Full,
            &mut StdRng::seed_from_u64(4),
        )
        .unwrap();
        for _ in 0..2 {
            let mut e = env(&disk, 0.6);
            tree.advance(&mut e).unwrap();
        }
        assert!(tree.exhausted());
        // Each key 0..4 appears 6× in a and 4× in b → 5·24 = 120.
        assert_eq!(tree.ones_found(), 120.0);
        assert_eq!(tree.points_covered(), 600.0);
    }

    #[test]
    fn partial_fulfillment_covers_fewer_points() {
        let a: Vec<(i64, i64)> = (0..50).map(|i| (i, 0)).collect();
        let b: Vec<(i64, i64)> = (0..50).map(|i| (i, 0)).collect();
        let (disk, cat) = setup(&[("a", a.clone()), ("b", b)]);
        let expr = Expr::relation("a").intersect(Expr::relation("b"));
        let build = |f: Fulfillment, seed: u64, disk: &Arc<Disk>, cat: &Catalog| {
            PhysTree::build(
                &expr,
                cat,
                disk,
                &SelectivityDefaults::default(),
                f,
                &mut StdRng::seed_from_u64(seed),
            )
            .unwrap()
        };
        let mut full = build(Fulfillment::Full, 7, &disk, &cat);
        let mut partial = build(Fulfillment::Partial, 7, &disk, &cat);
        for _ in 0..3 {
            let mut e = env(&disk, 0.2);
            full.advance(&mut e).unwrap();
            let mut e = env(&disk, 0.2);
            partial.advance(&mut e).unwrap();
        }
        assert!(
            full.points_covered() > partial.points_covered(),
            "full {} vs partial {}",
            full.points_covered(),
            partial.points_covered()
        );
    }

    #[test]
    fn projection_tracks_occupancies() {
        let (disk, cat) = setup(&[("r", rows(100))]);
        let expr = Expr::relation("r").project(vec![1]);
        let mut tree = PhysTree::build(
            &expr,
            &cat,
            &disk,
            &SelectivityDefaults::default(),
            Fulfillment::Full,
            &mut StdRng::seed_from_u64(5),
        )
        .unwrap();
        assert!(tree.projection_root());
        let mut e = env(&disk, 1.0);
        tree.advance(&mut e).unwrap();
        let occ = tree.occupancies().unwrap();
        assert_eq!(occ.len(), 10); // values 0..9
        assert_eq!(occ.iter().sum::<u64>(), 100);
        assert_eq!(tree.ones_found(), 10.0);
    }

    #[test]
    fn advancing_charges_the_clock() {
        let (disk, cat) = setup(&[("r", rows(100))]);
        let expr = Expr::relation("r").select(Predicate::True);
        let mut tree = PhysTree::build(
            &expr,
            &cat,
            &disk,
            &SelectivityDefaults::default(),
            Fulfillment::Full,
            &mut StdRng::seed_from_u64(6),
        )
        .unwrap();
        let before = disk.clock().elapsed();
        let mut e = env(&disk, 0.5);
        tree.advance(&mut e).unwrap();
        assert!(disk.clock().elapsed() > before);
        assert!(!e.observations.is_empty());
        assert!(e
            .observations
            .iter()
            .any(|o| o.coeff == CostCoeff::BlockRead));
    }

    #[test]
    fn hard_deadline_aborts_mid_stage() {
        let (disk, cat) = setup(&[("r", rows(10_000))]);
        let expr = Expr::relation("r").select(Predicate::True);
        let mut tree = PhysTree::build(
            &expr,
            &cat,
            &disk,
            &SelectivityDefaults::default(),
            Fulfillment::Full,
            &mut StdRng::seed_from_u64(7),
        )
        .unwrap();
        // Quota shorter than the stage needs (2000 blocks at ~30 ms).
        let deadline = Deadline::new(disk.clock().clone(), Duration::from_secs(1));
        let mut e = StageEnv::new(disk.clone(), Some(&deadline), 1.0);
        assert!(matches!(tree.advance(&mut e), Err(StageError::Deadline)));
        assert!(deadline.expired());
        // The abort happened at block granularity — not long after T.
        assert!(deadline.overspent() < Duration::from_millis(200));
    }

    #[test]
    fn mid_draw_abort_returns_undrawn_blocks_and_banks_read_tuples() {
        // Regression: a mid-draw deadline abort used to leave every
        // index of the draw consumed in the sampler while discarding
        // the tuples already read — those clusters became permanently
        // unsampleable and a later full census silently lost their
        // points.
        let (disk, cat) = setup(&[("r", rows(10_000))]);
        let expr = Expr::relation("r");
        let mut tree = PhysTree::build(
            &expr,
            &cat,
            &disk,
            &SelectivityDefaults::default(),
            Fulfillment::Full,
            &mut StdRng::seed_from_u64(23),
        )
        .unwrap();
        // 1 s quota vs a 2000-block full draw (~30 ms/block): the
        // deadline fires a few dozen blocks in.
        let deadline = Deadline::new(disk.clock().clone(), Duration::from_secs(1));
        let mut e = StageEnv::new(disk.clone(), Some(&deadline), 1.0);
        assert!(matches!(tree.advance(&mut e), Err(StageError::Deadline)));
        let Node::Leaf(leaf) = &tree.root else {
            panic!("leaf-only tree");
        };
        // The unread tail of the draw went back to the population…
        assert!(leaf.sampler.remaining() > 0, "undrawn blocks not returned");
        assert!(
            leaf.sampler.drawn() < 2_000,
            "abort left whole draw consumed"
        );
        // …the blocks that were read are banked, not yet counted…
        assert_eq!(leaf.sampler.drawn() as usize * 5, leaf.pending.len());
        assert_eq!(tree.points_covered(), 0.0);
        // …and an unconstrained census still reaches every point.
        let mut e = env(&disk, 1.0);
        let delta = tree.advance(&mut e).unwrap();
        assert!(tree.exhausted());
        assert_eq!(delta.tuples.len(), 10_000, "banked tuples lost or doubled");
        assert_eq!(tree.points_covered(), 10_000.0);
    }

    #[test]
    fn worker_count_does_not_change_stage_output() {
        // The parallel phases (block decode, pair merges) are pure:
        // outputs, coverage, and simulated cost must be identical at
        // any worker count.
        let a: Vec<(i64, i64)> = (0..60).map(|i| (i % 6, i)).collect();
        let b: Vec<(i64, i64)> = (0..40).map(|i| (i % 6, -i)).collect();
        let run = |workers: usize| {
            let (disk, cat) = setup(&[("a", a.clone()), ("b", b.clone())]);
            let expr = Expr::relation("a").join(Expr::relation("b"), vec![(0, 0)]);
            let mut tree = PhysTree::build(
                &expr,
                &cat,
                &disk,
                &SelectivityDefaults::default(),
                Fulfillment::Full,
                &mut StdRng::seed_from_u64(29),
            )
            .unwrap();
            let mut outputs = Vec::new();
            for _ in 0..3 {
                let mut e = env(&disk, 0.4);
                e.workers = workers;
                outputs.push(tree.advance(&mut e).unwrap().tuples);
            }
            (outputs, tree.points_covered(), disk.clock().elapsed())
        };
        let serial = run(1);
        for workers in [2, 4, 8] {
            assert_eq!(run(workers), serial, "divergence at workers={workers}");
        }
    }

    #[test]
    fn minimum_draw_is_one_block() {
        let (disk, cat) = setup(&[("r", rows(100))]);
        let expr = Expr::relation("r");
        let mut tree = PhysTree::build(
            &expr,
            &cat,
            &disk,
            &SelectivityDefaults::default(),
            Fulfillment::Full,
            &mut StdRng::seed_from_u64(8),
        )
        .unwrap();
        let mut e = env(&disk, 1e-9);
        let d = tree.advance(&mut e).unwrap();
        assert_eq!(d.tuples.len(), 5); // one block of 5 tuples
    }

    #[test]
    fn main_memory_mode_matches_disk_results_cheaper() {
        let a: Vec<(i64, i64)> = (0..60).map(|i| (i, 0)).collect();
        let b: Vec<(i64, i64)> = (30..90).map(|i| (i, 0)).collect();
        let (disk, cat) = setup(&[("a", a), ("b", b)]);
        let expr = Expr::relation("a").intersect(Expr::relation("b"));
        let build = |memory: MemoryMode| {
            PhysTree::build(
                &expr,
                &cat,
                &disk,
                &SelectivityDefaults::default(),
                PlanOptions {
                    fulfillment: Fulfillment::Full,
                    memory,
                    ..PlanOptions::default()
                },
                &mut StdRng::seed_from_u64(77),
            )
            .unwrap()
        };
        let mut on_disk = build(MemoryMode::DiskResident);
        let t0 = disk.clock().elapsed();
        for _ in 0..3 {
            let mut e = env(&disk, 0.4);
            on_disk.advance(&mut e).unwrap();
        }
        let disk_cost = disk.clock().elapsed() - t0;

        let mut in_mem = build(MemoryMode::MainMemory);
        let t1 = disk.clock().elapsed();
        for _ in 0..3 {
            let mut e = env(&disk, 0.4);
            in_mem.advance(&mut e).unwrap();
        }
        let mem_cost = disk.clock().elapsed() - t1;

        // Identical answers (same seed → same sample order)…
        assert_eq!(on_disk.ones_found(), in_mem.ones_found());
        assert_eq!(on_disk.points_covered(), in_mem.points_covered());
        assert_eq!(on_disk.ones_found(), 30.0);
        // …at a fraction of the simulated cost.
        assert!(
            mem_cost < disk_cost / 2,
            "main memory {mem_cost:?} vs disk {disk_cost:?}"
        );
    }

    #[test]
    fn run_cache_does_not_change_results_or_charges() {
        // The decoded-run cache must be invisible to the simulation:
        // identical outputs, coverage, and simulated clock with the
        // cache on or off — it only skips wall-clock re-decode work.
        let a: Vec<(i64, i64)> = (0..60).map(|i| (i % 6, i)).collect();
        let b: Vec<(i64, i64)> = (0..40).map(|i| (i % 6, -i)).collect();
        let run = |cache_tuples: usize| {
            let (disk, cat) = setup(&[("a", a.clone()), ("b", b.clone())]);
            let expr = Expr::relation("a").join(Expr::relation("b"), vec![(0, 0)]);
            let mut tree = PhysTree::build(
                &expr,
                &cat,
                &disk,
                &SelectivityDefaults::default(),
                PlanOptions {
                    fulfillment: Fulfillment::Full,
                    run_cache_tuples: cache_tuples,
                    ..PlanOptions::default()
                },
                &mut StdRng::seed_from_u64(31),
            )
            .unwrap();
            let mut outputs = Vec::new();
            for _ in 0..3 {
                let mut e = env(&disk, 0.4);
                outputs.push(tree.advance(&mut e).unwrap().tuples);
            }
            (outputs, tree.points_covered(), disk.clock().elapsed())
        };
        assert_eq!(run(DEFAULT_RUN_CACHE_TUPLES), run(0));
    }

    #[test]
    fn degraded_run_reads_bypass_the_cache() {
        // Corrupt run blocks drop tuples from the merge; the cached
        // full copy must NOT paper over the loss. Degraded reads
        // rebuild keys from the survivors and skip the cache, so the
        // cached and uncached plans stay identical even under faults.
        let a: Vec<(i64, i64)> = (0..60).map(|i| (i % 6, i)).collect();
        let b: Vec<(i64, i64)> = (0..40).map(|i| (i % 6, -i)).collect();
        let run = |cache_tuples: usize| {
            let (disk, cat) = setup(&[("a", a.clone()), ("b", b.clone())]);
            disk.set_fault_plan(eram_storage::FaultPlan::new(41).with_corruption(0.3));
            let expr = Expr::relation("a").join(Expr::relation("b"), vec![(0, 0)]);
            let mut tree = PhysTree::build(
                &expr,
                &cat,
                &disk,
                &SelectivityDefaults::default(),
                PlanOptions {
                    fulfillment: Fulfillment::Full,
                    run_cache_tuples: cache_tuples,
                    ..PlanOptions::default()
                },
                &mut StdRng::seed_from_u64(37),
            )
            .unwrap();
            let mut outputs = Vec::new();
            for _ in 0..3 {
                let mut e = env(&disk, 0.4);
                outputs.push(tree.advance(&mut e).unwrap().tuples);
            }
            (outputs, tree.points_covered(), disk.clock().elapsed())
        };
        assert_eq!(run(DEFAULT_RUN_CACHE_TUPLES), run(0));
    }

    #[test]
    fn transient_faults_are_retried_and_charged() {
        let (disk, cat) = setup(&[("r", rows(100))]);
        let expr = Expr::relation("r");
        let mut tree = PhysTree::build(
            &expr,
            &cat,
            &disk,
            &SelectivityDefaults::default(),
            Fulfillment::Full,
            &mut StdRng::seed_from_u64(10),
        )
        .unwrap();
        disk.set_fault_plan(eram_storage::FaultPlan::new(13).with_transient(0.4));
        let before = disk.clock().elapsed();
        let mut e = env(&disk, 1.0);
        tree.advance(&mut e).unwrap();
        assert!(e.health.faults_seen > 0, "40% rate on 20 blocks is sure");
        assert!(e.health.retries > 0);
        // Retried backoff was charged: elapsed exceeds the fault-free
        // cost of the same work by at least the backoff charges.
        assert!(disk.clock().elapsed() > before);
        // Most clusters survive retries at this rate/budget.
        assert!(tree.points_covered() > 0.0);
    }

    #[test]
    fn corrupt_blocks_are_dropped_and_counted() {
        let (disk, cat) = setup(&[("r", rows(100))]);
        let expr = Expr::relation("r");
        let mut tree = PhysTree::build(
            &expr,
            &cat,
            &disk,
            &SelectivityDefaults::default(),
            Fulfillment::Full,
            &mut StdRng::seed_from_u64(11),
        )
        .unwrap();
        // Half the sites rot: the census loses clusters but finishes.
        disk.set_fault_plan(eram_storage::FaultPlan::new(17).with_corruption(0.5));
        let mut e = env(&disk, 1.0);
        let delta = tree.advance(&mut e).unwrap();
        assert!(e.health.blocks_lost > 0);
        assert!(e.health.blocks_lost < 20, "some of 20 blocks survive");
        // Coverage reflects only surviving clusters (renormalization):
        // 5 tuples per block, every lost block removes exactly 5.
        let expected = 100.0 - 5.0 * e.health.blocks_lost as f64;
        assert_eq!(tree.points_covered(), expected);
        assert_eq!(delta.tuples.len() as f64, expected);
    }

    #[test]
    fn all_blocks_lost_still_returns_empty_delta() {
        let (disk, cat) = setup(&[("r", rows(50))]);
        let expr = Expr::relation("r").select(Predicate::True);
        let mut tree = PhysTree::build(
            &expr,
            &cat,
            &disk,
            &SelectivityDefaults::default(),
            Fulfillment::Full,
            &mut StdRng::seed_from_u64(12),
        )
        .unwrap();
        disk.set_fault_plan(eram_storage::FaultPlan::new(19).with_corruption(1.0));
        let mut e = env(&disk, 1.0);
        let delta = tree.advance(&mut e).unwrap();
        assert!(delta.tuples.is_empty());
        assert_eq!(tree.points_covered(), 0.0);
        assert_eq!(e.health.blocks_lost, 10);
    }

    #[test]
    fn retry_exhaustion_loses_the_block_not_the_query() {
        let (disk, cat) = setup(&[("r", rows(100))]);
        let expr = Expr::relation("r");
        let mut tree = PhysTree::build(
            &expr,
            &cat,
            &disk,
            &SelectivityDefaults::default(),
            Fulfillment::Full,
            &mut StdRng::seed_from_u64(14),
        )
        .unwrap();
        // Every attempt fails: each block burns its full retry budget
        // and is dropped.
        disk.set_fault_plan(eram_storage::FaultPlan::new(23).with_transient(1.0));
        let mut e = env(&disk, 1.0);
        let delta = tree.advance(&mut e).unwrap();
        assert!(delta.tuples.is_empty());
        assert_eq!(e.health.blocks_lost, 20);
        assert_eq!(
            e.health.retries,
            20 * u64::from(RetryPolicy::default().max_attempts - 1)
        );
    }

    #[test]
    fn union_refused_at_compile_time() {
        let (disk, cat) = setup(&[("r", rows(10))]);
        let expr = Expr::relation("r").union(Expr::relation("r"));
        let res = PhysTree::build(
            &expr,
            &cat,
            &disk,
            &SelectivityDefaults::default(),
            Fulfillment::Full,
            &mut StdRng::seed_from_u64(9),
        );
        assert!(res.is_err());
    }
}
