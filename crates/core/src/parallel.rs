//! Deterministic intra-stage parallelism.
//!
//! The stage loop is embarrassingly parallel *between* charges: once
//! the blocks of a draw have been fetched (serially, in canonical
//! order, so the simulated device clock and its jittered charges are
//! identical to a single-threaded run), decoding them — and likewise
//! merging the run pairs of a binary operator — is pure CPU work that
//! touches neither the clock, nor the tracer, nor the deadline. This
//! module fans exactly that pure work out across a scoped worker pool
//! and returns the results **in input order**, so the bytes the engine
//! produces are identical at any worker count.
//!
//! The split mirrors BlinkDB-style engines parallelizing the sample
//! scan: estimator math is order-sensitive only through *accounting*,
//! and all accounting stays on the calling thread.

use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;

/// Applies `f` to every item, using up to `workers` scoped threads,
/// and returns the results in the items' original order.
///
/// With `workers <= 1` (or fewer than two items) the work runs inline
/// on the calling thread — no pool, no locks — which is also the
/// reference behavior the parallel path must reproduce bit-for-bit.
/// `f` receives `(index, item)` so callers can key per-item work
/// without capturing mutable state.
///
/// Items are dispensed through an atomic counter, so threads
/// self-balance across uneven item costs. The function itself must be
/// pure with respect to ordering: it may read shared state behind
/// `&`-references but must not make the *result* for item `i` depend
/// on whether item `j` ran first.
///
/// # Panics
/// Propagates panics from `f` (the scope joins all workers first).
pub fn map_ordered<T, R, F>(workers: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    if workers <= 1 || n <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, t)| f(i, t))
            .collect();
    }
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers.min(n) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i].lock().take().expect("each index dispensed once");
                let out = f(i, item);
                *results[i].lock() = Some(out);
            });
        }
    });
    results
        .into_iter()
        .map(|slot| slot.into_inner().expect("scope joined all workers"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order_at_any_worker_count() {
        let items: Vec<u64> = (0..100).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * x).collect();
        for workers in [1, 2, 4, 8, 64] {
            let got = map_ordered(workers, items.clone(), |_, x| x * x);
            assert_eq!(got, expected, "order broken at workers={workers}");
        }
    }

    #[test]
    fn passes_the_item_index_through() {
        let got = map_ordered(4, vec!["a", "b", "c"], |i, s| format!("{i}:{s}"));
        assert_eq!(got, vec!["0:a", "1:b", "2:c"]);
    }

    #[test]
    fn handles_empty_and_singleton_inputs() {
        let empty: Vec<u32> = vec![];
        assert!(map_ordered(8, empty, |_, x: u32| x).is_empty());
        assert_eq!(map_ordered(8, vec![7], |_, x| x + 1), vec![8]);
    }

    #[test]
    fn uneven_work_still_lands_in_order() {
        // Early items sleep longest, so a naive collect-in-completion
        // order would reverse the list.
        let got = map_ordered(4, (0..8u64).collect(), |_, x| {
            std::thread::sleep(std::time::Duration::from_millis(8 - x));
            x
        });
        assert_eq!(got, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn shared_state_is_readable_from_workers() {
        let table: Vec<u64> = (0..100).map(|x| x * 10).collect();
        let got = map_ordered(4, vec![5usize, 50, 99], |_, i| table[i]);
        assert_eq!(got, vec![50, 500, 990]);
    }
}
