//! Time-control strategies (Section 3.3).
//!
//! "A time-control algorithm not only has to make the query
//! processing meet the time constraint, but also, for a given amount
//! of time quota, it should produce an estimate as precise as
//! possible. ... a tradeoff has to be made between the number of
//! stages (i.e. the overhead) and the amount of time wasted (i.e.,
//! the risk of overspending)."
//!
//! Three strategies:
//!
//! * [`OneAtATimeInterval`] — the paper's implemented choice: per
//!   operator, assume the inflated selectivity `sel⁺` (equation 3.3)
//!   so that `P(sel⁺ ≥ selᵢ) = 1 − βᵢ`, then solve the deterministic
//!   equation `Tᵢ = QCOST(fᵢ, SEL⁺)` (equation 3.4) by bisection.
//!   "We have chosen to use the One-at-a-Time-Interval approach as
//!   the basis of the time-control algorithm in our implementation
//!   ... because of its simplicity."
//! * [`SingleInterval`] — considers the risk of the *whole* query:
//!   reserve `d_α·√(V̂ar(QCOST))` of the remaining quota and solve
//!   `Tᵢ = μ(fᵢ) + d_α·√(V̂ar(fᵢ))` (equations 3.1–3.2). The paper
//!   deems the exact covariance computation "a very expensive
//!   procedure"; we use the same plug-in simplification it suggests —
//!   previous-stage selectivity variances, operators treated
//!   independently — with the variance propagated through QCOST by
//!   per-operator perturbation.
//! * [`HeuristicStrategy`] — the paper names a heuristic strategy but
//!   does not describe it ("We do not discuss the heuristic strategy
//!   here"). This is our documented reconstruction: spend a fixed
//!   fraction of the remaining quota per stage, with a safety margin
//!   on the predicted cost.

use std::time::Duration;

use crate::costs::CostModel;
use crate::ops::PhysTree;
use crate::predict::{count_operators, predict_stage, solve_fraction, SelPolicy, StagePrediction};
use crate::seltrack::SelTracker;

pub use crate::seltrack::SelectivityDefaults;

/// What the strategy decided for the upcoming stage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StagePlan {
    /// The sample fraction `fᵢ` to draw from every operand relation.
    pub fraction: f64,
    /// The predicted stage cost.
    pub predicted: Duration,
    /// Predicted blocks to be drawn.
    pub predicted_blocks: f64,
}

/// Chooses the sample fraction for each stage (or stops the loop).
pub trait TimeControlStrategy: Send + Sync {
    /// A short name for reports.
    fn name(&self) -> &'static str;

    /// Plans the next stage given the compiled terms, the adaptive
    /// cost model, and the remaining quota. Returning `None` stops
    /// the loop (the leftover is wasted, per the paper's accounting).
    fn plan_stage(
        &self,
        trees: &[PhysTree],
        model: &CostModel,
        remaining: Duration,
        stage: usize,
    ) -> Option<StagePlan>;
}

fn to_plan(found: Option<(f64, StagePrediction)>) -> Option<StagePlan> {
    found.map(|(fraction, p)| StagePlan {
        fraction,
        predicted: Duration::from_secs_f64(p.cost_secs.max(0.0)),
        predicted_blocks: p.blocks_drawn,
    })
}

/// The One-at-a-Time-Interval statistical strategy (Section 3.3.2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OneAtATimeInterval {
    /// The `d_β` multiplier controlling each operator's risk of
    /// underestimated selectivity. The paper sweeps {0, 12, 24, 48,
    /// 72}; 0 makes `sel⁺` the plain mean (≈ 50 % risk).
    pub d_beta: f64,
    /// Bisection tolerance `ε` on the predicted-vs-target cost.
    pub epsilon: Duration,
}

impl OneAtATimeInterval {
    /// Creates the strategy with the given `d_β` and a 50 ms `ε`.
    pub fn new(d_beta: f64) -> Self {
        OneAtATimeInterval {
            d_beta,
            epsilon: Duration::from_millis(50),
        }
    }
}

impl Default for OneAtATimeInterval {
    fn default() -> Self {
        Self::new(12.0)
    }
}

impl TimeControlStrategy for OneAtATimeInterval {
    fn name(&self) -> &'static str {
        "one-at-a-time-interval"
    }

    fn plan_stage(
        &self,
        trees: &[PhysTree],
        model: &CostModel,
        remaining: Duration,
        _stage: usize,
    ) -> Option<StagePlan> {
        let policy = SelPolicy::Inflated {
            d_beta: self.d_beta,
        };
        to_plan(solve_fraction(
            trees,
            model,
            &policy,
            remaining.as_secs_f64(),
            self.epsilon.as_secs_f64(),
        ))
    }
}

/// The Single-Interval statistical strategy (Section 3.3.1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SingleInterval {
    /// The `d_α` multiplier on the whole-query cost deviation.
    pub d_alpha: f64,
    /// Bisection tolerance on the effective-cost-vs-target match.
    pub epsilon: Duration,
}

impl SingleInterval {
    /// Creates the strategy with the given `d_α` and a 50 ms `ε`.
    pub fn new(d_alpha: f64) -> Self {
        SingleInterval {
            d_alpha,
            epsilon: Duration::from_millis(50),
        }
    }

    /// `μ(f) + d_α·√(V̂ar(f))`: mean cost plus the reserved deviation,
    /// propagating each operator's selectivity variance through QCOST
    /// by one-at-a-time perturbation (operators treated as
    /// independent — the paper's suggested plug-in simplification).
    fn effective_cost(&self, trees: &[PhysTree], model: &CostModel, f: f64) -> StagePrediction {
        let mean = predict_stage(trees, f, model, &SelPolicy::Mean);
        if self.d_alpha == 0.0 {
            return mean;
        }
        let n_ops = count_operators(trees);
        let mut var_sum = 0.0;
        for k in 0..n_ops {
            let perturb = |i: usize, tracker: &SelTracker, pts: f64| {
                let mu = tracker.revised_selectivity();
                if i == k {
                    (mu + tracker.selectivity_variance(pts).sqrt()).min(1.0)
                } else {
                    mu
                }
            };
            let policy = SelPolicy::PerOp(&perturb);
            let perturbed = predict_stage(trees, f, model, &policy);
            let delta = perturbed.cost_secs - mean.cost_secs;
            var_sum += delta * delta;
        }
        StagePrediction {
            cost_secs: mean.cost_secs + self.d_alpha * var_sum.sqrt(),
            ..mean
        }
    }
}

impl Default for SingleInterval {
    fn default() -> Self {
        Self::new(2.0)
    }
}

impl TimeControlStrategy for SingleInterval {
    fn name(&self) -> &'static str {
        "single-interval"
    }

    fn plan_stage(
        &self,
        trees: &[PhysTree],
        model: &CostModel,
        remaining: Duration,
        _stage: usize,
    ) -> Option<StagePlan> {
        let target = remaining.as_secs_f64();
        let eps = self.epsilon.as_secs_f64();

        // Bisection on f with the variance-reserving effective cost.
        let floor = self.effective_cost(trees, model, 0.0);
        if floor.cost_secs > target {
            return None;
        }
        let ceiling = self.effective_cost(trees, model, 1.0);
        if ceiling.cost_secs <= target {
            // Report the *mean* as the prediction (the reserve is
            // headroom, not expected spend).
            let mean = predict_stage(trees, 1.0, model, &SelPolicy::Mean);
            return to_plan(Some((1.0, mean)));
        }
        let (mut low, mut high) = (0.0f64, 1.0f64);
        let mut best = 0.0;
        for _ in 0..64 {
            let f = (low + high) / 2.0;
            let p = self.effective_cost(trees, model, f);
            if p.cost_secs <= target {
                best = f;
                low = f;
            } else {
                high = f;
            }
            if (p.cost_secs - target).abs() <= eps && p.cost_secs <= target {
                best = f;
                break;
            }
            if high - low < 1e-9 {
                break;
            }
        }
        let mean = predict_stage(trees, best, model, &SelPolicy::Mean);
        to_plan(Some((best, mean)))
    }
}

/// A documented reconstruction of the paper's (undescribed) heuristic
/// strategy: spend a fixed share of the remaining quota each stage,
/// with a multiplicative safety margin on the predicted cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeuristicStrategy {
    /// Share of the remaining quota to target per stage, in `(0, 1]`.
    pub spend_share: f64,
    /// Multiplier ≥ 1 applied to predicted costs before sizing
    /// (protects against underestimated selectivities without any
    /// statistics).
    pub safety: f64,
    /// Bisection tolerance.
    pub epsilon: Duration,
    /// When true (default), stages after the first target the whole
    /// remainder; when false, every stage targets `spend_share` —
    /// the *probing* mode suited to error-constrained evaluation,
    /// where the loop should stop as soon as precision is met rather
    /// than spend the quota.
    pub commit_after_first: bool,
}

impl HeuristicStrategy {
    /// Creates a heuristic spending `spend_share` of the remaining
    /// quota per stage with the given safety margin.
    ///
    /// # Panics
    /// Panics on out-of-range parameters.
    pub fn new(spend_share: f64, safety: f64) -> Self {
        assert!(spend_share > 0.0 && spend_share <= 1.0);
        assert!(safety >= 1.0);
        HeuristicStrategy {
            spend_share,
            safety,
            epsilon: Duration::from_millis(50),
            commit_after_first: true,
        }
    }

    /// Probing variant: every stage targets `spend_share` of the
    /// remaining quota (for error-constrained stopping).
    pub fn probing(spend_share: f64, safety: f64) -> Self {
        HeuristicStrategy {
            commit_after_first: false,
            ..Self::new(spend_share, safety)
        }
    }
}

impl Default for HeuristicStrategy {
    fn default() -> Self {
        Self::new(0.5, 1.25)
    }
}

impl TimeControlStrategy for HeuristicStrategy {
    fn name(&self) -> &'static str {
        "heuristic"
    }

    fn plan_stage(
        &self,
        trees: &[PhysTree],
        model: &CostModel,
        remaining: Duration,
        stage: usize,
    ) -> Option<StagePlan> {
        // Stage 1 probes with the spend share; later stages may take
        // the whole remainder once selectivities are observed (unless
        // in probing mode).
        let share = if stage <= 1 || !self.commit_after_first {
            self.spend_share
        } else {
            1.0
        };
        let target = remaining.as_secs_f64() * share / self.safety;
        let policy = SelPolicy::Mean;
        let plan = to_plan(solve_fraction(
            trees,
            model,
            &policy,
            target,
            self.epsilon.as_secs_f64(),
        ))?;
        // A stage that cannot fit in the *remaining* quota even at the
        // safety-deflated target is still refused by solve_fraction;
        // additionally refuse if the safety-inflated prediction would
        // overrun the true remainder.
        let inflated = plan.predicted.as_secs_f64() * self.safety;
        if inflated > remaining.as_secs_f64() {
            return None;
        }
        Some(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{Fulfillment, PhysTree, StageEnv};
    use eram_relalg::{Catalog, CmpOp, Expr, Predicate};
    use eram_storage::{ColumnType, DeviceProfile, Disk, HeapFile, Schema, SimClock, Tuple, Value};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    fn setup() -> (Arc<Disk>, Catalog) {
        let disk = Disk::new(
            Arc::new(SimClock::new()),
            DeviceProfile::sun_3_60().without_jitter(),
            13,
        );
        let mut cat = Catalog::new();
        let schema =
            Schema::new(vec![("a", ColumnType::Int), ("b", ColumnType::Int)]).padded_to(200);
        let hf = HeapFile::load(
            disk.clone(),
            schema,
            (0..10_000).map(|i| Tuple::new(vec![Value::Int(i), Value::Int(i % 10)])),
        )
        .unwrap();
        cat.register("r", hf);
        (disk, cat)
    }

    fn select_tree(disk: &Arc<Disk>, cat: &Catalog) -> PhysTree {
        let expr = Expr::relation("r").select(Predicate::col_cmp(1, CmpOp::Lt, 5));
        PhysTree::build(
            &expr,
            cat,
            disk,
            &SelectivityDefaults::default(),
            Fulfillment::Full,
            &mut StdRng::seed_from_u64(17),
        )
        .unwrap()
    }

    #[test]
    fn one_at_a_time_respects_remaining_quota() {
        let (disk, cat) = setup();
        let trees = [select_tree(&disk, &cat)];
        let model = CostModel::generic_default();
        let s = OneAtATimeInterval::new(0.0);
        let plan = s
            .plan_stage(&trees, &model, Duration::from_secs(10), 1)
            .unwrap();
        assert!(plan.fraction > 0.0 && plan.fraction <= 1.0);
        assert!(plan.predicted <= Duration::from_secs(10));
        assert!(plan.predicted >= Duration::from_secs(8), "uses most of it");
    }

    #[test]
    fn higher_d_beta_means_smaller_stage() {
        let (disk, cat) = setup();
        let mut tree = select_tree(&disk, &cat);
        // Observe some data so inflation differs from the mean.
        let mut env = StageEnv::new(disk.clone(), None, 0.005);
        tree.advance(&mut env).unwrap();
        let trees = [tree];
        let model = CostModel::generic_default();
        let f0 = OneAtATimeInterval::new(0.0)
            .plan_stage(&trees, &model, Duration::from_secs(5), 2)
            .unwrap()
            .fraction;
        let f48 = OneAtATimeInterval::new(48.0)
            .plan_stage(&trees, &model, Duration::from_secs(5), 2)
            .unwrap()
            .fraction;
        assert!(
            f48 < f0,
            "inflated selectivity must shrink the stage: {f48} vs {f0}"
        );
    }

    #[test]
    fn all_strategies_refuse_tiny_quota() {
        let (disk, cat) = setup();
        let trees = [select_tree(&disk, &cat)];
        let model = CostModel::generic_default();
        let tiny = Duration::from_micros(10);
        assert!(OneAtATimeInterval::new(12.0)
            .plan_stage(&trees, &model, tiny, 1)
            .is_none());
        assert!(SingleInterval::new(2.0)
            .plan_stage(&trees, &model, tiny, 1)
            .is_none());
        assert!(HeuristicStrategy::default()
            .plan_stage(&trees, &model, tiny, 1)
            .is_none());
    }

    #[test]
    fn single_interval_reserves_headroom() {
        let (disk, cat) = setup();
        let mut tree = select_tree(&disk, &cat);
        let mut env = StageEnv::new(disk.clone(), None, 0.005);
        tree.advance(&mut env).unwrap();
        let trees = [tree];
        let model = CostModel::generic_default();
        let no_reserve = SingleInterval::new(0.0)
            .plan_stage(&trees, &model, Duration::from_secs(5), 2)
            .unwrap();
        let reserve = SingleInterval::new(10.0)
            .plan_stage(&trees, &model, Duration::from_secs(5), 2)
            .unwrap();
        assert!(
            reserve.fraction <= no_reserve.fraction,
            "reserving variance headroom cannot enlarge the stage"
        );
    }

    #[test]
    fn heuristic_probes_then_commits() {
        let (disk, cat) = setup();
        let trees = [select_tree(&disk, &cat)];
        let model = CostModel::generic_default();
        let h = HeuristicStrategy::new(0.25, 1.5);
        let first = h
            .plan_stage(&trees, &model, Duration::from_secs(10), 1)
            .unwrap();
        // Stage 1 spends ≈ 10·0.25/1.5 ≈ 1.7 s, far below the quota.
        assert!(first.predicted < Duration::from_secs(3));
        let later = h
            .plan_stage(&trees, &model, Duration::from_secs(10), 2)
            .unwrap();
        assert!(later.predicted > first.predicted);
    }

    #[test]
    fn strategy_names_are_stable() {
        assert_eq!(
            OneAtATimeInterval::default().name(),
            "one-at-a-time-interval"
        );
        assert_eq!(SingleInterval::default().name(), "single-interval");
        assert_eq!(HeuristicStrategy::default().name(), "heuristic");
    }
}
