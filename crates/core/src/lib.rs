//! # eram-core
//!
//! Time-constrained evaluation of `COUNT(E)` — the primary
//! contribution of Hou, Özsoyoğlu & Taneja, *"Processing Aggregate
//! Relational Queries with Hard Time Constraints"* (SIGMOD 1989).
//!
//! Given a relational-algebra expression `E` and a time quota `T`,
//! the engine answers "evaluate `COUNT(E)` within `T` time units"
//! with a statistical estimate whose precision grows with whatever
//! fraction of `T` the device allows, via the paper's stage loop
//! (Figure 3.1):
//!
//! 1. **Revise-Selectivities** (Figure 3.3) — per-operator sample
//!    selectivities from all previous stages ([`seltrack`]);
//! 2. **Sample-Size-Determine** (Figure 3.4) — bisection on the
//!    stage's sample fraction until the predicted stage cost meets the
//!    remaining quota ([`strategy`], [`predict`]);
//! 3. draw new disk blocks from every operand relation (cluster
//!    sampling, without replacement across stages);
//! 4. evaluate the sample with sort-based operators under *full* or
//!    *partial fulfillment* ([`ops`]), recomputing the running
//!    estimate;
//! 5. adapt the cost-formula coefficients from the measured step
//!    durations ([`costs`], Section 4's "adaptive time cost
//!    formulas");
//! 6. repeat until a stopping criterion fires ([`stopping`]): the
//!    hard deadline (timer interrupt; the in-flight stage is aborted
//!    and wasted), a soft deadline, an error bound, or no-improvement.
//!
//! The crate's public entry point is [`Database`] + [`CountQuery`]:
//!
//! ```
//! use std::time::Duration;
//! use eram_core::{Database, QueryConfig};
//! use eram_relalg::{CmpOp, Expr, Predicate};
//! use eram_storage::{ColumnType, Schema, Tuple, Value};
//!
//! let mut db = Database::sim_default(42);
//! let schema = Schema::new(vec![("k", ColumnType::Int), ("v", ColumnType::Int)])
//!     .padded_to(200);
//! db.load_relation(
//!     "r",
//!     schema,
//!     (0..10_000).map(|i| Tuple::new(vec![Value::Int(i), Value::Int(i % 100)])),
//! )
//! .unwrap();
//!
//! let expr = Expr::relation("r").select(Predicate::col_cmp(1, CmpOp::Lt, 50));
//! let result = db
//!     .count(expr)
//!     .within(Duration::from_secs(10))
//!     .run()
//!     .unwrap();
//! // ≈ 5_000 with a confidence interval, inside the quota.
//! assert!(result.report.utilization() <= 1.0);
//! let (lo, hi) = result.estimate.ci(0.95);
//! assert!(lo <= hi);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod aggregate;
pub mod costs;
pub mod executor;
pub mod kernel;
pub mod obs;
pub mod ops;
pub mod parallel;
pub mod predict;
pub mod report;
pub mod retry;
pub mod scheduler;
pub mod seltrack;
pub mod server;
pub mod session;
pub mod stopping;
pub mod strategy;

pub use aggregate::{AggregateFn, GroupSnapshot, GroupState, GroupedAccumulator, TermValues};
pub use costs::{CostCoeff, CostModel};
pub use executor::{
    execute_aggregate, execute_count, term_estimate, term_estimate_with, EngineError, ExecOutcome,
};
pub use kernel::{
    merge_keyed, merge_reference, sort_run, sort_run_with_keys, KeyColumn, KeySpec, MergeKind,
};
pub use obs::{
    Histogram, MetricsRegistry, MetricsSnapshot, OperatorGuard, Phase, PhaseGuard, PhaseStats,
    PhaseTotals, ProfileSnapshot, Profiler, SpanGuard, TraceKind, TraceRecord, Tracer,
    ENGINE_OPERATOR, SCHEMA_VERSION,
};
pub use ops::{
    BlockLayout, Fulfillment, MemoryMode, PlanOptions, StageError, StageHealth,
    DEFAULT_RUN_CACHE_TUPLES,
};
pub use parallel::map_ordered;
pub use report::{ExecutionReport, GroupReport, RefusalReason, ReportHealth, StageReport};
pub use retry::RetryPolicy;
pub use scheduler::{EdfScheduler, JobOutcome, JobStatus, QueryJob, DEFAULT_MIN_QUOTA};
pub use server::{
    Concurrency, DecisionAction, DecisionRecord, JobReport, JobState, LaneWindow, QueryServer,
    RefitSample, ScheduleReport, ServerConfig, ServerJob, ServerOutcome, ServerStats, TenantLedger,
    TenantSlo,
};
pub use session::{CountQuery, Database, PreparedQuery, QueryConfig, TimedCount};
pub use stopping::{error_bound_satisfied, StoppingCriterion};
pub use strategy::{
    HeuristicStrategy, OneAtATimeInterval, SelectivityDefaults, SingleInterval, StagePlan,
    TimeControlStrategy,
};
