//! Adaptive time-cost coefficients (Section 4).
//!
//! "We think that using a fixed-form cost formula for an operation is
//! not flexible enough ... Our approach is to use *adaptive time cost
//! formulas* ... during run-time, the cost formulas (more
//! specifically, their coefficients) are adjusted based on the sample
//! results to better fit a specific query. As for the initialization,
//! the coefficients are assigned initial values that are based on the
//! experimental relations which (designers think) are commonly
//! encountered."
//!
//! [`CostModel`] holds the per-unit coefficients the cost formulas of
//! [`crate::predict`] consume. The physical operators time each of
//! their steps (temp write, sort, merge, scan, block read) and report
//! `(coefficient, units, measured duration)`; the model folds the
//! observation in with an exponential moving average, so by stage 2
//! the formulas reflect the actual device and tuple sizes rather than
//! the designers' guesses.

use std::time::Duration;

use serde::{Deserialize, Serialize};

use eram_storage::DeviceProfile;

/// The per-unit coefficients of the operator cost formulas.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CostCoeff {
    /// Seconds per disk block read while drawing a sample.
    BlockRead,
    /// Seconds per tuple scanned and predicate-checked (the select
    /// formula's `c₁`).
    ScanTuple,
    /// Seconds per `n·log₂n` unit of sorting (eq. 4.3's `C₂`).
    SortUnit,
    /// Seconds per tuple read-and-compared during a merge pass
    /// (eq. 4.4's `C₄`, "the time for reading and comparing tuples").
    MergeTuple,
    /// Seconds per tuple written to a temporary or output file
    /// (the page-write terms `C₃·p`, amortized per tuple).
    WriteTuple,
    /// Seconds of fixed per-stage bookkeeping (sample-size
    /// determination, random block selection, estimator update) —
    /// "considered as part of the overhead, which is measured at
    /// run-time".
    StageOverhead,
}

/// All coefficient kinds, for iteration.
pub const ALL_COEFFS: [CostCoeff; 6] = [
    CostCoeff::BlockRead,
    CostCoeff::ScanTuple,
    CostCoeff::SortUnit,
    CostCoeff::MergeTuple,
    CostCoeff::WriteTuple,
    CostCoeff::StageOverhead,
];

fn index(c: CostCoeff) -> usize {
    match c {
        CostCoeff::BlockRead => 0,
        CostCoeff::ScanTuple => 1,
        CostCoeff::SortUnit => 2,
        CostCoeff::MergeTuple => 3,
        CostCoeff::WriteTuple => 4,
        CostCoeff::StageOverhead => 5,
    }
}

/// Adaptive per-unit cost coefficients.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Seconds per unit, indexed by [`CostCoeff`].
    per_unit: [f64; 6],
    /// EMA smoothing: weight of the newest observation.
    alpha: f64,
    /// When false, observations are ignored (the paper's fixed-form
    /// baseline, used by the adaptivity ablation).
    adaptive: bool,
}

impl CostModel {
    /// Generic initial coefficients "based on the experimental
    /// relations designers think are commonly encountered" — i.e.
    /// *not* tuned to the actual device. The paper initialized from
    /// "the experiments with the largest possible tuples (1 K bytes)",
    /// i.e. deliberately pessimistic values: overestimating stage cost
    /// at stage 1 only wastes a little quota, while underestimating
    /// would overrun it before any adaptation has happened. These sit
    /// ~1.5–2× above the calibrated SUN 3/60 truth; stage-1
    /// measurements pull them down.
    pub fn generic_default() -> Self {
        CostModel {
            per_unit: [
                0.045,  // BlockRead   (truth ≈ 0.030)
                0.014,  // ScanTuple   (truth ≈ 0.009)
                0.0008, // SortUnit    (truth ≈ 0.00045)
                0.011,  // MergeTuple  (truth ≈ 0.0065)
                0.011,  // WriteTuple  (truth ≈ 0.0064)
                0.300,  // StageOverhead (truth ≈ 0.180)
            ],
            alpha: 1.0,
            adaptive: true,
        }
    }

    /// Pessimistic initial coefficients for a *modern* device
    /// ([`DeviceProfile::modern`] or real wall-clock hardware) —
    /// microsecond-scale rather than the 1989 defaults.
    pub fn modern_default() -> Self {
        CostModel {
            per_unit: [
                40e-6,  // BlockRead
                0.4e-6, // ScanTuple
                60e-9,  // SortUnit
                0.3e-6, // MergeTuple
                0.5e-6, // WriteTuple
                100e-6, // StageOverhead
            ],
            alpha: 1.0,
            adaptive: true,
        }
    }

    /// Oracle coefficients derived from a known [`DeviceProfile`] and
    /// blocking factor — the best a *fixed-form* formula could do.
    /// Used by the adaptive-vs-fixed ablation.
    pub fn oracle(profile: &DeviceProfile, blocking_factor: f64) -> Self {
        let bf = blocking_factor.max(1.0);
        let read = profile.block_read.as_secs_f64();
        let write = profile.block_write.as_secs_f64();
        let tuple = profile.tuple_cpu.as_secs_f64();
        let cmp = profile.compare.as_secs_f64();
        CostModel {
            per_unit: [
                read,                     // BlockRead: one block
                tuple,                    // ScanTuple: per-tuple CPU
                cmp,                      // SortUnit: one comparison
                cmp + read / bf,          // MergeTuple: compare + amortized read
                write / bf + tuple * 0.0, // WriteTuple: amortized page write
                profile.stage_overhead.as_secs_f64(),
            ],
            alpha: 1.0,
            adaptive: true,
        }
    }

    /// Disables run-time adaptation (fixed-form formulas).
    pub fn frozen(mut self) -> Self {
        self.adaptive = false;
        self
    }

    /// Sets the EMA weight of new observations.
    ///
    /// # Panics
    /// Panics if `alpha` is outside `(0, 1]`.
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0,1]");
        self.alpha = alpha;
        self
    }

    /// Whether run-time adaptation is enabled.
    pub fn is_adaptive(&self) -> bool {
        self.adaptive
    }

    /// Current per-unit cost of a coefficient, in seconds.
    pub fn per_unit(&self, c: CostCoeff) -> f64 {
        self.per_unit[index(c)]
    }

    /// Predicted cost of `units` units of `c`, in seconds.
    pub fn predict(&self, c: CostCoeff, units: f64) -> f64 {
        self.per_unit(c) * units.max(0.0)
    }

    /// Folds in a measured step: `units` units of `c` took
    /// `elapsed`. Ignored when `units` is not positive or the model
    /// is frozen.
    pub fn observe(&mut self, c: CostCoeff, units: f64, elapsed: Duration) {
        if !self.adaptive || units <= 0.0 {
            return;
        }
        let observed = elapsed.as_secs_f64() / units;
        let v = &mut self.per_unit[index(c)];
        *v = self.alpha * observed + (1.0 - self.alpha) * *v;
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::generic_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prediction_is_linear_in_units() {
        let m = CostModel::generic_default();
        let one = m.predict(CostCoeff::ScanTuple, 1.0);
        assert!((m.predict(CostCoeff::ScanTuple, 10.0) - 10.0 * one).abs() < 1e-12);
        assert_eq!(m.predict(CostCoeff::ScanTuple, -5.0), 0.0);
    }

    #[test]
    fn observation_moves_coefficient_toward_truth() {
        let mut m = CostModel::generic_default().with_alpha(0.5);
        let before = m.per_unit(CostCoeff::BlockRead);
        // True device: 30 ms per block; observe 100 blocks taking 3 s.
        m.observe(CostCoeff::BlockRead, 100.0, Duration::from_secs(3));
        let after = m.per_unit(CostCoeff::BlockRead);
        assert!((after - (0.5 * 0.03 + 0.5 * before)).abs() < 1e-12);
        // Repeated observation converges.
        for _ in 0..20 {
            m.observe(CostCoeff::BlockRead, 100.0, Duration::from_secs(3));
        }
        assert!((m.per_unit(CostCoeff::BlockRead) - 0.03).abs() < 1e-6);
    }

    #[test]
    fn frozen_model_ignores_observations() {
        let mut m = CostModel::generic_default().frozen();
        let before = m.per_unit(CostCoeff::MergeTuple);
        m.observe(CostCoeff::MergeTuple, 1_000.0, Duration::from_secs(60));
        assert_eq!(m.per_unit(CostCoeff::MergeTuple), before);
        assert!(!m.is_adaptive());
    }

    #[test]
    fn zero_units_ignored() {
        let mut m = CostModel::generic_default();
        let before = m.per_unit(CostCoeff::SortUnit);
        m.observe(CostCoeff::SortUnit, 0.0, Duration::from_secs(9));
        assert_eq!(m.per_unit(CostCoeff::SortUnit), before);
    }

    #[test]
    fn oracle_reflects_profile() {
        let p = DeviceProfile::sun_3_60();
        let m = CostModel::oracle(&p, 5.0);
        assert!((m.per_unit(CostCoeff::BlockRead) - p.block_read.as_secs_f64()).abs() < 1e-12);
        assert!(
            (m.per_unit(CostCoeff::WriteTuple) - p.block_write.as_secs_f64() / 5.0).abs() < 1e-12
        );
        assert!(
            (m.per_unit(CostCoeff::StageOverhead) - p.stage_overhead.as_secs_f64()).abs() < 1e-12
        );
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn alpha_bounds_enforced() {
        let _ = CostModel::generic_default().with_alpha(0.0);
    }

    #[test]
    fn all_coeffs_covers_every_variant() {
        let m = CostModel::generic_default();
        for c in ALL_COEFFS {
            assert!(m.per_unit(c) > 0.0);
        }
    }
}
