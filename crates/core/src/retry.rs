//! Retry policy for transient storage faults — charged to the clock.
//!
//! The paper's contract is a *hard* time constraint: whatever the
//! engine does to recover from a fault must consume the same quota a
//! real system would spend doing it. A [`RetryPolicy`] therefore
//! never sleeps on the wall clock; its backoff is charged to the
//! query's [`eram_storage::Clock`] so a retry storm eats simulated
//! quota exactly like extra I/O, and the hard deadline can fire
//! mid-retry and abort the stage as usual.
//!
//! Retries apply only to faults that
//! [`eram_storage::StorageError::is_transient`] classifies as
//! retryable. Permanent faults (checksum mismatches, range errors)
//! skip the policy entirely: the caller drops the cluster and
//! degrades instead.

use std::time::Duration;

use serde::{Deserialize, Serialize};

/// How the executor retries transient storage faults.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Total attempts per block read (first try included). `1` means
    /// no retries; `0` is treated as `1`.
    pub max_attempts: u32,
    /// Backoff charged to the clock before the second attempt.
    pub backoff: Duration,
    /// Multiplier applied to the backoff after each failed attempt.
    pub backoff_factor: f64,
}

impl RetryPolicy {
    /// No retries: the first transient fault loses the block.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            backoff: Duration::ZERO,
            backoff_factor: 1.0,
        }
    }

    /// Backoff to charge after failed attempt number `attempt`
    /// (1-based): `backoff · factor^(attempt-1)`.
    pub fn backoff_for(&self, attempt: u32) -> Duration {
        if self.backoff.is_zero() {
            return Duration::ZERO;
        }
        let exp = attempt.saturating_sub(1);
        self.backoff.mul_f64(self.backoff_factor.powi(exp as i32))
    }
}

impl Default for RetryPolicy {
    /// Four attempts with 15 ms initial backoff doubling each retry —
    /// small next to a ~30 ms block read, so recovery from a fault
    /// burst costs on the order of the reads it replaces.
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            backoff: Duration::from_millis(15),
            backoff_factor: 2.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_geometrically() {
        let p = RetryPolicy {
            max_attempts: 5,
            backoff: Duration::from_millis(10),
            backoff_factor: 2.0,
        };
        assert_eq!(p.backoff_for(1), Duration::from_millis(10));
        assert_eq!(p.backoff_for(2), Duration::from_millis(20));
        assert_eq!(p.backoff_for(3), Duration::from_millis(40));
    }

    #[test]
    fn none_policy_is_free() {
        let p = RetryPolicy::none();
        assert_eq!(p.max_attempts, 1);
        assert_eq!(p.backoff_for(1), Duration::ZERO);
        assert_eq!(p.backoff_for(10), Duration::ZERO);
    }

    #[test]
    fn default_backoff_stays_below_a_block_read() {
        let p = RetryPolicy::default();
        assert!(p.backoff_for(1) < Duration::from_millis(30));
    }

    #[test]
    fn serializes_round_trip() {
        let p = RetryPolicy::default();
        let Ok(json) = serde_json::to_string(&p) else {
            eprintln!("skipped: offline serde stub cannot serialize");
            return;
        };
        let back: RetryPolicy = serde_json::from_str(&json).unwrap();
        assert_eq!(back, p);
    }
}
