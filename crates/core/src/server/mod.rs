//! Multi-tenant serving: admission control, overload shedding, and
//! per-job fault isolation over one shared storage backend.
//!
//! The paper's closing argument is that fixing query execution times
//! makes transaction deadlines *schedulable*. [`crate::scheduler`]
//! demonstrates that for a single batch; this module promotes it to a
//! serving discipline. A [`QueryServer`] accepts N concurrent
//! deadline-bound jobs and guarantees that every one of them ends in
//! exactly one of three states — **answered by its deadline**,
//! **refused with a structured reason**, or **shed with a structured
//! reason** — never a silent deadline blowout:
//!
//! 1. **Predictive admission** — before anything runs, each job is
//!    checked against the projected schedule: its granted quota must
//!    clear its declared minimum, and the QCOST floor of its
//!    expression (Section 4's cost formulas via
//!    [`crate::predict::predict_stage`] at `f ≈ 0` — one block per
//!    operand relation plus stage overhead) must fit inside that
//!    grant. A job that cannot fit even on an idle server is refused
//!    [`RefusalReason::Infeasible`]; one squeezed out by admitted
//!    load is refused [`RefusalReason::Overloaded`].
//! 2. **Adaptive refit** — the engine guarantees `spent ≈ quota`
//!    under a hard constraint, but fault storms (latency spikes,
//!    retry backoffs) inflate the *overshoot*: the tail of the
//!    in-flight stage that completes after the timer interrupt. The
//!    server tracks an EWMA of `spent / granted` (the Section-4
//!    adaptive-coefficient idea applied one level up) and divides
//!    future grants by it, so a storm makes later answers *coarser*
//!    instead of *later*.
//! 3. **Overload shedding** — before every job start the remaining
//!    queue is replanned against the actual clock and the refit
//!    overrun factor. While some pending job's projected grant falls
//!    below its minimum, the server evicts the candidate with the
//!    least value-per-slack (ties to the later deadline) from the
//!    jobs at or before the infeasibility, marking it
//!    [`RefusalReason::Shed`]. Eviction is triage: better one
//!    explicit casualty than a cascade of silent misses.
//! 4. **Per-job isolation** — each job runs with its own budget-
//!    capped [`RetryPolicy`] under a forced
//!    [`StoppingCriterion::HardDeadline`]; a job that hits corrupt
//!    blocks degrades alone (its own `health.degraded`), a job whose
//!    expression is broken fails alone (at admission when QCOST
//!    screening is on, so it burns no quota), and a watchdog records
//!    any engine overshoot past the configured grace so a stuck
//!    stage is visible in the trace and metrics.
//!
//! **Deterministic replay**: admission order is canonical (stable
//! EDF), all admission math is charge-free, grants and RNG seeds
//! derive from the database seed and the call sequence, and the
//! engine's own stage loop is byte-identical at any worker count. A
//! seeded multi-job run therefore produces byte-identical
//! [`ServerOutcome`] JSON and trace JSONL across `--workers 1/4` and
//! across repeated runs (on a simulated clock).
//!
//! **Concurrency (vector-clock charge accounting)**: every admitted
//! job executes on its own *lane* — a private virtual clock, RNG
//! stream, fault-injector instance, and trace buffer over a
//! [`lane view`](eram_storage::Disk::lane_view) of the shared disk —
//! so the batch's charge state is a vector of per-job clocks rather
//! than one scalar timeline. Quotas are fixed at admission (the
//! phase-1 grant *is* the execution quota): a dispatch-time grant
//! would be a function of preceding jobs' actual spends, which
//! provably forces sequential execution on any schedule that must
//! stay byte-identical. The server then *replays* the canonical EDF
//! control loop (shed sweeps, refit, ledger, trace stamps) over the
//! lane outcomes on a virtual timeline, so
//! [`Concurrency::Sequential`] (lanes run lazily at dispatch, the
//! oracle) and [`Concurrency::Interleaved`] (all admitted lanes run
//! up front, stages interleaved under a deterministic least-virtual-
//! time turnstile, base-relation draws pooled through a
//! [`SharedDrawBroker`]) produce byte-identical per-job reports,
//! traces, and schedule-stripped outcomes. Only
//! [`ServerOutcome::schedule`] and the tenants' sharing counters —
//! the makespan/IO story — are allowed to differ between modes; see
//! [`ServerOutcome::stripped_of_schedule`].
//!
//! **Deadline forensics**: every serving decision — admission,
//! refusal, grant deflation, refit, shed, watchdog trip, completion —
//! is mirrored as a `server.decision` trace event carrying the inputs
//! it was made from, and (when [`ServerConfig::collect_ledger`] is
//! set) folded into a [`TenantLedger`] of per-tenant SLO counters and
//! an append-only decision audit log riding
//! [`ServerOutcome::ledger`]. See [`ledger`].

use std::time::Duration;

use eram_relalg::{push_selections, Expr, PieRewrite};
use eram_storage::SharedDrawBroker;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use serde_json::Value as JsonValue;

use eram_sampling::CountEstimate;

use crate::aggregate::AggregateFn;
use crate::costs::CostModel;
use crate::executor::EngineError;
use crate::obs::{MetricsRegistry, MetricsSnapshot, Tracer};
use crate::ops::{Fulfillment, PhysTree};
use crate::predict::{predict_stage, SelPolicy};
use crate::report::{ExecutionReport, RefusalReason, ReportHealth};
use crate::retry::RetryPolicy;
use crate::scheduler::{QueryJob, DEFAULT_MIN_QUOTA};
use crate::seltrack::SelectivityDefaults;
use crate::session::{Database, PreparedQuery};
use crate::stopping::StoppingCriterion;

mod lanes;
pub mod ledger;

pub use crate::scheduler::Concurrency;
pub use ledger::{DecisionAction, DecisionRecord, RefitSample, TenantLedger, TenantSlo};

use lanes::{run_interleaved, run_lane, LaneOutcome};
use ledger::duration_ns;

/// One tenant's deadline-bound aggregate request.
#[derive(Debug, Clone)]
pub struct ServerJob {
    /// Label for reporting (tenant/request id).
    pub name: String,
    /// The aggregate to evaluate.
    pub agg: AggregateFn,
    /// The expression.
    pub expr: Expr,
    /// Absolute deadline, measured from the batch start on the
    /// database's clock.
    pub deadline: Duration,
    /// Quota the job would like if slack allows.
    pub desired_quota: Duration,
    /// Below this granted quota the answer is worthless to the
    /// caller; admission refuses (or shedding evicts) instead.
    pub min_quota: Duration,
    /// Relative worth used by the shedding policy (default 1.0).
    /// Higher-value jobs survive triage longer.
    pub value: f64,
    /// Per-job retry policy for transient storage faults; `None`
    /// inherits [`ServerConfig::retry`].
    pub retry: Option<RetryPolicy>,
}

impl ServerJob {
    /// A job with explicit aggregate, full-slack desired quota, the
    /// [`DEFAULT_MIN_QUOTA`] minimum, and unit value.
    pub fn new(name: impl Into<String>, agg: AggregateFn, expr: Expr, deadline: Duration) -> Self {
        ServerJob {
            name: name.into(),
            agg,
            expr,
            deadline,
            desired_quota: deadline,
            min_quota: DEFAULT_MIN_QUOTA,
            value: 1.0,
            retry: None,
        }
    }

    /// A COUNT job (the common case).
    pub fn count(name: impl Into<String>, expr: Expr, deadline: Duration) -> Self {
        Self::new(name, AggregateFn::Count, expr, deadline)
    }

    /// Replaces the admission threshold: below `min_quota` of granted
    /// time the job is refused or shed rather than run.
    pub fn with_min_quota(mut self, min_quota: Duration) -> Self {
        self.min_quota = min_quota;
        self
    }

    /// Caps the quota the job asks for even when slack is plentiful.
    pub fn with_desired_quota(mut self, desired_quota: Duration) -> Self {
        self.desired_quota = desired_quota;
        self
    }

    /// Sets the shedding value (relative worth under triage).
    pub fn with_value(mut self, value: f64) -> Self {
        self.value = value;
        self
    }

    /// Sets a per-job retry policy for transient storage faults.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = Some(retry);
        self
    }
}

impl From<QueryJob> for ServerJob {
    fn from(job: QueryJob) -> Self {
        ServerJob {
            name: job.name,
            agg: job.agg,
            expr: job.expr,
            deadline: job.deadline,
            desired_quota: job.desired_quota,
            min_quota: job.min_quota,
            value: 1.0,
            retry: None,
        }
    }
}

/// Terminal state of one served job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum JobState {
    /// The engine returned an estimate.
    Done,
    /// Admission control denied the job an answer — at admission
    /// ([`RefusalReason::Infeasible`] / [`RefusalReason::Overloaded`])
    /// or mid-batch ([`RefusalReason::Shed`]).
    Refused {
        /// Why the job got no answer.
        reason: RefusalReason,
    },
    /// The engine (or QCOST admission screening) hit an error; the
    /// failure is isolated to this job.
    Failed {
        /// The rendered [`EngineError`].
        error: String,
    },
}

impl JobState {
    /// True if the job produced an estimate.
    pub fn is_done(&self) -> bool {
        matches!(self, JobState::Done)
    }

    /// True if the job was refused or shed (carries a
    /// [`RefusalReason`]).
    pub fn is_refused(&self) -> bool {
        matches!(self, JobState::Refused { .. })
    }

    /// True if the job was admitted and later evicted by overload
    /// shedding.
    pub fn is_shed(&self) -> bool {
        matches!(
            self,
            JobState::Refused {
                reason: RefusalReason::Shed
            }
        )
    }
}

/// How one served job fared — the per-tenant answer sheet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobReport {
    /// The job's label.
    pub name: String,
    /// The job's deadline (batch-relative).
    pub deadline: Duration,
    /// The job's shedding value.
    pub value: f64,
    /// When it started, relative to the batch start (for refused and
    /// shed jobs: when the decision was made).
    pub started_at: Duration,
    /// When it finished (equals `started_at` for refused/shed jobs).
    pub finished_at: Duration,
    /// The quota it was granted (zero if refused or shed).
    pub granted_quota: Duration,
    /// Terminal state.
    pub state: JobState,
    /// Fault-tolerance accounting; for refused/shed jobs the
    /// `refusal` field carries the structured reason.
    pub health: ReportHealth,
    /// The estimate, when the job ran to completion.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub estimate: Option<CountEstimate>,
    /// The full engine report, when the job ran to completion.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub report: Option<ExecutionReport>,
}

impl JobReport {
    /// True if the job produced an answer by its deadline.
    pub fn met(&self) -> bool {
        self.state.is_done() && self.finished_at <= self.deadline
    }
}

/// Batch-level accounting: every offered job lands in exactly one of
/// admitted/refused buckets, and every admitted job in exactly one of
/// completed/shed/failed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServerStats {
    /// Jobs submitted.
    pub offered: u64,
    /// Jobs that passed admission.
    pub admitted: u64,
    /// Jobs refused at admission (infeasible or overloaded).
    pub refused: u64,
    /// Admitted jobs evicted mid-batch by overload shedding.
    pub shed: u64,
    /// Jobs that hit an engine (or admission-screening) error.
    pub failed: u64,
    /// Admitted jobs that ran to completion.
    pub completed: u64,
    /// Completed jobs that finished by their deadline.
    pub deadlines_met: u64,
    /// Completed jobs that finished late — the quantity this whole
    /// module exists to keep at zero. The dispatch loop drops any
    /// result landing past its deadline (it becomes a [`shed`]
    /// casualty instead), so a nonzero count here means the serving
    /// invariant itself is broken.
    ///
    /// [`shed`]: ServerStats::shed
    pub deadlines_missed: u64,
    /// Jobs whose engine run overshot the granted quota beyond
    /// [`ServerConfig::watchdog_grace`].
    pub watchdog_overruns: u64,
}

/// Everything one serving batch produced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerOutcome {
    /// Observability schema version (see
    /// [`crate::obs::SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// One report per offered job, in canonical admission (EDF)
    /// order: stable sort by deadline, submission order on ties.
    pub jobs: Vec<JobReport>,
    /// Batch-level accounting.
    pub stats: ServerStats,
    /// Server-loop counters and histograms, when
    /// [`ServerConfig::collect_metrics`] was set.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub metrics: Option<MetricsSnapshot>,
    /// Per-tenant SLO counters and the decision audit log, when
    /// [`ServerConfig::collect_ledger`] was set. Pure observation:
    /// with the flag off this field stays off the wire and the
    /// outcome JSON is byte-identical to pre-ledger writers.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub ledger: Option<TenantLedger>,
    /// How the batch was scheduled: per-lane windows, makespan, and
    /// shared-draw accounting. The only part of the outcome that is
    /// *allowed* to differ between concurrency modes (deterministic
    /// within each mode); everything else is byte-identical across
    /// `--concurrency seq|interleaved`. Absent in outcomes from
    /// pre-concurrency writers.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub schedule: Option<ScheduleReport>,
}

impl ServerOutcome {
    /// Deterministic pretty JSON (the replay artifact: byte-identical
    /// across worker counts and repeated seeded runs).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("server outcome serializes")
    }

    /// The outcome minus everything mode-dependent: the schedule
    /// report is dropped and the tenants' sharing counters zeroed.
    /// Two serving runs that differ only in [`ServerConfig::concurrency`]
    /// must produce byte-identical stripped outcomes — this is the
    /// equivalence artifact the conformance suites and CI compare.
    /// (jq equivalent: `del(.schedule) | (.ledger.tenants[]? |=
    /// (.blocks_shared = 0 | .charge_saved_ns = 0))`.)
    pub fn stripped_of_schedule(&self) -> ServerOutcome {
        let mut out = self.clone();
        out.schedule = None;
        if let Some(ledger) = out.ledger.as_mut() {
            for slo in ledger.tenants.values_mut() {
                slo.blocks_shared = 0;
                slo.charge_saved_ns = 0;
            }
        }
        out
    }
}

/// One lane's slice of the batch schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LaneWindow {
    /// The job that ran on this lane.
    pub job: String,
    /// Rank at which the lane received its first turn (`None` for a
    /// lane that never ran — sequential mode sheds before dispatch).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub dispatch_order: Option<u64>,
    /// Charged time on the lane's own clock (zero if it never ran).
    pub spent: Duration,
    /// Lane reads served from the batch's shared-draw pool.
    pub blocks_shared: u64,
    /// Device time (ns) those pool hits spared the physical device.
    pub charge_saved_ns: u64,
    /// True if the lane's job was shed: its work (if any) was
    /// speculative and none of it is observable in the job reports.
    pub discarded: bool,
}

/// The batch's scheduling story: what concurrency bought (or cost).
///
/// Per-job correctness lives in [`ServerOutcome::jobs`] and is
/// mode-invariant; this report carries the mode-*dependent* half —
/// simulated makespan, shared physical reads, wasted speculation —
/// in one deterministic structure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduleReport {
    /// The mode that produced this schedule.
    pub concurrency: Concurrency,
    /// Simulated completion time of the whole batch: the consumed
    /// virtual timeline, plus discarded speculative work, minus the
    /// device time shared draws saved. Interleaving with sharing
    /// strictly beats sequential here whenever `blocks_shared > 0`.
    pub makespan: Duration,
    /// The canonical virtual timeline the control replay consumed —
    /// identical across modes (it is what the job reports are
    /// stamped with).
    pub virtual_makespan: Duration,
    /// Charged block reads summed over every lane that ran.
    pub charged_blocks: u64,
    /// Backend block fetches actually performed
    /// (`charged_blocks − blocks_shared`).
    pub physical_blocks: u64,
    /// Charged reads served from the shared-draw pool.
    pub blocks_shared: u64,
    /// Device time (ns) the pool spared the physical device.
    pub charge_saved_ns: u64,
    /// Speculative lane time discarded by mid-batch shedding
    /// (interleaved mode pre-runs every admitted lane).
    pub wasted: Duration,
    /// Per-lane windows, in canonical admission order.
    pub lanes: Vec<LaneWindow>,
}

/// Tunables for a [`QueryServer`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Fraction of the slack granted as quota; the rest is scheduling
    /// margin for the engine's block-granularity abort overshoot.
    /// Lower than [`crate::scheduler::EdfScheduler`]'s default
    /// because the server must also absorb fault-storm overshoot.
    pub slack_margin: f64,
    /// Worker threads per job for the pure-CPU stage work (results
    /// are byte-identical at any count).
    pub workers: usize,
    /// Retry policy for jobs that don't carry their own.
    pub retry: RetryPolicy,
    /// Cost model for QCOST admission screening and per-job
    /// execution; `None` inherits the database's default model.
    pub cost_model: Option<CostModel>,
    /// Refuse jobs whose QCOST floor (one block per operand relation
    /// plus stage overhead) exceeds their projected grant. Also
    /// screens broken expressions at admission, before they can burn
    /// quota.
    pub qcost_admission: bool,
    /// Apply selection pushdown before the admission-time compile
    /// (mirrors the executor's default).
    pub optimize: bool,
    /// EWMA weight for the overrun refit (0 freezes the factor at
    /// 1.0).
    pub overrun_alpha: f64,
    /// `spent > granted × grace` trips the watchdog counter and
    /// trace event.
    pub watchdog_grace: f64,
    /// Tracer shared by the server loop (`server.*` events) and every
    /// job's engine spans; one interleaved clock-stamped stream.
    pub tracer: Tracer,
    /// Collect server-loop counters into [`ServerOutcome::metrics`]
    /// and per-job engine metrics into each job's report.
    pub collect_metrics: bool,
    /// Aggregate the per-tenant SLO ledger and decision audit log
    /// into [`ServerOutcome::ledger`]. Charge-free and RNG-free;
    /// `server.decision` trace events are emitted whenever a
    /// recording tracer is attached, regardless of this flag, so the
    /// trace stream is identical either way.
    pub collect_ledger: bool,
    /// How admitted lanes are scheduled: [`Concurrency::Sequential`]
    /// (the oracle — one lane at a time, in canonical EDF order) or
    /// [`Concurrency::Interleaved`] (stages from all admitted lanes
    /// interleaved, base-relation draws shared). Per-job reports,
    /// traces, and the schedule-stripped outcome are byte-identical
    /// across modes; only [`ServerOutcome::schedule`] and the
    /// tenants' sharing counters differ. On a wall clock the server
    /// always runs sequentially (there is no virtual time to order
    /// the turnstile by).
    pub concurrency: Concurrency,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            slack_margin: 0.9,
            workers: 1,
            retry: RetryPolicy::default(),
            cost_model: None,
            qcost_admission: true,
            optimize: true,
            overrun_alpha: 0.3,
            watchdog_grace: 1.25,
            tracer: Tracer::disabled(),
            collect_metrics: false,
            collect_ledger: false,
            concurrency: Concurrency::Sequential,
        }
    }
}

/// Bounds on a single observed `spent / granted` ratio before it
/// enters the EWMA (one pathological job must not poison the refit).
const OVERRUN_CLAMP: (f64, f64) = (0.25, 4.0);

/// Guard against division by ~zero slack in the shedding score.
const MIN_SLACK_SECS: f64 = 1e-9;

/// The admission-controlled, overload-shedding query server.
///
/// See the [module docs](self) for the serving discipline. Typical
/// use:
///
/// ```no_run
/// # use std::time::Duration;
/// # use eram_core::server::{QueryServer, ServerJob};
/// # use eram_core::Database;
/// # use eram_relalg::Expr;
/// # let mut db = Database::sim_default(7);
/// let jobs = vec![
///     ServerJob::count("a", Expr::relation("t"), Duration::from_secs(6)),
///     ServerJob::count("b", Expr::relation("t"), Duration::from_secs(12)).with_value(2.0),
/// ];
/// let outcome = QueryServer::new().run(&mut db, jobs);
/// for job in &outcome.jobs {
///     println!("{}: {:?} met={}", job.name, job.state, job.met());
/// }
/// ```
#[derive(Debug, Clone, Default)]
pub struct QueryServer {
    /// The serving tunables.
    pub config: ServerConfig,
}

impl QueryServer {
    /// A server with default tunables.
    pub fn new() -> Self {
        Self::default()
    }

    /// A server with explicit tunables.
    pub fn with_config(config: ServerConfig) -> Self {
        QueryServer { config }
    }

    /// Sets the slack margin in `(0, 1]`.
    ///
    /// # Panics
    /// Panics if the margin is out of range.
    pub fn slack_margin(mut self, margin: f64) -> Self {
        assert!(margin > 0.0 && margin <= 1.0);
        self.config.slack_margin = margin;
        self
    }

    /// Sets per-job worker threads (zero is treated as 1).
    pub fn workers(mut self, workers: usize) -> Self {
        self.config.workers = workers.max(1);
        self
    }

    /// Replaces the default retry policy.
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.config.retry = retry;
        self
    }

    /// Overrides the cost model used for admission and execution.
    pub fn cost_model(mut self, model: CostModel) -> Self {
        self.config.cost_model = Some(model);
        self
    }

    /// Toggles QCOST admission screening.
    pub fn qcost_admission(mut self, on: bool) -> Self {
        self.config.qcost_admission = on;
        self
    }

    /// Attaches a tracer (use [`Tracer::recording`] with the
    /// database's clock for clock-stamped, replayable traces).
    pub fn tracer(mut self, tracer: Tracer) -> Self {
        self.config.tracer = tracer;
        self
    }

    /// Toggles metrics collection.
    pub fn metrics(mut self, on: bool) -> Self {
        self.config.collect_metrics = on;
        self
    }

    /// Toggles the per-tenant SLO ledger and decision audit log
    /// ([`ServerOutcome::ledger`]).
    pub fn ledger(mut self, on: bool) -> Self {
        self.config.collect_ledger = on;
        self
    }

    /// Selects the lane scheduling mode (see
    /// [`ServerConfig::concurrency`]).
    pub fn concurrency(mut self, mode: Concurrency) -> Self {
        self.config.concurrency = mode;
        self
    }

    /// Serves a batch: admission, execution with replan-and-shed,
    /// refit. Consumes the database's clock time; returns one report
    /// per offered job in canonical admission (EDF) order.
    pub fn run(&self, db: &mut Database, mut jobs: Vec<ServerJob>) -> ServerOutcome {
        let cfg = &self.config;
        let tracer = cfg.tracer.clone();
        let mut registry = cfg.collect_metrics.then(MetricsRegistry::new);
        let mut ledger = cfg.collect_ledger.then(TenantLedger::new);
        let clock = db.disk().clock().clone();
        let model = cfg
            .cost_model
            .clone()
            .unwrap_or_else(|| db.default_cost_model().clone());

        // Canonical admission order: stable EDF, so replay is a pure
        // function of the submitted job list.
        jobs.sort_by_key(|j| j.deadline);

        let mut stats = ServerStats {
            offered: jobs.len() as u64,
            ..ServerStats::default()
        };
        let mut slots: Vec<Option<JobReport>> = jobs.iter().map(|_| None).collect();

        // ---- Phase 1: predictive admission (charge-free). ----
        // The phase-1 grant IS the execution quota (see the module
        // docs): fixing it here is what makes each lane a pure
        // function of the admitted set, independent of how the other
        // lanes are scheduled.
        let mut grants: Vec<Duration> = vec![Duration::ZERO; jobs.len()];
        let mut pending: Vec<usize> = Vec::new();
        let mut projected = Duration::ZERO;
        for (idx, job) in jobs.iter().enumerate() {
            if let Some(ledger) = ledger.as_mut() {
                ledger.offer(&job.name);
            }
            // Admission is charge-free, so this stamp is the batch
            // start for every phase-1 decision — same timebase as the
            // trace stream.
            let t_ns = duration_ns(clock.elapsed());
            let slack = job.deadline.saturating_sub(projected);
            let grant = grant_for(job, projected, cfg.slack_margin, 1.0);
            let alone = grant_for(job, Duration::ZERO, cfg.slack_margin, 1.0);
            if grant < job.min_quota {
                let reason = if alone < job.min_quota {
                    RefusalReason::Infeasible
                } else {
                    RefusalReason::Overloaded
                };
                tracer.event("server.refuse", || {
                    vec![
                        ("job", JsonValue::from(job.name.clone())),
                        ("reason", JsonValue::from(reason.as_str())),
                        ("grant_ns", json_ns(grant)),
                        ("min_quota_ns", json_ns(job.min_quota)),
                    ]
                });
                decide(
                    &mut ledger,
                    &tracer,
                    DecisionRecord {
                        reason: Some(reason),
                        slack_ns: Some(duration_ns(slack)),
                        grant_ns: Some(duration_ns(grant)),
                        min_quota_ns: Some(duration_ns(job.min_quota)),
                        projected_start_ns: Some(duration_ns(projected)),
                        margin: Some(cfg.slack_margin),
                        ..DecisionRecord::new(t_ns, DecisionAction::Refuse, job.name.as_str())
                    },
                );
                stats.refused += 1;
                count(&mut registry, "server.refused");
                slots[idx] = Some(denied_report(job, Duration::ZERO, reason));
                continue;
            }
            // Charge-free aggregate validation: a job whose aggregate
            // cannot be evaluated on its expression (bad column, bad
            // group key) is isolated at admission — it burns no quota
            // and poisons no other tenant, exactly like a broken
            // expression below.
            if let Err(e) = job.agg.validate(&job.expr, db.catalog()) {
                let error = EngineError::Expr(e).to_string();
                tracer.event("server.job_failed", || {
                    vec![
                        ("job", JsonValue::from(job.name.clone())),
                        ("error", JsonValue::from(error.clone())),
                    ]
                });
                decide(
                    &mut ledger,
                    &tracer,
                    DecisionRecord {
                        error: Some(error.clone()),
                        ..DecisionRecord::new(t_ns, DecisionAction::Fail, job.name.as_str())
                    },
                );
                stats.failed += 1;
                count(&mut registry, "server.failed");
                slots[idx] = Some(failed_report(job, Duration::ZERO, Duration::ZERO, error));
                continue;
            }
            let mut floor = None;
            if cfg.qcost_admission {
                match qcost_floor(db, &job.expr, cfg.optimize, &model) {
                    Ok(floor_secs) => {
                        floor = Some(floor_secs);
                        if floor_secs > grant.as_secs_f64() {
                            let reason = if floor_secs > alone.as_secs_f64() {
                                RefusalReason::Infeasible
                            } else {
                                RefusalReason::Overloaded
                            };
                            tracer.event("server.refuse", || {
                                vec![
                                    ("job", JsonValue::from(job.name.clone())),
                                    ("reason", JsonValue::from(reason.as_str())),
                                    ("grant_ns", json_ns(grant)),
                                    ("qcost_floor_secs", JsonValue::from(floor_secs)),
                                ]
                            });
                            decide(
                                &mut ledger,
                                &tracer,
                                DecisionRecord {
                                    reason: Some(reason),
                                    slack_ns: Some(duration_ns(slack)),
                                    grant_ns: Some(duration_ns(grant)),
                                    min_quota_ns: Some(duration_ns(job.min_quota)),
                                    projected_start_ns: Some(duration_ns(projected)),
                                    predicted_cost_secs: Some(floor_secs),
                                    margin: Some(cfg.slack_margin),
                                    ..DecisionRecord::new(
                                        t_ns,
                                        DecisionAction::Refuse,
                                        job.name.as_str(),
                                    )
                                },
                            );
                            stats.refused += 1;
                            count(&mut registry, "server.refused");
                            slots[idx] = Some(denied_report(job, Duration::ZERO, reason));
                            continue;
                        }
                    }
                    Err(e) => {
                        // Broken expression: isolated at admission —
                        // the failure burns no quota and poisons no
                        // other tenant.
                        let error = e.to_string();
                        tracer.event("server.job_failed", || {
                            vec![
                                ("job", JsonValue::from(job.name.clone())),
                                ("error", JsonValue::from(error.clone())),
                            ]
                        });
                        decide(
                            &mut ledger,
                            &tracer,
                            DecisionRecord {
                                error: Some(error.clone()),
                                ..DecisionRecord::new(t_ns, DecisionAction::Fail, job.name.as_str())
                            },
                        );
                        stats.failed += 1;
                        count(&mut registry, "server.failed");
                        slots[idx] =
                            Some(failed_report(job, Duration::ZERO, Duration::ZERO, error));
                        continue;
                    }
                }
            }
            tracer.event("server.admit", || {
                vec![
                    ("job", JsonValue::from(job.name.clone())),
                    ("grant_ns", json_ns(grant)),
                    ("projected_start_ns", json_ns(projected)),
                ]
            });
            decide(
                &mut ledger,
                &tracer,
                DecisionRecord {
                    slack_ns: Some(duration_ns(slack)),
                    grant_ns: Some(duration_ns(grant)),
                    min_quota_ns: Some(duration_ns(job.min_quota)),
                    projected_start_ns: Some(duration_ns(projected)),
                    predicted_cost_secs: floor,
                    margin: Some(cfg.slack_margin),
                    overrun: Some(1.0), // factor is 1.0 at admission
                    ..DecisionRecord::new(t_ns, DecisionAction::Admit, job.name.as_str())
                },
            );
            stats.admitted += 1;
            count(&mut registry, "server.admitted");
            grants[idx] = grant;
            projected += grant; // overrun factor is 1.0 at admission
            pending.push(idx);
        }

        // ---- Phase 1.5: one prepared execution lane per admitted
        // job, in canonical order (the per-query seed stream is part
        // of the replay contract). Quotas are the fixed phase-1
        // grants, so every lane is a pure function of the admitted
        // set — independent of how (or whether) the others run. ----
        let admitted: Vec<usize> = pending.clone();
        let mut specs: Vec<PreparedQuery> = Vec::with_capacity(admitted.len());
        for &idx in &admitted {
            let job = &jobs[idx];
            let mut spec = db.prepare(job.agg, job.expr.clone());
            spec.quota = grants[idx];
            spec.config.stopping = StoppingCriterion::HardDeadline;
            spec.config.retry = job.retry.unwrap_or(cfg.retry);
            spec.config.workers = cfg.workers.max(1);
            spec.config.collect_metrics = cfg.collect_metrics;
            if let Some(model) = &cfg.cost_model {
                spec.config.cost_model = model.clone();
            }
            specs.push(spec);
        }
        let db = &*db;

        // Interleaving needs a virtual clock to define the turnstile
        // order; a wall clock always serves sequentially.
        let mode = if clock.is_simulated() {
            cfg.concurrency
        } else {
            Concurrency::Sequential
        };

        // Interleaved mode runs every admitted lane up front — stages
        // interleaved under the deterministic turnstile, co-resident
        // base-relation draws pooled through the broker — and the
        // control replay below consumes the outcomes in canonical
        // order. Sequential mode (the oracle) runs each lane lazily
        // at its dispatch point, so jobs shed before dispatch never
        // execute at all.
        let (mut lane_slots, mut dispatch): (Vec<Option<LaneOutcome>>, Vec<usize>) = match mode {
            Concurrency::Interleaved => {
                let broker = SharedDrawBroker::new(
                    db.catalog()
                        .names()
                        .into_iter()
                        .filter_map(|name| db.catalog().relation(name))
                        .map(|file| file.file_id()),
                );
                let (outs, order) = run_interleaved(db, &specs, &tracer, Some(broker));
                (outs.into_iter().map(Some).collect(), order)
            }
            Concurrency::Sequential => {
                let mut lazy: Vec<Option<LaneOutcome>> = Vec::with_capacity(specs.len());
                lazy.resize_with(specs.len(), || None);
                (lazy, Vec::new())
            }
        };
        let mut windows: Vec<LaneWindow> = admitted
            .iter()
            .map(|&idx| LaneWindow {
                job: jobs[idx].name.clone(),
                dispatch_order: None,
                spent: Duration::ZERO,
                blocks_shared: 0,
                charge_saved_ns: 0,
                discarded: false,
            })
            .collect();

        // ---- Phase 2: canonical control replay (replan-and-shed +
        // refit) over the lane outcomes. `vt` is the batch's virtual
        // timeline: the sum of the consumed lanes' private clocks, in
        // canonical order. Both modes replay the identical control
        // sequence over identical lane outcomes, so every report
        // field, ledger entry, and trace byte below is mode-invariant.
        let start = clock.elapsed();
        let mut vt = Duration::ZERO;
        let mut overrun = 1.0f64;
        let mut charged_blocks = 0u64;
        let mut blocks_shared = 0u64;
        let mut charge_saved_ns = 0u64;
        let mut wasted = Duration::ZERO;

        while !pending.is_empty() {
            let t = vt;
            let factor = overrun.max(1.0);
            // Shed until the projected schedule is feasible again.
            while let Some(pos) =
                first_infeasible(&jobs, &pending, &grants, t, cfg.slack_margin, factor)
            {
                let vpos = pick_victim(&jobs, &pending, t, cfg.slack_margin, factor, pos);
                let vidx = pending.remove(vpos);
                let victim = &jobs[vidx];
                let vlane = admitted
                    .iter()
                    .position(|&i| i == vidx)
                    .expect("victims were admitted");
                windows[vlane].discarded = true;
                tracer.event_at(duration_ns(start + t), "server.shed", || {
                    vec![
                        ("job", JsonValue::from(victim.name.clone())),
                        ("reason", JsonValue::from(RefusalReason::Shed.as_str())),
                        ("now_ns", json_ns(t)),
                        ("value", JsonValue::from(victim.value)),
                    ]
                });
                decide(
                    &mut ledger,
                    &tracer,
                    DecisionRecord {
                        reason: Some(RefusalReason::Shed),
                        slack_ns: Some(duration_ns(victim.deadline.saturating_sub(t))),
                        min_quota_ns: Some(duration_ns(victim.min_quota)),
                        margin: Some(cfg.slack_margin),
                        overrun: Some(factor),
                        value: Some(victim.value),
                        ..DecisionRecord::new(
                            duration_ns(start + t),
                            DecisionAction::Shed,
                            victim.name.as_str(),
                        )
                    },
                );
                stats.shed += 1;
                count(&mut registry, "server.shed");
                slots[vidx] = Some(denied_report(victim, t, RefusalReason::Shed));
            }
            if pending.is_empty() {
                break;
            }
            let idx = pending.remove(0);
            let lane = admitted
                .iter()
                .position(|&i| i == idx)
                .expect("dispatched jobs were admitted");
            let job = &jobs[idx];
            let started_at = vt;
            let mut quota = grants[idx];
            tracer.event_at(duration_ns(start + started_at), "server.job_start", || {
                vec![
                    ("job", JsonValue::from(job.name.clone())),
                    ("quota_ns", json_ns(quota)),
                    ("overrun_x1000", JsonValue::from((factor * 1000.0) as u64)),
                ]
            });
            decide(
                &mut ledger,
                &tracer,
                DecisionRecord {
                    slack_ns: Some(duration_ns(job.deadline.saturating_sub(started_at))),
                    grant_ns: Some(duration_ns(quota)),
                    min_quota_ns: Some(duration_ns(job.min_quota)),
                    margin: Some(cfg.slack_margin),
                    overrun: Some(factor),
                    ..DecisionRecord::new(
                        duration_ns(start + started_at),
                        DecisionAction::Grant,
                        job.name.as_str(),
                    )
                },
            );
            observe(&mut registry, "server.grant_secs", quota.as_secs_f64());
            if mode == Concurrency::Sequential {
                dispatch.push(lane);
            }
            let mut attempt = lane_slots[lane]
                .take()
                .unwrap_or_else(|| run_lane(db, &specs[lane], lane, &tracer, None, None));
            // Dispatch-time deflation. Admission fixed this quota
            // against a projected start, but the actual timeline may
            // have slipped (earlier lanes overran under device
            // weather). When the attempt would land past the
            // deadline and a fresh dispatch-time grant is tighter
            // than the admission quota, the attempt is discarded —
            // its work becomes schedule-level waste — and the lane
            // re-runs under the deflated quota. Both modes take this
            // branch from identical replay state and identical lane
            // outcomes, and a re-run replays the same lane seed, so
            // the consumed outcome stays mode-invariant.
            if clock.is_simulated()
                && attempt.result.is_ok()
                && started_at + attempt.spent > job.deadline
            {
                let deflated = grant_for(job, started_at, cfg.slack_margin, factor).min(quota);
                if deflated < quota && deflated >= job.min_quota {
                    tracer.event_at(duration_ns(start + started_at), "server.deflate", || {
                        vec![
                            ("job", JsonValue::from(job.name.clone())),
                            ("quota_ns", json_ns(quota)),
                            ("deflated_ns", json_ns(deflated)),
                            ("discarded_ns", json_ns(attempt.spent)),
                        ]
                    });
                    wasted += attempt.spent;
                    charged_blocks += attempt.reads;
                    blocks_shared += attempt.blocks_shared;
                    charge_saved_ns += attempt.charge_saved_ns;
                    quota = deflated;
                    specs[lane].quota = deflated;
                    attempt = run_lane(db, &specs[lane], lane, &tracer, None, None);
                }
            }
            let LaneOutcome {
                result,
                spent,
                records,
                reads,
                blocks_shared: lane_shared,
                charge_saved_ns: lane_saved,
            } = attempt;
            // Splice the lane's trace onto the shared stream at the
            // job's canonical start (wall-clock lanes trace straight
            // into the shared stream; their record list is empty).
            tracer.absorb(records, duration_ns(start + started_at));
            charged_blocks += reads;
            blocks_shared += lane_shared;
            charge_saved_ns += lane_saved;
            windows[lane].spent = spent;
            windows[lane].blocks_shared = lane_shared;
            windows[lane].charge_saved_ns = lane_saved;
            let finished_at = started_at + spent;
            vt = finished_at;
            // A result landing past the deadline is dropped below
            // (late shed): its pool hits stay discarded lane work,
            // never tenant credit.
            let late = result.is_ok() && finished_at > job.deadline;
            if !late {
                if let Some(ledger) = ledger.as_mut() {
                    ledger.credit_sharing(&job.name, lane_shared, lane_saved);
                }
            }

            // Section-4-style refit, one level up: fold the observed
            // overrun into the factor that deflates future grants.
            if !quota.is_zero() && cfg.overrun_alpha > 0.0 {
                let ratio = (spent.as_secs_f64() / quota.as_secs_f64())
                    .clamp(OVERRUN_CLAMP.0, OVERRUN_CLAMP.1);
                overrun += cfg.overrun_alpha * (ratio - overrun);
                let logged = overrun;
                tracer.event_at(duration_ns(start + finished_at), "server.refit", || {
                    vec![
                        ("ratio", JsonValue::from(ratio)),
                        ("overrun", JsonValue::from(logged)),
                    ]
                });
                decide(
                    &mut ledger,
                    &tracer,
                    DecisionRecord {
                        grant_ns: Some(duration_ns(quota)),
                        overrun: Some(logged),
                        ratio: Some(ratio),
                        spent_ns: Some(duration_ns(spent)),
                        ..DecisionRecord::new(
                            duration_ns(start + finished_at),
                            DecisionAction::Refit,
                            job.name.as_str(),
                        )
                    },
                );
                observe(&mut registry, "server.overrun_ratio", ratio);
            }
            if spent > scale(quota, cfg.watchdog_grace) {
                tracer.event_at(duration_ns(start + finished_at), "server.watchdog", || {
                    vec![
                        ("job", JsonValue::from(job.name.clone())),
                        ("quota_ns", json_ns(quota)),
                        ("spent_ns", json_ns(spent)),
                    ]
                });
                decide(
                    &mut ledger,
                    &tracer,
                    DecisionRecord {
                        grant_ns: Some(duration_ns(quota)),
                        spent_ns: Some(duration_ns(spent)),
                        ..DecisionRecord::new(
                            duration_ns(start + finished_at),
                            DecisionAction::Watchdog,
                            job.name.as_str(),
                        )
                    },
                );
                stats.watchdog_overruns += 1;
                count(&mut registry, "server.watchdog_overruns");
            }

            let report = match result {
                Ok(_) if late => {
                    // Hard-deadline serving never delivers a late
                    // answer: the timeline keeps the charge, but the
                    // result is dropped and the job recorded as an
                    // explicit shed casualty instead of a silent
                    // deadline miss reaching a client.
                    stats.shed += 1;
                    count(&mut registry, "server.shed");
                    windows[lane].discarded = true;
                    tracer.event_at(duration_ns(start + finished_at), "server.shed", || {
                        vec![
                            ("job", JsonValue::from(job.name.clone())),
                            ("reason", JsonValue::from(RefusalReason::Shed.as_str())),
                            ("late_ns", json_ns(finished_at.saturating_sub(job.deadline))),
                            ("now_ns", json_ns(finished_at)),
                        ]
                    });
                    decide(
                        &mut ledger,
                        &tracer,
                        DecisionRecord {
                            reason: Some(RefusalReason::Shed),
                            grant_ns: Some(duration_ns(quota)),
                            spent_ns: Some(duration_ns(spent)),
                            value: Some(job.value),
                            ..DecisionRecord::new(
                                duration_ns(start + finished_at),
                                DecisionAction::Shed,
                                job.name.as_str(),
                            )
                        },
                    );
                    if let Some(ledger) = ledger.as_mut() {
                        ledger.spend(&job.name, spent);
                    }
                    let mut r = denied_report(job, started_at, RefusalReason::Shed);
                    r.finished_at = finished_at;
                    r.granted_quota = quota;
                    r
                }
                Ok(out) => {
                    stats.completed += 1;
                    count(&mut registry, "server.completed");
                    let met = finished_at <= job.deadline;
                    if met {
                        stats.deadlines_met += 1;
                        count(&mut registry, "server.deadlines_met");
                    } else {
                        stats.deadlines_missed += 1;
                        count(&mut registry, "server.deadlines_missed");
                    }
                    tracer.event_at(duration_ns(start + finished_at), "server.job_done", || {
                        vec![
                            ("job", JsonValue::from(job.name.clone())),
                            ("elapsed_ns", json_ns(spent)),
                            ("met", JsonValue::from(met)),
                        ]
                    });
                    decide(
                        &mut ledger,
                        &tracer,
                        DecisionRecord {
                            slack_ns: Some(duration_ns(job.deadline.saturating_sub(finished_at))),
                            grant_ns: Some(duration_ns(quota)),
                            spent_ns: Some(duration_ns(spent)),
                            value: Some(job.value),
                            met: Some(met),
                            ..DecisionRecord::new(
                                duration_ns(start + finished_at),
                                DecisionAction::Done,
                                job.name.as_str(),
                            )
                        },
                    );
                    if let Some(ledger) = ledger.as_mut() {
                        ledger.bank_slack(
                            &job.name,
                            job.value,
                            job.deadline.saturating_sub(finished_at),
                        );
                    }
                    JobReport {
                        name: job.name.clone(),
                        deadline: job.deadline,
                        value: job.value,
                        started_at,
                        finished_at,
                        granted_quota: quota,
                        state: JobState::Done,
                        health: out.report.health,
                        estimate: Some(out.estimate),
                        report: Some(out.report),
                    }
                }
                Err(e) => {
                    // The failure burned clock time the schedule had
                    // granted away — the next replan sees that — but
                    // it stays this job's failure alone.
                    let error = e.to_string();
                    stats.failed += 1;
                    count(&mut registry, "server.failed");
                    tracer.event_at(
                        duration_ns(start + finished_at),
                        "server.job_failed",
                        || {
                            vec![
                                ("job", JsonValue::from(job.name.clone())),
                                ("error", JsonValue::from(error.clone())),
                            ]
                        },
                    );
                    decide(
                        &mut ledger,
                        &tracer,
                        DecisionRecord {
                            grant_ns: Some(duration_ns(quota)),
                            spent_ns: Some(duration_ns(spent)),
                            error: Some(error.clone()),
                            ..DecisionRecord::new(
                                duration_ns(start + finished_at),
                                DecisionAction::Fail,
                                job.name.as_str(),
                            )
                        },
                    );
                    if let Some(ledger) = ledger.as_mut() {
                        ledger.spend(&job.name, spent);
                    }
                    let mut r = failed_report(job, started_at, finished_at, error);
                    r.granted_quota = quota;
                    r
                }
            };
            slots[idx] = Some(report);
        }

        // The batch consumed `vt` of lane time; advance the shared
        // clock by exactly that much so the session timeline reads as
        // if the jobs had run on it directly (a wall clock ignores
        // the charge — its time already passed inside the lanes).
        clock.charge(vt);

        // Lanes that pre-ran speculatively (interleaved mode) but
        // were shed before dispatch: wasted work, visible only in the
        // schedule report — never in per-job reports or the ledger.
        for (lane, slot) in lane_slots.iter_mut().enumerate() {
            if let Some(out) = slot.take() {
                wasted += out.spent;
                charged_blocks += out.reads;
                blocks_shared += out.blocks_shared;
                charge_saved_ns += out.charge_saved_ns;
                windows[lane].spent = out.spent;
                windows[lane].blocks_shared = out.blocks_shared;
                windows[lane].charge_saved_ns = out.charge_saved_ns;
                windows[lane].discarded = true;
            }
        }
        for (rank, &lane) in dispatch.iter().enumerate() {
            windows[lane].dispatch_order = Some(rank as u64);
        }
        let schedule = ScheduleReport {
            concurrency: mode,
            makespan: (vt + wasted).saturating_sub(Duration::from_nanos(charge_saved_ns)),
            virtual_makespan: vt,
            charged_blocks,
            physical_blocks: charged_blocks.saturating_sub(blocks_shared),
            blocks_shared,
            charge_saved_ns,
            wasted,
            lanes: windows,
        };

        if let Some(reg) = registry.as_mut() {
            reg.add("server.offered", stats.offered);
        }
        ServerOutcome {
            schema_version: crate::obs::SCHEMA_VERSION,
            jobs: slots
                .into_iter()
                .map(|s| s.expect("every offered job gets a report"))
                .collect(),
            stats,
            metrics: registry.map(|r| r.snapshot()),
            ledger,
            schedule: Some(schedule),
        }
    }
}

/// Mirrors one serving decision into the trace stream (always, when a
/// recording tracer is attached — the field closure is skipped when
/// tracing is off) and into the ledger (only when one is being
/// collected). Keeping the event unconditional is what makes the
/// ledger flag trace-invisible: the JSONL stream is byte-identical
/// with the ledger on or off.
fn decide(ledger: &mut Option<TenantLedger>, tracer: &Tracer, record: DecisionRecord) {
    tracer.event("server.decision", || record.trace_fields());
    if let Some(ledger) = ledger.as_mut() {
        ledger.record(record);
    }
}

/// The quota a job starting at `start` would be granted: its desired
/// quota, capped by `slack × margin / overrun-factor`. Dividing by
/// the refit factor is what turns fault storms into coarser (not
/// later) answers: expected spend `grant × factor` stays within the
/// margined slack.
fn grant_for(job: &ServerJob, start: Duration, margin: f64, factor: f64) -> Duration {
    let slack = job.deadline.saturating_sub(start);
    job.desired_quota
        .min(scale(slack, margin / factor.max(1.0)))
}

/// Walks the pending queue's projected timeline from `now`; returns
/// the position of the first job that no longer fits, or `None` when
/// the whole queue does. Two ways a job falls out:
///
/// 1. the grant a fresh admission at its projected start would earn
///    falls below its declared minimum (the pre-quota criterion), or
/// 2. its *fixed* admission quota, inflated by the refit factor, now
///    projects past its deadline (overcommit: earlier jobs consumed
///    more of the timeline than admission assumed).
///
/// The second check is what keeps the fixed-quota protocol honest:
/// quotas never shrink after admission — a job that can no longer
/// finish in time becomes an explicit shed casualty rather than a
/// silent deadline miss. Occupancy advances by the fixed quota
/// (refit-scaled), matching what dispatch will actually charge.
fn first_infeasible(
    jobs: &[ServerJob],
    pending: &[usize],
    quotas: &[Duration],
    now: Duration,
    margin: f64,
    factor: f64,
) -> Option<usize> {
    let mut t = now;
    for (pos, &idx) in pending.iter().enumerate() {
        let job = &jobs[idx];
        let grant = grant_for(job, t, margin, factor);
        if grant < job.min_quota {
            return Some(pos);
        }
        let occupancy = scale(quotas[idx], factor);
        if t + occupancy > job.deadline {
            return Some(pos);
        }
        t += occupancy;
    }
    None
}

/// Picks the eviction victim among `pending[0..=pos]` (evicting a job
/// scheduled *after* the infeasibility cannot help it): the least
/// value-per-slack, slack measured at each job's projected start.
/// Ties go to the later deadline. Deterministic: pure fold over the
/// projected timeline.
fn pick_victim(
    jobs: &[ServerJob],
    pending: &[usize],
    now: Duration,
    margin: f64,
    factor: f64,
    pos: usize,
) -> usize {
    let mut t = now;
    let mut best = 0usize;
    let mut best_score = f64::INFINITY;
    for (p, &idx) in pending.iter().enumerate().take(pos + 1) {
        let job = &jobs[idx];
        let slack = job
            .deadline
            .saturating_sub(t)
            .as_secs_f64()
            .max(MIN_SLACK_SECS);
        let score = job.value / slack;
        if score <= best_score {
            best_score = score;
            best = p;
        }
        t += scale(grant_for(job, t, margin, factor), factor);
    }
    best
}

/// The QCOST floor of an expression: the predicted cost of the
/// minimum stage (one block per operand relation plus stage
/// overhead), in seconds. Charge-free: compiling a [`PhysTree`] only
/// builds samplers and trackers, and the fixed seed cannot influence
/// the population geometry the prediction walk reads.
fn qcost_floor(
    db: &Database,
    expr: &Expr,
    optimize: bool,
    model: &CostModel,
) -> Result<f64, EngineError> {
    let catalog = db.catalog();
    let optimized;
    let expr = if optimize {
        optimized = push_selections(expr.clone(), &|name| {
            catalog.schema_of(name).map(eram_storage::Schema::arity)
        });
        &optimized
    } else {
        expr
    };
    let rewrite = PieRewrite::rewrite(expr)?;
    let mut rng = StdRng::seed_from_u64(0xADA1_5510);
    let mut trees: Vec<PhysTree> = Vec::with_capacity(rewrite.terms.len());
    for term in &rewrite.terms {
        trees.push(PhysTree::build(
            &term.expr,
            catalog,
            db.disk(),
            &SelectivityDefaults::default(),
            Fulfillment::Full,
            &mut rng,
        )?);
    }
    Ok(predict_stage(&trees, 0.0, model, &SelPolicy::Mean).cost_secs)
}

fn denied_report(job: &ServerJob, at: Duration, reason: RefusalReason) -> JobReport {
    JobReport {
        name: job.name.clone(),
        deadline: job.deadline,
        value: job.value,
        started_at: at,
        finished_at: at,
        granted_quota: Duration::ZERO,
        state: JobState::Refused { reason },
        health: ReportHealth::refused(reason),
        estimate: None,
        report: None,
    }
}

fn failed_report(
    job: &ServerJob,
    started_at: Duration,
    finished_at: Duration,
    error: String,
) -> JobReport {
    JobReport {
        name: job.name.clone(),
        deadline: job.deadline,
        value: job.value,
        started_at,
        finished_at,
        granted_quota: Duration::ZERO,
        state: JobState::Failed { error },
        health: ReportHealth::default(),
        estimate: None,
        report: None,
    }
}

fn scale(d: Duration, x: f64) -> Duration {
    Duration::from_secs_f64(d.as_secs_f64() * x)
}

fn json_ns(d: Duration) -> JsonValue {
    JsonValue::from(d.as_nanos() as u64)
}

fn count(registry: &mut Option<MetricsRegistry>, name: &str) {
    if let Some(reg) = registry.as_mut() {
        reg.add(name, 1);
    }
}

fn observe(registry: &mut Option<MetricsRegistry>, name: &str, v: f64) {
    if let Some(reg) = registry.as_mut() {
        reg.observe(name, v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eram_relalg::{CmpOp, Predicate};
    use eram_storage::{ColumnType, FaultPlan, Schema, Tuple, Value};

    fn db(seed: u64) -> Database {
        let mut db = Database::sim_default(seed);
        let schema =
            Schema::new(vec![("k", ColumnType::Int), ("g", ColumnType::Int)]).padded_to(200);
        db.load_relation(
            "t",
            schema,
            (0..10_000).map(|i| Tuple::new(vec![Value::Int(i), Value::Int(i % 10)])),
        )
        .unwrap();
        db
    }

    fn sel(k: i64) -> Expr {
        Expr::relation("t").select(Predicate::col_cmp(1, CmpOp::Lt, k))
    }

    /// The acceptance invariant: every offered job ends answered by
    /// its deadline, refused with a reason, or shed with a reason.
    fn assert_no_silent_blowouts(outcome: &ServerOutcome) {
        for job in &outcome.jobs {
            match &job.state {
                JobState::Done => assert!(
                    job.met(),
                    "{} finished {:?} past deadline {:?}",
                    job.name,
                    job.finished_at,
                    job.deadline
                ),
                JobState::Refused { .. } => {
                    assert!(job.health.refusal.is_some(), "{} lacks a reason", job.name)
                }
                JobState::Failed { .. } => {}
            }
        }
        assert_eq!(outcome.stats.deadlines_missed, 0);
    }

    #[test]
    fn clean_batch_admits_everything_and_meets_deadlines() {
        let mut db = db(17);
        let jobs = vec![
            ServerJob::count("a", sel(3), Duration::from_secs(5)),
            ServerJob::count("b", sel(5), Duration::from_secs(12)),
            ServerJob::count("c", sel(7), Duration::from_secs(20)),
        ];
        let outcome = QueryServer::new().run(&mut db, jobs);
        assert_eq!(outcome.jobs.len(), 3);
        assert_eq!(outcome.stats.admitted, 3);
        assert_eq!(outcome.stats.completed, 3);
        assert_eq!(outcome.stats.deadlines_met, 3);
        assert_eq!(
            outcome.stats.refused + outcome.stats.shed + outcome.stats.failed,
            0
        );
        assert_no_silent_blowouts(&outcome);
        // Canonical EDF order in the report list.
        assert_eq!(outcome.jobs[0].name, "a");
        assert_eq!(outcome.jobs[2].name, "c");
        for job in &outcome.jobs {
            assert!(job.estimate.unwrap().estimate > 0.0);
            assert!(job.health.refusal.is_none());
        }
    }

    #[test]
    fn overload_refuses_with_overloaded_reason() {
        let mut db = db(18);
        // Five tenants all want the same 6 s window with a 2 s
        // minimum: the first fills it, the rest cannot fit.
        let jobs: Vec<ServerJob> = (0..5)
            .map(|i| {
                ServerJob::count(format!("j{i}"), sel(5), Duration::from_secs(6))
                    .with_min_quota(Duration::from_secs(2))
            })
            .collect();
        let outcome = QueryServer::new().run(&mut db, jobs);
        assert_eq!(outcome.stats.admitted, 1);
        assert_eq!(outcome.stats.refused, 4);
        assert_no_silent_blowouts(&outcome);
        let refused: Vec<&JobReport> = outcome
            .jobs
            .iter()
            .filter(|j| j.state.is_refused())
            .collect();
        assert_eq!(refused.len(), 4);
        for job in refused {
            assert_eq!(
                job.state,
                JobState::Refused {
                    reason: RefusalReason::Overloaded
                }
            );
            assert_eq!(job.health.refusal, Some(RefusalReason::Overloaded));
            assert_eq!(job.granted_quota, Duration::ZERO);
            assert_eq!(job.started_at, job.finished_at, "refusal burns no quota");
        }
    }

    #[test]
    fn impossible_deadline_is_infeasible_not_overloaded() {
        let mut db = db(19);
        // 50 ms of deadline cannot clear the 100 ms default minimum
        // even on an idle server.
        let jobs = vec![
            ServerJob::count("tiny", sel(5), Duration::from_millis(50)),
            ServerJob::count("fine", sel(5), Duration::from_secs(10)),
        ];
        let outcome = QueryServer::new().run(&mut db, jobs);
        let tiny = outcome.jobs.iter().find(|j| j.name == "tiny").unwrap();
        assert_eq!(
            tiny.state,
            JobState::Refused {
                reason: RefusalReason::Infeasible
            }
        );
        let fine = outcome.jobs.iter().find(|j| j.name == "fine").unwrap();
        assert!(fine.met());
        assert_no_silent_blowouts(&outcome);
    }

    #[test]
    fn qcost_floor_refuses_quota_below_one_block() {
        let mut db = db(20);
        // 300 ms of deadline grants 270 ms — below the QCOST floor
        // (stage overhead + one block read ≈ 345 ms on the generic
        // model) though above the caller's tiny declared minimum.
        let job = ServerJob::count("below-floor", sel(5), Duration::from_millis(300))
            .with_min_quota(Duration::from_millis(1));
        let outcome = QueryServer::new().run(&mut db, vec![job]);
        assert_eq!(
            outcome.jobs[0].state,
            JobState::Refused {
                reason: RefusalReason::Infeasible
            }
        );
        // With screening off the same job is admitted (and burns its
        // quota for a worthless answer — exactly what the floor check
        // exists to prevent).
        let mut db = self::db(20);
        let job = ServerJob::count("below-floor", sel(5), Duration::from_millis(300))
            .with_min_quota(Duration::from_millis(1));
        let outcome = QueryServer::new()
            .qcost_admission(false)
            .run(&mut db, vec![job]);
        assert_eq!(outcome.stats.admitted, 1);
    }

    #[test]
    fn broken_job_fails_alone_at_admission() {
        let mut db = db(21);
        let jobs = vec![
            ServerJob::count("broken", Expr::relation("no_such"), Duration::from_secs(5)),
            ServerJob::count("fine", sel(5), Duration::from_secs(12)),
        ];
        let outcome = QueryServer::new().run(&mut db, jobs);
        let broken = outcome.jobs.iter().find(|j| j.name == "broken").unwrap();
        assert!(matches!(broken.state, JobState::Failed { .. }));
        // QCOST screening catches it before any quota is granted.
        assert_eq!(broken.granted_quota, Duration::ZERO);
        assert_eq!(broken.started_at, broken.finished_at);
        let fine = outcome.jobs.iter().find(|j| j.name == "fine").unwrap();
        assert!(fine.met(), "failure must not poison the batch");
        assert_eq!(outcome.stats.failed, 1);
        assert_no_silent_blowouts(&outcome);
    }

    #[test]
    fn corruption_degrades_jobs_individually_not_collectively() {
        let mut db = db(22);
        db.inject_faults(FaultPlan::new(5).with_transient(0.05).with_corruption(0.04));
        let jobs = vec![
            ServerJob::count("a", sel(3), Duration::from_secs(8)),
            ServerJob::count("b", sel(5), Duration::from_secs(18)),
            ServerJob::count("c", sel(7), Duration::from_secs(28)),
        ];
        let outcome = QueryServer::new().run(&mut db, jobs);
        assert_no_silent_blowouts(&outcome);
        // Every admitted job still answers; degradation is recorded
        // per job, not smeared across the batch.
        let mut total_faults = 0;
        for job in &outcome.jobs {
            assert!(job.state.is_done(), "{}: {:?}", job.name, job.state);
            assert_eq!(job.health.degraded, job.health.blocks_lost > 0);
            total_faults += job.health.faults_seen;
        }
        assert!(total_faults > 0, "the storm must have been observed");
    }

    /// End-to-end shedding: two small-quota jobs whose every stage is
    /// spiked past its quota teach the refit an overrun factor ≈ 2×;
    /// the replan then projects the low-value third job below its
    /// minimum and sheds it, while the survivors meet their
    /// deadlines.
    #[test]
    fn fault_storm_sheds_least_value_per_slack_job() {
        let mut db = db(23);
        db.inject_faults(FaultPlan::new(9).with_spikes(1.0, Duration::from_secs(1)));
        let jobs = vec![
            ServerJob::count("a", sel(5), Duration::from_secs(2))
                .with_desired_quota(Duration::from_millis(500))
                .with_min_quota(Duration::from_millis(100)),
            ServerJob::count("b", sel(5), Duration::from_secs(4))
                .with_desired_quota(Duration::from_millis(500))
                .with_min_quota(Duration::from_millis(100)),
            ServerJob::count("cheap", sel(5), Duration::from_secs_f64(4.4))
                .with_min_quota(Duration::from_millis(1200))
                .with_value(0.1),
        ];
        let outcome = QueryServer::new().run(&mut db, jobs);
        assert_eq!(
            outcome.stats.admitted, 3,
            "the storm is invisible at admission"
        );
        let cheap = outcome.jobs.iter().find(|j| j.name == "cheap").unwrap();
        assert!(
            cheap.state.is_shed(),
            "expected shed, got {:?}",
            cheap.state
        );
        assert_eq!(cheap.health.refusal, Some(RefusalReason::Shed));
        assert_eq!(outcome.stats.shed, 1);
        for name in ["a", "b"] {
            let job = outcome.jobs.iter().find(|j| j.name == name).unwrap();
            assert!(job.met(), "{name} must still meet its deadline");
        }
        // The spiked stages overshot their quotas hard enough to trip
        // the watchdog at least once.
        assert!(outcome.stats.watchdog_overruns > 0);
        assert_no_silent_blowouts(&outcome);
    }

    #[test]
    fn replay_is_byte_identical_across_workers_and_repeats() {
        if serde_json::to_string(&0u32).is_err() {
            eprintln!("skipped: offline serde stub cannot serialize");
            return;
        }
        let run = |workers: usize| {
            let mut db = db(41);
            db.inject_faults(FaultPlan::new(3).with_transient(0.05));
            let tracer = Tracer::recording(db.disk().clock().clone());
            let jobs = vec![
                ServerJob::count("a", sel(3), Duration::from_secs(6)),
                ServerJob::count("b", sel(5), Duration::from_secs(14)),
                ServerJob::count("c", sel(7), Duration::from_secs(15)).with_value(0.5),
            ];
            let outcome = QueryServer::new()
                .workers(workers)
                .metrics(true)
                .tracer(tracer.clone())
                .run(&mut db, jobs);
            (outcome.to_json(), tracer.to_jsonl())
        };
        let (json1, trace1) = run(1);
        let (json4, trace4) = run(4);
        assert_eq!(json1, json4, "reports must not depend on worker count");
        assert_eq!(trace1, trace4, "traces must not depend on worker count");
        let (json1b, trace1b) = run(1);
        assert_eq!(json1, json1b, "repeated runs must be byte-identical");
        assert_eq!(trace1, trace1b);
    }

    #[test]
    fn interleaved_matches_the_sequential_oracle() {
        if serde_json::to_string(&0u32).is_err() {
            eprintln!("skipped: offline serde stub cannot serialize");
            return;
        }
        let run = |mode: Concurrency, workers: usize| {
            let mut db = db(41);
            db.inject_faults(FaultPlan::new(3).with_transient(0.05));
            let tracer = Tracer::recording(db.disk().clock().clone());
            let jobs = vec![
                ServerJob::count("a", sel(3), Duration::from_secs(6)),
                ServerJob::count("b", sel(5), Duration::from_secs(14)),
                ServerJob::count("c", sel(7), Duration::from_secs(15)).with_value(0.5),
            ];
            let outcome = QueryServer::new()
                .workers(workers)
                .metrics(true)
                .ledger(true)
                .concurrency(mode)
                .tracer(tracer.clone())
                .run(&mut db, jobs);
            (outcome, tracer.to_jsonl())
        };
        let (seq, seq_trace) = run(Concurrency::Sequential, 1);
        let (inter, inter_trace) = run(Concurrency::Interleaved, 1);
        // The tentpole invariant: per-job results, the ledger, the
        // metrics, and every trace byte are mode-invariant; only the
        // schedule report (and the sharing counters it feeds) may
        // differ — and those strip away.
        assert_eq!(
            seq_trace, inter_trace,
            "trace bytes must not depend on the scheduling mode"
        );
        assert_eq!(
            seq.stripped_of_schedule().to_json(),
            inter.stripped_of_schedule().to_json(),
            "stripped outcomes must not depend on the scheduling mode"
        );
        // Worker count is lane-internal: even the schedule (sharing
        // counters included) replays across it.
        let (inter4, inter4_trace) = run(Concurrency::Interleaved, 4);
        assert_eq!(inter_trace, inter4_trace);
        assert_eq!(inter.to_json(), inter4.to_json());
        // The mode-dependent surface.
        let s = seq.schedule.as_ref().expect("schedule is always reported");
        let i = inter
            .schedule
            .as_ref()
            .expect("schedule is always reported");
        assert_eq!(s.concurrency, Concurrency::Sequential);
        assert_eq!(i.concurrency, Concurrency::Interleaved);
        assert_eq!(
            s.virtual_makespan, i.virtual_makespan,
            "the virtual timeline is mode-invariant"
        );
        assert_eq!(s.blocks_shared, 0, "the oracle never pools draws");
        assert_eq!(s.charged_blocks, s.physical_blocks);
        assert!(
            i.blocks_shared > 0,
            "co-resident scans of t must share draws"
        );
        assert_eq!(i.physical_blocks, i.charged_blocks - i.blocks_shared);
        assert!(
            i.makespan < s.makespan,
            "sharing must shrink the interleaved makespan ({:?} vs {:?})",
            i.makespan,
            s.makespan
        );
        // Sharing credits land on tenants — and strip away.
        let credited: u64 = inter
            .ledger
            .as_ref()
            .unwrap()
            .tenants
            .values()
            .map(|t| t.blocks_shared)
            .sum();
        let discarded: u64 = i
            .lanes
            .iter()
            .filter(|l| l.discarded)
            .map(|l| l.blocks_shared)
            .sum();
        assert_eq!(credited + discarded, i.blocks_shared);
        let stripped = inter.stripped_of_schedule();
        assert!(stripped
            .ledger
            .as_ref()
            .unwrap()
            .tenants
            .values()
            .all(|t| t.blocks_shared == 0 && t.charge_saved_ns == 0));
        assert!(stripped.schedule.is_none());
    }

    #[test]
    fn outcome_json_round_trips() {
        if serde_json::to_string(&0u32).is_err() {
            eprintln!("skipped: offline serde stub cannot serialize");
            return;
        }
        let mut db = db(29);
        let jobs = vec![
            ServerJob::count("ok", sel(5), Duration::from_secs(6)),
            ServerJob::count("tiny", sel(5), Duration::from_millis(50)),
        ];
        let outcome = QueryServer::new().metrics(true).run(&mut db, jobs);
        let back: ServerOutcome = serde_json::from_str(&outcome.to_json()).unwrap();
        assert_eq!(back, outcome);
        assert_eq!(back.stats.admitted, 1);
        assert_eq!(back.stats.refused, 1);
        let m = back.metrics.expect("metrics were requested");
        assert_eq!(m.counter("server.admitted"), 1);
        assert_eq!(m.counter("server.refused"), 1);
        assert_eq!(m.counter("server.offered"), 2);
    }

    #[test]
    fn ledger_counters_cross_check_stats() {
        let mut db = db(37);
        let jobs = vec![
            ServerJob::count("ok", sel(5), Duration::from_secs(6)),
            ServerJob::count("tiny", sel(5), Duration::from_millis(50)),
            ServerJob::count("broken", Expr::relation("no_such"), Duration::from_secs(5)),
        ];
        let outcome = QueryServer::new().ledger(true).run(&mut db, jobs);
        let ledger = outcome.ledger.as_ref().expect("ledger was requested");
        assert_eq!(ledger.schema_version, crate::obs::SCHEMA_VERSION);
        let sum = |f: fn(&TenantSlo) -> u64| ledger.tenants.values().map(f).sum::<u64>();
        assert_eq!(sum(|t| t.offered), outcome.stats.offered);
        assert_eq!(sum(|t| t.admitted), outcome.stats.admitted);
        assert_eq!(sum(|t| t.refused), outcome.stats.refused);
        assert_eq!(sum(|t| t.failed), outcome.stats.failed);
        assert_eq!(sum(|t| t.completed), outcome.stats.completed);
        assert_eq!(sum(|t| t.deadlines_met), outcome.stats.deadlines_met);
        assert_eq!(sum(|t| t.deadlines_missed), outcome.stats.deadlines_missed);
        // The completed tenant banked its spend against its grant and
        // some positive value-weighted slack.
        let ok = ledger.tenants.get("ok").unwrap();
        assert!(ok.granted_ns > 0);
        assert!(ok.spent_ns > 0);
        assert!(ok.value_weighted_slack_secs > 0.0);
        // The audit log narrates the whole batch: every tenant's
        // terminal decision is present.
        let action_of = |name: &str| {
            ledger
                .decisions
                .iter()
                .rev()
                .find(|d| d.job == name)
                .map(|d| d.action)
        };
        assert_eq!(action_of("ok"), Some(DecisionAction::Done));
        assert_eq!(action_of("tiny"), Some(DecisionAction::Refuse));
        assert_eq!(action_of("broken"), Some(DecisionAction::Fail));
        // Refusals carry their inputs.
        let refusal = ledger
            .decisions
            .iter()
            .find(|d| d.action == DecisionAction::Refuse)
            .unwrap();
        assert_eq!(refusal.reason, Some(RefusalReason::Infeasible));
        assert!(refusal.grant_ns.is_some());
        assert!(refusal.min_quota_ns.is_some());
        assert_eq!(refusal.margin, Some(0.9));
    }

    /// The acceptance criterion: the ledger is pure observation. The
    /// trace stream and the rest of the outcome are byte-identical
    /// with the ledger on or off.
    #[test]
    fn ledger_is_trace_invisible_and_strips_to_disabled_bytes() {
        let run = |with_ledger: bool| {
            let mut db = db(43);
            db.inject_faults(FaultPlan::new(3).with_transient(0.05));
            let tracer = Tracer::recording(db.disk().clock().clone());
            let jobs = vec![
                ServerJob::count("a", sel(3), Duration::from_secs(6)),
                ServerJob::count("b", sel(5), Duration::from_secs(14)),
                ServerJob::count("tiny", sel(5), Duration::from_millis(50)),
            ];
            let outcome = QueryServer::new()
                .metrics(true)
                .ledger(with_ledger)
                .tracer(tracer.clone())
                .run(&mut db, jobs);
            (outcome, tracer)
        };
        let (with, trace_with) = run(true);
        let (without, trace_without) = run(false);
        assert!(with.ledger.is_some());
        assert!(without.ledger.is_none());
        // The decision events are in the trace either way.
        assert!(trace_with
            .records()
            .iter()
            .any(|r| r.name == "server.decision"));
        if serde_json::to_string(&0u32).is_ok() {
            assert_eq!(
                trace_with.to_jsonl(),
                trace_without.to_jsonl(),
                "trace must not depend on the ledger flag"
            );
            let mut stripped = with.clone();
            stripped.ledger = None;
            assert_eq!(
                stripped.to_json(),
                without.to_json(),
                "outside the ledger field the outcome must be byte-identical"
            );
        } else {
            // Offline stubs cannot serialize; compare structurally.
            assert_eq!(
                format!("{:?}", trace_with.records()),
                format!("{:?}", trace_without.records())
            );
            let mut stripped = with.clone();
            stripped.ledger = None;
            assert_eq!(stripped, without);
        }
    }

    #[test]
    fn refusal_and_shed_events_land_in_the_trace() {
        let mut db = db(31);
        let tracer = Tracer::recording(db.disk().clock().clone());
        let jobs = vec![
            ServerJob::count("ok", sel(5), Duration::from_secs(6)),
            ServerJob::count("tiny", sel(5), Duration::from_millis(50)),
        ];
        let _ = QueryServer::new().tracer(tracer.clone()).run(&mut db, jobs);
        let names: Vec<String> = tracer.records().iter().map(|r| r.name.clone()).collect();
        assert!(names.iter().any(|n| n == "server.admit"), "{names:?}");
        assert!(names.iter().any(|n| n == "server.refuse"), "{names:?}");
        assert!(names.iter().any(|n| n == "server.job_start"), "{names:?}");
        assert!(names.iter().any(|n| n == "server.job_done"), "{names:?}");
    }

    // ---- Pure shedding-policy unit tests (no engine time). ----

    fn demand(name: &str, deadline_s: f64, min_s: f64, value: f64) -> ServerJob {
        ServerJob::count(
            name,
            Expr::relation("x"),
            Duration::from_secs_f64(deadline_s),
        )
        .with_min_quota(Duration::from_secs_f64(min_s))
        .with_value(value)
    }

    /// The admission-time quotas for the three-job demand grids
    /// below: a gets slack×0.9 = 9, b (projected start 9, slack 11)
    /// gets 9.9, c (projected start 18.9, slack 1.6) gets 1.44.
    fn demo_quotas() -> Vec<Duration> {
        vec![
            Duration::from_secs_f64(9.0),
            Duration::from_secs_f64(9.9),
            Duration::from_secs_f64(1.44),
        ]
    }

    #[test]
    fn first_infeasible_walks_the_projected_timeline() {
        let jobs = vec![
            demand("a", 10.0, 1.0, 1.0),
            demand("b", 20.0, 1.0, 1.0),
            demand("c", 20.5, 3.0, 1.0),
        ];
        let pending = [0usize, 1, 2];
        let quotas = demo_quotas();
        // a occupies [0, 9], b [9, 18.9]; c's grant ≈ 1.44 < 3.
        assert_eq!(
            first_infeasible(&jobs, &pending, &quotas, Duration::ZERO, 0.9, 1.0),
            Some(2)
        );
        // Without c's steep minimum the queue fits: every grant
        // clears its minimum and every fixed quota lands in time
        // (c finishes at 20.34 ≤ 20.5).
        let jobs2 = vec![
            demand("a", 10.0, 1.0, 1.0),
            demand("b", 20.0, 1.0, 1.0),
            demand("c", 20.5, 1.0, 1.0),
        ];
        assert_eq!(
            first_infeasible(&jobs2, &pending, &quotas, Duration::ZERO, 0.9, 1.0),
            None
        );
        // A higher overrun factor inflates every fixed quota's
        // occupancy: a's own quota 9 now projects 18 seconds of
        // spend against a 10-second deadline, so the head of the
        // queue is the first overcommit.
        assert_eq!(
            first_infeasible(&jobs2, &pending, &quotas, Duration::ZERO, 0.9, 2.0),
            Some(0),
            "factor 2 must find the overcommit at the head"
        );
    }

    #[test]
    fn victim_is_least_value_per_slack_among_jobs_at_or_before_the_gap() {
        // c (pos 2) is infeasible; candidates are a, b, c. b has the
        // lowest value-per-slack (low value, generous deadline), so b
        // is evicted even though c is the one that does not fit.
        let jobs = vec![
            demand("a", 10.0, 1.0, 5.0),
            demand("b", 20.0, 1.0, 0.2),
            demand("c", 20.5, 3.0, 4.0),
        ];
        let pending = [0usize, 1, 2];
        let pos =
            first_infeasible(&jobs, &pending, &demo_quotas(), Duration::ZERO, 0.9, 1.0).unwrap();
        assert_eq!(pos, 2);
        let victim = pick_victim(&jobs, &pending, Duration::ZERO, 0.9, 1.0, pos);
        assert_eq!(jobs[pending[victim]].name, "b");
        // If the infeasible job itself is the cheapest, it is its own
        // victim.
        let jobs = vec![
            demand("a", 10.0, 1.0, 5.0),
            demand("b", 20.0, 1.0, 5.0),
            demand("c", 20.5, 3.0, 0.01),
        ];
        let victim = pick_victim(&jobs, &pending, Duration::ZERO, 0.9, 1.0, 2);
        assert_eq!(jobs[pending[victim]].name, "c");
        // Jobs after the gap are never candidates: with pos 0, only
        // the head can be evicted.
        let victim = pick_victim(&jobs, &pending, Duration::ZERO, 0.9, 1.0, 0);
        assert_eq!(victim, 0);
    }

    #[test]
    fn victim_ties_break_toward_the_later_deadline() {
        // Identical value and (projected-start) slack profiles are
        // impossible to arrange exactly, so use equal scores by
        // construction: same value, and b's slack at its projected
        // start equals a's at time zero.
        let jobs = vec![demand("a", 10.0, 9.5, 1.0), demand("b", 19.0, 9.5, 1.0)];
        let pending = [0usize, 1];
        // a: slack 10 at t=0, grant 9 → b starts at 9, slack 10.
        // Scores tie at 0.1; the later (greater position) wins.
        let victim = pick_victim(&jobs, &pending, Duration::ZERO, 0.9, 1.0, 1);
        assert_eq!(jobs[pending[victim]].name, "b");
    }

    #[test]
    fn grant_shrinks_under_the_refit_factor() {
        let job = demand("a", 10.0, 0.1, 1.0);
        let clean = grant_for(&job, Duration::ZERO, 0.9, 1.0);
        let stormy = grant_for(&job, Duration::ZERO, 0.9, 2.0);
        assert_eq!(clean, Duration::from_secs_f64(9.0));
        assert_eq!(stormy, Duration::from_secs_f64(4.5));
        // The factor never inflates a grant past the margined slack.
        assert_eq!(grant_for(&job, Duration::ZERO, 0.9, 0.5), clean);
    }
}
