//! The deadline-forensics ledger: per-tenant SLO accounting and an
//! append-only audit log of every serving decision.
//!
//! The paper's contract is a *hard time constraint*; this module is
//! the paper trail. Every answer the server hands out (or declines to
//! hand out) leaves two artifacts behind:
//!
//! * a [`TenantSlo`] row — the per-tenant service-level counters:
//!   offered/admitted/refused/shed/failed, deadlines met vs missed,
//!   watchdog overruns, granted-vs-spent quota, and the value-weighted
//!   slack banked at completion; and
//! * one [`DecisionRecord`] per serving decision — admission, refusal,
//!   grant (with its deflation factor), overrun refit, shedding, and
//!   watchdog trips — each carrying the *inputs* the decision was made
//!   from (predicted cost, slack, margin, overrun factor), so a
//!   postmortem can replay the reasoning, not just the verdict.
//!
//! The ledger is **pure observation**: building it draws no blocks,
//! charges no clock time, and consumes no RNG. It rides
//! [`ServerOutcome`](super::ServerOutcome) behind an `Option` with
//! serde defaults, so outcome JSON from before the ledger existed
//! deserializes unchanged and a ledger-free outcome serializes
//! byte-identically to the pre-ledger wire form (schema v1 is
//! preserved — see [`crate::obs::SCHEMA_VERSION`]). Each decision is
//! also mirrored as a `server.decision` trace event when a recording
//! [`Tracer`](crate::obs::Tracer) is attached, interleaved with the
//! engine spans on the shared clock.

use std::collections::BTreeMap;
use std::time::Duration;

use serde::{Deserialize, Serialize};
use serde_json::Value as JsonValue;

use crate::report::RefusalReason;

/// What kind of serving decision a [`DecisionRecord`] captures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum DecisionAction {
    /// The job passed predictive admission.
    Admit,
    /// The job was refused at admission (`reason` says why).
    Refuse,
    /// The job (or its QCOST screening) failed with an error.
    Fail,
    /// The job was granted its execution quota. When `overrun > 1`
    /// the grant was *deflated* by the refit factor — the record is
    /// the audit trail of exactly how much was taken back and why.
    Grant,
    /// The EWMA overrun factor was refit from an observed
    /// `spent / granted` ratio.
    Refit,
    /// The job was evicted mid-batch by overload shedding.
    Shed,
    /// The job's engine run overshot its grant past the watchdog
    /// grace.
    Watchdog,
    /// The job ran to completion (`met` says whether in time).
    Done,
}

impl DecisionAction {
    /// Stable lowercase label (matches the serde wire form).
    pub fn as_str(&self) -> &'static str {
        match self {
            DecisionAction::Admit => "admit",
            DecisionAction::Refuse => "refuse",
            DecisionAction::Fail => "fail",
            DecisionAction::Grant => "grant",
            DecisionAction::Refit => "refit",
            DecisionAction::Shed => "shed",
            DecisionAction::Watchdog => "watchdog",
            DecisionAction::Done => "done",
        }
    }
}

/// One entry of the append-only decision audit log.
///
/// Only the fields that fed the decision are populated; the rest stay
/// `None` and off the wire (`skip_serializing_if`), so records
/// round-trip byte-identically through JSON. Timestamps are charged
/// session-clock nanoseconds, the same timebase as
/// [`TraceRecord::t_ns`](crate::obs::TraceRecord::t_ns).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct DecisionRecord {
    /// Clock-charged timestamp of the decision.
    #[serde(default)]
    pub t_ns: u64,
    /// What was decided.
    pub action: DecisionAction,
    /// The job (tenant) the decision is about. The refit decision
    /// names the job whose observed ratio drove it.
    pub job: String,
    /// Structured refusal reason (refuse/shed records).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub reason: Option<RefusalReason>,
    /// Slack to the job's deadline at decision time.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub slack_ns: Option<u64>,
    /// The (projected or actual) grant.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub grant_ns: Option<u64>,
    /// The job's declared minimum quota.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub min_quota_ns: Option<u64>,
    /// Projected start offset used by admission.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub projected_start_ns: Option<u64>,
    /// QCOST floor of the job's expression, when screening computed
    /// one (seconds, the cost model's native unit).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub predicted_cost_secs: Option<f64>,
    /// The slack margin in force.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub margin: Option<f64>,
    /// The overrun refit factor in force (grant/refit records).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub overrun: Option<f64>,
    /// The observed `spent / granted` ratio (refit records).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub ratio: Option<f64>,
    /// Time the job actually consumed (refit/watchdog/done records).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub spent_ns: Option<u64>,
    /// The job's shedding value (shed records).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub value: Option<f64>,
    /// Whether the job finished by its deadline (done records).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub met: Option<bool>,
    /// The rendered engine error (fail records).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub error: Option<String>,
}

impl Default for DecisionAction {
    fn default() -> Self {
        DecisionAction::Admit
    }
}

impl DecisionRecord {
    /// A record of `action` about `job` at charged time `t_ns`, all
    /// inputs unset.
    pub fn new(t_ns: u64, action: DecisionAction, job: impl Into<String>) -> Self {
        DecisionRecord {
            t_ns,
            action,
            job: job.into(),
            ..DecisionRecord::default()
        }
    }

    /// The record's populated fields as trace-event payload, in the
    /// struct's (fixed) field order — the `server.decision` event
    /// mirrors the audit-log entry exactly.
    pub fn trace_fields(&self) -> Vec<(&'static str, JsonValue)> {
        let mut fields = vec![
            ("action", JsonValue::from(self.action.as_str())),
            ("job", JsonValue::from(self.job.clone())),
        ];
        if let Some(reason) = self.reason {
            fields.push(("reason", JsonValue::from(reason.as_str())));
        }
        let u64s: [(&'static str, Option<u64>); 5] = [
            ("slack_ns", self.slack_ns),
            ("grant_ns", self.grant_ns),
            ("min_quota_ns", self.min_quota_ns),
            ("projected_start_ns", self.projected_start_ns),
            ("spent_ns", self.spent_ns),
        ];
        for (name, v) in u64s {
            if let Some(v) = v {
                fields.push((name, JsonValue::from(v)));
            }
        }
        let f64s: [(&'static str, Option<f64>); 5] = [
            ("predicted_cost_secs", self.predicted_cost_secs),
            ("margin", self.margin),
            ("overrun", self.overrun),
            ("ratio", self.ratio),
            ("value", self.value),
        ];
        for (name, v) in f64s {
            if let Some(v) = v {
                fields.push((name, JsonValue::from(v)));
            }
        }
        if let Some(met) = self.met {
            fields.push(("met", JsonValue::from(met)));
        }
        if let Some(error) = &self.error {
            fields.push(("error", JsonValue::from(error.clone())));
        }
        fields
    }
}

/// One observed overrun-refit step: the raw material of the EWMA that
/// deflates future grants (Section 4's adaptive-coefficient idea, one
/// level up).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct RefitSample {
    /// Clock-charged timestamp of the refit.
    #[serde(default)]
    pub t_ns: u64,
    /// The job whose observed ratio drove this step.
    pub job: String,
    /// The clamped `spent / granted` ratio folded in.
    pub ratio: f64,
    /// The EWMA overrun factor *after* folding the ratio in.
    pub overrun: f64,
}

/// Per-tenant service-level counters, aggregated from the session
/// clock as the batch runs.
///
/// Invariants (locked by unit tests): `offered = admitted + refused +
/// failed-at-admission`, `admitted = completed + shed +
/// failed-mid-run`, `completed = deadlines_met + deadlines_missed`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct TenantSlo {
    /// Jobs this tenant submitted.
    #[serde(default)]
    pub offered: u64,
    /// Jobs that passed admission.
    #[serde(default)]
    pub admitted: u64,
    /// Jobs refused at admission (infeasible or overloaded).
    #[serde(default)]
    pub refused: u64,
    /// Admitted jobs evicted mid-batch by overload shedding.
    #[serde(default)]
    pub shed: u64,
    /// Jobs that hit an engine (or admission-screening) error.
    #[serde(default)]
    pub failed: u64,
    /// Admitted jobs that ran to completion.
    #[serde(default)]
    pub completed: u64,
    /// Completed jobs that answered by their deadline.
    #[serde(default)]
    pub deadlines_met: u64,
    /// Completed jobs that answered late.
    #[serde(default)]
    pub deadlines_missed: u64,
    /// Engine runs that overshot their grant past the watchdog grace.
    #[serde(default)]
    pub watchdog_overruns: u64,
    /// Total quota granted across this tenant's jobs.
    #[serde(default)]
    pub granted_ns: u64,
    /// Total engine time this tenant's jobs actually consumed.
    #[serde(default)]
    pub spent_ns: u64,
    /// Σ `value × (deadline − finished_at)` in seconds over completed
    /// jobs: how much *worth-weighted* headroom the tenant's answers
    /// banked. High value-weighted slack means the tenant's important
    /// answers landed early; ~0 means they landed at the wire.
    #[serde(default)]
    pub value_weighted_slack_secs: f64,
    /// Block draws this tenant's jobs satisfied from a co-resident
    /// job's charged read (interleaved serving only; always 0 under
    /// the sequential oracle). Stripped by
    /// `ServerOutcome::stripped_of_schedule` for cross-mode diffs.
    #[serde(default)]
    pub blocks_shared: u64,
    /// Simulated I/O time those shared draws would have cost had the
    /// disk profile been charged again (the broker still charges the
    /// subscriber's own lane, so this is savings *attributable*, not
    /// savings already deducted from per-job clocks).
    #[serde(default)]
    pub charge_saved_ns: u64,
}

impl TenantSlo {
    /// Fraction of granted quota actually consumed (0 when nothing
    /// was granted). Over 1.0 means the tenant's jobs overshot their
    /// grants on aggregate.
    pub fn spend_ratio(&self) -> f64 {
        if self.granted_ns == 0 {
            return 0.0;
        }
        self.spent_ns as f64 / self.granted_ns as f64
    }
}

/// The deadline-forensics plane of one serving batch: per-tenant SLO
/// rows plus the append-only decision audit log.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TenantLedger {
    /// Observability schema version (see
    /// [`SCHEMA_VERSION`](crate::obs::SCHEMA_VERSION)); 0 when the
    /// ledger was serialized before versioning.
    #[serde(default)]
    pub schema_version: u32,
    /// Per-tenant SLO counters, keyed by job name (sorted map —
    /// serialization is deterministic).
    #[serde(default)]
    pub tenants: BTreeMap<String, TenantSlo>,
    /// Every serving decision, in decision order.
    #[serde(default)]
    pub decisions: Vec<DecisionRecord>,
    /// The overrun-refit trajectory, in observation order.
    #[serde(default)]
    pub refits: Vec<RefitSample>,
}

impl TenantLedger {
    /// An empty ledger at the current schema version.
    pub fn new() -> Self {
        TenantLedger {
            schema_version: crate::obs::SCHEMA_VERSION,
            ..TenantLedger::default()
        }
    }

    /// The named tenant's SLO row, creating it zeroed.
    pub fn tenant(&mut self, name: &str) -> &mut TenantSlo {
        self.tenants.entry(name.to_string()).or_default()
    }

    /// Appends a decision to the audit log and folds it into the
    /// tenant's SLO counters.
    pub fn record(&mut self, decision: DecisionRecord) {
        {
            let slo = self.tenant(&decision.job.clone());
            match decision.action {
                DecisionAction::Admit => slo.admitted += 1,
                DecisionAction::Refuse => slo.refused += 1,
                DecisionAction::Fail => slo.failed += 1,
                DecisionAction::Grant => slo.granted_ns += decision.grant_ns.unwrap_or(0),
                DecisionAction::Refit => {}
                DecisionAction::Shed => slo.shed += 1,
                DecisionAction::Watchdog => slo.watchdog_overruns += 1,
                DecisionAction::Done => {
                    slo.completed += 1;
                    slo.spent_ns += decision.spent_ns.unwrap_or(0);
                    match decision.met {
                        Some(true) => slo.deadlines_met += 1,
                        _ => slo.deadlines_missed += 1,
                    }
                }
            }
        }
        if decision.action == DecisionAction::Refit {
            self.refits.push(RefitSample {
                t_ns: decision.t_ns,
                job: decision.job.clone(),
                ratio: decision.ratio.unwrap_or(0.0),
                overrun: decision.overrun.unwrap_or(1.0),
            });
        }
        self.decisions.push(decision);
    }

    /// Marks one offered job for `tenant` (admission outcome recorded
    /// separately via [`record`](Self::record)).
    pub fn offer(&mut self, tenant: &str) {
        self.tenant(tenant).offered += 1;
    }

    /// Adds engine time consumed by a failed (mid-run) job so
    /// granted-vs-spent stays honest for tenants that error out.
    pub fn spend(&mut self, tenant: &str, spent: Duration) {
        self.tenant(tenant).spent_ns += duration_ns(spent);
    }

    /// Banks completed-job slack, weighted by the job's shedding
    /// value.
    pub fn bank_slack(&mut self, tenant: &str, value: f64, slack: Duration) {
        self.tenant(tenant).value_weighted_slack_secs += value * slack.as_secs_f64();
    }

    /// Credits shared block draws to `tenant`: `blocks` satisfied
    /// from the broker pool, worth `saved_ns` of simulated disk time.
    /// No-op for the sequential oracle (both arguments 0 there).
    pub fn credit_sharing(&mut self, tenant: &str, blocks: u64, saved_ns: u64) {
        if blocks == 0 && saved_ns == 0 {
            return;
        }
        let slo = self.tenant(tenant);
        slo.blocks_shared += blocks;
        slo.charge_saved_ns += saved_ns;
    }
}

pub(super) fn duration_ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_folds_into_the_tenant_row() {
        let mut ledger = TenantLedger::new();
        ledger.offer("a");
        ledger.record(DecisionRecord {
            grant_ns: Some(1_000),
            ..DecisionRecord::new(5, DecisionAction::Admit, "a")
        });
        ledger.record(DecisionRecord {
            grant_ns: Some(1_000),
            overrun: Some(1.0),
            ..DecisionRecord::new(6, DecisionAction::Grant, "a")
        });
        ledger.record(DecisionRecord {
            spent_ns: Some(900),
            met: Some(true),
            ..DecisionRecord::new(7, DecisionAction::Done, "a")
        });
        ledger.bank_slack("a", 2.0, Duration::from_secs(3));
        let slo = ledger.tenants.get("a").unwrap();
        assert_eq!(slo.offered, 1);
        assert_eq!(slo.admitted, 1);
        assert_eq!(slo.completed, 1);
        assert_eq!(slo.deadlines_met, 1);
        assert_eq!(slo.deadlines_missed, 0);
        assert_eq!(slo.granted_ns, 1_000);
        assert_eq!(slo.spent_ns, 900);
        assert!((slo.spend_ratio() - 0.9).abs() < 1e-12);
        assert!((slo.value_weighted_slack_secs - 6.0).abs() < 1e-12);
        assert_eq!(ledger.decisions.len(), 3);
        assert!(ledger.refits.is_empty());
    }

    #[test]
    fn refits_build_the_trajectory() {
        let mut ledger = TenantLedger::new();
        ledger.record(DecisionRecord {
            ratio: Some(2.0),
            overrun: Some(1.3),
            spent_ns: Some(2_000),
            grant_ns: Some(1_000),
            ..DecisionRecord::new(9, DecisionAction::Refit, "a")
        });
        assert_eq!(ledger.refits.len(), 1);
        assert_eq!(ledger.refits[0].job, "a");
        assert_eq!(ledger.refits[0].ratio, 2.0);
        assert_eq!(ledger.refits[0].overrun, 1.3);
        // Refits touch no per-tenant counter (server-wide state).
        assert_eq!(*ledger.tenants.get("a").unwrap(), { TenantSlo::default() });
    }

    #[test]
    fn empty_spend_ratio_is_zero_not_nan() {
        assert_eq!(TenantSlo::default().spend_ratio(), 0.0);
    }

    #[test]
    fn trace_fields_mirror_only_populated_inputs() {
        let rec = DecisionRecord {
            reason: Some(RefusalReason::Overloaded),
            slack_ns: Some(10),
            margin: Some(0.9),
            ..DecisionRecord::new(1, DecisionAction::Refuse, "j")
        };
        let fields = rec.trace_fields();
        let keys: Vec<&str> = fields.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec!["action", "job", "reason", "slack_ns", "margin"]);
    }

    #[test]
    fn ledger_json_round_trips_byte_identically() {
        if serde_json::to_string(&0u32).is_err() {
            eprintln!("skipped: offline serde stub cannot serialize");
            return;
        }
        let mut ledger = TenantLedger::new();
        ledger.offer("t1");
        ledger.record(DecisionRecord {
            grant_ns: Some(77),
            slack_ns: Some(100),
            min_quota_ns: Some(5),
            margin: Some(0.9),
            overrun: Some(1.0),
            predicted_cost_secs: Some(0.345),
            projected_start_ns: Some(0),
            ..DecisionRecord::new(3, DecisionAction::Admit, "t1")
        });
        ledger.record(DecisionRecord {
            ratio: Some(1.5),
            overrun: Some(1.15),
            ..DecisionRecord::new(4, DecisionAction::Refit, "t1")
        });
        let json = serde_json::to_string(&ledger).unwrap();
        let back: TenantLedger = serde_json::from_str(&json).unwrap();
        assert_eq!(back, ledger);
        assert_eq!(serde_json::to_string(&back).unwrap(), json);
        // Unset inputs stay off the wire entirely.
        assert!(!json.contains("\"error\""));
        assert!(!json.contains("\"met\""));
    }

    #[test]
    fn pre_ledger_outcome_fields_default() {
        if serde_json::to_string(&0u32).is_err() {
            eprintln!("skipped: offline serde stub cannot serialize");
            return;
        }
        // A ledger serialized by an older writer that knew fewer
        // fields still deserializes.
        let old = r#"{"tenants":{"a":{"offered":2}}}"#;
        let ledger: TenantLedger = serde_json::from_str(old).unwrap();
        assert_eq!(ledger.schema_version, 0);
        assert_eq!(ledger.tenants.get("a").unwrap().offered, 2);
        assert!(ledger.decisions.is_empty());
    }
}
