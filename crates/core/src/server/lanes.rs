//! Per-job execution lanes and the deterministic stage turnstile.
//!
//! A *lane* is one admitted job's private execution context: its own
//! virtual clock, its own jitter RNG and fault-injector instance
//! (fresh instances of the database's armed plan), its own trace
//! buffer, and a lane view of the shared disk — same backend bytes,
//! private charge stream (see [`eram_storage::Disk::lane_view`]).
//! Because every mutable resource the stage loop touches is
//! lane-local, a lane's outcome is a pure function of (database
//! state, prepared spec, lane index) — independent of whether other
//! lanes run before, after, or interleaved with it. That independence
//! is what lets the server offer `--concurrency seq|interleaved` with
//! byte-identical per-job results: both modes run the *same* lanes,
//! they only schedule them differently.
//!
//! The [`StageGate`] serializes interleaved lanes at stage
//! granularity: exactly one lane executes between yield points, and
//! the next turn goes to the waiting lane with the least charged
//! virtual time (ties to the lower canonical EDF index — a pure
//! stable-EDF pick would replay sequential order verbatim and
//! interleave nothing). The resulting schedule is deterministic — a
//! pure function of the lanes' charge streams — so the shared-draw
//! pool fills in the same order on every run and the sharing counters
//! replay exactly.

use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

use eram_storage::{Clock, SharedDrawBroker, SimClock};

use crate::executor::EngineError;
use crate::obs::{TraceRecord, Tracer};
use crate::session::{Database, PreparedQuery, TimedCount};

/// XOR'd into the per-query sampling seed to derive the lane disk's
/// jitter-RNG stream: the lane must not replay the sampling stream as
/// device jitter.
pub(super) const LANE_JITTER_SALT: u64 = 0xD15C_1A9E;

/// Everything one lane produced.
pub(super) struct LaneOutcome {
    /// The engine result (the same shape `Database::aggregate` runs
    /// return).
    pub result: Result<TimedCount, EngineError>,
    /// Charged time on the lane's own clock.
    pub spent: Duration,
    /// The lane's trace records, timestamped on the lane clock from
    /// zero. Empty when tracing is off or the lane ran on the shared
    /// wall clock (then its spans went straight to the shared
    /// tracer).
    pub records: Vec<TraceRecord>,
    /// Charged block reads on the lane disk.
    pub reads: u64,
    /// Reads served from the batch's shared-draw pool (each still
    /// charged to this lane in full).
    pub blocks_shared: u64,
    /// Device time (ns) those pool hits spared the physical device.
    pub charge_saved_ns: u64,
}

/// Runs one prepared job on its own lane of `db`'s disk.
///
/// On a simulated clock the lane gets a fresh [`SimClock`] at zero
/// and (when `server_tracer` records) a private recording tracer, so
/// its charge stream and trace bytes are independent of every other
/// lane; the caller splices the records into the shared stream at the
/// job's canonical start offset. On a wall clock there is no virtual
/// time to isolate: the lane runs on the shared clock and tracer
/// directly (and `records` stays empty).
pub(super) fn run_lane(
    db: &Database,
    spec: &PreparedQuery,
    lane: usize,
    server_tracer: &Tracer,
    broker: Option<Arc<SharedDrawBroker>>,
    gate: Option<&StageGate>,
) -> LaneOutcome {
    let root_clock = db.disk().clock().clone();
    let (clock, tracer, own_trace): (Arc<dyn Clock>, Tracer, bool) = if root_clock.is_simulated() {
        let clock: Arc<dyn Clock> = Arc::new(SimClock::new());
        let tracer = if server_tracer.is_enabled() {
            Tracer::recording(clock.clone())
        } else {
            Tracer::disabled()
        };
        (clock, tracer, true)
    } else {
        (root_clock, server_tracer.clone(), false)
    };
    let disk = db.disk().lane_view(
        clock.clone(),
        spec.seed ^ LANE_JITTER_SALT,
        lane as u64,
        broker,
    );
    let start = clock.elapsed();
    let result = match gate {
        Some(gate) => {
            // Hold the turnstile from the first instruction: planning
            // reads must not race other lanes into the draw pool.
            gate.enter(lane);
            let _done = DoneGuard { gate, lane };
            let yield_clock = clock.clone();
            let stage_yield = move || gate.yield_turn(lane, yield_clock.elapsed());
            spec.run_on(&disk, db.catalog(), tracer.clone(), Some(&stage_yield))
        }
        None => spec.run_on(&disk, db.catalog(), tracer.clone(), None),
    };
    let spent = clock.elapsed().saturating_sub(start);
    let (blocks_shared, charge_saved_ns) = disk.sharing();
    LaneOutcome {
        result,
        spent,
        records: if own_trace {
            tracer.records()
        } else {
            Vec::new()
        },
        reads: disk.stats().block_reads,
        blocks_shared,
        charge_saved_ns,
    }
}

/// Runs every prepared lane to completion under the turnstile and
/// returns the outcomes in lane order plus the dispatch order (the
/// sequence in which lanes received their *first* turn).
///
/// One OS thread per lane, but the gate admits exactly one at a time,
/// so the schedule — and therefore the shared-draw pool's fill order
/// and every sharing counter — is deterministic.
pub(super) fn run_interleaved(
    db: &Database,
    specs: &[PreparedQuery],
    server_tracer: &Tracer,
    broker: Option<Arc<SharedDrawBroker>>,
) -> (Vec<LaneOutcome>, Vec<usize>) {
    let gate = StageGate::new(specs.len());
    let mut outcomes: Vec<Option<LaneOutcome>> = Vec::with_capacity(specs.len());
    outcomes.resize_with(specs.len(), || None);
    std::thread::scope(|scope| {
        let gate = &gate;
        let handles: Vec<_> = specs
            .iter()
            .enumerate()
            .map(|(lane, spec)| {
                let broker = broker.clone();
                scope.spawn(move || run_lane(db, spec, lane, server_tracer, broker, Some(gate)))
            })
            .collect();
        for (lane, handle) in handles.into_iter().enumerate() {
            match handle.join() {
                Ok(out) => outcomes[lane] = Some(out),
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
    });
    let outcomes = outcomes
        .into_iter()
        .map(|o| o.expect("every lane joined"))
        .collect();
    (outcomes, gate.dispatch_order())
}

/// A lane's position in the turnstile protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LaneStatus {
    /// Thread not yet at the gate (spawn in flight).
    Starting,
    /// Parked at the gate, bidding with its virtual time.
    Waiting,
    /// Holds the (single) execution turn.
    Running,
    /// Finished (or unwound); never bids again.
    Done,
}

struct GateState {
    status: Vec<LaneStatus>,
    /// Each lane's charged virtual time at its last yield — the bid.
    vtime_ns: Vec<u64>,
    /// Lanes in the order they received their first turn.
    order: Vec<usize>,
}

/// The stage turnstile: grants the single execution turn to the
/// waiting lane with the least charged virtual time, ties to the
/// lower canonical index. No turn is granted while any lane is still
/// `Starting`, so the first pick already sees every bidder and the
/// schedule cannot depend on thread-spawn timing.
pub(super) struct StageGate {
    state: Mutex<GateState>,
    turn: Condvar,
}

impl StageGate {
    fn new(lanes: usize) -> Self {
        StageGate {
            state: Mutex::new(GateState {
                status: vec![LaneStatus::Starting; lanes],
                vtime_ns: vec![0; lanes],
                order: Vec::with_capacity(lanes),
            }),
            turn: Condvar::new(),
        }
    }

    /// Locks the gate state, shrugging off poison: a lane that
    /// panicked mid-unwind must not strand the survivors (the state
    /// itself stays consistent — every mutation is a single-field
    /// status/bid write).
    fn lock(&self) -> MutexGuard<'_, GateState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// First arrival: registers the lane as a bidder (virtual time
    /// zero) and blocks until it is granted its first turn.
    fn enter(&self, lane: usize) {
        let mut state = self.lock();
        state.status[lane] = LaneStatus::Waiting;
        state.vtime_ns[lane] = 0;
        Self::grant_next(&mut state);
        self.wait_for_turn(lane, state);
    }

    /// Stage boundary: surrenders the turn, re-bids with the lane's
    /// current virtual time, and blocks until granted again. Called
    /// from the engine's `stage_yield` hook, which charges nothing —
    /// parked wall time never reaches the lane clock.
    fn yield_turn(&self, lane: usize, elapsed: Duration) {
        let mut state = self.lock();
        state.status[lane] = LaneStatus::Waiting;
        state.vtime_ns[lane] = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        Self::grant_next(&mut state);
        self.wait_for_turn(lane, state);
    }

    /// Parks until `lane` holds the turn (waking the lane the grant
    /// actually went to first, if it was someone else).
    fn wait_for_turn(&self, lane: usize, mut state: MutexGuard<'_, GateState>) {
        if state.status[lane] != LaneStatus::Running {
            self.turn.notify_all();
            while state.status[lane] != LaneStatus::Running {
                state = self.turn.wait(state).unwrap_or_else(|e| e.into_inner());
            }
        }
    }

    /// Terminal: the lane stops bidding and the turn moves on.
    fn done(&self, lane: usize) {
        let mut state = self.lock();
        state.status[lane] = LaneStatus::Done;
        Self::grant_next(&mut state);
        self.turn.notify_all();
    }

    /// The lanes in first-turn order (the interleaved dispatch order).
    fn dispatch_order(&self) -> Vec<usize> {
        self.lock().order.clone()
    }

    /// Grants the turn to the best waiting bidder, if the gate is
    /// quiescent (nobody starting, nobody running).
    fn grant_next(state: &mut GateState) {
        if state
            .status
            .iter()
            .any(|s| matches!(s, LaneStatus::Starting | LaneStatus::Running))
        {
            return;
        }
        let next = state
            .status
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == LaneStatus::Waiting)
            .min_by_key(|&(lane, _)| (state.vtime_ns[lane], lane))
            .map(|(lane, _)| lane);
        if let Some(lane) = next {
            state.status[lane] = LaneStatus::Running;
            if !state.order.contains(&lane) {
                state.order.push(lane);
            }
        }
    }
}

/// Releases the lane's turnstile slot even if the engine unwinds —
/// a panicking lane must not strand the other bidders.
struct DoneGuard<'a> {
    gate: &'a StageGate,
    lane: usize,
}

impl Drop for DoneGuard<'_> {
    fn drop(&mut self) {
        self.gate.done(self.lane);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives the gate from plain threads (no engine): three lanes
    /// with scripted per-stage charges must interleave in
    /// least-virtual-time order regardless of spawn timing.
    #[test]
    fn gate_schedules_by_least_virtual_time_with_index_ties() {
        // Per-lane stage charges (ns). Bids after each stage:
        //   lane 0: 0, 100, 200      lane 1: 0, 60, 300
        //   lane 2: 0, 250
        // Expected turn sequence by (vtime, lane):
        //   first turns 0,1,2 (all bid 0; index breaks ties),
        //   then 1 (60) , 0 (100), 0 done, 1 (300 after 2's 250)...
        let charges: Vec<Vec<u64>> = vec![vec![100, 100], vec![60, 240], vec![250]];
        let gate = StageGate::new(3);
        let log = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for (lane, stages) in charges.iter().enumerate() {
                let gate = &gate;
                let log = &log;
                scope.spawn(move || {
                    gate.enter(lane);
                    let _done = DoneGuard { gate, lane };
                    let mut vt = 0u64;
                    for charge in stages {
                        log.lock().unwrap().push((lane, vt));
                        vt += charge;
                        gate.yield_turn(lane, Duration::from_nanos(vt));
                    }
                    log.lock().unwrap().push((lane, vt));
                });
            }
        });
        let got = log.lock().unwrap().clone();
        let want = vec![
            (0, 0),
            (1, 0),
            (2, 0),
            (1, 60),
            (0, 100),
            (0, 200),
            (2, 250),
            (1, 300),
        ];
        assert_eq!(got, want);
        assert_eq!(gate.dispatch_order(), vec![0, 1, 2]);
    }

    /// A lane that unwinds mid-turn must not deadlock the rest.
    #[test]
    fn panicking_lane_releases_the_gate() {
        let gate = StageGate::new(2);
        let survived = std::thread::scope(|scope| {
            let gate = &gate;
            let bad = scope.spawn(move || {
                gate.enter(0);
                let _done = DoneGuard { gate, lane: 0 };
                panic!("lane 0 exploded");
            });
            let good = scope.spawn(move || {
                gate.enter(1);
                let _done = DoneGuard { gate, lane: 1 };
                gate.yield_turn(1, Duration::from_nanos(10));
                true
            });
            let crashed = bad.join().is_err();
            let survived = good.join().expect("lane 1 must complete");
            crashed && survived
        });
        assert!(survived);
    }
}
