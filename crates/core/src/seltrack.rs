//! Run-time selectivity estimation (Section 3.1, Figures 3.3 & 3.5).
//!
//! "The approach we use in this paper is to directly estimate and
//! improve sample selectivities at each stage. We call this the
//! run-time estimation approach. ... For the first stage, we assume a
//! reasonably large selectivity for each operation."
//!
//! One [`SelTracker`] per operator node accumulates, stage by stage,
//! the operator's output-tuple and sampled-point counts, providing:
//!
//! * `selᵢ₋₁` — the revised selectivity from all previous stages
//!   (Figure 3.3: the stage-1 value is the assumed maximum; later
//!   `Σⱼ tuplesⱼ / Σⱼ pointsⱼ`);
//! * `sel⁺` — the inflated selectivity of equation (3.3),
//!   `sel⁺ = μ̂ + d_β·√(V̂ar)`, with the simple-random-sampling
//!   variance approximation of Figure 3.5 (the paper explicitly
//!   trades the exact cluster-variance computation away: "sorting and
//!   computation of the formula are too expensive");
//! * the **zero-selectivity correction** of Section 3.4: a sampled
//!   selectivity of exactly 0 has zero estimated variance and would
//!   freeze `sel⁺` at 0, overspending the quota as soon as any output
//!   appears — so a combinatorial floor replaces it.

use eram_relalg::OpKind;
use eram_sampling::{srs_proportion_variance, zero_selectivity_closed};

/// First-stage selectivity assumptions, overridable per operator
/// kind.
///
/// Figure 3.3 assigns the maximum (1) to Select/Project/Join and
/// `1/max(|r₁|,|r₂|)` to Intersect. The paper's own join experiment
/// overrode the join assumption to 0.1 ("if the maximum selectivity
/// of 1 were assumed, the sample size was so small that the system
/// clock did not provide enough accuracy"); [`SelectivityDefaults`]
/// makes that override a first-class knob.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SelectivityDefaults {
    /// Stage-1 selectivity for Select (Figure 3.3: 1).
    pub select: f64,
    /// Stage-1 selectivity for Project (Figure 3.3: 1).
    pub project: f64,
    /// Stage-1 selectivity for Join (Figure 3.3: 1; the paper's
    /// experiment used 0.1).
    pub join: f64,
    /// Stage-1 selectivity for Intersect, or `None` for the
    /// Figure 3.3 rule `1/max(|r₁|,|r₂|)`.
    pub intersect: Option<f64>,
}

impl Default for SelectivityDefaults {
    fn default() -> Self {
        SelectivityDefaults {
            select: 1.0,
            project: 1.0,
            join: 1.0,
            intersect: None,
        }
    }
}

impl SelectivityDefaults {
    /// The Figure 3.3 defaults with the paper's join override (0.1)
    /// applied — what the Section 5 join experiment ran with.
    pub fn paper_join_experiment() -> Self {
        SelectivityDefaults {
            join: 0.1,
            ..Self::default()
        }
    }

    /// Resolves the stage-1 assumption for an operator kind.
    pub fn initial_for(&self, kind: OpKind, max_operand_tuples: f64) -> f64 {
        match kind {
            OpKind::Select => self.select,
            OpKind::Project => self.project,
            OpKind::Join => self.join,
            OpKind::Intersect => self.intersect.unwrap_or(if max_operand_tuples > 0.0 {
                1.0 / max_operand_tuples
            } else {
                1.0
            }),
            // Union/Difference never survive the PIE rewrite.
            OpKind::Union | OpKind::Difference => 1.0,
        }
    }
}

/// Tracks one operator's sample selectivity across stages.
#[derive(Debug, Clone)]
pub struct SelTracker {
    kind: OpKind,
    /// Assumed selectivity before any sample exists (Figure 3.3).
    initial: f64,
    /// Size of the operator's point space (`N` in Figure 3.5).
    total_points: f64,
    /// `Σⱼ tuplesⱼ` — output tuples over all stages so far.
    cum_tuples: f64,
    /// `Σⱼ pointsⱼ` — sampled points over all stages so far.
    cum_points: f64,
    /// Confidence for the zero-selectivity floor.
    zero_sel_confidence: f64,
}

impl SelTracker {
    /// Creates a tracker with the Figure 3.3 first-stage assumption:
    /// selectivity 1 for Select/Project/Join, `1/max(|r₁|,|r₂|)` for
    /// Intersect.
    pub fn new(kind: OpKind, total_points: f64, max_operand_tuples: f64) -> Self {
        let initial = match kind {
            OpKind::Intersect if max_operand_tuples > 0.0 => 1.0 / max_operand_tuples,
            _ => 1.0,
        };
        SelTracker {
            kind,
            initial,
            total_points,
            cum_tuples: 0.0,
            cum_points: 0.0,
            zero_sel_confidence: 0.50,
        }
    }

    /// Sets the confidence level of the zero-selectivity floor
    /// (default 0.50 — a median-level combinatorial bound; higher
    /// values make the engine more conservative after all-zero
    /// samples).
    pub fn with_zero_sel_confidence(mut self, confidence: f64) -> Self {
        assert!(
            confidence > 0.0 && confidence < 1.0,
            "confidence must be in (0,1)"
        );
        self.zero_sel_confidence = confidence;
        self
    }

    /// Overrides the first-stage assumed selectivity (the paper's
    /// join experiment "assumed a selectivity of 0.1 at the beginning"
    /// because an assumed 1 made the first sample unmeasurably small).
    pub fn with_initial(mut self, initial: f64) -> Self {
        assert!(initial > 0.0 && initial <= 1.0, "initial sel in (0,1]");
        self.initial = initial;
        self
    }

    /// The operator kind.
    pub fn kind(&self) -> OpKind {
        self.kind
    }

    /// Records one stage's observation: `tuples` output tuples out of
    /// `points` newly sampled points.
    pub fn record_stage(&mut self, tuples: f64, points: f64) {
        debug_assert!(tuples >= 0.0 && points >= 0.0);
        self.cum_tuples += tuples;
        self.cum_points += points;
    }

    /// Points sampled so far in this operator's point space.
    pub fn points_sampled(&self) -> f64 {
        self.cum_points
    }

    /// `selᵢ₋₁`: the Figure 3.3 revision — the assumed maximum before
    /// any sample, the cumulative ratio afterwards, with the
    /// zero-selectivity floor applied when the ratio is 0.
    pub fn revised_selectivity(&self) -> f64 {
        if self.cum_points <= 0.0 {
            return self.initial;
        }
        let sel = self.cum_tuples / self.cum_points;
        if sel > 0.0 {
            sel.min(1.0)
        } else {
            // Section 3.4: a zero sample selectivity is replaced by a
            // combinatorial upper bound so later stages stay safe.
            zero_selectivity_closed(self.cum_points, self.zero_sel_confidence)
        }
    }

    /// `sel⁺` of equation (3.3) for a *candidate* stage that would
    /// sample `stage_points` new points: inflate the revised
    /// selectivity by `d_β` standard errors of the stage-i sample
    /// selectivity, estimated with the SRS variance over the
    /// not-yet-sampled remainder (Figure 3.5), and clamp to 1.
    pub fn inflated_selectivity(&self, d_beta: f64, stage_points: f64) -> f64 {
        let mu = self.revised_selectivity();
        if d_beta == 0.0 {
            return mu;
        }
        let remaining = (self.total_points - self.cum_points).max(0.0);
        let var = srs_proportion_variance(mu, remaining, stage_points.min(remaining));
        (mu + d_beta * var.sqrt()).min(1.0)
    }

    /// The variance of the stage-i sample selectivity used by the
    /// Single-Interval strategy (same Figure 3.5 approximation).
    pub fn selectivity_variance(&self, stage_points: f64) -> f64 {
        let mu = self.revised_selectivity();
        let remaining = (self.total_points - self.cum_points).max(0.0);
        srs_proportion_variance(mu, remaining, stage_points.min(remaining))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_stage_assumptions_match_figure_3_3() {
        let sel = SelTracker::new(OpKind::Select, 10_000.0, 10_000.0);
        assert_eq!(sel.revised_selectivity(), 1.0);
        let join = SelTracker::new(OpKind::Join, 1e8, 10_000.0);
        assert_eq!(join.revised_selectivity(), 1.0);
        let inter = SelTracker::new(OpKind::Intersect, 1e8, 10_000.0);
        assert!((inter.revised_selectivity() - 1e-4).abs() < 1e-12);
        let proj = SelTracker::new(OpKind::Project, 10_000.0, 10_000.0);
        assert_eq!(proj.revised_selectivity(), 1.0);
    }

    #[test]
    fn revision_uses_cumulative_ratio() {
        let mut t = SelTracker::new(OpKind::Select, 10_000.0, 10_000.0);
        t.record_stage(30.0, 100.0);
        assert!((t.revised_selectivity() - 0.3).abs() < 1e-12);
        t.record_stage(10.0, 100.0);
        // (30+10)/(100+100) = 0.2.
        assert!((t.revised_selectivity() - 0.2).abs() < 1e-12);
        assert_eq!(t.points_sampled(), 200.0);
    }

    #[test]
    fn zero_selectivity_floor_applies() {
        let mut t = SelTracker::new(OpKind::Join, 1e8, 10_000.0);
        t.record_stage(0.0, 400.0);
        let sel = t.revised_selectivity();
        assert!(sel > 0.0, "zero-sel correction must kick in");
        assert!(sel < 0.05, "floor should be small for 400 points");
        // More all-zero evidence shrinks the floor.
        t.record_stage(0.0, 4_000.0);
        assert!(t.revised_selectivity() < sel);
    }

    #[test]
    fn inflation_grows_with_d_beta_and_caps_at_one() {
        let mut t = SelTracker::new(OpKind::Select, 10_000.0, 10_000.0);
        t.record_stage(50.0, 100.0);
        let s0 = t.inflated_selectivity(0.0, 500.0);
        let s12 = t.inflated_selectivity(12.0, 500.0);
        let s72 = t.inflated_selectivity(72.0, 500.0);
        assert!((s0 - 0.5).abs() < 1e-12);
        assert!(s12 > s0);
        assert!(s72 >= s12);
        assert!(s72 <= 1.0);
    }

    #[test]
    fn larger_candidate_stage_means_less_inflation() {
        let mut t = SelTracker::new(OpKind::Select, 100_000.0, 100_000.0);
        t.record_stage(500.0, 1_000.0);
        let small = t.inflated_selectivity(12.0, 100.0);
        let large = t.inflated_selectivity(12.0, 10_000.0);
        assert!(
            large < small,
            "bigger stage sample → smaller Var(selᵢ) → less inflation"
        );
    }

    #[test]
    fn exhausted_point_space_has_no_inflation() {
        let mut t = SelTracker::new(OpKind::Select, 100.0, 100.0);
        t.record_stage(40.0, 100.0);
        assert_eq!(t.inflated_selectivity(48.0, 50.0), 0.4);
        assert_eq!(t.selectivity_variance(50.0), 0.0);
    }

    #[test]
    fn initial_override_for_join_experiment() {
        let t = SelTracker::new(OpKind::Join, 1e8, 10_000.0).with_initial(0.1);
        assert_eq!(t.revised_selectivity(), 0.1);
    }

    #[test]
    #[should_panic(expected = "initial sel")]
    fn bad_initial_rejected() {
        let _ = SelTracker::new(OpKind::Join, 1e8, 1.0).with_initial(0.0);
    }
}
