//! Stopping criteria (Section 3.2).
//!
//! "Basically, there are two types of stopping criteria. The first
//! type is concerned about the constraint of time while the other is
//! concerned about the precision of estimation." The prototype uses
//! the **hard time constraint** ("the execution is interrupted
//! whenever the time quota is consumed"); the algorithm as printed in
//! Figure 3.1 implements the **soft** variant (the in-flight stage is
//! allowed to finish). Precision-based criteria stop "whenever the
//! precision of estimation has met the user's requirement or whenever
//! the estimation does not improve much over the last few stages".
//! Combinations are possible; [`StoppingCriterion::Combined`] stops
//! as soon as *any* member fires.

use std::time::Duration;

use serde::{Deserialize, Serialize};

use eram_sampling::CountEstimate;

/// When to stop the stage loop.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub enum StoppingCriterion {
    /// Hard deadline: the timer interrupt aborts the in-flight stage
    /// at the quota; its time is wasted. The result is the estimate
    /// from the last completed stage.
    #[default]
    HardDeadline,
    /// Soft deadline: a stage in flight when the quota expires runs
    /// to completion (its result is kept), then the loop stops. This
    /// is how the paper's ERAM experiments measured overspending.
    SoftDeadline,
    /// Stop once the CI half-width falls below `target` × estimate at
    /// the given confidence level (error-constrained evaluation).
    ErrorBound {
        /// Relative half-width target, e.g. `0.05` for ±5 %.
        target: f64,
        /// Confidence level of the interval, e.g. `0.95`.
        confidence: f64,
    },
    /// Per-group precision for GROUP BY queries: a group whose CI
    /// half-width falls below `target` × estimate *freezes* (stops
    /// drawing, keeping its snapshot), and the loop stops early only
    /// once every group is frozen. Groups with fewer than
    /// `min_tuples` observations never freeze — they fall back to
    /// exact evaluation at the census. Ignored by non-grouped
    /// aggregates.
    GroupErrorBound {
        /// Relative half-width target per group, e.g. `0.1` for ±10 %.
        target: f64,
        /// Confidence level of the per-group intervals, e.g. `0.95`.
        confidence: f64,
        /// Minimum absorbed tuples before a group may freeze.
        min_tuples: u64,
    },
    /// Stop when the estimate changed by less than `epsilon`
    /// (relative) for `stages` consecutive stages.
    NoImprovement {
        /// Relative change threshold.
        epsilon: f64,
        /// Consecutive quiet stages required.
        stages: usize,
    },
    /// Soft deadline with a **value function** ([AbGM 88], the
    /// paper's "by defining a value function for the completion time
    /// of a query, the system decides when to stop processing the
    /// query to get a higher value"): the answer is worth full value
    /// until the quota, decays linearly to zero at `zero_value_at`
    /// (measured from query start), and the loop keeps running past
    /// the quota only while the next stage is expected to *increase*
    /// `value(t) × precision(estimate)`.
    ValueFunction {
        /// Time (from query start) at which the answer's value
        /// reaches zero. Must exceed the quota.
        zero_value_at: Duration,
    },
    /// Stop as soon as any member criterion fires. Exactly one
    /// time-based member (hard or soft) should be present.
    Combined(Vec<StoppingCriterion>),
}

/// The one precision gate shared by the scalar
/// [`StoppingCriterion::ErrorBound`] check and the per-group freeze in
/// [`GroupedAccumulator::check_convergence`]: an estimate has met a
/// relative-error target only when it is strictly positive and its
/// relative CI half-width is *finite* and within `target`.
///
/// A running estimate of 0 (no qualifying tuples yet, or an all-zero
/// SUM group) has a relative half-width of `f64::INFINITY`, and in
/// IEEE arithmetic `INFINITY <= INFINITY` is *true* — so a plain
/// `rel <= target` comparison freezes such a group as "converged at 0"
/// whenever the target is unbounded (e.g. a census-only
/// `min_tuples` policy). Likewise a NaN half-width (degenerate
/// stratum) must never read as satisfied. Requiring a positive
/// estimate and a finite half-width closes both holes for the scalar
/// and grouped paths at once.
///
/// [`GroupedAccumulator::check_convergence`]:
/// crate::aggregate::GroupedAccumulator::check_convergence
pub fn error_bound_satisfied(estimate: &CountEstimate, target: f64, confidence: f64) -> bool {
    if estimate.estimate <= 0.0 {
        return false;
    }
    let rel = estimate.relative_half_width(confidence);
    rel.is_finite() && rel <= target
}

impl StoppingCriterion {
    /// True if the criterion (or any member) demands the hard
    /// mid-stage abort behaviour.
    pub fn is_hard(&self) -> bool {
        match self {
            StoppingCriterion::HardDeadline => true,
            StoppingCriterion::Combined(members) => members.iter().any(Self::is_hard),
            _ => false,
        }
    }

    /// The value-function tail, if any member declares one.
    pub fn value_function(&self) -> Option<Duration> {
        match self {
            StoppingCriterion::ValueFunction { zero_value_at } => Some(*zero_value_at),
            StoppingCriterion::Combined(members) => members.iter().find_map(Self::value_function),
            _ => None,
        }
    }

    /// The per-group precision bound `(target, confidence,
    /// min_tuples)`, if any member declares one. The executor
    /// evaluates it against the [`GroupedAccumulator`] — unlike the
    /// scalar criteria it cannot be judged from the composite
    /// estimate history alone.
    ///
    /// [`GroupedAccumulator`]: crate::aggregate::GroupedAccumulator
    pub fn group_error_bound(&self) -> Option<(f64, f64, u64)> {
        match self {
            StoppingCriterion::GroupErrorBound {
                target,
                confidence,
                min_tuples,
            } => Some((*target, *confidence, *min_tuples)),
            StoppingCriterion::Combined(members) => {
                members.iter().find_map(Self::group_error_bound)
            }
            _ => None,
        }
    }

    /// The value of an answer delivered at `t` under a linear decay
    /// from full value at `quota` to zero at `zero_value_at`.
    pub fn completion_value(quota: Duration, zero_value_at: Duration, t: Duration) -> f64 {
        if t <= quota {
            return 1.0;
        }
        if t >= zero_value_at || zero_value_at <= quota {
            return 0.0;
        }
        let tail = (zero_value_at - quota).as_secs_f64();
        1.0 - (t - quota).as_secs_f64() / tail
    }

    /// Evaluates the precision-based members after a completed stage.
    /// `history` holds the estimates after each completed stage so
    /// far (most recent last). Returns true if the loop should stop
    /// even though time remains.
    pub fn precision_satisfied(&self, history: &[CountEstimate]) -> bool {
        match self {
            StoppingCriterion::HardDeadline
            | StoppingCriterion::SoftDeadline
            | StoppingCriterion::ValueFunction { .. } => false,
            // Judged by the executor against per-group state, not the
            // composite estimate history.
            StoppingCriterion::GroupErrorBound { .. } => false,
            StoppingCriterion::ErrorBound { target, confidence } => history
                .last()
                .is_some_and(|e| error_bound_satisfied(e, *target, *confidence)),
            StoppingCriterion::NoImprovement { epsilon, stages } => {
                if history.len() < stages + 1 {
                    return false;
                }
                history
                    .windows(2)
                    .rev()
                    .take(*stages)
                    .all(|w| relative_change(w[0].estimate, w[1].estimate) < *epsilon)
            }
            StoppingCriterion::Combined(members) => {
                members.iter().any(|m| m.precision_satisfied(history))
            }
        }
    }
}

fn relative_change(a: f64, b: f64) -> f64 {
    let denom = a.abs().max(1.0);
    (b - a).abs() / denom
}

#[cfg(test)]
mod tests {
    use super::*;

    fn est(v: f64, var: f64) -> CountEstimate {
        CountEstimate {
            estimate: v,
            variance: var,
            points_sampled: 100.0,
            total_points: 1e6,
        }
    }

    #[test]
    fn hardness_detection() {
        assert!(StoppingCriterion::HardDeadline.is_hard());
        assert!(!StoppingCriterion::SoftDeadline.is_hard());
        assert!(StoppingCriterion::Combined(vec![
            StoppingCriterion::SoftDeadline,
            StoppingCriterion::HardDeadline
        ])
        .is_hard());
        assert!(!StoppingCriterion::ErrorBound {
            target: 0.1,
            confidence: 0.95
        }
        .is_hard());
    }

    #[test]
    fn error_bound_fires_on_tight_interval() {
        let c = StoppingCriterion::ErrorBound {
            target: 0.05,
            confidence: 0.95,
        };
        // Wide interval: sd = 300 on estimate 1000 → rel half width ≈ 0.59.
        assert!(!c.precision_satisfied(&[est(1000.0, 90_000.0)]));
        // Tight: sd = 10 on 1000 → ≈ 0.0196.
        assert!(c.precision_satisfied(&[est(1000.0, 100.0)]));
        // Empty history never satisfies.
        assert!(!c.precision_satisfied(&[]));
    }

    #[test]
    fn no_improvement_requires_consecutive_quiet_stages() {
        let c = StoppingCriterion::NoImprovement {
            epsilon: 0.01,
            stages: 2,
        };
        let noisy = [est(100.0, 1.0), est(150.0, 1.0), est(150.5, 1.0)];
        assert!(!c.precision_satisfied(&noisy));
        let quiet = [
            est(100.0, 1.0),
            est(150.0, 1.0),
            est(150.1, 1.0),
            est(150.2, 1.0),
        ];
        assert!(c.precision_satisfied(&quiet));
        // Too little history.
        assert!(!c.precision_satisfied(&quiet[..2]));
    }

    #[test]
    fn combined_fires_on_any_member() {
        let c = StoppingCriterion::Combined(vec![
            StoppingCriterion::HardDeadline,
            StoppingCriterion::ErrorBound {
                target: 0.05,
                confidence: 0.95,
            },
        ]);
        assert!(c.precision_satisfied(&[est(1000.0, 100.0)]));
        assert!(!c.precision_satisfied(&[est(1000.0, 90_000.0)]));
    }

    #[test]
    fn completion_value_decays_linearly() {
        let q = Duration::from_secs(10);
        let z = Duration::from_secs(20);
        assert_eq!(
            StoppingCriterion::completion_value(q, z, Duration::from_secs(5)),
            1.0
        );
        assert_eq!(StoppingCriterion::completion_value(q, z, q), 1.0);
        let mid = StoppingCriterion::completion_value(q, z, Duration::from_secs(15));
        assert!((mid - 0.5).abs() < 1e-12);
        assert_eq!(StoppingCriterion::completion_value(q, z, z), 0.0);
        assert_eq!(
            StoppingCriterion::completion_value(q, z, Duration::from_secs(30)),
            0.0
        );
        // Degenerate tail.
        assert_eq!(
            StoppingCriterion::completion_value(q, q, Duration::from_secs(11)),
            0.0
        );
    }

    #[test]
    fn value_function_discovery() {
        let vf = StoppingCriterion::ValueFunction {
            zero_value_at: Duration::from_secs(20),
        };
        assert_eq!(vf.value_function(), Some(Duration::from_secs(20)));
        assert!(!vf.is_hard());
        let combined = StoppingCriterion::Combined(vec![
            StoppingCriterion::ErrorBound {
                target: 0.1,
                confidence: 0.95,
            },
            vf,
        ]);
        assert_eq!(combined.value_function(), Some(Duration::from_secs(20)));
        assert_eq!(StoppingCriterion::HardDeadline.value_function(), None);
    }

    #[test]
    fn group_error_bound_discovery() {
        let g = StoppingCriterion::GroupErrorBound {
            target: 0.1,
            confidence: 0.95,
            min_tuples: 8,
        };
        assert_eq!(g.group_error_bound(), Some((0.1, 0.95, 8)));
        assert!(!g.is_hard());
        // Never satisfied from the composite history — the executor
        // judges it from per-group state.
        assert!(!g.precision_satisfied(&[est(1000.0, 1.0)]));
        let combined =
            StoppingCriterion::Combined(vec![StoppingCriterion::HardDeadline, g.clone()]);
        assert!(combined.is_hard());
        assert_eq!(combined.group_error_bound(), Some((0.1, 0.95, 8)));
        assert_eq!(StoppingCriterion::HardDeadline.group_error_bound(), None);
    }

    #[test]
    fn zero_estimate_never_satisfies_error_bound() {
        let c = StoppingCriterion::ErrorBound {
            target: 0.05,
            confidence: 0.95,
        };
        assert!(!c.precision_satisfied(&[est(0.0, 0.0)]));
    }

    #[test]
    fn zero_estimate_never_satisfies_even_an_unbounded_target() {
        // `INFINITY <= INFINITY` is true in IEEE arithmetic, so
        // before the shared `error_bound_satisfied` gate an unbounded
        // target froze a zero estimate as "converged at 0".
        let c = StoppingCriterion::ErrorBound {
            target: f64::INFINITY,
            confidence: 0.95,
        };
        assert!(!c.precision_satisfied(&[est(0.0, 0.0)]));
        // A positive estimate under the same unbounded target still
        // satisfies (its half-width is finite).
        assert!(c.precision_satisfied(&[est(1000.0, 90_000.0)]));
    }

    #[test]
    fn error_bound_helper_rejects_degenerate_estimates() {
        assert!(!error_bound_satisfied(&est(0.0, 0.0), 0.5, 0.95));
        assert!(!error_bound_satisfied(&est(-3.0, 1.0), 0.5, 0.95));
        assert!(!error_bound_satisfied(&est(0.0, 0.0), f64::INFINITY, 0.95));
        // NaN target: never satisfied, rather than freezing.
        assert!(!error_bound_satisfied(&est(1000.0, 1.0), f64::NAN, 0.95));
        assert!(error_bound_satisfied(&est(1000.0, 100.0), 0.05, 0.95));
    }
}
