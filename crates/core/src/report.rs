//! Execution reports: what the stage loop did with the quota.
//!
//! These are the quantities Section 5 of the paper tabulates per
//! experiment: number of stages completed, risk of overspending,
//! overspent time ("ovsp"), quota utilization, and disk blocks
//! evaluated.

use std::time::Duration;

use serde::{Deserialize, Serialize};

use eram_sampling::CountEstimate;

use crate::obs::{MetricsSnapshot, ProfileSnapshot};

/// What one stage of the loop did.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StageReport {
    /// 1-based stage number.
    pub stage: usize,
    /// Sample fraction `fᵢ` the strategy chose.
    pub fraction: f64,
    /// Stage cost the strategy predicted.
    pub predicted_cost: Duration,
    /// Stage cost actually charged.
    pub actual_cost: Duration,
    /// New disk blocks drawn this stage (summed over operand
    /// relations and terms).
    pub blocks_drawn: u64,
    /// True if the stage finished before the quota expired. An
    /// unfinished stage is *aborted* under a hard constraint and its
    /// time is wasted.
    pub within_quota: bool,
    /// The running estimate after this stage.
    pub estimate: CountEstimate,
}

/// Why an admission-controlled job was denied an answer.
///
/// The server (see [`crate::server`]) never lets a job silently blow
/// its deadline: a job that gets no estimate carries exactly one of
/// these so the caller can tell "your request was impossible" from
/// "the system was busy" from "a fault storm forced triage".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum RefusalReason {
    /// The job could not meet its minimum quota even on an idle
    /// server: its own deadline (times the scheduling margin) or the
    /// QCOST floor of its expression is already past the minimum.
    /// Resubmitting under load changes nothing.
    Infeasible,
    /// The job is feasible in isolation but the admitted load leaves
    /// it less than its minimum quota. Resubmitting later may
    /// succeed.
    Overloaded,
    /// The job was admitted but evicted mid-batch when observed costs
    /// inflated past the admission-time predictions (fault storms,
    /// overruns) and keeping it would have cascaded deadline misses.
    Shed,
}

impl RefusalReason {
    /// Stable lowercase label (matches the serde wire form).
    pub fn as_str(&self) -> &'static str {
        match self {
            RefusalReason::Infeasible => "infeasible",
            RefusalReason::Overloaded => "overloaded",
            RefusalReason::Shed => "shed",
        }
    }
}

impl std::fmt::Display for RefusalReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Fault-tolerance accounting for one execution: what went wrong at
/// the storage layer and how the engine absorbed it.
///
/// Under cluster sampling a lost block is a dropped cluster: the
/// estimator renormalizes over the clusters actually read, so the
/// answer stays unbiased but its variance grows. `degraded` flags
/// exactly that situation so callers can tell a clean estimate from
/// one delivered despite data loss.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReportHealth {
    /// Storage faults observed (transient errors and checksum
    /// mismatches), counted per failed read attempt.
    #[serde(default)]
    pub faults_seen: u64,
    /// Retries issued by the retry policy; each one charged its
    /// backoff to the query clock.
    #[serde(default)]
    pub retries: u64,
    /// Blocks abandoned after corruption or retry exhaustion. Each is
    /// a cluster dropped from the sample.
    #[serde(default)]
    pub blocks_lost: u64,
    /// True iff `blocks_lost > 0`: the estimate was delivered over a
    /// reduced sample.
    #[serde(default)]
    pub degraded: bool,
    /// Set when admission control denied the job an answer (refused
    /// at admission or shed mid-batch); `None` for every executed
    /// query. `skip_serializing_if` keeps pre-existing report JSON
    /// byte-identical for executed queries.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub refusal: Option<RefusalReason>,
}

impl ReportHealth {
    /// The health object of a job that was never run: clean counters
    /// plus the structured reason it got no answer.
    pub fn refused(reason: RefusalReason) -> Self {
        ReportHealth {
            refusal: Some(reason),
            ..ReportHealth::default()
        }
    }
}

/// One group's answer in a GROUP BY execution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GroupReport {
    /// The group key (the Int value of the grouping column).
    pub key: i64,
    /// The group's aggregate estimate with its CI support.
    pub estimate: CountEstimate,
    /// Qualifying tuples of this group inspected by the sample.
    pub tuples_seen: u64,
    /// Stage at which the group's CI converged and it stopped
    /// drawing (freeing quota for looser groups), if it did.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub converged_at_stage: Option<usize>,
    /// True when the estimate is exact: the run completed its census
    /// with this group still live, so every qualifying tuple was
    /// seen (the small-group fallback).
    #[serde(default)]
    pub exact: bool,
}

/// A complete account of one time-constrained query execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecutionReport {
    /// Observability schema version (see
    /// [`SCHEMA_VERSION`](crate::obs::SCHEMA_VERSION)); 0 when the
    /// report was serialized before versioning.
    #[serde(default)]
    pub schema_version: u32,
    /// The time quota `T`.
    pub quota: Duration,
    /// Per-stage details, in execution order (including an
    /// overrunning final stage, if any).
    pub stages: Vec<StageReport>,
    /// Total time consumed by the loop (may exceed `quota` under a
    /// soft constraint).
    pub total_elapsed: Duration,
    /// The estimate a *hard*-deadline caller receives: the one from
    /// the last stage that finished within the quota.
    pub final_estimate: CountEstimate,
    /// Per-group answers for GROUP BY aggregates, in key order (taken
    /// at the same completed stage as `final_estimate` under a hard
    /// deadline). Empty for scalar aggregates; `skip_serializing_if`
    /// keeps non-grouped report JSON byte-identical.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub groups: Vec<GroupReport>,
    /// Fault-tolerance accounting. `#[serde(default)]` keeps reports
    /// serialized before this field existed deserializable.
    #[serde(default)]
    pub health: ReportHealth,
    /// Counters/histograms collected during the run, when metrics
    /// collection was requested. `None` serializes to nothing, so
    /// metrics-free reports keep their pre-existing JSON shape.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub metrics: Option<MetricsSnapshot>,
    /// Per-phase timing breakdown, when a recording
    /// [`Profiler`](crate::obs::Profiler) was attached. The `sim_ns`
    /// columns are seed-deterministic; the `wall_*` columns are host
    /// measurements. `None` serializes to nothing.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub profile: Option<ProfileSnapshot>,
}

impl ExecutionReport {
    /// Stages completed within the quota — the paper's "stages"
    /// column.
    pub fn completed_stages(&self) -> usize {
        self.stages.iter().filter(|s| s.within_quota).count()
    }

    /// True if any stage ran past the quota — the per-run event whose
    /// frequency across runs is the paper's "risk" column.
    pub fn overspent(&self) -> bool {
        self.stages.iter().any(|s| !s.within_quota)
    }

    /// Time needed beyond the quota to complete the overrunning stage
    /// — the paper's "ovsp" (zero if no stage overran).
    pub fn overspend(&self) -> Duration {
        self.total_elapsed.saturating_sub(self.quota)
    }

    /// Time spent in stages that finished within the quota.
    pub fn useful_time(&self) -> Duration {
        self.stages
            .iter()
            .filter(|s| s.within_quota)
            .map(|s| s.actual_cost)
            .sum()
    }

    /// Fraction of the quota spent "successfully" (in completed
    /// stages) — the paper's "utilization" column. The rest of the
    /// quota is wasted: either an aborted final stage or a leftover
    /// too small to start another stage.
    pub fn utilization(&self) -> f64 {
        if self.quota.is_zero() {
            return 0.0;
        }
        (self.useful_time().as_secs_f64() / self.quota.as_secs_f64()).min(1.0)
    }

    /// Quota time that produced nothing: aborted-stage time plus the
    /// unusable leftover.
    pub fn wasted(&self) -> Duration {
        let useful = self.useful_time();
        self.quota.saturating_sub(useful)
    }

    /// Disk blocks evaluated in completed stages — the paper's
    /// "blocks" column (the overall sample size actually banked).
    pub fn blocks_evaluated(&self) -> u64 {
        self.stages
            .iter()
            .filter(|s| s.within_quota)
            .map(|s| s.blocks_drawn)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn est(v: f64) -> CountEstimate {
        CountEstimate {
            estimate: v,
            variance: 1.0,
            points_sampled: 10.0,
            total_points: 100.0,
        }
    }

    fn stage(n: usize, secs: f64, blocks: u64, ok: bool) -> StageReport {
        StageReport {
            stage: n,
            fraction: 0.01,
            predicted_cost: Duration::from_secs_f64(secs),
            actual_cost: Duration::from_secs_f64(secs),
            blocks_drawn: blocks,
            within_quota: ok,
            estimate: est(42.0),
        }
    }

    #[test]
    fn clean_run_accounting() {
        let r = ExecutionReport {
            schema_version: 0,
            quota: Duration::from_secs(10),
            stages: vec![stage(1, 4.0, 30, true), stage(2, 5.0, 40, true)],
            total_elapsed: Duration::from_secs_f64(9.0),
            final_estimate: est(42.0),
            groups: vec![],
            health: ReportHealth::default(),
            metrics: None,
            profile: None,
        };
        assert_eq!(r.completed_stages(), 2);
        assert!(!r.overspent());
        assert_eq!(r.overspend(), Duration::ZERO);
        assert!((r.utilization() - 0.9).abs() < 1e-12);
        assert_eq!(r.wasted(), Duration::from_secs(1));
        assert_eq!(r.blocks_evaluated(), 70);
    }

    #[test]
    fn overspent_run_accounting() {
        let r = ExecutionReport {
            schema_version: 0,
            quota: Duration::from_secs(10),
            stages: vec![stage(1, 6.0, 30, true), stage(2, 5.0, 40, false)],
            total_elapsed: Duration::from_secs(11),
            final_estimate: est(42.0),
            groups: vec![],
            health: ReportHealth::default(),
            metrics: None,
            profile: None,
        };
        assert_eq!(r.completed_stages(), 1);
        assert!(r.overspent());
        assert_eq!(r.overspend(), Duration::from_secs(1));
        // Only stage 1 counts as useful; stage 2 would be aborted.
        assert!((r.utilization() - 0.6).abs() < 1e-12);
        assert_eq!(r.wasted(), Duration::from_secs(4));
        assert_eq!(r.blocks_evaluated(), 30);
    }

    #[test]
    fn zero_quota_is_degenerate() {
        let r = ExecutionReport {
            schema_version: 0,
            quota: Duration::ZERO,
            stages: vec![],
            total_elapsed: Duration::ZERO,
            final_estimate: est(0.0),
            groups: vec![],
            health: ReportHealth::default(),
            metrics: None,
            profile: None,
        };
        assert_eq!(r.utilization(), 0.0, "0/0 must not be NaN");
        assert_eq!(r.completed_stages(), 0);
        assert_eq!(r.useful_time(), Duration::ZERO);
        assert_eq!(r.wasted(), Duration::ZERO);
        assert_eq!(r.overspend(), Duration::ZERO);
        assert!(!r.overspent());
        assert_eq!(r.blocks_evaluated(), 0);
    }

    #[test]
    fn refused_job_report_shape() {
        // A scheduler-refused job is granted a zero quota and never
        // enters the stage loop; every derived accessor must stay
        // finite and zero rather than dividing by the empty quota.
        let r = ExecutionReport {
            schema_version: 0,
            quota: Duration::ZERO,
            stages: vec![],
            total_elapsed: Duration::from_millis(3), // admission overhead
            final_estimate: est(0.0),
            groups: vec![],
            health: ReportHealth::default(),
            metrics: None,
            profile: None,
        };
        assert_eq!(r.utilization(), 0.0);
        assert!(r.utilization().is_finite());
        assert_eq!(r.useful_time(), Duration::ZERO);
        assert_eq!(r.wasted(), Duration::ZERO, "no quota to waste");
        // Any elapsed time beyond the (zero) quota counts as overspend.
        assert_eq!(r.overspend(), Duration::from_millis(3));
    }

    #[test]
    fn zero_completed_stages_waste_the_whole_quota() {
        // One stage started and was aborted at the deadline: nothing
        // banked, the entire quota wasted, overspend measured past it.
        let r = ExecutionReport {
            schema_version: 0,
            quota: Duration::from_secs(10),
            stages: vec![stage(1, 12.0, 80, false)],
            total_elapsed: Duration::from_secs(12),
            final_estimate: est(0.0),
            groups: vec![],
            health: ReportHealth::default(),
            metrics: None,
            profile: None,
        };
        assert_eq!(r.completed_stages(), 0);
        assert!(r.overspent());
        assert_eq!(r.useful_time(), Duration::ZERO);
        assert_eq!(r.utilization(), 0.0);
        assert_eq!(r.wasted(), Duration::from_secs(10));
        assert_eq!(r.overspend(), Duration::from_secs(2));
        assert_eq!(r.blocks_evaluated(), 0, "aborted stages bank nothing");
    }

    #[test]
    fn utilization_saturates_at_one() {
        // Rounding can make useful time exceed the quota by a hair;
        // the ratio is clamped so the paper's column stays in [0, 1].
        let r = ExecutionReport {
            schema_version: 0,
            quota: Duration::from_secs(10),
            stages: vec![stage(1, 10.5, 30, true)],
            total_elapsed: Duration::from_secs_f64(10.5),
            final_estimate: est(42.0),
            groups: vec![],
            health: ReportHealth::default(),
            metrics: None,
            profile: None,
        };
        assert_eq!(r.utilization(), 1.0);
        assert_eq!(r.wasted(), Duration::ZERO);
        assert_eq!(r.overspend(), Duration::from_secs_f64(0.5));
    }

    #[test]
    fn health_defaults_when_absent_from_json() {
        let r = ExecutionReport {
            schema_version: 0,
            quota: Duration::from_secs(2),
            stages: vec![],
            total_elapsed: Duration::from_secs(1),
            final_estimate: est(1.0),
            groups: vec![],
            health: ReportHealth {
                faults_seen: 3,
                retries: 2,
                blocks_lost: 1,
                degraded: true,
                refusal: None,
            },
            metrics: None,
            profile: None,
        };
        let Ok(mut json) = serde_json::to_value(&r) else {
            eprintln!("skipped: offline serde stub cannot serialize");
            return;
        };
        // Simulate a report written before the health field existed.
        json.as_object_mut().unwrap().remove("health");
        let back: ExecutionReport = serde_json::from_value(json).unwrap();
        assert_eq!(back.health, ReportHealth::default());
    }

    #[test]
    fn report_serializes() {
        let r = ExecutionReport {
            schema_version: 0,
            quota: Duration::from_secs(2),
            stages: vec![stage(1, 1.0, 5, true)],
            total_elapsed: Duration::from_secs(1),
            final_estimate: est(1.0),
            groups: vec![],
            health: ReportHealth::default(),
            metrics: None,
            profile: None,
        };
        let Ok(json) = serde_json::to_string(&r) else {
            eprintln!("skipped: offline serde stub cannot serialize");
            return;
        };
        // `None` metrics stay out of the wire format entirely.
        assert!(!json.contains("metrics"));
        let back: ExecutionReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn refusal_rides_health_and_stays_off_the_wire_when_none() {
        // Executed queries keep their pre-refusal JSON shape…
        let clean = ReportHealth::default();
        let Ok(json) = serde_json::to_string(&clean) else {
            eprintln!("skipped: offline serde stub cannot serialize");
            return;
        };
        assert!(!json.contains("refusal"), "{json}");
        // …while a denied job carries the structured reason.
        let refused = ReportHealth::refused(RefusalReason::Overloaded);
        let json = serde_json::to_string(&refused).unwrap();
        assert!(json.contains(r#""refusal":"overloaded""#), "{json}");
        let back: ReportHealth = serde_json::from_str(&json).unwrap();
        assert_eq!(back, refused);
        assert_eq!(RefusalReason::Shed.to_string(), "shed");
        assert_eq!(RefusalReason::Infeasible.as_str(), "infeasible");
    }

    #[test]
    fn health_fields_default_individually() {
        // A partially-populated health object (e.g. from an older
        // writer that knew fewer fields) fills the rest with defaults
        // instead of rejecting the document.
        let Ok(h) = serde_json::from_str::<ReportHealth>(r#"{"faults_seen": 3}"#) else {
            eprintln!("skipped: offline serde stub cannot deserialize");
            return;
        };
        assert_eq!(
            h,
            ReportHealth {
                faults_seen: 3,
                ..ReportHealth::default()
            }
        );
    }

    #[test]
    fn schema_version_defaults_for_old_reports_and_profile_rides() {
        let json = serde_json::to_value(ExecutionReport {
            schema_version: crate::obs::SCHEMA_VERSION,
            quota: Duration::from_secs(2),
            stages: vec![],
            total_elapsed: Duration::from_secs(1),
            final_estimate: est(1.0),
            groups: vec![],
            health: ReportHealth::default(),
            metrics: None,
            profile: Some(ProfileSnapshot::default()),
        });
        let Ok(mut json) = json else {
            eprintln!("skipped: offline serde stub cannot serialize");
            return;
        };
        assert_eq!(json["schema_version"], crate::obs::SCHEMA_VERSION);
        assert!(json.get("profile").is_some());
        // A report written before versioning existed.
        json.as_object_mut().unwrap().remove("schema_version");
        json.as_object_mut().unwrap().remove("profile");
        let back: ExecutionReport = serde_json::from_value(json).unwrap();
        assert_eq!(back.schema_version, 0);
        assert!(back.profile.is_none());
    }

    #[test]
    fn metrics_snapshot_rides_the_report_round_trip() {
        let mut reg = crate::obs::MetricsRegistry::new();
        reg.add("core.stages", 2);
        reg.observe("stage.fraction", 0.25);
        let r = ExecutionReport {
            schema_version: 0,
            quota: Duration::from_secs(2),
            stages: vec![],
            total_elapsed: Duration::from_secs(1),
            final_estimate: est(1.0),
            groups: vec![],
            health: ReportHealth::default(),
            metrics: Some(reg.snapshot()),
            profile: None,
        };
        let Ok(json) = serde_json::to_string(&r) else {
            eprintln!("skipped: offline serde stub cannot serialize");
            return;
        };
        let back: ExecutionReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.metrics.unwrap().counter("core.stages"), 2);
    }
}
