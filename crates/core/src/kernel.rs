//! Allocation-free merge/sort kernels for the binary-operator hot
//! path.
//!
//! Under full fulfillment every stage merges its new sorted runs
//! against *all* prior runs of the other side (Figure 4.5's pair
//! grid), so the per-tuple cost of key extraction and group scanning
//! dominates the engine's wall-clock time — exactly the `run_merge`
//! phase the flight recorder attributes. The kernels here apply a
//! Schwartzian transform: join/intersect keys are extracted **once
//! per tuple** when a run is sorted ([`sort_run`]) and stored
//! alongside the run as a [`KeyColumn`]; [`merge_keyed`] then
//! compares precomputed keys by index, so neither the merge head nor
//! the group-end scans ever allocate a key.
//!
//! [`merge_reference`] keeps the original extract-per-comparison
//! algorithm as the Criterion baseline (`benches/kernels.rs`) and as
//! the property-test oracle: both merges must agree tuple for tuple
//! on any pair of key-sorted runs.
//!
//! Everything here is pure CPU — no clock, no tracer, no deadline —
//! which is what lets the executor fan pair merges across worker
//! threads without moving a single simulated tick.

use std::sync::Arc;

use eram_storage::{ColumnarBlock, Tuple, Value};

/// How merge keys are derived from a run's tuples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KeySpec {
    /// The key is a projection of the given columns (one side of a
    /// join's `on` pairs).
    Columns(Vec<usize>),
    /// The whole tuple is its own key (intersection, distinct sort).
    Whole,
}

impl KeySpec {
    /// Extracts one tuple's key. Allocates — used when building key
    /// columns and by [`merge_reference`], never in the keyed inner
    /// loops.
    pub fn extract(&self, t: &Tuple) -> Tuple {
        match self {
            KeySpec::Columns(cols) => t.project(cols),
            KeySpec::Whole => t.clone(),
        }
    }

    /// Builds the key column for tuples that are already in key
    /// order. Used for sub-two-tuple runs and for degraded reads,
    /// where a run's surviving subsequence no longer aligns with the
    /// column computed at ingest.
    pub fn column_for(&self, tuples: &[Tuple]) -> KeyColumn {
        match self {
            KeySpec::Whole => KeyColumn::Whole,
            KeySpec::Columns(cols) => {
                KeyColumn::Extracted(tuples.iter().map(|t| t.project(cols)).collect())
            }
        }
    }

    /// Builds the key column for a columnar block's records (in
    /// record order) by reading the key columns' typed arrays
    /// directly — no intermediate row tuples are materialized, only
    /// the key tuples themselves.
    ///
    /// Must agree with `column_for(&block.to_tuples())` key for key;
    /// the kernel equivalence suite compares the two.
    pub fn column_for_columnar(&self, block: &ColumnarBlock) -> KeyColumn {
        match self {
            KeySpec::Whole => KeyColumn::Whole,
            KeySpec::Columns(_) => KeyColumn::Extracted(
                self.extract_columnar(block)
                    .expect("a Columns spec extracts keys")
                    .into(),
            ),
        }
    }

    /// [`KeySpec::column_for_columnar`]'s owned form: the key tuples
    /// in record order, ready for [`sort_run_with_keys`] without a
    /// per-key clone out of a shared column. `None` for
    /// [`KeySpec::Whole`], which has no extracted keys.
    pub fn extract_columnar(&self, block: &ColumnarBlock) -> Option<Vec<Tuple>> {
        match self {
            KeySpec::Whole => None,
            KeySpec::Columns(cols) => {
                let key_cols: Vec<_> = cols.iter().map(|&c| block.column(c)).collect();
                Some(
                    (0..block.len())
                        .map(|row| Tuple::new(key_cols.iter().map(|c| c.value(row)).collect()))
                        .collect(),
                )
            }
        }
    }
}

/// A run's precomputed merge keys, aligned index-for-index with its
/// tuples. Cloning is cheap (at most an `Arc` bump), so every staged
/// pair merge shares one column per run.
#[derive(Debug, Clone)]
pub enum KeyColumn {
    /// The tuples are their own keys: compare in place, zero extra
    /// memory (intersection runs).
    Whole,
    /// One extracted key per tuple (join runs).
    Extracted(Arc<[Tuple]>),
}

impl KeyColumn {
    /// The key of tuple `i`, as a borrowed value slice.
    #[inline]
    pub fn key_at<'a>(&'a self, tuples: &'a [Tuple], i: usize) -> &'a [Value] {
        match self {
            KeyColumn::Whole => tuples[i].values(),
            KeyColumn::Extracted(keys) => keys[i].values(),
        }
    }
}

/// Which binary operator a merge implements. Only emit semantics:
/// the keys are already materialized in the [`KeyColumn`]s.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergeKind {
    /// Equal-key groups emit the concatenated cross product.
    Join,
    /// Equal-key groups emit the left tuple once per pair (inputs
    /// are sets, so groups are singletons).
    Intersect,
}

/// Sorts a run in place by its merge key and returns the key column,
/// extracting each key exactly once (Schwartzian transform).
///
/// The sort is stable in the original order of equal-key tuples —
/// exactly the order `sort_by_key` with an extracting closure
/// produces, without re-extracting the key at every comparison.
pub fn sort_run(tuples: &mut Vec<Tuple>, spec: &KeySpec) -> KeyColumn {
    match spec {
        KeySpec::Whole => {
            // The whole tuple is the key: equal keys are identical
            // tuples, so a plain stable sort is key order.
            tuples.sort();
            KeyColumn::Whole
        }
        KeySpec::Columns(cols) => {
            let mut pairs: Vec<(Tuple, Tuple)> = std::mem::take(tuples)
                .into_iter()
                .map(|t| (t.project(cols), t))
                .collect();
            pairs.sort_by(|a, b| a.0.cmp(&b.0));
            let mut keys = Vec::with_capacity(pairs.len());
            tuples.reserve(pairs.len());
            for (k, t) in pairs {
                keys.push(k);
                tuples.push(t);
            }
            KeyColumn::Extracted(keys.into())
        }
    }
}

/// [`sort_run`] for callers that already hold the merge keys — e.g.
/// keys extracted straight from a columnar block without ever
/// materializing row tuples. `keys[i]` must equal what the column
/// spec would project from `tuples[i]`; given that, the stable
/// pair-sort below produces exactly the order (and key column)
/// `sort_run` with a [`KeySpec::Columns`] spec would.
pub fn sort_run_with_keys(tuples: &mut Vec<Tuple>, keys: Vec<Tuple>) -> KeyColumn {
    debug_assert_eq!(keys.len(), tuples.len());
    let mut pairs: Vec<(Tuple, Tuple)> = keys.into_iter().zip(std::mem::take(tuples)).collect();
    pairs.sort_by(|a, b| a.0.cmp(&b.0));
    let mut keys = Vec::with_capacity(pairs.len());
    tuples.reserve(pairs.len());
    for (k, t) in pairs {
        keys.push(k);
        tuples.push(t);
    }
    KeyColumn::Extracted(keys.into())
}

/// End (exclusive) of the equal-key group starting at `i`.
#[inline]
fn group_end(tuples: &[Tuple], keys: &KeyColumn, i: usize) -> usize {
    let k = keys.key_at(tuples, i);
    (i + 1..tuples.len())
        .find(|&x| keys.key_at(tuples, x) != k)
        .unwrap_or(tuples.len())
}

/// Merges two key-sorted runs using their precomputed key columns,
/// returning the matches in left-major group order.
///
/// The inner loop is allocation-free: the merge head and both
/// group-end scans compare borrowed key slices by index, and the
/// output is reserved from each group product before emitting. Pure
/// CPU — touches neither the clock, the tracer, nor the deadline —
/// so pair merges may run on worker threads; the caller charges
/// comparisons and records cost observations serially beforehand.
pub fn merge_keyed(
    kind: MergeKind,
    lt: &[Tuple],
    lk: &KeyColumn,
    rt: &[Tuple],
    rk: &KeyColumn,
) -> Vec<Tuple> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < lt.len() && j < rt.len() {
        match lk.key_at(lt, i).cmp(rk.key_at(rt, j)) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                let i_end = group_end(lt, lk, i);
                let j_end = group_end(rt, rk, j);
                emit(kind, &lt[i..i_end], &rt[j..j_end], &mut out);
                i = i_end;
                j = j_end;
            }
        }
    }
    out
}

/// Output tuples for one equal-key group pair, pre-sized from the
/// group product.
fn emit(kind: MergeKind, left: &[Tuple], right: &[Tuple], out: &mut Vec<Tuple>) {
    out.reserve(left.len() * right.len());
    match kind {
        MergeKind::Join => {
            for l in left {
                for r in right {
                    out.push(l.concat(r));
                }
            }
        }
        MergeKind::Intersect => {
            for l in left {
                for _ in right {
                    out.push(l.clone());
                }
            }
        }
    }
}

/// The original merge algorithm: extracts (allocates) both keys at
/// every comparison step, including once per probed tuple in the
/// group-end scans — quadratic key extractions on wide equal-key
/// groups. Kept as the Criterion baseline and as the property-test
/// oracle for [`merge_keyed`].
pub fn merge_reference(
    kind: MergeKind,
    lspec: &KeySpec,
    rspec: &KeySpec,
    lt: &[Tuple],
    rt: &[Tuple],
) -> Vec<Tuple> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < lt.len() && j < rt.len() {
        let lkey = lspec.extract(&lt[i]);
        let rkey = rspec.extract(&rt[j]);
        match lkey.cmp(&rkey) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                let i_end = (i..lt.len())
                    .find(|&x| lspec.extract(&lt[x]) != lkey)
                    .unwrap_or(lt.len());
                let j_end = (j..rt.len())
                    .find(|&x| rspec.extract(&rt[x]) != rkey)
                    .unwrap_or(rt.len());
                match kind {
                    MergeKind::Join => {
                        for l in &lt[i..i_end] {
                            for r in &rt[j..j_end] {
                                out.push(l.concat(r));
                            }
                        }
                    }
                    MergeKind::Intersect => {
                        for l in &lt[i..i_end] {
                            for _ in j..j_end {
                                out.push(l.clone());
                            }
                        }
                    }
                }
                i = i_end;
                j = j_end;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(vals: &[i64]) -> Tuple {
        Tuple::new(vals.iter().map(|&v| Value::Int(v)).collect())
    }

    #[test]
    fn sort_run_matches_sort_by_key_and_aligns_keys() {
        let spec = KeySpec::Columns(vec![1, 0]);
        let mut tuples: Vec<Tuple> = (0..40).map(|i| t(&[i % 3, i % 5, i])).collect();
        let mut reference = tuples.clone();
        reference.sort_by_key(|x| spec.extract(x));

        let keys = sort_run(&mut tuples, &spec);
        assert_eq!(tuples, reference, "stable key order preserved");
        for (i, tuple) in tuples.iter().enumerate() {
            assert_eq!(
                keys.key_at(&tuples, i),
                spec.extract(tuple).values(),
                "key column misaligned at {i}"
            );
        }
    }

    #[test]
    fn sort_run_with_keys_matches_sort_run_exactly() {
        let spec = KeySpec::Columns(vec![1, 0]);
        let mut via_spec: Vec<Tuple> = (0..40).map(|i| t(&[i % 3, i % 5, i])).collect();
        let mut via_keys = via_spec.clone();
        let prekeys: Vec<Tuple> = via_keys.iter().map(|x| spec.extract(x)).collect();

        let k_spec = sort_run(&mut via_spec, &spec);
        let k_keys = sort_run_with_keys(&mut via_keys, prekeys);
        assert_eq!(via_keys, via_spec, "tuple order diverged");
        for i in 0..via_spec.len() {
            assert_eq!(
                k_keys.key_at(&via_keys, i),
                k_spec.key_at(&via_spec, i),
                "key column diverged at {i}"
            );
        }
    }

    #[test]
    fn whole_spec_sorts_in_place_with_zero_extra_memory() {
        let mut tuples: Vec<Tuple> = (0..20).rev().map(|i| t(&[i, i % 4])).collect();
        let mut reference = tuples.clone();
        reference.sort_by_key(|x| x.values().to_vec());
        let keys = sort_run(&mut tuples, &KeySpec::Whole);
        assert_eq!(tuples, reference);
        assert!(matches!(keys, KeyColumn::Whole));
        assert_eq!(keys.key_at(&tuples, 3), tuples[3].values());
    }

    #[test]
    fn keyed_join_matches_reference_on_duplicate_heavy_groups() {
        let lspec = KeySpec::Columns(vec![0]);
        let rspec = KeySpec::Columns(vec![0]);
        let mut lt: Vec<Tuple> = (0..30).map(|i| t(&[i % 4, i])).collect();
        let mut rt: Vec<Tuple> = (0..24).map(|i| t(&[i % 4, -i])).collect();
        let lk = sort_run(&mut lt, &lspec);
        let rk = sort_run(&mut rt, &rspec);
        let keyed = merge_keyed(MergeKind::Join, &lt, &lk, &rt, &rk);
        let reference = merge_reference(MergeKind::Join, &lspec, &rspec, &lt, &rt);
        // 30 left tuples over 4 keys → groups of 8, 8, 7, 7; each
        // joins the 6 right tuples of its key.
        assert_eq!(keyed.len(), (8 + 8 + 7 + 7) * 6);
        assert_eq!(keyed, reference);
    }

    #[test]
    fn keyed_intersect_matches_reference() {
        let mut lt: Vec<Tuple> = (0..15).map(|i| t(&[i, 0])).collect();
        let mut rt: Vec<Tuple> = (10..25).map(|i| t(&[i, 0])).collect();
        let lk = sort_run(&mut lt, &KeySpec::Whole);
        let rk = sort_run(&mut rt, &KeySpec::Whole);
        let keyed = merge_keyed(MergeKind::Intersect, &lt, &lk, &rt, &rk);
        let reference = merge_reference(
            MergeKind::Intersect,
            &KeySpec::Whole,
            &KeySpec::Whole,
            &lt,
            &rt,
        );
        assert_eq!(keyed.len(), 5);
        assert_eq!(keyed, reference);
    }

    #[test]
    fn empty_runs_merge_to_empty() {
        let lk = KeyColumn::Whole;
        assert!(merge_keyed(MergeKind::Join, &[], &lk, &[], &KeyColumn::Whole).is_empty());
        let mut rt = vec![t(&[1, 2])];
        let rk = sort_run(&mut rt, &KeySpec::Columns(vec![0]));
        assert!(merge_keyed(MergeKind::Join, &[], &lk, &rt, &rk).is_empty());
    }

    #[test]
    fn column_for_columnar_matches_row_extraction() {
        use eram_storage::{ColumnType, Schema};
        let schema = Schema::new(vec![
            ("a", ColumnType::Int),
            ("b", ColumnType::Int),
            ("c", ColumnType::Int),
        ]);
        let tuples: Vec<Tuple> = (0..20).map(|i| t(&[i % 3, i, i % 7])).collect();
        let block = ColumnarBlock::from_tuples(&schema, &tuples).unwrap();
        for spec in [
            KeySpec::Columns(vec![0]),
            KeySpec::Columns(vec![2, 0]),
            KeySpec::Whole,
        ] {
            let from_cols = spec.column_for_columnar(&block);
            for (i, tuple) in tuples.iter().enumerate() {
                assert_eq!(
                    from_cols.key_at(&tuples, i),
                    spec.extract(tuple).values(),
                    "columnar key misaligned at {i} for {spec:?}"
                );
            }
        }
    }

    #[test]
    fn column_for_rebuilds_keys_for_a_subsequence() {
        let spec = KeySpec::Columns(vec![1]);
        let mut tuples: Vec<Tuple> = (0..12).map(|i| t(&[i, i % 3])).collect();
        let _ = sort_run(&mut tuples, &spec);
        // A degraded read drops a slice of the run; the rebuilt
        // column must align with the surviving subsequence.
        let survived: Vec<Tuple> = tuples
            .iter()
            .enumerate()
            .filter(|(i, _)| i % 2 == 0)
            .map(|(_, x)| x.clone())
            .collect();
        let keys = spec.column_for(&survived);
        for (i, tuple) in survived.iter().enumerate() {
            assert_eq!(keys.key_at(&survived, i), spec.extract(tuple).values());
        }
    }
}
