//! The public facade: a database you load relations into and ask
//! time-constrained `COUNT` queries of.
//!
//! A [`Database`] bundles the clock, the device, and the catalog.
//! [`Database::sim_default`] gives the paper's simulated SUN 3/60
//! (deterministic, fast, jittered); [`Database::wall`] measures real
//! time — the mode an embedding real-time application would use.

use std::sync::Arc;
use std::time::Duration;

use eram_relalg::{eval, Catalog, Expr};
use eram_storage::{
    Clock, DeviceProfile, Disk, HeapFile, IngestFormat, Schema, SeedSeq, SimClock, Tuple, WallClock,
};

use crate::aggregate::AggregateFn;
use crate::costs::CostModel;
use crate::executor::{execute_aggregate, EngineError, ExecOutcome, ExecParams};
use crate::obs::{Profiler, Tracer};
use crate::ops::{BlockLayout, Fulfillment, MemoryMode, DEFAULT_RUN_CACHE_TUPLES};
use crate::retry::RetryPolicy;
use crate::seltrack::SelectivityDefaults;
use crate::stopping::StoppingCriterion;
use crate::strategy::{OneAtATimeInterval, TimeControlStrategy};

/// The result of a time-constrained count (re-exported outcome type).
pub type TimedCount = ExecOutcome;

/// Tunables for a count query, independent of the quota.
pub struct QueryConfig {
    /// The time-control strategy.
    pub strategy: Box<dyn TimeControlStrategy>,
    /// The stopping criterion.
    pub stopping: StoppingCriterion,
    /// Initial cost-model coefficients.
    pub cost_model: CostModel,
    /// Stage-1 selectivity assumptions.
    pub defaults: SelectivityDefaults,
    /// Binary-operator fulfillment plan.
    pub fulfillment: Fulfillment,
    /// Disk-resident or main-memory evaluation.
    pub memory: MemoryMode,
    /// Safety cap on stages.
    pub max_stages: usize,
    /// Distinct-count estimator for projection roots (Goodman's is
    /// the paper's choice and the default; Chao1/jackknife are stable
    /// alternatives for tiny sampling fractions).
    pub distinct: eram_sampling::DistinctEstimator,
    /// Spend unusable leftovers on a cheaper partial-fulfillment
    /// stage (the paper's suggestion; off by default).
    pub hybrid_leftover: bool,
    /// Selection pushdown before compilation (on by default).
    pub optimize: bool,
    /// How transient storage faults are retried (backoff charged to
    /// the query clock).
    pub retry: RetryPolicy,
    /// Execution tracer. Disabled by default; attach a recording
    /// tracer to capture clock-charged spans and events.
    pub tracer: Tracer,
    /// Collect a [`crate::MetricsSnapshot`] into the report's
    /// `metrics` field (off by default).
    pub collect_metrics: bool,
    /// Phase profiler for the performance flight recorder. Disabled
    /// by default; attach a recording profiler to get a
    /// [`crate::ProfileSnapshot`] in the report's `profile` field.
    pub profiler: Profiler,
    /// Worker threads for the pure-CPU portions of each stage (block
    /// decode, run merges). Results are byte-identical at any worker
    /// count; `1` (the default) runs everything inline.
    pub workers: usize,
    /// Bound (in tuples) on each binary node's decoded-run cache;
    /// `0` disables it. Wall-clock only: cached runs still charge
    /// their block reads, so results are byte-identical either way.
    pub run_cache_tuples: usize,
    /// Decode target for sampled blocks (row tuples or per-column
    /// typed arrays). Wall-clock only: results are byte-identical
    /// under either layout.
    pub block_layout: BlockLayout,
}

impl Default for QueryConfig {
    fn default() -> Self {
        QueryConfig {
            strategy: Box::new(OneAtATimeInterval::default()),
            stopping: StoppingCriterion::HardDeadline,
            cost_model: CostModel::generic_default(),
            defaults: SelectivityDefaults::default(),
            fulfillment: Fulfillment::Full,
            memory: MemoryMode::DiskResident,
            max_stages: 1_000,
            distinct: eram_sampling::DistinctEstimator::Goodman,
            hybrid_leftover: false,
            optimize: true,
            retry: RetryPolicy::default(),
            tracer: Tracer::disabled(),
            collect_metrics: false,
            profiler: Profiler::disabled(),
            workers: 1,
            run_cache_tuples: DEFAULT_RUN_CACHE_TUPLES,
            block_layout: BlockLayout::default(),
        }
    }
}

/// A self-contained ERAM instance: clock + device + catalog.
pub struct Database {
    disk: Arc<Disk>,
    catalog: Catalog,
    seeds: SeedSeq,
    query_counter: u64,
    /// Initial cost model handed to queries (1989-scale for the
    /// simulated SUN 3/60, microsecond-scale for wall clocks).
    default_cost_model: CostModel,
}

impl Database {
    /// A database on a simulated device with the given profile.
    pub fn sim(profile: DeviceProfile, seed: u64) -> Self {
        let seeds = SeedSeq::new(seed);
        let clock: Arc<dyn Clock> = Arc::new(SimClock::new());
        let disk = Disk::new(clock, profile, seeds.derive(0xD15C));
        Database {
            disk,
            catalog: Catalog::new(),
            seeds,
            query_counter: 0,
            default_cost_model: CostModel::generic_default(),
        }
    }

    /// A database on the paper-calibrated simulated SUN 3/60.
    pub fn sim_default(seed: u64) -> Self {
        Self::sim(DeviceProfile::sun_3_60(), seed)
    }

    /// A database on a simulated device fronted by an LRU buffer
    /// cache of `cache_blocks` blocks — the middle ground between the
    /// paper's disk-resident design and its main-memory variant
    /// (full-fulfillment re-reads of previous stages' runs become
    /// cheap).
    pub fn sim_cached(profile: DeviceProfile, seed: u64, cache_blocks: usize) -> Self {
        let seeds = SeedSeq::new(seed);
        let clock: Arc<dyn Clock> = Arc::new(SimClock::new());
        let disk = Disk::new_cached(clock, profile, seeds.derive(0xD15C), cache_blocks);
        Database {
            disk,
            catalog: Catalog::new(),
            seeds,
            query_counter: 0,
            default_cost_model: CostModel::generic_default(),
        }
    }

    /// A database on the simulated *modern* device
    /// ([`DeviceProfile::modern`]) with matching microsecond-scale
    /// initial cost coefficients.
    pub fn sim_modern(seed: u64) -> Self {
        let mut db = Self::sim(DeviceProfile::modern(), seed);
        db.default_cost_model = CostModel::modern_default();
        db
    }

    /// Replaces the initial cost model handed to new queries. Use
    /// when the device's cost scale differs from the profile preset
    /// (queries can still override per-query via
    /// [`CountQuery::cost_model`]).
    pub fn set_default_cost_model(&mut self, model: CostModel) {
        self.default_cost_model = model;
    }

    /// The initial cost model handed to new queries — the same
    /// coefficients [`crate::server::QueryServer`] uses for
    /// QCOST-predictive admission unless its config overrides them.
    pub fn default_cost_model(&self) -> &CostModel {
        &self.default_cost_model
    }

    /// A simulated database whose blocks live in real files under
    /// `dir` (for data sets larger than RAM). The directory must
    /// exist.
    pub fn sim_file_backed(
        profile: DeviceProfile,
        seed: u64,
        dir: &std::path::Path,
    ) -> Result<Self, eram_storage::StorageError> {
        let seeds = SeedSeq::new(seed);
        let clock: Arc<dyn Clock> = Arc::new(SimClock::new());
        let disk = Disk::file_backed(clock, profile, seeds.derive(0xD15C), dir)?;
        Ok(Database {
            disk,
            catalog: Catalog::new(),
            seeds,
            query_counter: 0,
            default_cost_model: CostModel::generic_default(),
        })
    }

    /// A database measuring real wall-clock time (charges are free;
    /// the quota constrains actual execution).
    pub fn wall(seed: u64) -> Self {
        let seeds = SeedSeq::new(seed);
        let clock: Arc<dyn Clock> = Arc::new(WallClock::new());
        let disk = Disk::new(clock, DeviceProfile::sun_3_60(), seeds.derive(0xD15C));
        Database {
            disk,
            catalog: Catalog::new(),
            seeds,
            query_counter: 0,
            default_cost_model: CostModel::modern_default(),
        }
    }

    /// Loads (or replaces) a base relation.
    ///
    /// Relations follow the paper's **set semantics** ("a relation
    /// instance I with |r| tuples is modeled as a set"): tuples are
    /// expected to be distinct. Loading duplicates is not rejected
    /// (scanning to check would defeat bulk loading) but makes
    /// estimates count the multiset while [`Database::exact_count`]
    /// deduplicates.
    pub fn load_relation<I>(
        &mut self,
        name: impl Into<String>,
        schema: Schema,
        tuples: I,
    ) -> Result<(), eram_storage::StorageError>
    where
        I: IntoIterator<Item = Tuple>,
    {
        let hf = HeapFile::load(self.disk.clone(), schema, tuples)?;
        self.catalog.register(name, hf);
        Ok(())
    }

    /// Loads a relation from a CSV file (see
    /// [`eram_storage::read_csv`] for the dialect).
    pub fn load_csv(
        &mut self,
        name: impl Into<String>,
        schema: Schema,
        path: &std::path::Path,
        has_header: bool,
    ) -> Result<usize, eram_storage::StorageError> {
        let file = std::fs::File::open(path)?;
        let tuples = eram_storage::read_csv(std::io::BufReader::new(file), &schema, has_header)?;
        let n = tuples.len();
        self.load_relation(name, schema, tuples)?;
        Ok(n)
    }

    /// Loads a relation from a file in any supported ingest format
    /// (CSV, JSON-lines, or the Parquet subset). The parsed tuples
    /// land in the same [`HeapFile`] layout regardless of format, so
    /// queries over the relation are byte-identical across formats.
    pub fn load_ingest(
        &mut self,
        name: impl Into<String>,
        schema: Schema,
        path: &std::path::Path,
        format: IngestFormat,
    ) -> Result<usize, eram_storage::StorageError> {
        let file = std::fs::File::open(path)?;
        let mut reader = std::io::BufReader::new(file);
        let tuples = eram_storage::read_tuples(format, &mut reader, &schema)?;
        let n = tuples.len();
        self.load_relation(name, schema, tuples)?;
        Ok(n)
    }

    /// The catalog of loaded relations.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The underlying device.
    pub fn disk(&self) -> &Arc<Disk> {
        &self.disk
    }

    /// Arms deterministic fault injection on the device: subsequent
    /// charged reads suffer transient errors, bit-flip corruption, and
    /// latency spikes at the plan's rates. Queries keep returning
    /// estimates — lost blocks degrade precision, not availability.
    pub fn inject_faults(&self, plan: eram_storage::FaultPlan) {
        self.disk.set_fault_plan(plan);
    }

    /// Disarms fault injection (previously corrupted sites heal:
    /// corruption is injected on read, not persisted to the backend).
    pub fn clear_faults(&self) {
        self.disk.clear_fault_plan();
    }

    /// Cumulative injected-fault counts since the plan was armed, or
    /// `None` when no plan is active.
    pub fn fault_stats(&self) -> Option<eram_storage::FaultStats> {
        self.disk.fault_stats()
    }

    /// Exact `COUNT(expr)` computed outside the quota mechanism
    /// (ground truth for experiments).
    pub fn exact_count(&self, expr: &Expr) -> Result<u64, EngineError> {
        Ok(eval::exact_count(expr, &self.catalog)?)
    }

    /// Begins a time-constrained count of `expr`.
    pub fn count(&mut self, expr: Expr) -> CountQuery<'_> {
        self.aggregate(AggregateFn::Count, expr)
    }

    /// Begins a time-constrained `SUM(expr.column)`.
    pub fn sum(&mut self, expr: Expr, column: usize) -> CountQuery<'_> {
        self.aggregate(AggregateFn::Sum { column }, expr)
    }

    /// Begins a time-constrained `AVG(expr.column)` (the expression
    /// must be free of union/difference).
    pub fn avg(&mut self, expr: Expr, column: usize) -> CountQuery<'_> {
        self.aggregate(AggregateFn::Avg { column }, expr)
    }

    /// Begins a time-constrained aggregate of `expr`.
    pub fn aggregate(&mut self, agg: AggregateFn, expr: Expr) -> CountQuery<'_> {
        let seed = self.next_query_seed();
        let config = QueryConfig {
            cost_model: self.default_cost_model.clone(),
            ..QueryConfig::default()
        };
        CountQuery {
            db: self,
            expr,
            agg,
            quota: Duration::from_secs(1),
            config,
            seed,
        }
    }

    /// Draws the next per-query sampling seed — the same
    /// counter-backed sequence [`Database::aggregate`] consumes, so
    /// prepared and builder-style queries share one seed stream.
    pub fn next_query_seed(&mut self) -> u64 {
        self.query_counter += 1;
        self.seeds.derive(self.query_counter)
    }

    /// Prepares a time-constrained aggregate without borrowing the
    /// database for its whole lifetime: the per-query seed is drawn
    /// now (in call order), and the returned spec can later be run on
    /// any view of this database's disk via [`PreparedQuery::run_on`].
    /// The query server prepares every admitted job up front in
    /// canonical admission order, then executes each on its own lane.
    pub fn prepare(&mut self, agg: AggregateFn, expr: Expr) -> PreparedQuery {
        let seed = self.next_query_seed();
        PreparedQuery {
            agg,
            expr,
            quota: Duration::from_secs(1),
            seed,
            config: QueryConfig {
                cost_model: self.default_cost_model.clone(),
                ..QueryConfig::default()
            },
        }
    }
}

impl std::fmt::Debug for Database {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Database")
            .field("relations", &self.catalog.names())
            .finish()
    }
}

/// Builder for a time-constrained count query.
pub struct CountQuery<'db> {
    db: &'db Database,
    expr: Expr,
    agg: AggregateFn,
    quota: Duration,
    config: QueryConfig,
    seed: u64,
}

impl CountQuery<'_> {
    /// Sets the time quota `T` (default 1 s).
    pub fn within(mut self, quota: Duration) -> Self {
        self.quota = quota;
        self
    }

    /// Replaces the time-control strategy.
    pub fn strategy(mut self, strategy: impl TimeControlStrategy + 'static) -> Self {
        self.config.strategy = Box::new(strategy);
        self
    }

    /// Replaces the stopping criterion.
    pub fn stopping(mut self, stopping: StoppingCriterion) -> Self {
        self.config.stopping = stopping;
        self
    }

    /// Replaces the initial cost model.
    pub fn cost_model(mut self, model: CostModel) -> Self {
        self.config.cost_model = model;
        self
    }

    /// Replaces the stage-1 selectivity assumptions.
    pub fn initial_selectivities(mut self, defaults: SelectivityDefaults) -> Self {
        self.config.defaults = defaults;
        self
    }

    /// Chooses the fulfillment plan.
    pub fn fulfillment(mut self, fulfillment: Fulfillment) -> Self {
        self.config.fulfillment = fulfillment;
        self
    }

    /// Spends unusable leftover quota on a partial-fulfillment stage.
    pub fn hybrid_leftover(mut self, on: bool) -> Self {
        self.config.hybrid_leftover = on;
        self
    }

    /// Chooses disk-resident (default) or main-memory evaluation.
    pub fn memory_mode(mut self, memory: MemoryMode) -> Self {
        self.config.memory = memory;
        self
    }

    /// Chooses the distinct-count estimator for projection roots.
    pub fn distinct_estimator(mut self, distinct: eram_sampling::DistinctEstimator) -> Self {
        self.config.distinct = distinct;
        self
    }

    /// Overrides the sampling seed (defaults to a per-query seed
    /// derived from the database seed).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the retry policy for transient storage faults.
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.config.retry = retry;
        self
    }

    /// Attaches an execution tracer. Use
    /// [`Tracer::recording`] with the database's clock (e.g.
    /// `db.disk().clock().clone()`) so span durations are stamped in
    /// charged time. Call after [`CountQuery::config`], which replaces
    /// the whole config including the tracer.
    pub fn tracer(mut self, tracer: Tracer) -> Self {
        self.config.tracer = tracer;
        self
    }

    /// Enables metrics collection: the report's `metrics` field gets a
    /// [`crate::MetricsSnapshot`] of storage and stage-loop counters.
    pub fn metrics(mut self, on: bool) -> Self {
        self.config.collect_metrics = on;
        self
    }

    /// Attaches a phase profiler. Use [`Profiler::recording`] with
    /// the database's clock (e.g. `db.disk().clock().clone()`) so the
    /// simulated column reads charged time; the report's `profile`
    /// field then carries a [`crate::ProfileSnapshot`]. Profiling is
    /// pure observation — seeded results are byte-identical with it
    /// on or off.
    pub fn profiler(mut self, profiler: Profiler) -> Self {
        self.config.profiler = profiler;
        self
    }

    /// Sets the worker-thread count for the pure-CPU portions of each
    /// stage. Estimates, reports, and traces are byte-identical at
    /// any worker count; values above 1 only change wall-clock time.
    /// Zero is treated as 1.
    pub fn workers(mut self, workers: usize) -> Self {
        self.config.workers = workers.max(1);
        self
    }

    /// Bounds the decoded-run cache of each binary operator, in
    /// tuples; `0` disables it. The cache only skips re-decoding old
    /// runs — every block read is still charged — so estimates,
    /// reports, and traces are byte-identical at any setting.
    pub fn run_cache(mut self, tuples: usize) -> Self {
        self.config.run_cache_tuples = tuples;
        self
    }

    /// Selects how sampled blocks are decoded and traversed: row
    /// tuples (the default) or per-column typed arrays with bitmap
    /// selection. Estimates, reports, and traces are byte-identical
    /// under either layout; only wall-clock time changes.
    pub fn block_layout(mut self, layout: BlockLayout) -> Self {
        self.config.block_layout = layout;
        self
    }

    /// Replaces the whole config in one call.
    pub fn config(mut self, config: QueryConfig) -> Self {
        self.config = config;
        self
    }

    /// Runs the stage loop.
    pub fn run(self) -> Result<TimedCount, EngineError> {
        let params = ExecParams {
            strategy: self.config.strategy.as_ref(),
            stopping: self.config.stopping,
            cost_model: self.config.cost_model,
            defaults: self.config.defaults,
            fulfillment: self.config.fulfillment,
            memory: self.config.memory,
            seed: self.seed,
            max_stages: self.config.max_stages,
            distinct: self.config.distinct,
            hybrid_leftover: self.config.hybrid_leftover,
            optimize: self.config.optimize,
            retry: self.config.retry,
            tracer: self.config.tracer,
            collect_metrics: self.config.collect_metrics,
            profiler: self.config.profiler,
            workers: self.config.workers,
            run_cache_tuples: self.config.run_cache_tuples,
            block_layout: self.config.block_layout,
            stage_yield: None,
        };
        execute_aggregate(
            &self.db.disk,
            &self.db.catalog,
            &self.expr,
            self.agg,
            self.quota,
            params,
        )
    }
}

/// A query detached from the [`Database`] borrow: the aggregate, the
/// expression, a quota, a per-query seed already drawn from the
/// database's seed sequence, and a full [`QueryConfig`]. Built by
/// [`Database::prepare`]; executed — possibly on a per-job lane view
/// of the shared disk — via [`PreparedQuery::run_on`].
pub struct PreparedQuery {
    /// The aggregate to estimate.
    pub agg: AggregateFn,
    /// The relational expression.
    pub expr: Expr,
    /// The time quota `T` (default 1 s).
    pub quota: Duration,
    /// The sampling seed (drawn at preparation time).
    pub seed: u64,
    /// Tunables; fields are public for direct adjustment.
    pub config: QueryConfig,
}

impl PreparedQuery {
    /// Runs the stage loop against `disk` and `catalog`. The catalog's
    /// relations are re-based onto `disk` for sampling (see the leaf
    /// handling in the executor), so passing a lane view of the
    /// loading disk charges this query's own clock while reading the
    /// shared backend bytes. `tracer` overrides the config's tracer;
    /// `stage_yield` is the server's interleaving gate (`None` runs
    /// stages back-to-back).
    pub fn run_on(
        &self,
        disk: &Arc<Disk>,
        catalog: &Catalog,
        tracer: Tracer,
        stage_yield: Option<&(dyn Fn() + Sync)>,
    ) -> Result<TimedCount, EngineError> {
        let params = ExecParams {
            strategy: self.config.strategy.as_ref(),
            stopping: self.config.stopping.clone(),
            cost_model: self.config.cost_model.clone(),
            defaults: self.config.defaults,
            fulfillment: self.config.fulfillment,
            memory: self.config.memory,
            seed: self.seed,
            max_stages: self.config.max_stages,
            distinct: self.config.distinct,
            hybrid_leftover: self.config.hybrid_leftover,
            optimize: self.config.optimize,
            retry: self.config.retry,
            tracer,
            collect_metrics: self.config.collect_metrics,
            profiler: self.config.profiler.clone(),
            workers: self.config.workers,
            run_cache_tuples: self.config.run_cache_tuples,
            block_layout: self.config.block_layout,
            stage_yield,
        };
        execute_aggregate(disk, catalog, &self.expr, self.agg, self.quota, params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eram_relalg::{CmpOp, Predicate};
    use eram_storage::{ColumnType, Value};

    fn populated(seed: u64) -> Database {
        let mut db = Database::sim_default(seed);
        let schema =
            Schema::new(vec![("k", ColumnType::Int), ("v", ColumnType::Int)]).padded_to(200);
        db.load_relation(
            "t",
            schema,
            (0..5_000).map(|i| Tuple::new(vec![Value::Int(i), Value::Int(i % 4)])),
        )
        .unwrap();
        db
    }

    #[test]
    fn builder_round_trip() {
        let mut db = populated(1);
        let expr = Expr::relation("t").select(Predicate::col_cmp(1, CmpOp::Eq, 0));
        let out = db
            .count(expr)
            .within(Duration::from_secs(8))
            .strategy(OneAtATimeInterval::new(24.0))
            .stopping(StoppingCriterion::SoftDeadline)
            .fulfillment(Fulfillment::Full)
            .seed(5)
            .run()
            .unwrap();
        assert!(out.report.completed_stages() >= 1);
        assert!(out.estimate.estimate > 0.0);
    }

    #[test]
    fn exact_count_available_for_ground_truth() {
        let db = populated(2);
        let expr = Expr::relation("t").select(Predicate::col_cmp(1, CmpOp::Eq, 0));
        assert_eq!(db.exact_count(&expr).unwrap(), 1_250);
    }

    #[test]
    fn successive_queries_use_distinct_seeds() {
        let mut db = populated(3);
        let expr = Expr::relation("t").select(Predicate::col_cmp(1, CmpOp::Eq, 0));
        let a = db
            .count(expr.clone())
            .within(Duration::from_secs(2))
            .run()
            .unwrap();
        let b = db
            .count(expr.clone())
            .within(Duration::from_secs(2))
            .run()
            .unwrap();
        let c = db.count(expr).within(Duration::from_secs(2)).run().unwrap();
        // Different samples → different estimates. A single pair can
        // collide by chance (the estimate lives on the coarse lattice
        // n·ones/m), so require only that the three runs are not all
        // identical.
        let key = |o: &TimedCount| (o.estimate.estimate, o.report.blocks_evaluated());
        assert!(
            key(&a) != key(&b) || key(&b) != key(&c),
            "three distinct-seed queries produced identical samples: {:?}",
            key(&a)
        );
    }

    #[test]
    fn wall_clock_database_works_end_to_end() {
        let mut db = Database::wall(4);
        let schema = Schema::new(vec![("k", ColumnType::Int)]);
        db.load_relation(
            "w",
            schema,
            (0..1_000).map(|i| Tuple::new(vec![Value::Int(i)])),
        )
        .unwrap();
        let out = db
            .count(Expr::relation("w").select(Predicate::col_cmp(0, CmpOp::Lt, 500)))
            .within(Duration::from_millis(500))
            .run()
            .unwrap();
        // On a modern machine the census completes almost instantly.
        assert!(out.report.total_elapsed <= Duration::from_millis(500));
        assert!((out.estimate.estimate - 500.0).abs() < 1e-6);
    }

    #[test]
    fn faulty_database_still_answers_and_reports_health() {
        let mut db = populated(6);
        db.inject_faults(
            eram_storage::FaultPlan::new(99)
                .with_transient(0.10)
                .with_corruption(0.02),
        );
        let expr = Expr::relation("t").select(Predicate::col_cmp(1, CmpOp::Eq, 0));
        let out = db.count(expr).within(Duration::from_secs(6)).run().unwrap();
        assert!(out.estimate.estimate >= 0.0);
        let h = out.report.health;
        assert!(h.faults_seen > 0);
        assert_eq!(h.degraded, h.blocks_lost > 0);
        let stats = db.fault_stats().expect("plan is armed");
        assert!(stats.transient_errors + stats.corrupt_reads > 0);
        // Disarming returns the device to clean operation.
        db.clear_faults();
        assert!(db.fault_stats().is_none());
    }

    #[test]
    fn retry_policy_none_loses_blocks_faster() {
        let mut db = populated(7);
        db.inject_faults(eram_storage::FaultPlan::new(123).with_transient(0.15));
        let expr = Expr::relation("t").select(Predicate::col_cmp(1, CmpOp::Eq, 0));
        let out = db
            .count(expr)
            .within(Duration::from_secs(6))
            .retry(RetryPolicy::none())
            .run()
            .unwrap();
        // With no retries every transient fault costs a block.
        assert_eq!(out.report.health.retries, 0);
        assert_eq!(out.report.health.blocks_lost, out.report.health.faults_seen);
    }

    #[test]
    fn tracer_and_metrics_attach_through_the_builder() {
        let mut db = populated(8);
        let tracer = Tracer::recording(db.disk().clock().clone());
        let expr = Expr::relation("t").select(Predicate::col_cmp(1, CmpOp::Eq, 0));
        let out = db
            .count(expr)
            .within(Duration::from_secs(4))
            .tracer(tracer.clone())
            .metrics(true)
            .run()
            .unwrap();
        assert!(tracer.record_count() > 0);
        let metrics = out.report.metrics.expect("metrics were requested");
        assert_eq!(
            metrics.counter("core.stages"),
            out.report.stages.len() as u64
        );
        // The trace is valid JSONL (skipped under the offline serde
        // stub, which cannot serialize).
        if serde_json::to_string(&0u32).is_ok() {
            for line in tracer.to_jsonl().lines() {
                let _: serde_json::Value = serde_json::from_str(line).unwrap();
            }
        }
    }

    #[test]
    fn unknown_relation_surfaces_as_engine_error() {
        let mut db = populated(5);
        let res = db
            .count(Expr::relation("missing"))
            .within(Duration::from_secs(1))
            .run();
        assert!(res.is_err());
    }
}
