//! Aggregate functions beyond COUNT.
//!
//! The paper poses the general problem — "Evaluate f(E) within T time
//! units where f is an aggregate function" — and then "restricts f to
//! COUNT". SUM and AVG are the natural generalization (taken up in
//! the authors' follow-on work), and the point-space estimators
//! extend directly:
//!
//! * **SUM(col)**: attach to every point of the point space the value
//!   `z = col(output tuple)` if the point is a 1-point and `z = 0`
//!   otherwise; then `SUM = Σ z` over the space, and the SRS
//!   estimator is `N·z̄` with variance `N²·(1−m/N)·s²_z/m`. Like
//!   COUNT, SUM is additive, so the inclusion–exclusion rewrite
//!   applies with the same coefficients.
//! * **AVG(col)**: the mean over *qualifying* tuples. The sampled
//!   1-points are a simple random sample of the qualifying
//!   population, so the sample mean of their values estimates AVG
//!   with variance `s²_v/y` (y = qualifying sample size). AVG is not
//!   additive, so it is only supported when the inclusion–exclusion
//!   rewrite is trivial (no union/difference).
//!
//! Aggregate results reuse [`CountEstimate`] with
//! `total_points = ∞` (no upper clamp on the confidence interval);
//! the lower CI clamp at 0 assumes a non-negative summed column.
//!
//! **GROUP BY** partitions the qualifying tuples by an Int key
//! column. Every group sees the *same* SRS of the point space (the
//! sampled 1-points with group key `g` are an SRS of group `g`'s
//! qualifying tuples), so each group gets its own algebra instance
//! over shared `(N, m)` accounting — see [`GroupedAccumulator`].
//! Groups whose CI tightens early are *frozen*: they stop absorbing
//! tuples and keep their snapshot, so further stages only sharpen the
//! still-loose groups. Groups too small to freeze ride along to the
//! census, where their estimates collapse to exact values.

use std::collections::BTreeMap;
use std::fmt;

use eram_relalg::{Catalog, Expr, ExprError};
use eram_sampling::{AggregateEstimator, CountEstimate, RatioAvg, SrsCount, SrsSum};
use eram_storage::{ColumnType, Tuple, Value};

/// The aggregate function of a time-constrained query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AggregateFn {
    /// `COUNT(E)` — the paper's function.
    #[default]
    Count,
    /// `SUM(E.column)` over the output tuples.
    Sum {
        /// Output-schema column to sum (must be Int or Float).
        column: usize,
    },
    /// `AVG(E.column)` over the output tuples.
    Avg {
        /// Output-schema column to average (must be Int or Float).
        column: usize,
    },
    /// `COUNT(E) GROUP BY E.group`.
    CountBy {
        /// Output-schema column to group by (must be Int).
        group: usize,
    },
    /// `SUM(E.column) GROUP BY E.group`.
    SumBy {
        /// Output-schema column to sum (must be Int or Float).
        column: usize,
        /// Output-schema column to group by (must be Int).
        group: usize,
    },
    /// `AVG(E.column) GROUP BY E.group`.
    AvgBy {
        /// Output-schema column to average (must be Int or Float).
        column: usize,
        /// Output-schema column to group by (must be Int).
        group: usize,
    },
}

impl AggregateFn {
    /// The value column, if any.
    pub fn column(&self) -> Option<usize> {
        match self {
            AggregateFn::Count | AggregateFn::CountBy { .. } => None,
            AggregateFn::Sum { column }
            | AggregateFn::Avg { column }
            | AggregateFn::SumBy { column, .. }
            | AggregateFn::AvgBy { column, .. } => Some(*column),
        }
    }

    /// The grouping column, if any.
    pub fn group_by(&self) -> Option<usize> {
        match self {
            AggregateFn::Count | AggregateFn::Sum { .. } | AggregateFn::Avg { .. } => None,
            AggregateFn::CountBy { group }
            | AggregateFn::SumBy { group, .. }
            | AggregateFn::AvgBy { group, .. } => Some(*group),
        }
    }

    /// The ungrouped counterpart — the per-group estimator kind a
    /// grouped aggregate applies within each partition.
    pub fn scalar(&self) -> AggregateFn {
        match *self {
            AggregateFn::CountBy { .. } => AggregateFn::Count,
            AggregateFn::SumBy { column, .. } => AggregateFn::Sum { column },
            AggregateFn::AvgBy { column, .. } => AggregateFn::Avg { column },
            other => other,
        }
    }

    /// Parses the CLI/job-file aggregate grammar:
    /// `count`, `sum:C`, `avg:C`, `count:by:G`, `sum:C:by:G`,
    /// `avg:C:by:G` (column indices into the output schema).
    pub fn parse(text: &str) -> Result<AggregateFn, String> {
        fn index(part: &str, what: &str) -> Result<usize, String> {
            part.parse::<usize>()
                .map_err(|_| format!("invalid {what} column index {part:?}"))
        }
        let parts: Vec<&str> = text.split(':').collect();
        match parts.as_slice() {
            ["count"] => Ok(AggregateFn::Count),
            ["sum", c] => Ok(AggregateFn::Sum {
                column: index(c, "sum")?,
            }),
            ["avg", c] => Ok(AggregateFn::Avg {
                column: index(c, "avg")?,
            }),
            ["count", "by", g] => Ok(AggregateFn::CountBy {
                group: index(g, "group")?,
            }),
            ["sum", c, "by", g] => Ok(AggregateFn::SumBy {
                column: index(c, "sum")?,
                group: index(g, "group")?,
            }),
            ["avg", c, "by", g] => Ok(AggregateFn::AvgBy {
                column: index(c, "avg")?,
                group: index(g, "group")?,
            }),
            _ => Err(format!(
                "unknown aggregate {text:?} (expected count, sum:COL, avg:COL, \
                 count:by:G, sum:COL:by:G or avg:COL:by:G)"
            )),
        }
    }

    /// Validates the aggregate against the expression's output schema.
    pub fn validate(&self, expr: &Expr, catalog: &Catalog) -> Result<(), ExprError> {
        if self.column().is_none() && self.group_by().is_none() {
            return Ok(());
        }
        let schema = expr.output_schema(catalog)?;
        if let Some(column) = self.column() {
            if column >= schema.arity() {
                return Err(ExprError::ColumnOutOfRange {
                    column,
                    arity: schema.arity(),
                });
            }
            match schema.columns()[column].ty {
                ColumnType::Int | ColumnType::Float => {}
                other => {
                    return Err(ExprError::IncompatibleSchemas(format!(
                        "aggregate column #{column} must be numeric, found {other:?}"
                    )))
                }
            }
        }
        if let Some(group) = self.group_by() {
            if group >= schema.arity() {
                return Err(ExprError::ColumnOutOfRange {
                    column: group,
                    arity: schema.arity(),
                });
            }
            match schema.columns()[group].ty {
                ColumnType::Int => {}
                other => {
                    return Err(ExprError::IncompatibleSchemas(format!(
                        "group-by column #{group} must be Int, found {other:?}"
                    )))
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for AggregateFn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AggregateFn::Count => write!(f, "count"),
            AggregateFn::Sum { column } => write!(f, "sum:{column}"),
            AggregateFn::Avg { column } => write!(f, "avg:{column}"),
            AggregateFn::CountBy { group } => write!(f, "count:by:{group}"),
            AggregateFn::SumBy { column, group } => write!(f, "sum:{column}:by:{group}"),
            AggregateFn::AvgBy { column, group } => write!(f, "avg:{column}:by:{group}"),
        }
    }
}

/// Numeric view of a value for aggregation.
fn numeric(v: &Value) -> f64 {
    match v {
        Value::Int(x) => *x as f64,
        Value::Float(x) => *x,
        // validate() rejects non-numeric columns; treat defensively.
        Value::Bool(b) => f64::from(u8::from(*b)),
        Value::Str(_) => 0.0,
    }
}

/// Running value statistics of one term's output tuples.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TermValues {
    /// Σ of the value column over output tuples.
    pub sum: f64,
    /// Σ of squares.
    pub sum_sq: f64,
}

impl TermValues {
    /// Absorbs a stage's new output tuples.
    pub fn absorb(&mut self, tuples: &[Tuple], column: usize) {
        for t in tuples {
            let v = numeric(t.value(column));
            self.sum += v;
            self.sum_sq += v * v;
        }
    }
}

/// SUM estimator for one term: `N·(Σz/m)` with the SRS variance of
/// the per-point contribution `z` (0 off the output, the value on
/// it). An [`SrsSum`] instance of the estimator algebra.
pub fn sum_estimate(total_points: f64, points_covered: f64, values: &TermValues) -> CountEstimate {
    SrsSum {
        total_points,
        points_sampled: points_covered,
        sum: values.sum,
        sum_sq: values.sum_sq,
    }
    .snapshot()
}

/// AVG estimator for one term: the sample mean of the qualifying
/// tuples' values, with the SRS mean variance `s²_v/y` (finite-
/// population-corrected against the estimated qualifying total). A
/// [`RatioAvg`] instance of the estimator algebra.
pub fn avg_estimate(
    ones_found: f64,
    points_covered: f64,
    total_points: f64,
    values: &TermValues,
) -> CountEstimate {
    RatioAvg {
        ones: ones_found,
        points_sampled: points_covered,
        total_points,
        sum: values.sum,
        sum_sq: values.sum_sq,
    }
    .snapshot()
}

/// Per-group sampling state inside a [`GroupedAccumulator`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct GroupState {
    /// Qualifying tuples of this group absorbed so far (its `y`).
    pub ones: f64,
    /// Σ of the value column over this group's tuples.
    pub sum: f64,
    /// Σ of squares.
    pub sum_sq: f64,
    /// Tuples absorbed (integer counterpart of `ones`, reported).
    pub tuples_seen: u64,
    /// Stage at which this group's CI converged, if it has.
    pub converged_at: Option<usize>,
    /// The estimate snapshot taken when the group froze.
    pub frozen: Option<CountEstimate>,
}

impl GroupState {
    /// Whether the group has stopped drawing.
    pub fn is_frozen(&self) -> bool {
        self.frozen.is_some()
    }

    /// The group's current estimate under the per-group estimator
    /// kind `agg.scalar()`: the frozen snapshot if the group stopped,
    /// otherwise a live algebra instance over the shared sample
    /// accounting `(N, m)` of the term.
    pub fn estimate(
        &self,
        agg: AggregateFn,
        total_points: f64,
        points_covered: f64,
    ) -> CountEstimate {
        if let Some(frozen) = self.frozen {
            return frozen;
        }
        match agg.scalar() {
            AggregateFn::Count => SrsCount {
                total_points,
                points_sampled: points_covered,
                ones: self.ones,
            }
            .snapshot(),
            AggregateFn::Sum { .. } => SrsSum {
                total_points,
                points_sampled: points_covered,
                sum: self.sum,
                sum_sq: self.sum_sq,
            }
            .snapshot(),
            AggregateFn::Avg { .. } => RatioAvg {
                ones: self.ones,
                points_sampled: points_covered,
                total_points,
                sum: self.sum,
                sum_sq: self.sum_sq,
            }
            .snapshot(),
            grouped => unreachable!("scalar() returned grouped aggregate {grouped}"),
        }
    }
}

/// One group's estimate, exported to reports and traces.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroupSnapshot {
    /// The group key.
    pub key: i64,
    /// The group's aggregate estimate (frozen or live).
    pub estimate: CountEstimate,
    /// Qualifying tuples of this group absorbed so far.
    pub tuples_seen: u64,
    /// Stage at which the group converged and froze, if it did.
    pub converged_at: Option<usize>,
    /// Whether the group has stopped drawing.
    pub frozen: bool,
}

/// GROUP BY accumulator with per-group stopping.
///
/// Absorbs a term's output tuples partitioned by the group key (a
/// `BTreeMap` keeps group order — and therefore reports and traces —
/// deterministic). After each within-quota stage the executor calls
/// [`check_convergence`](Self::check_convergence); groups whose
/// relative CI half-width is already below target freeze: they keep
/// their snapshot and [`absorb`](Self::absorb) skips them, so the
/// remaining quota refines only the still-loose groups. Groups with
/// fewer than `min_tuples` observations never freeze early — they
/// fall through to the census, where the estimate is exact (the
/// algebra's variance formulas collapse to 0 at `m = N`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GroupedAccumulator {
    groups: BTreeMap<i64, GroupState>,
}

/// Integer group key of a tuple value (validate() restricts the
/// group column to Int; other types are handled defensively).
fn group_key(v: &Value) -> i64 {
    match v {
        Value::Int(x) => *x,
        Value::Bool(b) => i64::from(*b),
        Value::Float(x) => *x as i64,
        Value::Str(_) => 0,
    }
}

impl GroupedAccumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        GroupedAccumulator::default()
    }

    /// Number of groups discovered so far.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// Whether no qualifying tuple has been absorbed yet.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Absorbs a stage's new output tuples: each tuple lands in its
    /// group unless that group is frozen (frozen groups have stopped
    /// drawing). `value` is the aggregated column for SUM/AVG, `None`
    /// for COUNT.
    pub fn absorb(&mut self, tuples: &[Tuple], group: usize, value: Option<usize>) {
        for t in tuples {
            let state = self.groups.entry(group_key(t.value(group))).or_default();
            if state.is_frozen() {
                continue;
            }
            state.ones += 1.0;
            state.tuples_seen += 1;
            if let Some(column) = value {
                let v = numeric(t.value(column));
                state.sum += v;
                state.sum_sq += v * v;
            }
        }
    }

    /// Freezes every unfrozen group whose relative CI half-width at
    /// `confidence` is at most `target` and which has absorbed at
    /// least `min_tuples` tuples (the small-group guard: thin groups
    /// are left unfrozen so they fall back to exact evaluation at the
    /// census). Returns `true` when at least one group exists and all
    /// groups are frozen — the grouped precision stop.
    #[allow(clippy::too_many_arguments)]
    pub fn check_convergence(
        &mut self,
        stage: usize,
        agg: AggregateFn,
        total_points: f64,
        points_covered: f64,
        target: f64,
        confidence: f64,
        min_tuples: u64,
    ) -> bool {
        let mut all = !self.groups.is_empty();
        for state in self.groups.values_mut() {
            if state.is_frozen() {
                continue;
            }
            if state.tuples_seen < min_tuples {
                all = false;
                continue;
            }
            let estimate = state.estimate(agg, total_points, points_covered);
            // Shared with the scalar ErrorBound path: a zero running
            // estimate (or a non-finite half-width from a degenerate
            // stratum) must never freeze as "converged at 0", even
            // under an unbounded target.
            if crate::stopping::error_bound_satisfied(&estimate, target, confidence) {
                state.converged_at = Some(stage);
                state.frozen = Some(estimate);
            } else {
                all = false;
            }
        }
        all
    }

    /// Current per-group snapshots, in group-key order.
    pub fn snapshots(
        &self,
        agg: AggregateFn,
        total_points: f64,
        points_covered: f64,
    ) -> Vec<GroupSnapshot> {
        self.groups
            .iter()
            .map(|(&key, state)| GroupSnapshot {
                key,
                estimate: state.estimate(agg, total_points, points_covered),
                tuples_seen: state.tuples_seen,
                converged_at: state.converged_at,
                frozen: state.is_frozen(),
            })
            .collect()
    }

    /// Read access to a group's state (tests and diagnostics).
    pub fn group(&self, key: i64) -> Option<&GroupState> {
        self.groups.get(&key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eram_relalg::Catalog;
    use eram_storage::Schema;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.register_schema(
            "r",
            Schema::new(vec![
                ("k", ColumnType::Int),
                ("v", ColumnType::Float),
                ("s", ColumnType::Str { width: 4 }),
            ]),
        );
        c
    }

    #[test]
    fn validation_checks_column_and_type() {
        let c = catalog();
        let e = Expr::relation("r");
        assert!(AggregateFn::Count.validate(&e, &c).is_ok());
        assert!(AggregateFn::Sum { column: 0 }.validate(&e, &c).is_ok());
        assert!(AggregateFn::Avg { column: 1 }.validate(&e, &c).is_ok());
        assert!(matches!(
            AggregateFn::Sum { column: 2 }.validate(&e, &c),
            Err(ExprError::IncompatibleSchemas(_))
        ));
        assert!(matches!(
            AggregateFn::Avg { column: 9 }.validate(&e, &c),
            Err(ExprError::ColumnOutOfRange { .. })
        ));
    }

    #[test]
    fn validation_checks_group_column() {
        let c = catalog();
        let e = Expr::relation("r");
        assert!(AggregateFn::CountBy { group: 0 }.validate(&e, &c).is_ok());
        assert!(AggregateFn::SumBy {
            column: 1,
            group: 0
        }
        .validate(&e, &c)
        .is_ok());
        // Group keys must be Int: a Float or Str group column is
        // rejected even though the value column is fine.
        assert!(matches!(
            AggregateFn::CountBy { group: 1 }.validate(&e, &c),
            Err(ExprError::IncompatibleSchemas(_))
        ));
        assert!(matches!(
            AggregateFn::AvgBy {
                column: 1,
                group: 2
            }
            .validate(&e, &c),
            Err(ExprError::IncompatibleSchemas(_))
        ));
        assert!(matches!(
            AggregateFn::SumBy {
                column: 1,
                group: 9
            }
            .validate(&e, &c),
            Err(ExprError::ColumnOutOfRange { .. })
        ));
    }

    #[test]
    fn parse_and_display_round_trip() {
        for text in [
            "count",
            "sum:1",
            "avg:2",
            "count:by:0",
            "sum:1:by:0",
            "avg:2:by:3",
        ] {
            let agg = AggregateFn::parse(text).expect(text);
            assert_eq!(agg.to_string(), text);
        }
        assert_eq!(
            AggregateFn::parse("sum:1:by:0"),
            Ok(AggregateFn::SumBy {
                column: 1,
                group: 0
            })
        );
        assert!(AggregateFn::parse("median:1").is_err());
        assert!(AggregateFn::parse("sum:x").is_err());
        assert!(AggregateFn::parse("sum:1:by:").is_err());
        assert!(AggregateFn::parse("count:by").is_err());
    }

    #[test]
    fn scalar_strips_grouping() {
        assert_eq!(
            AggregateFn::CountBy { group: 2 }.scalar(),
            AggregateFn::Count
        );
        assert_eq!(
            AggregateFn::SumBy {
                column: 1,
                group: 2
            }
            .scalar(),
            AggregateFn::Sum { column: 1 }
        );
        assert_eq!(
            AggregateFn::AvgBy {
                column: 1,
                group: 2
            }
            .scalar(),
            AggregateFn::Avg { column: 1 }
        );
        assert_eq!(AggregateFn::Count.scalar(), AggregateFn::Count);
        assert_eq!(AggregateFn::CountBy { group: 2 }.group_by(), Some(2));
        assert_eq!(AggregateFn::Sum { column: 1 }.group_by(), None);
    }

    fn grouped_tuples() -> Vec<Tuple> {
        // Group 1: values 2.0, 4.0; group 7: value 10.0.
        vec![
            Tuple::new(vec![Value::Int(1), Value::Float(2.0)]),
            Tuple::new(vec![Value::Int(7), Value::Float(10.0)]),
            Tuple::new(vec![Value::Int(1), Value::Float(4.0)]),
        ]
    }

    #[test]
    fn grouped_accumulator_partitions_by_key() {
        let mut acc = GroupedAccumulator::new();
        acc.absorb(&grouped_tuples(), 0, Some(1));
        assert_eq!(acc.len(), 2);
        let g1 = acc.group(1).unwrap();
        assert_eq!(g1.tuples_seen, 2);
        assert_eq!(g1.sum, 6.0);
        assert_eq!(g1.sum_sq, 4.0 + 16.0);
        let g7 = acc.group(7).unwrap();
        assert_eq!(g7.tuples_seen, 1);
        assert_eq!(g7.sum, 10.0);
        // COUNT-only absorption tracks ones without values.
        let mut counts = GroupedAccumulator::new();
        counts.absorb(&grouped_tuples(), 0, None);
        assert_eq!(counts.group(1).unwrap().ones, 2.0);
        assert_eq!(counts.group(1).unwrap().sum, 0.0);
    }

    #[test]
    fn group_estimates_match_scalar_algebra() {
        let mut acc = GroupedAccumulator::new();
        acc.absorb(&grouped_tuples(), 0, Some(1));
        let n = 100.0;
        let m = 10.0;
        let g1 = acc.group(1).unwrap();
        // Group COUNT is the SRS count of the group's ones.
        let count = g1.estimate(AggregateFn::CountBy { group: 0 }, n, m);
        assert!((count.estimate - n * (2.0 / m)).abs() < 1e-9);
        // Group SUM matches the ungrouped sum_estimate over the
        // group's value statistics.
        let sum = g1.estimate(
            AggregateFn::SumBy {
                column: 1,
                group: 0,
            },
            n,
            m,
        );
        let direct = sum_estimate(
            n,
            m,
            &TermValues {
                sum: g1.sum,
                sum_sq: g1.sum_sq,
            },
        );
        assert_eq!(sum, direct);
        // Group AVG is the sample mean of the group's qualifiers.
        let avg = g1.estimate(
            AggregateFn::AvgBy {
                column: 1,
                group: 0,
            },
            n,
            m,
        );
        assert!((avg.estimate - 3.0).abs() < 1e-9);
    }

    #[test]
    fn converged_groups_freeze_and_stop_absorbing() {
        let mut acc = GroupedAccumulator::new();
        acc.absorb(&grouped_tuples(), 0, Some(1));
        let agg = AggregateFn::SumBy {
            column: 1,
            group: 0,
        };
        // A census-grade sample: every group's CI is exact, so all
        // groups with enough tuples freeze.
        let all = acc.check_convergence(3, agg, 3.0, 3.0, 0.1, 0.95, 1);
        assert!(all, "census-tight CIs must converge every group");
        let g1 = acc.group(1).unwrap();
        assert!(g1.is_frozen());
        assert_eq!(g1.converged_at, Some(3));
        let frozen = g1.estimate(agg, 3.0, 3.0);
        // Frozen groups ignore later tuples and keep their snapshot.
        acc.absorb(&grouped_tuples(), 0, Some(1));
        assert_eq!(acc.group(1).unwrap().tuples_seen, 2);
        assert_eq!(acc.group(1).unwrap().estimate(agg, 6.0, 6.0), frozen);
    }

    #[test]
    fn small_groups_never_freeze_early() {
        let mut acc = GroupedAccumulator::new();
        acc.absorb(&grouped_tuples(), 0, Some(1));
        // min_tuples = 5 exceeds every group's sample: nothing
        // freezes even with an infinitely lax target.
        let all = acc.check_convergence(
            1,
            AggregateFn::CountBy { group: 0 },
            3.0,
            3.0,
            f64::INFINITY,
            0.95,
            5,
        );
        assert!(!all);
        assert!(!acc.group(1).unwrap().is_frozen());
        assert!(!acc.group(7).unwrap().is_frozen());
    }

    #[test]
    fn convergence_requires_at_least_one_group() {
        let mut acc = GroupedAccumulator::new();
        assert!(!acc.check_convergence(
            0,
            AggregateFn::CountBy { group: 0 },
            10.0,
            10.0,
            1.0,
            0.95,
            0
        ));
        assert!(acc.is_empty());
    }

    #[test]
    fn snapshots_are_in_key_order() {
        let mut acc = GroupedAccumulator::new();
        acc.absorb(&grouped_tuples(), 0, Some(1));
        let snaps = acc.snapshots(
            AggregateFn::SumBy {
                column: 1,
                group: 0,
            },
            100.0,
            10.0,
        );
        assert_eq!(snaps.len(), 2);
        assert_eq!(snaps[0].key, 1);
        assert_eq!(snaps[1].key, 7);
        assert!(!snaps[0].frozen);
        assert_eq!(snaps[0].tuples_seen, 2);
    }

    #[test]
    fn term_values_accumulate() {
        let mut tv = TermValues::default();
        tv.absorb(
            &[
                Tuple::new(vec![Value::Int(3), Value::Float(1.5)]),
                Tuple::new(vec![Value::Int(4), Value::Float(2.5)]),
            ],
            1,
        );
        assert_eq!(tv.sum, 4.0);
        assert_eq!(tv.sum_sq, 1.5 * 1.5 + 2.5 * 2.5);
    }

    #[test]
    fn sum_estimator_scales_sample_mean() {
        // 100 points, sampled 10, Σz over the sample = 30 → SUM ≈ 300.
        let tv = TermValues {
            sum: 30.0,
            sum_sq: 200.0,
        };
        let e = sum_estimate(100.0, 10.0, &tv);
        assert!((e.estimate - 300.0).abs() < 1e-9);
        assert!(e.variance > 0.0);
        assert_eq!(e.total_points, f64::INFINITY);
    }

    #[test]
    fn sum_census_has_zero_variance() {
        let tv = TermValues {
            sum: 10.0,
            sum_sq: 40.0,
        };
        let e = sum_estimate(10.0, 10.0, &tv);
        assert_eq!(e.estimate, 10.0);
        assert_eq!(e.variance, 0.0);
    }

    #[test]
    fn avg_estimator_is_sample_mean_of_qualifiers() {
        // 5 qualifying tuples out of 50 sampled points, Σv = 25.
        let tv = TermValues {
            sum: 25.0,
            sum_sq: 135.0,
        };
        let e = avg_estimate(5.0, 50.0, 1_000.0, &tv);
        assert!((e.estimate - 5.0).abs() < 1e-9);
        assert!(e.variance > 0.0);
    }

    #[test]
    fn degenerate_inputs() {
        let tv = TermValues::default();
        assert_eq!(sum_estimate(100.0, 0.0, &tv).estimate, 0.0);
        assert_eq!(avg_estimate(0.0, 10.0, 100.0, &tv).estimate, 0.0);
    }

    #[test]
    fn confidence_interval_is_unclamped_above() {
        let tv = TermValues {
            sum: 500.0,
            sum_sq: 300_000.0,
        };
        let e = sum_estimate(1_000.0, 10.0, &tv);
        let (lo, hi) = e.ci(0.95);
        assert!(hi > e.estimate, "upper bound must not clamp at N");
        assert!(lo >= 0.0);
    }
}
