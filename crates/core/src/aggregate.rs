//! Aggregate functions beyond COUNT.
//!
//! The paper poses the general problem — "Evaluate f(E) within T time
//! units where f is an aggregate function" — and then "restricts f to
//! COUNT". SUM and AVG are the natural generalization (taken up in
//! the authors' follow-on work), and the point-space estimators
//! extend directly:
//!
//! * **SUM(col)**: attach to every point of the point space the value
//!   `z = col(output tuple)` if the point is a 1-point and `z = 0`
//!   otherwise; then `SUM = Σ z` over the space, and the SRS
//!   estimator is `N·z̄` with variance `N²·(1−m/N)·s²_z/m`. Like
//!   COUNT, SUM is additive, so the inclusion–exclusion rewrite
//!   applies with the same coefficients.
//! * **AVG(col)**: the mean over *qualifying* tuples. The sampled
//!   1-points are a simple random sample of the qualifying
//!   population, so the sample mean of their values estimates AVG
//!   with variance `s²_v/y` (y = qualifying sample size). AVG is not
//!   additive, so it is only supported when the inclusion–exclusion
//!   rewrite is trivial (no union/difference).
//!
//! Aggregate results reuse [`CountEstimate`] with
//! `total_points = ∞` (no upper clamp on the confidence interval);
//! the lower CI clamp at 0 assumes a non-negative summed column.

use eram_relalg::{Catalog, Expr, ExprError};
use eram_sampling::CountEstimate;
use eram_storage::{ColumnType, Tuple, Value};

/// The aggregate function of a time-constrained query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AggregateFn {
    /// `COUNT(E)` — the paper's function.
    #[default]
    Count,
    /// `SUM(E.column)` over the output tuples.
    Sum {
        /// Output-schema column to sum (must be Int or Float).
        column: usize,
    },
    /// `AVG(E.column)` over the output tuples.
    Avg {
        /// Output-schema column to average (must be Int or Float).
        column: usize,
    },
}

impl AggregateFn {
    /// The value column, if any.
    pub fn column(&self) -> Option<usize> {
        match self {
            AggregateFn::Count => None,
            AggregateFn::Sum { column } | AggregateFn::Avg { column } => Some(*column),
        }
    }

    /// Validates the aggregate against the expression's output schema.
    pub fn validate(&self, expr: &Expr, catalog: &Catalog) -> Result<(), ExprError> {
        let Some(column) = self.column() else {
            return Ok(());
        };
        let schema = expr.output_schema(catalog)?;
        if column >= schema.arity() {
            return Err(ExprError::ColumnOutOfRange {
                column,
                arity: schema.arity(),
            });
        }
        match schema.columns()[column].ty {
            ColumnType::Int | ColumnType::Float => Ok(()),
            other => Err(ExprError::IncompatibleSchemas(format!(
                "aggregate column #{column} must be numeric, found {other:?}"
            ))),
        }
    }
}

/// Numeric view of a value for aggregation.
fn numeric(v: &Value) -> f64 {
    match v {
        Value::Int(x) => *x as f64,
        Value::Float(x) => *x,
        // validate() rejects non-numeric columns; treat defensively.
        Value::Bool(b) => f64::from(u8::from(*b)),
        Value::Str(_) => 0.0,
    }
}

/// Running value statistics of one term's output tuples.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TermValues {
    /// Σ of the value column over output tuples.
    pub sum: f64,
    /// Σ of squares.
    pub sum_sq: f64,
}

impl TermValues {
    /// Absorbs a stage's new output tuples.
    pub fn absorb(&mut self, tuples: &[Tuple], column: usize) {
        for t in tuples {
            let v = numeric(t.value(column));
            self.sum += v;
            self.sum_sq += v * v;
        }
    }
}

/// SUM estimator for one term: `N·(Σz/m)` with the SRS variance of
/// the per-point contribution `z` (0 off the output, the value on
/// it).
pub fn sum_estimate(total_points: f64, points_covered: f64, values: &TermValues) -> CountEstimate {
    let m = points_covered;
    if m <= 0.0 {
        return CountEstimate {
            estimate: 0.0,
            variance: 0.0,
            points_sampled: 0.0,
            total_points: f64::INFINITY,
        };
    }
    let mean = values.sum / m;
    let estimate = total_points * mean;
    let variance = if m > 1.0 && total_points > m {
        let s2 = ((values.sum_sq - values.sum * values.sum / m) / (m - 1.0)).max(0.0);
        total_points * total_points * (1.0 - m / total_points) * s2 / m
    } else {
        0.0
    };
    CountEstimate {
        estimate,
        variance,
        points_sampled: m,
        total_points: f64::INFINITY,
    }
}

/// AVG estimator for one term: the sample mean of the qualifying
/// tuples' values, with the SRS mean variance `s²_v/y` (finite-
/// population-corrected against the estimated qualifying total).
pub fn avg_estimate(
    ones_found: f64,
    points_covered: f64,
    total_points: f64,
    values: &TermValues,
) -> CountEstimate {
    let y = ones_found;
    if y <= 0.0 {
        return CountEstimate {
            estimate: 0.0,
            variance: 0.0,
            points_sampled: points_covered,
            total_points: f64::INFINITY,
        };
    }
    let mean = values.sum / y;
    let variance = if y > 1.0 {
        let s2 = ((values.sum_sq - values.sum * values.sum / y) / (y - 1.0)).max(0.0);
        // Estimated qualifying population: N·(y/m).
        let est_qualifying = if points_covered > 0.0 {
            total_points * y / points_covered
        } else {
            y
        };
        let fpc = (1.0 - y / est_qualifying.max(y)).max(0.0);
        fpc * s2 / y
    } else {
        0.0
    };
    CountEstimate {
        estimate: mean,
        variance,
        points_sampled: points_covered,
        total_points: f64::INFINITY,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eram_relalg::Catalog;
    use eram_storage::Schema;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.register_schema(
            "r",
            Schema::new(vec![
                ("k", ColumnType::Int),
                ("v", ColumnType::Float),
                ("s", ColumnType::Str { width: 4 }),
            ]),
        );
        c
    }

    #[test]
    fn validation_checks_column_and_type() {
        let c = catalog();
        let e = Expr::relation("r");
        assert!(AggregateFn::Count.validate(&e, &c).is_ok());
        assert!(AggregateFn::Sum { column: 0 }.validate(&e, &c).is_ok());
        assert!(AggregateFn::Avg { column: 1 }.validate(&e, &c).is_ok());
        assert!(matches!(
            AggregateFn::Sum { column: 2 }.validate(&e, &c),
            Err(ExprError::IncompatibleSchemas(_))
        ));
        assert!(matches!(
            AggregateFn::Avg { column: 9 }.validate(&e, &c),
            Err(ExprError::ColumnOutOfRange { .. })
        ));
    }

    #[test]
    fn term_values_accumulate() {
        let mut tv = TermValues::default();
        tv.absorb(
            &[
                Tuple::new(vec![Value::Int(3), Value::Float(1.5)]),
                Tuple::new(vec![Value::Int(4), Value::Float(2.5)]),
            ],
            1,
        );
        assert_eq!(tv.sum, 4.0);
        assert_eq!(tv.sum_sq, 1.5 * 1.5 + 2.5 * 2.5);
    }

    #[test]
    fn sum_estimator_scales_sample_mean() {
        // 100 points, sampled 10, Σz over the sample = 30 → SUM ≈ 300.
        let tv = TermValues {
            sum: 30.0,
            sum_sq: 200.0,
        };
        let e = sum_estimate(100.0, 10.0, &tv);
        assert!((e.estimate - 300.0).abs() < 1e-9);
        assert!(e.variance > 0.0);
        assert_eq!(e.total_points, f64::INFINITY);
    }

    #[test]
    fn sum_census_has_zero_variance() {
        let tv = TermValues {
            sum: 10.0,
            sum_sq: 40.0,
        };
        let e = sum_estimate(10.0, 10.0, &tv);
        assert_eq!(e.estimate, 10.0);
        assert_eq!(e.variance, 0.0);
    }

    #[test]
    fn avg_estimator_is_sample_mean_of_qualifiers() {
        // 5 qualifying tuples out of 50 sampled points, Σv = 25.
        let tv = TermValues {
            sum: 25.0,
            sum_sq: 135.0,
        };
        let e = avg_estimate(5.0, 50.0, 1_000.0, &tv);
        assert!((e.estimate - 5.0).abs() < 1e-9);
        assert!(e.variance > 0.0);
    }

    #[test]
    fn degenerate_inputs() {
        let tv = TermValues::default();
        assert_eq!(sum_estimate(100.0, 0.0, &tv).estimate, 0.0);
        assert_eq!(avg_estimate(0.0, 10.0, 100.0, &tv).estimate, 0.0);
    }

    #[test]
    fn confidence_interval_is_unclamped_above() {
        let tv = TermValues {
            sum: 500.0,
            sum_sq: 300_000.0,
        };
        let e = sum_estimate(1_000.0, 10.0, &tv);
        let (lo, hi) = e.ci(0.95);
        assert!(hi > e.estimate, "upper bound must not clamp at N");
        assert!(lo >= 0.0);
    }
}
