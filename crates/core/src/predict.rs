//! Stage cost prediction — `QCOST(fᵢ, SEL)` (Section 4).
//!
//! "The cost of the query, QCOST, is the sum of the costs of all the
//! operators", each operator cost a function of the sample fraction
//! and the selectivities of the operators below it ("n, the number of
//! input tuples to the operator, can always be expressed as a
//! function of the sample fraction and selectivities of the preceding
//! operators").
//!
//! The prediction walk mirrors [`crate::ops`] step for step — leaf
//! block reads; select scan + output pages (eq. 4.1); binary-operator
//! temp writes (eq. 4.2), sorts (eq. 4.3), and the full-fulfillment
//! merge grid (eq. 4.4, including the cross-stage run pairs that make
//! join/intersect stage cost grow with the stage number); projection
//! sort + dedup merge (Figure 4.7) — using the adaptive coefficients
//! of [`CostModel`]. Which selectivity each operator contributes is
//! delegated to a [`SelPolicy`], so the same walk serves the
//! One-at-a-Time-Interval strategy (inflated `sel⁺`), the
//! Single-Interval strategy (means, then per-operator perturbations
//! for the variance), and the heuristic.

use crate::costs::{CostCoeff, CostModel};
use crate::ops::{BinaryNode, Fulfillment, MemoryMode, Node, PhysTree};
use crate::seltrack::SelTracker;

/// How the prediction walk turns a tracker into a selectivity.
pub enum SelPolicy<'a> {
    /// `sel⁺ = μ̂ + d_β·√V̂ar` (equation 3.3) — One-at-a-Time.
    Inflated {
        /// The paper's `d_β` inflation multiplier.
        d_beta: f64,
    },
    /// The revised mean selectivity `selᵢ₋₁` with no inflation.
    Mean,
    /// Custom per-operator selectivity: called with the operator's
    /// pre-order index, its tracker, and the candidate stage's point
    /// count. Used for Single-Interval perturbations.
    PerOp(&'a dyn Fn(usize, &SelTracker, f64) -> f64),
}

impl SelPolicy<'_> {
    fn selectivity(&self, op_index: usize, tracker: &SelTracker, stage_points: f64) -> f64 {
        match self {
            SelPolicy::Inflated { d_beta } => tracker.inflated_selectivity(*d_beta, stage_points),
            SelPolicy::Mean => tracker.revised_selectivity(),
            SelPolicy::PerOp(f) => f(op_index, tracker, stage_points),
        }
    }
}

/// Predicted outcome of one stage at a candidate fraction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StagePrediction {
    /// Predicted stage cost in seconds (including stage overhead).
    pub cost_secs: f64,
    /// Predicted new output tuples at the root(s).
    pub out_tuples: f64,
    /// Predicted new disk blocks drawn from base relations.
    pub blocks_drawn: f64,
}

struct Walk<'a> {
    model: &'a CostModel,
    policy: &'a SelPolicy<'a>,
    op_index: usize,
    blocks: f64,
    fulfillment_override: Option<Fulfillment>,
}

/// Predicted (new output tuples, cost seconds) for a subtree.
struct NodePrediction {
    out_tuples: f64,
    cost: f64,
}

/// Predicts one stage over a forest of compiled terms at fraction
/// `f`. Operator indices are assigned pre-order across the whole
/// forest, matching [`count_operators`].
pub fn predict_stage(
    trees: &[PhysTree],
    f: f64,
    model: &CostModel,
    policy: &SelPolicy<'_>,
) -> StagePrediction {
    predict_stage_with(trees, f, model, policy, None)
}

/// [`predict_stage`] with a per-stage fulfillment override (mirrors
/// [`crate::ops::StageEnv::fulfillment_override`]).
pub fn predict_stage_with(
    trees: &[PhysTree],
    f: f64,
    model: &CostModel,
    policy: &SelPolicy<'_>,
    fulfillment_override: Option<Fulfillment>,
) -> StagePrediction {
    let mut walk = Walk {
        model,
        policy,
        op_index: 0,
        blocks: 0.0,
        fulfillment_override,
    };
    let mut cost = model.predict(CostCoeff::StageOverhead, 1.0);
    let mut out = 0.0;
    for tree in trees {
        let p = walk.node(tree.root_ref(), f);
        cost += p.cost;
        out += p.out_tuples;
    }
    StagePrediction {
        cost_secs: cost,
        out_tuples: out,
        blocks_drawn: walk.blocks,
    }
}

/// Number of operator nodes across the forest (= number of
/// selectivity slots a [`SelPolicy::PerOp`] closure will be asked
/// about).
pub fn count_operators(trees: &[PhysTree]) -> usize {
    let mut n = 0;
    for t in trees {
        t.for_each_tracker(&mut |_| n += 1);
    }
    n
}

impl PhysTree {
    /// Internal accessor for the prediction walk.
    pub(crate) fn root_ref(&self) -> &Node {
        &self.root
    }
}

impl Walk<'_> {
    fn node(&mut self, node: &Node, f: f64) -> NodePrediction {
        match node {
            Node::Leaf(leaf) => {
                let total = leaf.sampler.population() as f64;
                let d = (f * total)
                    .round()
                    .max(1.0)
                    .min(leaf.sampler.remaining() as f64);
                let n = d * leaf.file.blocking_factor() as f64;
                self.blocks += d;
                NodePrediction {
                    out_tuples: n,
                    cost: self.model.predict(CostCoeff::BlockRead, d),
                }
            }
            Node::Select(s) => {
                let my_index = self.next_index();
                let child = self.node(&s.child, f);
                let n_in = child.out_tuples;
                let sel = self.policy.selectivity(my_index, &s.tracker, n_in);
                let out = sel * n_in;
                let write = match s.memory {
                    MemoryMode::DiskResident => self.model.predict(CostCoeff::WriteTuple, out),
                    MemoryMode::MainMemory => 0.0,
                };
                let cost = child.cost + self.model.predict(CostCoeff::ScanTuple, n_in) + write;
                NodePrediction {
                    out_tuples: out,
                    cost,
                }
            }
            Node::Project(p) => {
                let my_index = self.next_index();
                let child = self.node(&p.child, f);
                let n = child.out_tuples;
                let sel = self.policy.selectivity(my_index, &p.tracker, n);
                let new_groups = sel * n;
                let cum = p.occupancy.len() as f64;
                let write = match p.memory {
                    MemoryMode::DiskResident => {
                        self.model.predict(CostCoeff::WriteTuple, cum + new_groups)
                    }
                    MemoryMode::MainMemory => 0.0,
                };
                let cost = child.cost
                    + self.model.predict(CostCoeff::ScanTuple, n)
                    + self.model.predict(CostCoeff::SortUnit, nlogn(n))
                    + self.model.predict(CostCoeff::MergeTuple, n + cum)
                    + write;
                NodePrediction {
                    out_tuples: new_groups,
                    cost,
                }
            }
            Node::Binary(b) => {
                let my_index = self.next_index();
                let left = self.node(&b.left, f);
                let right = self.node(&b.right, f);
                let (n_l, n_r) = (left.out_tuples, right.out_tuples);

                let (pair_points, merge_units) =
                    binary_pairs(b, n_l, n_r, self.fulfillment_override);
                let sel = self.policy.selectivity(my_index, &b.tracker, pair_points);
                let out = sel * pair_points;
                let write = match b.memory {
                    MemoryMode::DiskResident => {
                        self.model.predict(CostCoeff::WriteTuple, n_l + n_r)
                            + self.model.predict(CostCoeff::WriteTuple, out)
                    }
                    MemoryMode::MainMemory => 0.0,
                };
                let cost = left.cost
                    + right.cost
                    + self
                        .model
                        .predict(CostCoeff::SortUnit, nlogn(n_l) + nlogn(n_r))
                    + self.model.predict(CostCoeff::MergeTuple, merge_units)
                    + write;
                NodePrediction {
                    out_tuples: out,
                    cost,
                }
            }
        }
    }

    fn next_index(&mut self) -> usize {
        let i = self.op_index;
        self.op_index += 1;
        i
    }
}

/// Candidate-stage pair geometry for a binary node: how many tuple
/// pairs the new samples add, and how many tuples the merge passes
/// will touch (eq. 4.4's bracket, derived from the actual run list).
fn binary_pairs(
    b: &BinaryNode,
    n_l: f64,
    n_r: f64,
    fulfillment_override: Option<Fulfillment>,
) -> (f64, f64) {
    let old_l: f64 = b.left_runs_tuples();
    let old_r: f64 = b.right_runs_tuples();
    match fulfillment_override.unwrap_or(b.fulfillment) {
        Fulfillment::Full => {
            let pair_points = n_l * (old_r + n_r) + old_l * n_r;
            // New-left merges against every right run (old + new);
            // every old left run merges against new-right.
            let merge_units = (b.right_run_count() as f64 + 1.0) * n_l
                + (old_r + n_r)
                + b.left_run_count() as f64 * n_r
                + old_l;
            (pair_points, merge_units)
        }
        Fulfillment::Partial => (n_l * n_r, n_l + n_r),
    }
}

fn nlogn(n: f64) -> f64 {
    if n < 2.0 {
        0.0
    } else {
        n * n.log2()
    }
}

/// Solves Figure 3.4's Sample-Size-Determine: bisection on `f` until
/// the predicted stage cost is within `eps_secs` of `target_secs`.
/// Returns `None` when even the minimum stage (one block per
/// relation) does not fit — the loop should stop and the leftover is
/// wasted.
pub fn solve_fraction(
    trees: &[PhysTree],
    model: &CostModel,
    policy: &SelPolicy<'_>,
    target_secs: f64,
    eps_secs: f64,
) -> Option<(f64, StagePrediction)> {
    solve_fraction_with(trees, model, policy, target_secs, eps_secs, None)
}

/// [`solve_fraction`] with a per-stage fulfillment override.
pub fn solve_fraction_with(
    trees: &[PhysTree],
    model: &CostModel,
    policy: &SelPolicy<'_>,
    target_secs: f64,
    eps_secs: f64,
    fulfillment_override: Option<Fulfillment>,
) -> Option<(f64, StagePrediction)> {
    debug_assert!(target_secs >= 0.0);
    // The smallest meaningful stage: the rounding in the leaf walk
    // draws one block per relation for any f ≈ 0.
    let floor = predict_stage_with(trees, 0.0, model, policy, fulfillment_override);
    if floor.cost_secs > target_secs {
        return None;
    }
    let ceiling = predict_stage_with(trees, 1.0, model, policy, fulfillment_override);
    if ceiling.cost_secs <= target_secs {
        return Some((1.0, ceiling));
    }

    let (mut low, mut high) = (0.0f64, 1.0f64);
    let mut best = (0.0, floor);
    for _ in 0..64 {
        let f = (low + high) / 2.0;
        let p = predict_stage_with(trees, f, model, policy, fulfillment_override);
        if p.cost_secs <= target_secs {
            best = (f, p);
            low = f;
        } else {
            high = f;
        }
        if (p.cost_secs - target_secs).abs() <= eps_secs && p.cost_secs <= target_secs {
            return Some((f, p));
        }
        // Overshooting candidate: keep narrowing from below.
        if high - low < 1e-9 {
            break;
        }
    }
    Some(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{Fulfillment, PhysTree};
    use crate::seltrack::SelectivityDefaults;
    use eram_relalg::{Catalog, CmpOp, Expr, Predicate};
    use eram_storage::{ColumnType, DeviceProfile, Disk, HeapFile, Schema, SimClock, Tuple, Value};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    fn setup(n: i64) -> (Arc<Disk>, Catalog) {
        let disk = Disk::new(
            Arc::new(SimClock::new()),
            DeviceProfile::sun_3_60().without_jitter(),
            3,
        );
        let mut cat = Catalog::new();
        let schema =
            Schema::new(vec![("a", ColumnType::Int), ("b", ColumnType::Int)]).padded_to(200);
        let hf = HeapFile::load(
            disk.clone(),
            schema,
            (0..n).map(|i| Tuple::new(vec![Value::Int(i), Value::Int(i % 10)])),
        )
        .unwrap();
        cat.register("r", hf);
        let schema2 =
            Schema::new(vec![("a", ColumnType::Int), ("b", ColumnType::Int)]).padded_to(200);
        let hf2 = HeapFile::load(
            disk.clone(),
            schema2,
            (0..n).map(|i| Tuple::new(vec![Value::Int(i * 2), Value::Int(i % 10)])),
        )
        .unwrap();
        cat.register("s", hf2);
        (disk, cat)
    }

    fn tree(expr: &Expr, disk: &Arc<Disk>, cat: &Catalog) -> PhysTree {
        PhysTree::build(
            expr,
            cat,
            disk,
            &SelectivityDefaults::default(),
            Fulfillment::Full,
            &mut StdRng::seed_from_u64(11),
        )
        .unwrap()
    }

    #[test]
    fn cost_is_monotone_in_fraction() {
        let (disk, cat) = setup(10_000);
        let expr = Expr::relation("r").select(Predicate::col_cmp(1, CmpOp::Lt, 5));
        let t = tree(&expr, &disk, &cat);
        let model = CostModel::generic_default();
        let policy = SelPolicy::Mean;
        let mut last = 0.0;
        for f in [0.001, 0.01, 0.05, 0.2, 0.5, 1.0] {
            let p = predict_stage(std::slice::from_ref(&t), f, &model, &policy);
            assert!(p.cost_secs >= last, "cost must not decrease with f (f={f})");
            last = p.cost_secs;
        }
    }

    #[test]
    fn inflated_policy_predicts_higher_cost_than_mean() {
        let (disk, cat) = setup(10_000);
        let expr = Expr::relation("r").join(Expr::relation("s"), vec![(0, 0)]);
        let mut t = tree(&expr, &disk, &cat);
        // Give the tracker some data so inflation has a variance.
        let mut env = crate::ops::StageEnv::new(disk.clone(), None, 0.01);
        t.advance(&mut env).unwrap();
        let model = CostModel::generic_default();
        let mean = predict_stage(std::slice::from_ref(&t), 0.05, &model, &SelPolicy::Mean);
        let inflated = predict_stage(
            std::slice::from_ref(&t),
            0.05,
            &model,
            &SelPolicy::Inflated { d_beta: 48.0 },
        );
        assert!(inflated.cost_secs > mean.cost_secs);
    }

    #[test]
    fn solve_fraction_meets_target() {
        let (disk, cat) = setup(10_000);
        let expr = Expr::relation("r").select(Predicate::col_cmp(1, CmpOp::Lt, 5));
        let t = tree(&expr, &disk, &cat);
        let model = CostModel::generic_default();
        let policy = SelPolicy::Inflated { d_beta: 0.0 };
        let trees = [t];
        let (f, p) = solve_fraction(&trees, &model, &policy, 10.0, 0.05).unwrap();
        assert!(f > 0.0 && f <= 1.0);
        assert!(p.cost_secs <= 10.0);
        assert!(
            p.cost_secs > 8.0,
            "should use most of the target: got {}",
            p.cost_secs
        );
    }

    #[test]
    fn solve_fraction_monotone_in_target() {
        let (disk, cat) = setup(10_000);
        let expr = Expr::relation("r").select(Predicate::True);
        let t = tree(&expr, &disk, &cat);
        let model = CostModel::generic_default();
        let policy = SelPolicy::Mean;
        let trees = [t];
        let mut last_f = 0.0;
        for target in [2.0, 5.0, 20.0, 100.0] {
            let (f, _) = solve_fraction(&trees, &model, &policy, target, 0.05).unwrap();
            assert!(f >= last_f, "fraction must grow with target");
            last_f = f;
        }
    }

    #[test]
    fn solve_fraction_refuses_impossible_target() {
        let (disk, cat) = setup(10_000);
        let expr = Expr::relation("r").select(Predicate::True);
        let t = tree(&expr, &disk, &cat);
        let model = CostModel::generic_default();
        let policy = SelPolicy::Mean;
        assert!(solve_fraction(&[t], &model, &policy, 1e-6, 1e-9).is_none());
    }

    #[test]
    fn census_affordable_returns_full_fraction() {
        let (disk, cat) = setup(100);
        let expr = Expr::relation("r");
        let t = tree(&expr, &disk, &cat);
        let model = CostModel::generic_default();
        let policy = SelPolicy::Mean;
        let (f, _) = solve_fraction(&[t], &model, &policy, 1e9, 0.05).unwrap();
        assert_eq!(f, 1.0);
    }

    #[test]
    fn operator_count_matches_structure() {
        let (disk, cat) = setup(100);
        let expr = Expr::relation("r")
            .select(Predicate::True)
            .join(Expr::relation("s"), vec![(0, 0)])
            .project(vec![0]);
        let t = tree(&expr, &disk, &cat);
        assert_eq!(count_operators(std::slice::from_ref(&t)), 3);
    }

    #[test]
    fn per_op_policy_receives_every_operator() {
        let (disk, cat) = setup(100);
        let expr = Expr::relation("r")
            .select(Predicate::True)
            .join(Expr::relation("s"), vec![(0, 0)]);
        let t = tree(&expr, &disk, &cat);
        let seen = std::cell::RefCell::new(Vec::new());
        let policy = SelPolicy::PerOp(&|i, tracker, _| {
            seen.borrow_mut().push((i, tracker.kind()));
            0.5
        });
        let model = CostModel::generic_default();
        let _ = predict_stage(std::slice::from_ref(&t), 0.1, &model, &policy);
        let seen = seen.into_inner();
        assert_eq!(seen.len(), 2);
        // Indices are assigned pre-order (join = 0, select = 1) but
        // the walk asks for selectivities bottom-up, so the select is
        // consulted first.
        let mut indices: Vec<usize> = seen.iter().map(|(i, _)| *i).collect();
        assert_eq!(indices, vec![1, 0]);
        indices.sort_unstable();
        assert_eq!(indices, vec![0, 1]);
    }

    /// With a jitter-free device, informed coefficients, and a
    /// deterministic selectivity (a predicate every tuple passes),
    /// the prediction walk must reproduce the actual charged stage
    /// cost almost exactly — the invariant that makes
    /// Sample-Size-Determine meaningful. (With a *sampled*
    /// selectivity the residual is the stage-to-stage sampling noise
    /// the d_β machinery exists to absorb.)
    #[test]
    fn prediction_matches_actual_charges_when_informed() {
        let (disk, cat) = setup(10_000);
        let expr = Expr::relation("r").select(Predicate::True);
        let mut t = tree(&expr, &disk, &cat);
        let mut model = CostModel::oracle(disk.profile(), 5.0);
        // Stage 1 informs the tracker and fine-tunes coefficients.
        let mut env = crate::ops::StageEnv::new(disk.clone(), None, 0.01);
        t.advance(&mut env).unwrap();
        for o in &env.observations {
            model.observe(o.coeff, o.units, o.elapsed);
        }
        // Predict stage 2 at a fixed fraction, then run it.
        let f = 0.02;
        let predicted = predict_stage(std::slice::from_ref(&t), f, &model, &SelPolicy::Mean)
            .cost_secs
            - model.predict(CostCoeff::StageOverhead, 1.0);
        let before = disk.clock().elapsed();
        let mut env = crate::ops::StageEnv::new(disk.clone(), None, f);
        t.advance(&mut env).unwrap();
        let actual = (disk.clock().elapsed() - before).as_secs_f64();
        let rel = (predicted - actual).abs() / actual;
        assert!(
            rel < 0.02,
            "prediction {predicted:.3}s vs actual {actual:.3}s (rel {rel:.3})"
        );
    }

    #[test]
    fn full_fulfillment_merge_units_grow_with_stages() {
        let (disk, cat) = setup(10_000);
        let expr = Expr::relation("r").intersect(Expr::relation("s"));
        let mut t = tree(&expr, &disk, &cat);
        let model = CostModel::generic_default();
        let c1 = predict_stage(std::slice::from_ref(&t), 0.01, &model, &SelPolicy::Mean).cost_secs;
        // Advance two stages; the run grid grows, so the same f costs
        // more at the next stage (eq. 4.4's stage dependence).
        for _ in 0..2 {
            let mut env = crate::ops::StageEnv::new(disk.clone(), None, 0.01);
            t.advance(&mut env).unwrap();
        }
        let model = CostModel::generic_default();
        let c3 = predict_stage(std::slice::from_ref(&t), 0.01, &model, &SelPolicy::Mean).cost_secs;
        assert!(c3 > c1, "stage cost should grow: {c1} → {c3}");
    }
}
