//! Deadline scheduling of query batches — the multiuser real-time
//! motivation from the paper's introduction: "By precisely fixing the
//! execution times of database queries in a transaction, accurate
//! estimates for transaction execution times become possible. This in
//! turn plays an important role in minimizing the number of
//! transactions that miss their deadlines [AbMo 88]."
//!
//! [`EdfScheduler`] runs a batch of aggregate queries
//! earliest-deadline-first. Because the engine turns any time quota
//! into a guaranteed execution time, the scheduler can do **admission
//! control**: each job's quota is fixed to the slack left before its
//! deadline (capped by the job's desired quota), and a job whose
//! usable slack falls below its declared minimum is *refused* rather
//! than allowed to blow everyone's deadlines — the precision of
//! admitted answers absorbs the load instead.
//!
//! [`EdfScheduler`] is the single-session batch primitive. The
//! multi-tenant serving layer built on top of it — QCOST-predictive
//! admission, overload shedding, per-job fault isolation,
//! deterministic replay — lives in [`crate::server`].

use std::time::Duration;

use eram_relalg::Expr;
use eram_storage::Clock;
use serde::{Deserialize, Serialize};

use crate::aggregate::AggregateFn;
use crate::executor::{EngineError, ExecOutcome};
use crate::session::Database;

/// How [`crate::server::QueryServer`] executes its admitted batch.
///
/// Both modes produce byte-identical per-job reports, traces, and
/// (schedule-stripped) outcomes — per-job charges live on private
/// lanes either way. The modes differ only in device-level totals:
/// interleaving admits cross-job block sharing, which sequential
/// execution (the oracle) cannot exploit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum Concurrency {
    /// Drain each admitted job to completion in stable-EDF order —
    /// the reference discipline every optimization is checked
    /// against.
    #[default]
    Sequential,
    /// Dispatch ready stages from all admitted jobs through the
    /// server's turnstile (least lane progress first, stable-EDF
    /// tiebreak), with the shared-draw broker pooling base-relation
    /// reads across live jobs.
    Interleaved,
}

impl Concurrency {
    /// Stable lowercase token (`seq` / `interleaved`), as accepted by
    /// [`Concurrency::parse`] and the CLI `--concurrency` flag.
    pub fn as_str(self) -> &'static str {
        match self {
            Concurrency::Sequential => "seq",
            Concurrency::Interleaved => "interleaved",
        }
    }

    /// Parses a CLI token; accepts `seq`/`sequential` and
    /// `interleaved`.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "seq" | "sequential" => Some(Concurrency::Sequential),
            "interleaved" => Some(Concurrency::Interleaved),
            _ => None,
        }
    }
}

/// Default minimum useful quota for [`QueryJob::count`] (and
/// [`crate::server::ServerJob::count`]): below 100 ms on the paper's
/// SUN 3/60 profile not even one block read fits, so an answer under
/// this quota is worthless and admission control should refuse the
/// job instead. Override per job with [`QueryJob::with_min_quota`]
/// when the device or the application's notion of "worthless" differs
/// (e.g. millisecond-scale minimums on the modern profile).
pub const DEFAULT_MIN_QUOTA: Duration = Duration::from_millis(100);

/// One query in a scheduled batch.
#[derive(Debug, Clone)]
pub struct QueryJob {
    /// Label for reporting.
    pub name: String,
    /// The aggregate to evaluate.
    pub agg: AggregateFn,
    /// The expression.
    pub expr: Expr,
    /// Absolute deadline, measured from the batch start on the
    /// database's clock.
    pub deadline: Duration,
    /// Quota the job would like if slack allows.
    pub desired_quota: Duration,
    /// Below this quota the answer is considered worthless and the
    /// job is refused instead of run.
    pub min_quota: Duration,
}

impl QueryJob {
    /// A COUNT job with a desired quota equal to its full slack and
    /// the [`DEFAULT_MIN_QUOTA`] minimum.
    pub fn count(name: impl Into<String>, expr: Expr, deadline: Duration) -> Self {
        QueryJob {
            name: name.into(),
            agg: AggregateFn::Count,
            expr,
            deadline,
            desired_quota: deadline,
            min_quota: DEFAULT_MIN_QUOTA,
        }
    }

    /// Replaces the admission threshold: below `min_quota` of usable
    /// slack the job is refused rather than run.
    pub fn with_min_quota(mut self, min_quota: Duration) -> Self {
        self.min_quota = min_quota;
        self
    }

    /// Caps the quota the job asks for even when slack is plentiful.
    pub fn with_desired_quota(mut self, desired_quota: Duration) -> Self {
        self.desired_quota = desired_quota;
        self
    }
}

/// Why a scheduled job did or did not produce an answer.
///
/// Distinguishing refusal (admission control worked as designed) from
/// failure (the engine hit an error mid-run) matters for accounting:
/// a refused job consumed no quota, while a failed job burned clock
/// time that EDF already granted away from later jobs.
#[derive(Debug, Clone, PartialEq)]
pub enum JobStatus {
    /// The engine returned an estimate.
    Done,
    /// Admission control rejected the job before it ran: its usable
    /// slack fell below its declared minimum quota.
    Refused,
    /// The engine ran and returned an error.
    Failed(EngineError),
}

/// How one job fared.
#[derive(Debug)]
pub struct JobOutcome {
    /// The job's label.
    pub name: String,
    /// When it started, relative to the batch start.
    pub started_at: Duration,
    /// When it finished (equals `started_at` for refused jobs).
    pub finished_at: Duration,
    /// The quota it was granted (zero if refused).
    pub granted_quota: Duration,
    /// Whether the job completed, was refused, or failed.
    pub status: JobStatus,
    /// The engine outcome, or `None` if the job was refused or
    /// failed.
    pub result: Option<ExecOutcome>,
}

impl JobOutcome {
    /// True if the job produced an answer by its deadline.
    pub fn met(&self, job_deadline: Duration) -> bool {
        self.status == JobStatus::Done && self.finished_at <= job_deadline
    }
}

/// Earliest-deadline-first execution with slack-based admission.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdfScheduler {
    /// Fraction of the slack granted as quota (the rest is scheduling
    /// margin for the block-granularity abort overshoot).
    pub slack_margin: f64,
}

impl Default for EdfScheduler {
    fn default() -> Self {
        EdfScheduler { slack_margin: 0.97 }
    }
}

impl EdfScheduler {
    /// Creates a scheduler with the given slack margin in `(0, 1]`.
    ///
    /// # Panics
    /// Panics if the margin is out of range.
    pub fn new(slack_margin: f64) -> Self {
        assert!(slack_margin > 0.0 && slack_margin <= 1.0);
        EdfScheduler { slack_margin }
    }

    /// Runs the batch EDF, consuming the database's clock time.
    /// Returns one outcome per job, in execution (deadline) order.
    pub fn run(&self, db: &mut Database, mut jobs: Vec<QueryJob>) -> Vec<JobOutcome> {
        jobs.sort_by_key(|j| j.deadline);
        let clock = db.disk().clock().clone();
        let start = clock.elapsed();
        let now = |clock: &std::sync::Arc<dyn Clock>| clock.elapsed().saturating_sub(start);

        let mut outcomes = Vec::with_capacity(jobs.len());
        for job in jobs {
            let started_at = now(&clock);
            let slack = job.deadline.saturating_sub(started_at);
            let quota = job.desired_quota.min(Duration::from_secs_f64(
                slack.as_secs_f64() * self.slack_margin,
            ));
            if quota < job.min_quota {
                outcomes.push(JobOutcome {
                    name: job.name,
                    started_at,
                    finished_at: started_at,
                    granted_quota: Duration::ZERO,
                    status: JobStatus::Refused,
                    result: None,
                });
                continue;
            }
            let (status, result) = match db.aggregate(job.agg, job.expr).within(quota).run() {
                Ok(outcome) => (JobStatus::Done, Some(outcome)),
                Err(err) => (JobStatus::Failed(err), None),
            };
            outcomes.push(JobOutcome {
                name: job.name,
                started_at,
                finished_at: now(&clock),
                granted_quota: quota,
                status,
                result,
            });
        }
        outcomes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eram_relalg::{CmpOp, Predicate};
    use eram_storage::{ColumnType, Schema, Tuple, Value};

    fn db() -> Database {
        let mut db = Database::sim_default(17);
        let schema =
            Schema::new(vec![("k", ColumnType::Int), ("g", ColumnType::Int)]).padded_to(200);
        db.load_relation(
            "t",
            schema,
            (0..10_000).map(|i| Tuple::new(vec![Value::Int(i), Value::Int(i % 10)])),
        )
        .unwrap();
        db
    }

    fn sel(k: i64) -> Expr {
        Expr::relation("t").select(Predicate::col_cmp(1, CmpOp::Lt, k))
    }

    #[test]
    fn batch_meets_every_deadline() {
        let mut db = db();
        let jobs = vec![
            QueryJob::count("a", sel(3), Duration::from_secs(5)),
            QueryJob::count("b", sel(5), Duration::from_secs(12)),
            QueryJob::count("c", sel(7), Duration::from_secs(20)),
        ];
        let deadlines: Vec<Duration> = jobs.iter().map(|j| j.deadline).collect();
        let outcomes = EdfScheduler::default().run(&mut db, jobs);
        assert_eq!(outcomes.len(), 3);
        for (o, d) in outcomes.iter().zip(deadlines) {
            assert!(
                o.met(d),
                "{} finished {:?} vs deadline {d:?}",
                o.name,
                o.finished_at
            );
            let est = o.result.as_ref().unwrap().estimate.estimate;
            assert!(est > 0.0);
        }
    }

    #[test]
    fn jobs_run_in_deadline_order() {
        let mut db = db();
        let jobs = vec![
            QueryJob::count("late", sel(3), Duration::from_secs(20)),
            QueryJob::count("early", sel(3), Duration::from_secs(6)),
        ];
        let outcomes = EdfScheduler::default().run(&mut db, jobs);
        assert_eq!(outcomes[0].name, "early");
        assert_eq!(outcomes[1].name, "late");
        assert!(outcomes[0].finished_at <= outcomes[1].started_at);
    }

    #[test]
    fn overcommitted_job_is_refused_not_run() {
        let mut db = db();
        let mut starved = QueryJob::count("starved", sel(5), Duration::from_secs(6));
        starved.min_quota = Duration::from_secs(5); // needs ~all the slack
        let jobs = vec![
            QueryJob::count("greedy", sel(5), Duration::from_secs(5)),
            starved,
        ];
        let outcomes = EdfScheduler::default().run(&mut db, jobs);
        let starved_out = outcomes.iter().find(|o| o.name == "starved").unwrap();
        assert_eq!(starved_out.status, JobStatus::Refused);
        assert!(starved_out.result.is_none(), "should be refused");
        assert_eq!(starved_out.granted_quota, Duration::ZERO);
        // The refusal cost (admission check) is negligible.
        assert!(starved_out.finished_at == starved_out.started_at);
        assert!(!starved_out.met(Duration::from_secs(6)));
    }

    #[test]
    fn engine_error_is_surfaced_not_swallowed() {
        let mut db = db();
        let jobs = vec![
            QueryJob::count(
                "broken",
                Expr::relation("no_such_relation"),
                Duration::from_secs(5),
            ),
            QueryJob::count("fine", sel(5), Duration::from_secs(12)),
        ];
        let outcomes = EdfScheduler::default().run(&mut db, jobs);
        let broken = outcomes.iter().find(|o| o.name == "broken").unwrap();
        assert!(
            matches!(broken.status, JobStatus::Failed(EngineError::Expr(_))),
            "expected a surfaced expression error, got {:?}",
            broken.status
        );
        assert!(broken.result.is_none());
        // A failed job was granted quota (it passed admission) but
        // never counts as having met its deadline.
        assert!(broken.granted_quota > Duration::ZERO);
        assert!(!broken.met(Duration::from_secs(5)));
        // The failure does not poison the rest of the batch.
        let fine = outcomes.iter().find(|o| o.name == "fine").unwrap();
        assert_eq!(fine.status, JobStatus::Done);
        assert!(fine.met(Duration::from_secs(12)));
    }

    #[test]
    fn desired_quota_caps_greed() {
        let mut db = db();
        let mut modest = QueryJob::count("modest", sel(5), Duration::from_secs(30));
        modest.desired_quota = Duration::from_secs(2);
        let outcomes = EdfScheduler::default().run(&mut db, vec![modest]);
        assert!(outcomes[0].granted_quota <= Duration::from_secs(2));
        assert!(outcomes[0].finished_at <= Duration::from_secs(3));
    }

    #[test]
    #[should_panic]
    fn margin_bounds_enforced() {
        let _ = EdfScheduler::new(1.5);
    }

    #[test]
    fn min_quota_is_caller_controlled_with_documented_default() {
        let job = QueryJob::count("j", sel(3), Duration::from_secs(5));
        assert_eq!(job.min_quota, DEFAULT_MIN_QUOTA);
        let job = QueryJob::count("j", sel(3), Duration::from_secs(5))
            .with_min_quota(Duration::from_secs(2))
            .with_desired_quota(Duration::from_secs(3));
        assert_eq!(job.min_quota, Duration::from_secs(2));
        assert_eq!(job.desired_quota, Duration::from_secs(3));
    }
}
