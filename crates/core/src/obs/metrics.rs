//! Named counters and min/max/sum histograms.
//!
//! A [`MetricsRegistry`] is filled by the executor at the end of a
//! run (from storage-counter deltas and the per-stage reports) and
//! frozen into a [`MetricsSnapshot`] attached to
//! [`ExecutionReport`](crate::ExecutionReport). Collection is opt-in;
//! the hot path never touches the registry.
//!
//! Metric names are dotted strings: `storage.*` for disk-level
//! counters (block reads/writes, cache hits, faults, checksum
//! verifies), `core.*` for loop-level counters (stages, retries,
//! blocks lost), `stage.*` and `estimate.*` for per-stage histograms.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// Summary statistics of an observed series: count, sum, min, max,
/// plus the retained samples for quantile queries.
///
/// Non-finite observations are ignored (a raw `NaN` would make the
/// snapshot unserializable as JSON).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Histogram {
    /// Number of finite observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Smallest observation (0 when empty).
    pub min: f64,
    /// Largest observation (0 when empty).
    pub max: f64,
    /// Every finite observation, in arrival order (quantiles sort a
    /// copy on demand). Omitted from JSON when empty, so snapshots
    /// from before this field deserialize unchanged.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub samples: Vec<f64>,
}

impl Histogram {
    /// Records one observation; non-finite values are dropped.
    pub fn observe(&mut self, v: f64) {
        if !v.is_finite() {
            return;
        }
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
        self.samples.push(v);
    }

    /// Mean of the observations, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Smallest observation, or `None` when empty (unlike the raw
    /// `min` field, which is 0 for an empty histogram).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation, or `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Nearest-rank quantile over the retained samples, or `None`
    /// when empty (or when the histogram was deserialized from a
    /// pre-`samples` snapshot) or `q` is outside `[0, 1]`. Never a
    /// surprising 0: an empty histogram is `None`, a single-sample
    /// histogram returns that sample for every `q`, and on tiny
    /// counts the nearest-rank convention picks a real observation
    /// (`q = 0` the minimum, `q = 1` the maximum).
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.samples.is_empty() || !(0.0..=1.0).contains(&q) {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("samples are finite"));
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        Some(sorted[rank - 1])
    }

    /// Median (nearest-rank), or `None` when empty.
    pub fn p50(&self) -> Option<f64> {
        self.quantile(0.50)
    }

    /// 95th percentile (nearest-rank), or `None` when empty.
    pub fn p95(&self) -> Option<f64> {
        self.quantile(0.95)
    }
}

/// A mutable registry of named counters and histograms.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `by` to the named counter (creating it at 0).
    pub fn add(&mut self, name: &str, by: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += by;
    }

    /// Records one observation in the named histogram.
    pub fn observe(&mut self, name: &str, v: f64) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .observe(v);
    }

    /// Freezes the registry into an immutable snapshot, stamped with
    /// the current observability schema version.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            schema_version: crate::obs::SCHEMA_VERSION,
            counters: self.counters.clone(),
            histograms: self.histograms.clone(),
        }
    }
}

/// An immutable, serializable snapshot of a [`MetricsRegistry`].
///
/// Sorted maps keep serialization deterministic; the snapshot rides
/// on [`ExecutionReport`](crate::ExecutionReport) behind
/// `Option` so reports without metrics serialize exactly as before.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Observability schema version (see
    /// [`SCHEMA_VERSION`](crate::obs::SCHEMA_VERSION)); 0 when the
    /// snapshot predates versioning.
    #[serde(default)]
    pub schema_version: u32,
    /// Monotone counters by name.
    #[serde(default)]
    pub counters: BTreeMap<String, u64>,
    /// Histograms by name.
    #[serde(default)]
    pub histograms: BTreeMap<String, Histogram>,
}

impl MetricsSnapshot {
    /// The named counter's value, 0 when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The named histogram, if any observation was recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_default_to_zero() {
        let mut reg = MetricsRegistry::new();
        reg.add("storage.block_reads", 3);
        reg.add("storage.block_reads", 4);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("storage.block_reads"), 7);
        assert_eq!(snap.counter("never.seen"), 0);
    }

    #[test]
    fn histogram_tracks_bounds_and_ignores_non_finite() {
        let mut h = Histogram::default();
        h.observe(2.0);
        h.observe(f64::NAN);
        h.observe(f64::INFINITY);
        h.observe(-1.0);
        h.observe(5.0);
        assert_eq!(h.count, 3);
        assert_eq!(h.min, -1.0);
        assert_eq!(h.max, 5.0);
        assert_eq!(h.sum, 6.0);
        assert_eq!(h.samples, vec![2.0, -1.0, 5.0]);
        assert_eq!(h.mean(), Some(2.0));
        assert_eq!(Histogram::default().mean(), None);
    }

    #[test]
    fn empty_histogram_has_no_statistics() {
        let h = Histogram::default();
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.p50(), None);
        assert_eq!(h.p95(), None);
        assert_eq!(h.quantile(0.0), None);
        assert_eq!(h.quantile(1.0), None);
    }

    #[test]
    fn single_value_histogram_pins_every_quantile() {
        let mut h = Histogram::default();
        h.observe(7.5);
        assert_eq!(h.min(), Some(7.5));
        assert_eq!(h.max(), Some(7.5));
        assert_eq!(h.p50(), Some(7.5));
        assert_eq!(h.p95(), Some(7.5));
        assert_eq!(h.quantile(0.0), Some(7.5));
        assert_eq!(h.quantile(1.0), Some(7.5));
    }

    #[test]
    fn tiny_sample_counts_pick_real_observations() {
        // Two samples: nearest-rank p50 is the lower one, p95 the
        // upper — never an interpolated value or a surprising 0.
        let mut h = Histogram::default();
        h.observe(10.0);
        h.observe(20.0);
        assert_eq!(h.p50(), Some(10.0));
        assert_eq!(h.p95(), Some(20.0));
        assert_eq!(h.quantile(0.0), Some(10.0));
        assert_eq!(h.quantile(1.0), Some(20.0));
        // Three samples: the median is the middle observation.
        h.observe(30.0);
        assert_eq!(h.p50(), Some(20.0));
        assert_eq!(h.p95(), Some(30.0));
        assert_eq!(h.quantile(0.0), Some(10.0));
    }

    #[test]
    fn skewed_histogram_quantiles_follow_nearest_rank() {
        // 99 small observations and one enormous outlier: the median
        // ignores the outlier, p95 still does, max sees it.
        let mut h = Histogram::default();
        for i in 1..=99 {
            h.observe(i as f64);
        }
        h.observe(1e9);
        assert_eq!(h.count, 100);
        assert_eq!(h.p50(), Some(50.0));
        assert_eq!(h.p95(), Some(95.0));
        assert_eq!(h.min(), Some(1.0));
        assert_eq!(h.max(), Some(1e9));
        // Out-of-range quantiles are rejected rather than clamped.
        assert_eq!(h.quantile(-0.1), None);
        assert_eq!(h.quantile(1.1), None);
        // Arrival order does not matter.
        let mut rev = Histogram::default();
        rev.observe(1e9);
        for i in (1..=99).rev() {
            rev.observe(i as f64);
        }
        assert_eq!(rev.p50(), h.p50());
        assert_eq!(rev.p95(), h.p95());
    }

    #[test]
    fn snapshot_serde_round_trips() {
        let mut reg = MetricsRegistry::new();
        reg.add("core.stages", 3);
        reg.observe("stage.fraction", 0.1);
        reg.observe("stage.fraction", 0.3);
        let snap = reg.snapshot();
        assert_eq!(snap.schema_version, crate::obs::SCHEMA_VERSION);
        let Ok(json) = serde_json::to_string(&snap) else {
            eprintln!("skipped: offline serde stub cannot serialize");
            return;
        };
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
        assert!(!snap.is_empty());
        assert!(MetricsSnapshot::default().is_empty());
    }

    #[test]
    fn pre_versioning_snapshot_json_still_deserializes() {
        // A snapshot serialized before `schema_version` and histogram
        // `samples` existed: both default cleanly.
        let old = r#"{"counters":{"core.stages":2},"histograms":{"stage.fraction":{"count":1,"sum":0.25,"min":0.25,"max":0.25}}}"#;
        let Ok(snap) = serde_json::from_str::<MetricsSnapshot>(old) else {
            eprintln!("skipped: offline serde stub cannot deserialize");
            return;
        };
        assert_eq!(snap.schema_version, 0);
        let h = snap.histogram("stage.fraction").unwrap();
        assert_eq!(h.count, 1);
        assert!(h.samples.is_empty());
        assert_eq!(h.p50(), None, "quantiles need retained samples");
        assert_eq!(h.mean(), Some(0.25));
    }
}
