//! Named counters and min/max/sum histograms.
//!
//! A [`MetricsRegistry`] is filled by the executor at the end of a
//! run (from storage-counter deltas and the per-stage reports) and
//! frozen into a [`MetricsSnapshot`] attached to
//! [`ExecutionReport`](crate::ExecutionReport). Collection is opt-in;
//! the hot path never touches the registry.
//!
//! Metric names are dotted strings: `storage.*` for disk-level
//! counters (block reads/writes, cache hits, faults, checksum
//! verifies), `core.*` for loop-level counters (stages, retries,
//! blocks lost), `stage.*` and `estimate.*` for per-stage histograms.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// Summary statistics of an observed series: count, sum, min, max.
///
/// Non-finite observations are ignored (a raw `NaN` would make the
/// snapshot unserializable as JSON).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Histogram {
    /// Number of finite observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Smallest observation (0 when empty).
    pub min: f64,
    /// Largest observation (0 when empty).
    pub max: f64,
}

impl Histogram {
    /// Records one observation; non-finite values are dropped.
    pub fn observe(&mut self, v: f64) {
        if !v.is_finite() {
            return;
        }
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
    }

    /// Mean of the observations, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }
}

/// A mutable registry of named counters and histograms.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `by` to the named counter (creating it at 0).
    pub fn add(&mut self, name: &str, by: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += by;
    }

    /// Records one observation in the named histogram.
    pub fn observe(&mut self, name: &str, v: f64) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .observe(v);
    }

    /// Freezes the registry into an immutable snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self.counters.clone(),
            histograms: self.histograms.clone(),
        }
    }
}

/// An immutable, serializable snapshot of a [`MetricsRegistry`].
///
/// Sorted maps keep serialization deterministic; the snapshot rides
/// on [`ExecutionReport`](crate::ExecutionReport) behind
/// `Option` so reports without metrics serialize exactly as before.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Monotone counters by name.
    #[serde(default)]
    pub counters: BTreeMap<String, u64>,
    /// Histograms by name.
    #[serde(default)]
    pub histograms: BTreeMap<String, Histogram>,
}

impl MetricsSnapshot {
    /// The named counter's value, 0 when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The named histogram, if any observation was recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_default_to_zero() {
        let mut reg = MetricsRegistry::new();
        reg.add("storage.block_reads", 3);
        reg.add("storage.block_reads", 4);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("storage.block_reads"), 7);
        assert_eq!(snap.counter("never.seen"), 0);
    }

    #[test]
    fn histogram_tracks_bounds_and_ignores_non_finite() {
        let mut h = Histogram::default();
        h.observe(2.0);
        h.observe(f64::NAN);
        h.observe(f64::INFINITY);
        h.observe(-1.0);
        h.observe(5.0);
        assert_eq!(h.count, 3);
        assert_eq!(h.min, -1.0);
        assert_eq!(h.max, 5.0);
        assert_eq!(h.sum, 6.0);
        assert_eq!(h.mean(), Some(2.0));
        assert_eq!(Histogram::default().mean(), None);
    }

    #[test]
    fn snapshot_serde_round_trips() {
        let mut reg = MetricsRegistry::new();
        reg.add("core.stages", 3);
        reg.observe("stage.fraction", 0.1);
        reg.observe("stage.fraction", 0.3);
        let snap = reg.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
        assert!(!snap.is_empty());
        assert!(MetricsSnapshot::default().is_empty());
    }
}
