//! The clock-charged trace recorder.
//!
//! A [`Tracer`] is either **disabled** (the default — a `None`, so
//! every emission site costs one branch and no allocation) or
//! **recording**, in which case it appends [`TraceRecord`]s to a
//! shared buffer, timestamped from the session
//! [`Clock`](eram_storage::Clock). With a `SimClock` the timestamps
//! are the *charged* virtual nanoseconds, so a seeded run always
//! produces byte-identical JSONL.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use serde_json::Value;

use eram_storage::Clock;

/// What a [`TraceRecord`] denotes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum TraceKind {
    /// A span opened (matched by a later `End` with the same name).
    Begin,
    /// A span closed; `dur_ns` carries the charged duration.
    End,
    /// A point-in-time event.
    Event,
    /// A per-stage summary record (the convergence trajectory).
    Stage,
}

/// One line of a JSONL trace.
///
/// Field order is fixed by this struct and map keys are sorted
/// (`BTreeMap`), so serialization is byte-deterministic. Non-finite
/// floats must be inserted via [`Value::from`], which maps them to
/// `null` (raw non-finite `f64`s are unserializable in JSON).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Clock-charged timestamp: nanoseconds of session-clock elapsed
    /// time at emission.
    pub t_ns: u64,
    /// Record kind.
    pub kind: TraceKind,
    /// Span/event name (see the module-level span taxonomy).
    pub name: String,
    /// Stage number the record belongs to (0 before the first stage).
    pub stage: usize,
    /// Charged span duration — `End` records only.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub dur_ns: Option<u64>,
    /// Free-form payload, sorted by key.
    #[serde(default, skip_serializing_if = "BTreeMap::is_empty")]
    pub fields: BTreeMap<String, Value>,
}

#[derive(Default)]
struct TraceState {
    records: Vec<TraceRecord>,
    stage: usize,
}

struct TracerInner {
    clock: Arc<dyn Clock>,
    state: Mutex<TraceState>,
}

/// A cheap-to-clone handle to a (possibly disabled) trace buffer.
///
/// Clones share the buffer; `Tracer::default()` is disabled. Every
/// emission method returns immediately when disabled, *before*
/// evaluating its field closure, so tracing has no cost on the hot
/// path unless it was explicitly turned on.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<TracerInner>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => f.write_str("Tracer(disabled)"),
            Some(inner) => write!(
                f,
                "Tracer(recording, {} records)",
                inner.state.lock().records.len()
            ),
        }
    }
}

impl Tracer {
    /// The no-op tracer: records nothing, costs one branch per site.
    pub fn disabled() -> Self {
        Tracer { inner: None }
    }

    /// A recording tracer timestamped from `clock` — pass the same
    /// clock the query's deadline runs on (`db.disk().clock()`).
    pub fn recording(clock: Arc<dyn Clock>) -> Self {
        Tracer {
            inner: Some(Arc::new(TracerInner {
                clock,
                state: Mutex::new(TraceState::default()),
            })),
        }
    }

    /// Whether this tracer records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Sets the current stage number; stage indices never decrease
    /// (later `set_stage` calls with a smaller value are ignored), so
    /// a well-formed trace has monotone stage fields.
    pub fn set_stage(&self, stage: usize) {
        if let Some(inner) = &self.inner {
            let mut state = inner.state.lock();
            state.stage = state.stage.max(stage);
        }
    }

    /// Emits a point-in-time event. The field closure only runs when
    /// recording, so building the payload is free when disabled.
    pub fn event<F>(&self, name: &'static str, fields: F)
    where
        F: FnOnce() -> Vec<(&'static str, Value)>,
    {
        self.emit(TraceKind::Event, name, fields);
    }

    /// Emits a per-stage summary record (kind `stage`), used for the
    /// convergence trajectory.
    pub fn stage_record<F>(&self, name: &'static str, fields: F)
    where
        F: FnOnce() -> Vec<(&'static str, Value)>,
    {
        self.emit(TraceKind::Stage, name, fields);
    }

    /// Emits a point-in-time event with an explicit timestamp instead
    /// of sampling the clock — for control-plane replay, where events
    /// are stamped on a virtual timeline the shared clock has not
    /// advanced along yet.
    pub fn event_at<F>(&self, t_ns: u64, name: &'static str, fields: F)
    where
        F: FnOnce() -> Vec<(&'static str, Value)>,
    {
        if let Some(inner) = &self.inner {
            let fields = fields()
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect();
            let mut state = inner.state.lock();
            let stage = state.stage;
            state.records.push(TraceRecord {
                t_ns,
                kind: TraceKind::Event,
                name: name.to_string(),
                stage,
                dur_ns: None,
                fields,
            });
        }
    }

    /// Splices pre-recorded records (a per-job lane trace, stamped
    /// from the lane's own clock starting at zero) into this buffer,
    /// shifting every timestamp by `offset_ns` onto this tracer's
    /// timeline. Stage fields are kept as recorded — the per-lane
    /// stage counter, not this buffer's — and this buffer's own stage
    /// counter is left untouched.
    pub fn absorb(&self, records: Vec<TraceRecord>, offset_ns: u64) {
        if let Some(inner) = &self.inner {
            let mut state = inner.state.lock();
            state.records.extend(records.into_iter().map(|mut r| {
                r.t_ns = r.t_ns.saturating_add(offset_ns);
                r
            }));
        }
    }

    fn emit<F>(&self, kind: TraceKind, name: &'static str, fields: F)
    where
        F: FnOnce() -> Vec<(&'static str, Value)>,
    {
        if let Some(inner) = &self.inner {
            let t_ns = duration_ns(inner.clock.elapsed());
            let fields = fields()
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect();
            let mut state = inner.state.lock();
            let stage = state.stage;
            state.records.push(TraceRecord {
                t_ns,
                kind,
                name: name.to_string(),
                stage,
                dur_ns: None,
                fields,
            });
        }
    }

    /// Opens a span: pushes a `Begin` record now and an `End` record
    /// (with the charged duration) when the returned guard drops.
    /// Guards nest lexically, so spans are properly nested by
    /// construction. The `Begin` record carries the stage at open
    /// time, the `End` record the stage at close time, which keeps
    /// stage indices monotone across the whole record sequence.
    #[must_use = "dropping the guard immediately closes the span"]
    pub fn span(&self, name: &'static str) -> SpanGuard {
        let mut start_ns = 0;
        if let Some(inner) = &self.inner {
            start_ns = duration_ns(inner.clock.elapsed());
            let mut state = inner.state.lock();
            let stage = state.stage;
            state.records.push(TraceRecord {
                t_ns: start_ns,
                kind: TraceKind::Begin,
                name: name.to_string(),
                stage,
                dur_ns: None,
                fields: BTreeMap::new(),
            });
        }
        SpanGuard {
            tracer: self.clone(),
            name,
            start_ns,
        }
    }

    /// Number of records captured so far (0 when disabled).
    pub fn record_count(&self) -> usize {
        self.inner
            .as_ref()
            .map_or(0, |inner| inner.state.lock().records.len())
    }

    /// A copy of the records captured so far (empty when disabled).
    pub fn records(&self) -> Vec<TraceRecord> {
        self.inner
            .as_ref()
            .map_or_else(Vec::new, |inner| inner.state.lock().records.clone())
    }

    /// Serializes the trace as JSONL: a schema-version header line
    /// (`{"schema_version":N}` — not a [`TraceRecord`]; consumers
    /// parsing records must skip it) followed by one record per line,
    /// each line a JSON object, trailing newline. Byte-deterministic
    /// for a given record sequence (fixed field order, sorted map
    /// keys). A disabled tracer serializes to the empty string, not a
    /// lone header.
    pub fn to_jsonl(&self) -> String {
        if self.inner.is_none() {
            return String::new();
        }
        let mut out = format!("{{\"schema_version\":{}}}\n", super::SCHEMA_VERSION);
        for record in self.records() {
            out.push_str(&serde_json::to_string(&record).expect("trace records always serialize"));
            out.push('\n');
        }
        out
    }
}

/// RAII guard closing a span opened by [`Tracer::span`]. On drop it
/// pushes the matching `End` record with the charged duration,
/// stamped with the stage current at close time.
pub struct SpanGuard {
    tracer: Tracer,
    name: &'static str,
    start_ns: u64,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(inner) = &self.tracer.inner {
            let t_ns = duration_ns(inner.clock.elapsed());
            let mut state = inner.state.lock();
            let stage = state.stage;
            state.records.push(TraceRecord {
                t_ns,
                kind: TraceKind::End,
                name: self.name.to_string(),
                stage,
                dur_ns: Some(t_ns.saturating_sub(self.start_ns)),
                fields: BTreeMap::new(),
            });
        }
    }
}

fn duration_ns(d: std::time::Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;
    use std::time::Duration;

    use eram_storage::SimClock;

    fn sim() -> Arc<SimClock> {
        Arc::new(SimClock::new())
    }

    #[test]
    fn disabled_tracer_records_nothing_and_skips_field_closures() {
        let t = Tracer::disabled();
        assert!(!t.is_enabled());
        let ran = Cell::new(false);
        t.event("e", || {
            ran.set(true);
            vec![]
        });
        let _g = t.span("s");
        t.set_stage(3);
        assert!(!ran.get(), "field closure must not run when disabled");
        assert_eq!(t.record_count(), 0);
        assert!(t.records().is_empty());
        assert_eq!(t.to_jsonl(), "");
    }

    #[test]
    fn span_duration_is_charged_clock_time() {
        let clock = sim();
        let t = Tracer::recording(clock.clone());
        {
            let _g = t.span("work");
            clock.charge(Duration::from_millis(30));
        }
        let recs = t.records();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].kind, TraceKind::Begin);
        assert_eq!(recs[1].kind, TraceKind::End);
        assert_eq!(recs[1].dur_ns, Some(30_000_000));
        assert_eq!(recs[1].t_ns, 30_000_000);
    }

    #[test]
    fn stage_is_monotone_and_stamped_on_records() {
        let t = Tracer::recording(sim());
        t.set_stage(2);
        t.event("a", Vec::new);
        t.set_stage(1); // ignored: stages never go backwards
        t.event("b", Vec::new);
        t.set_stage(3);
        t.event("c", Vec::new);
        let stages: Vec<usize> = t.records().iter().map(|r| r.stage).collect();
        assert_eq!(stages, vec![2, 2, 3]);
    }

    #[test]
    fn jsonl_is_deterministic_and_round_trips() {
        if serde_json::to_string(&0u32).is_err() {
            eprintln!("skipped: offline serde stub cannot serialize");
            return;
        }
        let mk = || {
            let clock = sim();
            let t = Tracer::recording(clock.clone());
            t.set_stage(1);
            let g = t.span("stage");
            clock.charge(Duration::from_millis(7));
            t.event("plan_stage", || {
                vec![
                    ("fraction", Value::from(0.25)),
                    ("bad", Value::from(f64::NAN)),
                ]
            });
            drop(g);
            t.to_jsonl()
        };
        let a = mk();
        let b = mk();
        assert_eq!(a, b, "same operations must serialize identically");
        assert!(a.ends_with('\n'));
        let mut lines = a.lines();
        let header = lines.next().unwrap();
        assert_eq!(
            header,
            format!("{{\"schema_version\":{}}}", crate::obs::SCHEMA_VERSION),
            "first line is the schema-version header"
        );
        for line in lines {
            let rec: TraceRecord = serde_json::from_str(line).unwrap();
            let back = serde_json::to_string(&rec).unwrap();
            assert_eq!(back, line, "round trip must be lossless");
        }
        // Non-finite floats degrade to null instead of poisoning the line.
        assert!(a.contains("\"bad\":null"));
    }

    #[test]
    fn clones_share_one_buffer() {
        let t = Tracer::recording(sim());
        let t2 = t.clone();
        t.event("from_original", Vec::new);
        t2.event("from_clone", Vec::new);
        assert_eq!(t.record_count(), 2);
        assert_eq!(t2.record_count(), 2);
    }
}
