//! Observability: clock-charged tracing and a metrics registry.
//!
//! The paper's stage loop (Figure 3.1) is an adaptive control loop —
//! revise selectivities, size the sample, draw blocks, evaluate, check
//! the stopping criterion — and control loops are impossible to tune
//! blind. This module provides the measurement substrate:
//!
//! * [`Tracer`] — a lightweight span/event recorder timestamped from
//!   the session [`Clock`](eram_storage::Clock), so simulated and wall
//!   runs share one trace format. Because `SimClock` is deterministic,
//!   a trace of a seeded run is **bit-deterministic**: same seed, same
//!   bytes, which turns traces into testable artifacts (see
//!   `tests/observability.rs` and the committed golden trace).
//! * [`MetricsRegistry`] / [`MetricsSnapshot`] — named counters and
//!   min/max/sum histograms threaded through storage (blocks read,
//!   cache hits, faults, checksum verifies) and core (stages, estimate
//!   trajectory), snapshot-able into
//!   [`ExecutionReport`](crate::ExecutionReport).
//! * [`Profiler`] — RAII phase timers over a fixed taxonomy (see
//!   [`Phase`]) recording both the simulated-clock charge and the
//!   real wall-clock nanoseconds per phase, aggregated per stage and
//!   per operator into a [`ProfileSnapshot`] riding
//!   [`ExecutionReport`](crate::ExecutionReport). Profiling is pure
//!   observation: seeded results are byte-identical with it on or
//!   off.
//!
//! The layer is zero-cost when disabled: a disabled [`Tracer`] or
//! [`Profiler`] is a `None` behind a cheap clone, so every emission
//! site is a single branch (verified by the `obs` criterion
//! micro-bench in `eram-bench`).
//!
//! # Span taxonomy
//!
//! | record | kind | scope |
//! |---|---|---|
//! | `execute` | span | the whole query, from deadline arm to report |
//! | `stage` | span | one stage; duration == `StageReport::actual_cost` |
//! | `block_draw` | span | one operator's block draw + read loop |
//! | `revise_selectivities` | event | per-stage revised selectivities |
//! | `plan_stage` | event | the (uncharged) sampling-plan decision |
//! | `retry` | event | one charged retry backoff (attempt, backoff_ns) |
//! | `block_lost` | event | a cluster dropped from the sample |
//! | `stopping_check` | event | exactly one per executed stage |
//! | `stop` | event | exactly one per run, with the loop-exit reason |
//! | `convergence` | stage | per-stage estimate / CI / time trajectory |
//! | `group_convergence` | stage | per-stage GROUP BY freeze state |
//! | `server.decision` | event | one per admission/grant/shed/refit/watchdog/terminal decision, with its inputs (see [`DecisionRecord`](crate::server::DecisionRecord)) |
//!
//! The JSONL schema is documented in `DESIGN.md` §"Observability";
//! the decision audit and per-tenant SLO ledger in `DESIGN.md` §5j.

mod metrics;
mod profiler;
mod tracer;

/// Version stamped on every observability artifact this layer emits:
/// the JSONL trace header, [`MetricsSnapshot`], [`ProfileSnapshot`],
/// [`ExecutionReport`](crate::ExecutionReport) JSON, the server's
/// [`ServerOutcome`](crate::server::ServerOutcome) JSON, and the
/// bench suite's `BENCH_*.json` files. Bump it whenever any of those
/// schemas changes shape. Additive extensions — new event names, new
/// optional fields with serde defaults — do not bump it: the serving
/// layer's `server.*` trace events, `server.*` metrics counters, and
/// the optional `refusal` field on
/// [`ReportHealth`](crate::ReportHealth) all ride schema v1, which
/// existing readers tolerate by construction.
pub const SCHEMA_VERSION: u32 = 1;

pub use metrics::{Histogram, MetricsRegistry, MetricsSnapshot};
pub use profiler::{
    OperatorGuard, Phase, PhaseGuard, PhaseStats, PhaseTotals, ProfileSnapshot, Profiler,
    ENGINE_OPERATOR,
};
pub use tracer::{SpanGuard, TraceKind, TraceRecord, Tracer};
