//! The performance flight recorder: RAII phase timers over a fixed
//! taxonomy, recording **both** the simulated-clock charge and the
//! real wall-clock nanoseconds of every instrumented phase.
//!
//! The paper's premise is a time quota, so the engine must know where
//! every millisecond of a stage goes. The [`Tracer`](super::Tracer)
//! answers that for the *simulated* device model; the [`Profiler`]
//! additionally answers it for the *host*: how much real CPU time the
//! decode fan-out, the run merges, the estimator math and the
//! planning actually cost, per stage and per operator. Comparing the
//! two columns is how the per-phase cost model is continuously
//! checked against reality.
//!
//! Like the tracer, a profiler is either **disabled** (the default —
//! a `None`, one branch per site, no `Instant::now()` syscall, no
//! allocation) or **recording**. Profiling is pure observation: it
//! never charges the session clock, never touches the RNG, and all
//! guards open and close on the calling thread, so a seeded run
//! produces byte-identical simulated results with profiling on or
//! off, at any worker count. Wall-clock time spent inside
//! [`map_ordered`](crate::parallel::map_ordered) worker pools is
//! measured on the calling thread around the fan-out, so pool time is
//! attributed to the phase that spawned it.
//!
//! # Phase taxonomy
//!
//! | phase | where it is charged |
//! |---|---|
//! | `block_decode` | decoding fetched blocks into typed tuples (leaf fan-out, and run re-decode on a decoded-run-cache miss) |
//! | `run_merge` | merging sorted run pairs (binary-operator fan-out) |
//! | `estimator_math` | combining stage estimates into the running estimator |
//! | `rng_draw` | drawing the stage's block sample from the sampler RNG |
//! | `cache` | the block-fetch path through the buffer cache / device |
//! | `retry_backoff` | charged backoff sleeps while retrying a faulty read |
//! | `selectivity_revision` | the per-stage selectivity revision step |
//! | `planning` | sizing the stage sample (including hybrid re-planning) |
//! | `stopping_check` | evaluating the stopping criterion |
//!
//! Phases are disjoint by construction — no instrumented region nests
//! inside another — so per-stage phase totals partition the
//! instrumented time.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use eram_storage::Clock;

use super::metrics::Histogram;
use super::SCHEMA_VERSION;

/// Operator label used for engine-level phases (planning, estimator
/// math, stopping checks) that run outside any operator's `advance`.
pub const ENGINE_OPERATOR: &str = "engine";

/// The fixed phase taxonomy (see the module docs for where each
/// phase is charged).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum Phase {
    /// Decoding fetched blocks into typed tuples.
    BlockDecode,
    /// Merging sorted run pairs in a binary operator.
    RunMerge,
    /// Combining a stage estimate into the running estimator.
    EstimatorMath,
    /// Drawing the stage's block sample from the sampler RNG.
    RngDraw,
    /// The block-fetch path through the buffer cache / device.
    Cache,
    /// Charged backoff sleeps while retrying a faulty read.
    RetryBackoff,
    /// The per-stage selectivity revision step.
    SelectivityRevision,
    /// Sizing the stage sample (including hybrid re-planning).
    Planning,
    /// Evaluating the stopping criterion.
    StoppingCheck,
}

impl Phase {
    /// Every phase, in a fixed order.
    pub const ALL: [Phase; 9] = [
        Phase::BlockDecode,
        Phase::RunMerge,
        Phase::EstimatorMath,
        Phase::RngDraw,
        Phase::Cache,
        Phase::RetryBackoff,
        Phase::SelectivityRevision,
        Phase::Planning,
        Phase::StoppingCheck,
    ];

    /// The phase's snake_case name (matches the serde rendering).
    pub fn name(self) -> &'static str {
        match self {
            Phase::BlockDecode => "block_decode",
            Phase::RunMerge => "run_merge",
            Phase::EstimatorMath => "estimator_math",
            Phase::RngDraw => "rng_draw",
            Phase::Cache => "cache",
            Phase::RetryBackoff => "retry_backoff",
            Phase::SelectivityRevision => "selectivity_revision",
            Phase::Planning => "planning",
            Phase::StoppingCheck => "stopping_check",
        }
    }
}

/// Accumulated totals for one (stage, operator, phase) cell or one
/// rolled-up view of such cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PhaseTotals {
    /// Number of guard open/close pairs.
    pub calls: u64,
    /// Total simulated-clock charge inside the phase, nanoseconds.
    pub sim_ns: u64,
    /// Total wall-clock time inside the phase, nanoseconds.
    pub wall_ns: u64,
}

impl PhaseTotals {
    fn add(&mut self, sim_ns: u64, wall_ns: u64) {
        self.calls += 1;
        self.sim_ns += sim_ns;
        self.wall_ns += wall_ns;
    }
}

/// Aggregated statistics for one phase across the whole run: the
/// totals plus wall-clock distribution figures over the individual
/// guard durations.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PhaseStats {
    /// Number of guard open/close pairs.
    pub calls: u64,
    /// Total simulated-clock charge, nanoseconds.
    pub sim_ns: u64,
    /// Total wall-clock time, nanoseconds.
    pub wall_ns: u64,
    /// Fastest single call, wall nanoseconds.
    pub wall_min_ns: u64,
    /// Slowest single call, wall nanoseconds.
    pub wall_max_ns: u64,
    /// Median single call, wall nanoseconds (nearest rank).
    pub wall_p50_ns: u64,
    /// 95th-percentile single call, wall nanoseconds (nearest rank).
    pub wall_p95_ns: u64,
}

/// The frozen output of a recording [`Profiler`]: per-phase
/// statistics plus per-stage and per-operator breakdowns. Rides on
/// [`ExecutionReport`](crate::ExecutionReport) behind an `Option`.
///
/// The `sim_ns` columns are deterministic for a seeded run; the
/// `wall_*` columns are host measurements and vary run to run.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ProfileSnapshot {
    /// Observability schema version (see
    /// [`SCHEMA_VERSION`](crate::obs::SCHEMA_VERSION)).
    #[serde(default)]
    pub schema_version: u32,
    /// Whole-run statistics by phase name.
    #[serde(default)]
    pub phases: BTreeMap<String, PhaseStats>,
    /// Per-stage totals by phase name (stage 0 collects work done
    /// before the first stage opens).
    #[serde(default)]
    pub per_stage: BTreeMap<usize, BTreeMap<String, PhaseTotals>>,
    /// Per-operator totals by phase name; engine-level phases land
    /// under [`ENGINE_OPERATOR`].
    #[serde(default)]
    pub per_operator: BTreeMap<String, BTreeMap<String, PhaseTotals>>,
}

impl ProfileSnapshot {
    /// Total wall nanoseconds across every phase.
    pub fn total_wall_ns(&self) -> u64 {
        self.phases.values().map(|s| s.wall_ns).sum()
    }

    /// Total simulated nanoseconds across every phase.
    pub fn total_sim_ns(&self) -> u64 {
        self.phases.values().map(|s| s.sim_ns).sum()
    }

    /// The `n` phases with the largest wall-clock totals, descending
    /// (ties broken by phase name so the order is stable).
    pub fn top_phases(&self, n: usize) -> Vec<(&str, &PhaseStats)> {
        let mut rows: Vec<(&str, &PhaseStats)> = self
            .phases
            .iter()
            .map(|(name, stats)| (name.as_str(), stats))
            .collect();
        rows.sort_by(|a, b| b.1.wall_ns.cmp(&a.1.wall_ns).then(a.0.cmp(b.0)));
        rows.truncate(n);
        rows
    }
}

#[derive(Default)]
struct ProfState {
    stage: usize,
    operators: Vec<String>,
    cells: BTreeMap<(usize, String, Phase), PhaseTotals>,
    wall: BTreeMap<Phase, Histogram>,
}

struct ProfilerInner {
    clock: Arc<dyn Clock>,
    state: Mutex<ProfState>,
}

/// A cheap-to-clone handle to a (possibly disabled) phase-timing
/// accumulator. `Profiler::default()` is disabled; every
/// instrumentation site costs one branch when disabled and never
/// reads the host clock.
#[derive(Clone, Default)]
pub struct Profiler {
    inner: Option<Arc<ProfilerInner>>,
}

impl std::fmt::Debug for Profiler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => f.write_str("Profiler(disabled)"),
            Some(inner) => write!(
                f,
                "Profiler(recording, {} cells)",
                inner.state.lock().cells.len()
            ),
        }
    }
}

impl Profiler {
    /// The no-op profiler: records nothing, costs one branch per site.
    pub fn disabled() -> Self {
        Profiler { inner: None }
    }

    /// A recording profiler whose simulated column is read from
    /// `clock` — pass the same clock the query's deadline runs on
    /// (`db.disk().clock()`).
    pub fn recording(clock: Arc<dyn Clock>) -> Self {
        Profiler {
            inner: Some(Arc::new(ProfilerInner {
                clock,
                state: Mutex::new(ProfState::default()),
            })),
        }
    }

    /// Whether this profiler records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Sets the current stage number; stage indices never decrease
    /// (mirrors [`Tracer::set_stage`](super::Tracer::set_stage)).
    pub fn set_stage(&self, stage: usize) {
        if let Some(inner) = &self.inner {
            let mut state = inner.state.lock();
            state.stage = state.stage.max(stage);
        }
    }

    /// Pushes an operator label onto the attribution stack; phases
    /// timed while the guard lives are attributed to `name`. Guards
    /// nest lexically (a binary operator advancing its children).
    #[must_use = "dropping the guard immediately pops the operator"]
    pub fn operator(&self, name: &str) -> OperatorGuard {
        if let Some(inner) = &self.inner {
            inner.state.lock().operators.push(name.to_string());
        }
        OperatorGuard {
            profiler: self.clone(),
        }
    }

    /// Opens a phase timer: captures the simulated clock and the host
    /// clock now, and accumulates both deltas into the current
    /// (stage, operator, phase) cell when the returned guard drops.
    /// When disabled, neither clock is read.
    #[must_use = "dropping the guard immediately closes the phase"]
    pub fn phase(&self, phase: Phase) -> PhaseGuard {
        let start = self
            .inner
            .as_ref()
            .map(|inner| (duration_ns(inner.clock.elapsed()), Instant::now()));
        PhaseGuard {
            profiler: self.clone(),
            phase,
            start,
        }
    }

    /// Freezes the accumulated cells into a [`ProfileSnapshot`];
    /// `None` when disabled.
    pub fn snapshot(&self) -> Option<ProfileSnapshot> {
        let inner = self.inner.as_ref()?;
        let state = inner.state.lock();
        let mut snap = ProfileSnapshot {
            schema_version: SCHEMA_VERSION,
            ..ProfileSnapshot::default()
        };
        for ((stage, operator, phase), totals) in &state.cells {
            let name = phase.name().to_string();
            let agg = snap.phases.entry(name.clone()).or_default();
            agg.calls += totals.calls;
            agg.sim_ns += totals.sim_ns;
            agg.wall_ns += totals.wall_ns;
            *snap
                .per_stage
                .entry(*stage)
                .or_default()
                .entry(name.clone())
                .or_default() += *totals;
            *snap
                .per_operator
                .entry(operator.clone())
                .or_default()
                .entry(name)
                .or_default() += *totals;
        }
        for (phase, hist) in &state.wall {
            if let Some(stats) = snap.phases.get_mut(phase.name()) {
                stats.wall_min_ns = hist.min().unwrap_or(0.0) as u64;
                stats.wall_max_ns = hist.max().unwrap_or(0.0) as u64;
                stats.wall_p50_ns = hist.p50().unwrap_or(0.0) as u64;
                stats.wall_p95_ns = hist.p95().unwrap_or(0.0) as u64;
            }
        }
        Some(snap)
    }
}

impl std::ops::AddAssign for PhaseTotals {
    fn add_assign(&mut self, rhs: PhaseTotals) {
        self.calls += rhs.calls;
        self.sim_ns += rhs.sim_ns;
        self.wall_ns += rhs.wall_ns;
    }
}

/// RAII guard popping an operator label pushed by
/// [`Profiler::operator`].
pub struct OperatorGuard {
    profiler: Profiler,
}

impl Drop for OperatorGuard {
    fn drop(&mut self) {
        if let Some(inner) = &self.profiler.inner {
            inner.state.lock().operators.pop();
        }
    }
}

/// RAII guard closing a phase opened by [`Profiler::phase`]. On drop
/// it accumulates the simulated-clock delta and the wall-clock delta
/// into the current (stage, operator, phase) cell.
pub struct PhaseGuard {
    profiler: Profiler,
    phase: Phase,
    start: Option<(u64, Instant)>,
}

impl Drop for PhaseGuard {
    fn drop(&mut self) {
        let (Some(inner), Some((sim_start_ns, wall_start))) = (&self.profiler.inner, self.start)
        else {
            return;
        };
        let sim_ns = duration_ns(inner.clock.elapsed()).saturating_sub(sim_start_ns);
        let wall_ns = duration_ns(wall_start.elapsed());
        let mut state = inner.state.lock();
        let stage = state.stage;
        let operator = state
            .operators
            .last()
            .cloned()
            .unwrap_or_else(|| ENGINE_OPERATOR.to_string());
        state
            .cells
            .entry((stage, operator, self.phase))
            .or_default()
            .add(sim_ns, wall_ns);
        state
            .wall
            .entry(self.phase)
            .or_default()
            .observe(wall_ns as f64);
    }
}

fn duration_ns(d: std::time::Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    use eram_storage::SimClock;

    fn sim() -> Arc<SimClock> {
        Arc::new(SimClock::new())
    }

    #[test]
    fn disabled_profiler_records_nothing() {
        let p = Profiler::disabled();
        assert!(!p.is_enabled());
        {
            let _op = p.operator("leaf:orders");
            let _g = p.phase(Phase::BlockDecode);
        }
        p.set_stage(4);
        assert!(p.snapshot().is_none());
    }

    #[test]
    fn disabled_phase_guard_never_reads_the_host_clock() {
        let p = Profiler::disabled();
        let g = p.phase(Phase::RngDraw);
        assert!(g.start.is_none(), "no Instant::now() when disabled");
    }

    #[test]
    fn sim_column_is_the_charged_clock_delta() {
        let clock = sim();
        let p = Profiler::recording(clock.clone());
        {
            let _g = p.phase(Phase::Cache);
            clock.charge(Duration::from_millis(12));
        }
        {
            let _g = p.phase(Phase::Planning);
            // No charge: a purely computational phase.
        }
        let snap = p.snapshot().unwrap();
        assert_eq!(snap.schema_version, SCHEMA_VERSION);
        let cache = &snap.phases["cache"];
        assert_eq!(cache.calls, 1);
        assert_eq!(cache.sim_ns, 12_000_000);
        let planning = &snap.phases["planning"];
        assert_eq!(planning.calls, 1);
        assert_eq!(planning.sim_ns, 0);
    }

    #[test]
    fn cells_split_by_stage_and_operator() {
        let clock = sim();
        let p = Profiler::recording(clock.clone());
        p.set_stage(1);
        {
            let _op = p.operator("leaf:orders");
            let _g = p.phase(Phase::BlockDecode);
            clock.charge(Duration::from_millis(1));
        }
        p.set_stage(2);
        {
            let _op = p.operator("join");
            {
                let _g = p.phase(Phase::RunMerge);
                clock.charge(Duration::from_millis(2));
            }
            {
                // Nested operator: the innermost label wins.
                let _inner = p.operator("leaf:parts");
                let _g = p.phase(Phase::BlockDecode);
                clock.charge(Duration::from_millis(3));
            }
        }
        {
            let _g = p.phase(Phase::StoppingCheck);
        }
        let snap = p.snapshot().unwrap();
        assert_eq!(snap.per_stage[&1]["block_decode"].sim_ns, 1_000_000);
        assert_eq!(snap.per_stage[&2]["run_merge"].sim_ns, 2_000_000);
        assert_eq!(snap.per_stage[&2]["block_decode"].sim_ns, 3_000_000);
        assert_eq!(snap.per_operator["join"]["run_merge"].calls, 1);
        assert_eq!(snap.per_operator["leaf:parts"]["block_decode"].calls, 1);
        assert_eq!(
            snap.per_operator[ENGINE_OPERATOR]["stopping_check"].calls,
            1
        );
        // The whole-run phase view sums the per-stage cells.
        assert_eq!(
            snap.phases["block_decode"].sim_ns, 4_000_000,
            "1ms in stage 1 + 3ms in stage 2"
        );
        assert_eq!(snap.total_sim_ns(), 6_000_000);
    }

    #[test]
    fn top_phases_orders_by_wall_time() {
        let p = Profiler::recording(sim());
        {
            let _g = p.phase(Phase::BlockDecode);
            std::thread::sleep(Duration::from_millis(3));
        }
        {
            let _g = p.phase(Phase::Planning);
        }
        let snap = p.snapshot().unwrap();
        let top = snap.top_phases(1);
        assert_eq!(top.len(), 1);
        assert_eq!(top[0].0, "block_decode");
        assert!(top[0].1.wall_ns >= 3_000_000);
        assert!(snap.total_wall_ns() >= top[0].1.wall_ns);
        assert!(snap.phases["block_decode"].wall_p50_ns > 0);
        assert!(snap.phases["block_decode"].wall_max_ns >= snap.phases["block_decode"].wall_min_ns);
    }

    #[test]
    fn snapshot_serde_round_trips() {
        let clock = sim();
        let p = Profiler::recording(clock.clone());
        p.set_stage(1);
        {
            let _op = p.operator("leaf:t");
            let _g = p.phase(Phase::RngDraw);
            clock.charge(Duration::from_micros(250));
        }
        let snap = p.snapshot().unwrap();
        let Ok(json) = serde_json::to_string(&snap) else {
            eprintln!("skipped: offline serde stub cannot serialize");
            return;
        };
        let back: ProfileSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
        assert!(json.contains("\"rng_draw\""));
    }

    #[test]
    fn phase_names_match_the_serde_rendering() {
        for phase in Phase::ALL {
            let Ok(json) = serde_json::to_string(&phase) else {
                eprintln!("skipped: offline serde stub cannot serialize");
                return;
            };
            assert_eq!(json, format!("\"{}\"", phase.name()));
        }
    }

    #[test]
    fn clones_share_one_accumulator() {
        let clock = sim();
        let p = Profiler::recording(clock.clone());
        let p2 = p.clone();
        {
            let _g = p2.phase(Phase::Cache);
            clock.charge(Duration::from_millis(1));
        }
        assert_eq!(p.snapshot().unwrap().phases["cache"].calls, 1);
    }
}
