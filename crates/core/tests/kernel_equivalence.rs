//! Property suite pinning the keyed merge kernels to the naive
//! reference algorithm.
//!
//! [`merge_reference`] is the engine's original
//! extract-per-comparison merge, kept verbatim as an oracle. The
//! overhauled hot path — [`sort_run`] + [`merge_keyed`] over
//! precomputed [`KeyColumn`]s — must agree with it **tuple for
//! tuple** on arbitrary runs: join and intersect, single- and
//! multi-column keys, duplicate-heavy groups, and empty runs.

use proptest::prelude::*;

use eram_core::{merge_keyed, merge_reference, sort_run, KeySpec, MergeKind};
use eram_storage::{Tuple, Value};

const COLS: usize = 3;

fn tuple(vals: Vec<i64>) -> Tuple {
    Tuple::new(vals.into_iter().map(Value::Int).collect())
}

/// Runs drawn from a tiny value domain so equal-key groups (and fully
/// equal tuples) are common — the regime where the group-end scans do
/// the most work.
fn arb_run(max_len: usize) -> impl Strategy<Value = Vec<Tuple>> {
    prop::collection::vec(prop::collection::vec(-3i64..4, COLS), 0..max_len)
        .prop_map(|rows| rows.into_iter().map(tuple).collect())
}

/// A non-empty subset of the column indices, in arbitrary order
/// (multi-column keys included).
fn arb_key_cols() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(0..COLS, 1..=COLS)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn keyed_join_matches_reference(
        mut lt in arb_run(64),
        mut rt in arb_run(64),
        lcols in arb_key_cols(),
        rcols in arb_key_cols(),
    ) {
        // Join key arity must match across sides.
        let arity = lcols.len().min(rcols.len());
        let lspec = KeySpec::Columns(lcols[..arity].to_vec());
        let rspec = KeySpec::Columns(rcols[..arity].to_vec());
        let lk = sort_run(&mut lt, &lspec);
        let rk = sort_run(&mut rt, &rspec);
        let keyed = merge_keyed(MergeKind::Join, &lt, &lk, &rt, &rk);
        let reference = merge_reference(MergeKind::Join, &lspec, &rspec, &lt, &rt);
        prop_assert_eq!(keyed, reference);
    }

    #[test]
    fn keyed_intersect_matches_reference(
        mut lt in arb_run(64),
        mut rt in arb_run(64),
    ) {
        let lk = sort_run(&mut lt, &KeySpec::Whole);
        let rk = sort_run(&mut rt, &KeySpec::Whole);
        let keyed = merge_keyed(MergeKind::Intersect, &lt, &lk, &rt, &rk);
        let reference =
            merge_reference(MergeKind::Intersect, &KeySpec::Whole, &KeySpec::Whole, &lt, &rt);
        prop_assert_eq!(keyed, reference);
    }

    #[test]
    fn sort_run_matches_sort_by_key(
        tuples in arb_run(64),
        cols in arb_key_cols(),
    ) {
        let spec = KeySpec::Columns(cols);
        let mut reference = tuples.clone();
        reference.sort_by_key(|t| spec.extract(t));

        let mut sorted = tuples;
        let keys = sort_run(&mut sorted, &spec);
        prop_assert_eq!(&sorted, &reference, "stable key order must be preserved");
        for (i, t) in sorted.iter().enumerate() {
            let expected = spec.extract(t);
            prop_assert_eq!(
                keys.key_at(&sorted, i),
                expected.values(),
                "key column misaligned at {}", i
            );
        }
    }

    #[test]
    fn whole_key_sort_matches_sort_by_key(tuples in arb_run(64)) {
        let mut reference = tuples.clone();
        reference.sort_by_key(|t| t.values().to_vec());
        let mut sorted = tuples;
        sort_run(&mut sorted, &KeySpec::Whole);
        prop_assert_eq!(sorted, reference);
    }
}

#[test]
fn empty_runs_are_a_fixed_point() {
    let spec = KeySpec::Columns(vec![0]);
    let mut empty: Vec<Tuple> = Vec::new();
    let ek = sort_run(&mut empty, &spec);
    let mut run = vec![tuple(vec![1, 2, 3])];
    let rk = sort_run(&mut run, &spec);
    for kind in [MergeKind::Join, MergeKind::Intersect] {
        assert!(merge_keyed(kind, &empty, &ek, &run, &rk).is_empty());
        assert!(merge_keyed(kind, &run, &rk, &empty, &ek).is_empty());
        assert!(merge_keyed(kind, &empty, &ek, &empty, &ek).is_empty());
    }
}
