//! `eram-explain` — render a postmortem from the engine's
//! observability artifacts.
//!
//! ```text
//! eram-explain [--trace trace.jsonl] [--outcome outcome.json]
//!              [--report report.json] [--format text|json]
//! ```
//!
//! At least one input is required. Exit status: 0 on success, 2 on
//! usage, I/O, parse, or unknown-schema-version errors (the error is
//! printed to stderr with the offending version named).

use std::process::ExitCode;

use eram_explain::{parse_outcome, parse_report, parse_trace, postmortem, ExplainError, Format};

const USAGE: &str = "eram-explain [--trace FILE] [--outcome FILE] [--report FILE] \
[--format text|json]\n\
\n\
Renders a deadline-forensics postmortem from trace JSONL (--trace),\n\
a server outcome JSON (--outcome), and/or an execution report JSON\n\
(--report). At least one input is required.";

struct Args {
    trace: Option<String>,
    outcome: Option<String>,
    report: Option<String>,
    format: Format,
}

fn parse_args(argv: &[String]) -> Result<Args, ExplainError> {
    let mut args = Args {
        trace: None,
        outcome: None,
        report: None,
        format: Format::Text,
    };
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<String, ExplainError> {
            it.next()
                .cloned()
                .ok_or_else(|| ExplainError::Usage(format!("{name} needs a value")))
        };
        match flag.as_str() {
            "--trace" => args.trace = Some(value("--trace")?),
            "--outcome" => args.outcome = Some(value("--outcome")?),
            "--report" => args.report = Some(value("--report")?),
            "--format" => args.format = value("--format")?.parse()?,
            "--help" | "-h" => return Err(ExplainError::Usage(String::new())),
            other => {
                return Err(ExplainError::Usage(format!("unknown flag {other:?}")));
            }
        }
    }
    if args.trace.is_none() && args.outcome.is_none() && args.report.is_none() {
        return Err(ExplainError::Usage(
            "at least one of --trace/--outcome/--report is required".to_string(),
        ));
    }
    Ok(args)
}

fn read(what: &'static str, path: &str) -> Result<String, ExplainError> {
    std::fs::read_to_string(path).map_err(|e| ExplainError::Parse {
        what,
        line: 0,
        message: format!("{path}: {e}"),
    })
}

fn run(argv: &[String]) -> Result<String, ExplainError> {
    let args = parse_args(argv)?;
    let trace = args
        .trace
        .as_deref()
        .map(|p| read("trace", p).and_then(|s| parse_trace(&s)))
        .transpose()?;
    let outcome = args
        .outcome
        .as_deref()
        .map(|p| read("outcome", p).and_then(|s| parse_outcome(&s)))
        .transpose()?;
    let report = args
        .report
        .as_deref()
        .map(|p| read("report", p).and_then(|s| parse_report(&s)))
        .transpose()?;
    let pm = postmortem(trace.as_deref(), outcome.as_ref(), report.as_ref());
    Ok(pm.render(args.format))
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    match run(&argv) {
        Ok(rendered) => {
            print!("{rendered}");
            ExitCode::SUCCESS
        }
        Err(ExplainError::Usage(msg)) => {
            if msg.is_empty() {
                eprintln!("{USAGE}");
            } else {
                eprintln!("error: {msg}\n\n{USAGE}");
            }
            ExitCode::from(2)
        }
        Err(err) => {
            eprintln!("error: {err}");
            ExitCode::from(2)
        }
    }
}
