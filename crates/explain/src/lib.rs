//! Deadline forensics: turn the engine's observability artifacts into
//! postmortems.
//!
//! The engine emits three kinds of evidence — clock-stamped trace
//! JSONL ([`TraceRecord`]), execution reports
//! ([`ExecutionReport`]), and serving outcomes ([`ServerOutcome`]
//! with the per-tenant [`TenantLedger`]). This crate closes the loop
//! from "a deadline was missed / a job was shed / a CI went wide"
//! back to a cause:
//!
//! * **Quota-spend waterfall** ([`waterfall`]) — per stage: the
//!   fraction and cost the strategy predicted, the cost actually
//!   charged, and the running cumulative spend against the quota.
//! * **Convergence timeline** ([`convergence_timeline`],
//!   [`group_freezes`]) — the CI half-width after every draw batch,
//!   and the stage at which each GROUP BY group froze.
//! * **Deadline-miss attribution** ([`attribute`]) — which stage
//!   overran and which consumer (block draws, retry backoff, lost
//!   blocks) ate the slack inside it.
//! * **Per-tenant SLO tables** ([`tenant_rows`]) — admitted vs
//!   refused vs shed, deadlines met vs missed, granted-vs-spent
//!   quota, value-weighted slack.
//!
//! Everything here is a pure function over already-recorded data: no
//! clock, no RNG, no storage. Parsing validates `schema_version` on
//! every ingested artifact and fails with a structured
//! [`ExplainError::UnknownSchemaVersion`] naming the offending
//! version rather than a parse panic. The rendered postmortem
//! ([`Postmortem::render`]) is deterministic: byte-identical for
//! byte-identical inputs, in both `--format text` and `--format
//! json`.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use serde::{Deserialize, Serialize};
use serde_json::Value as JsonValue;

use eram_core::obs::{TraceKind, TraceRecord, SCHEMA_VERSION};
use eram_core::server::{DecisionAction, TenantLedger};
use eram_core::{ExecutionReport, JobState, ServerOutcome};

/// The newest observability schema this build understands.
pub const SUPPORTED_SCHEMA_VERSION: u32 = SCHEMA_VERSION;

/// Why an artifact could not be ingested or explained.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExplainError {
    /// The artifact names a schema version newer than this build
    /// understands. Re-run with a newer `eram-explain` (versions at
    /// or below `supported` are accepted; this is strictly a
    /// forward-compatibility refusal, not a parse failure).
    UnknownSchemaVersion {
        /// Which artifact ("trace", "report", "outcome").
        what: &'static str,
        /// The version the artifact declared.
        found: u32,
        /// The newest version this build accepts.
        supported: u32,
    },
    /// The artifact did not parse.
    Parse {
        /// Which artifact.
        what: &'static str,
        /// 1-based line (JSONL) or 0 for whole-document parses.
        line: usize,
        /// The underlying parser message.
        message: String,
    },
    /// Bad command-line usage (binary only).
    Usage(String),
}

impl std::fmt::Display for ExplainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExplainError::UnknownSchemaVersion {
                what,
                found,
                supported,
            } => write!(
                f,
                "{what}: unknown schema_version {found} (this build supports <= {supported})"
            ),
            ExplainError::Parse {
                what,
                line,
                message,
            } => {
                if *line == 0 {
                    write!(f, "{what}: parse error: {message}")
                } else {
                    write!(f, "{what}: parse error at line {line}: {message}")
                }
            }
            ExplainError::Usage(msg) => write!(f, "usage: {msg}"),
        }
    }
}

impl std::error::Error for ExplainError {}

fn check_version(what: &'static str, found: u32) -> Result<(), ExplainError> {
    if found > SUPPORTED_SCHEMA_VERSION {
        return Err(ExplainError::UnknownSchemaVersion {
            what,
            found,
            supported: SUPPORTED_SCHEMA_VERSION,
        });
    }
    Ok(())
}

// ---------------------------------------------------------------
// Ingest
// ---------------------------------------------------------------

#[derive(Deserialize)]
struct TraceHeader {
    schema_version: u32,
}

/// Parses trace JSONL (a `{"schema_version":N}` header line followed
/// by one [`TraceRecord`] per line), validating the version.
pub fn parse_trace(input: &str) -> Result<Vec<TraceRecord>, ExplainError> {
    let mut lines = input
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty());
    let Some((_, header)) = lines.next() else {
        return Err(ExplainError::Parse {
            what: "trace",
            line: 1,
            message: "empty trace (missing schema_version header)".into(),
        });
    };
    let header: TraceHeader = serde_json::from_str(header).map_err(|e| ExplainError::Parse {
        what: "trace",
        line: 1,
        message: format!("bad schema_version header: {e}"),
    })?;
    check_version("trace", header.schema_version)?;
    let mut records = Vec::new();
    for (i, line) in lines {
        records.push(serde_json::from_str::<TraceRecord>(line).map_err(|e| {
            ExplainError::Parse {
                what: "trace",
                line: i + 1,
                message: e.to_string(),
            }
        })?);
    }
    Ok(records)
}

/// Parses a [`ServerOutcome`] JSON document, validating the version.
pub fn parse_outcome(input: &str) -> Result<ServerOutcome, ExplainError> {
    let outcome: ServerOutcome = serde_json::from_str(input).map_err(|e| ExplainError::Parse {
        what: "outcome",
        line: 0,
        message: e.to_string(),
    })?;
    check_version("outcome", outcome.schema_version)?;
    if let Some(ledger) = &outcome.ledger {
        check_version("outcome.ledger", ledger.schema_version)?;
    }
    Ok(outcome)
}

/// Parses an [`ExecutionReport`] JSON document, validating the
/// version.
pub fn parse_report(input: &str) -> Result<ExecutionReport, ExplainError> {
    let report: ExecutionReport = serde_json::from_str(input).map_err(|e| ExplainError::Parse {
        what: "report",
        line: 0,
        message: e.to_string(),
    })?;
    check_version("report", report.schema_version)?;
    Ok(report)
}

// ---------------------------------------------------------------
// Field helpers
// ---------------------------------------------------------------

fn f_u64(r: &TraceRecord, key: &str) -> Option<u64> {
    r.fields.get(key).and_then(JsonValue::as_u64)
}

fn f_f64(r: &TraceRecord, key: &str) -> Option<f64> {
    r.fields.get(key).and_then(JsonValue::as_f64)
}

fn f_bool(r: &TraceRecord, key: &str) -> Option<bool> {
    r.fields.get(key).and_then(JsonValue::as_bool)
}

fn f_str<'a>(r: &'a TraceRecord, key: &str) -> Option<&'a str> {
    r.fields.get(key).and_then(JsonValue::as_str)
}

// ---------------------------------------------------------------
// Quota-spend waterfall
// ---------------------------------------------------------------

/// One stage of the quota-spend waterfall: predicted vs charged.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct WaterfallRow {
    /// 1-based stage number (as recorded in the trace).
    pub stage: usize,
    /// Sample fraction the strategy planned.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub fraction: Option<f64>,
    /// Stage cost the strategy predicted.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub predicted_ns: Option<u64>,
    /// Blocks the strategy predicted.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub predicted_blocks: Option<u64>,
    /// Charged duration of the stage span.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub actual_ns: Option<u64>,
    /// New blocks actually drawn this stage.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub blocks: Option<u64>,
    /// Whether the stage finished within the quota.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub within_quota: Option<bool>,
    /// Running total of charged stage time through this stage.
    #[serde(default)]
    pub cumulative_ns: u64,
}

/// Builds the per-stage quota-spend waterfall from a trace.
pub fn waterfall(records: &[TraceRecord]) -> Vec<WaterfallRow> {
    let mut rows: BTreeMap<usize, WaterfallRow> = BTreeMap::new();
    for r in records {
        match (r.kind, r.name.as_str()) {
            (TraceKind::Event, "plan_stage") => {
                let row = rows.entry(r.stage).or_insert_with(|| WaterfallRow {
                    stage: r.stage,
                    ..WaterfallRow::default()
                });
                row.fraction = f_f64(r, "fraction");
                row.predicted_ns = f_u64(r, "predicted_ns");
                row.predicted_blocks = f_u64(r, "predicted_blocks");
            }
            (TraceKind::End, "stage") => {
                let row = rows.entry(r.stage).or_insert_with(|| WaterfallRow {
                    stage: r.stage,
                    ..WaterfallRow::default()
                });
                row.actual_ns = r.dur_ns;
            }
            (TraceKind::Stage, "convergence") => {
                let row = rows.entry(r.stage).or_insert_with(|| WaterfallRow {
                    stage: r.stage,
                    ..WaterfallRow::default()
                });
                row.blocks = f_u64(r, "blocks_stage");
                row.within_quota = f_bool(r, "within_quota");
            }
            _ => {}
        }
    }
    let mut cumulative = 0u64;
    rows.into_values()
        .map(|mut row| {
            cumulative += row.actual_ns.unwrap_or(0);
            row.cumulative_ns = cumulative;
            row
        })
        .collect()
}

/// Builds the waterfall from a report's stage table instead of a
/// trace (the fallback when only `--report` is given).
pub fn waterfall_from_report(report: &ExecutionReport) -> Vec<WaterfallRow> {
    let mut cumulative = 0u64;
    report
        .stages
        .iter()
        .map(|s| {
            let actual = s.actual_cost.as_nanos() as u64;
            cumulative += actual;
            WaterfallRow {
                stage: s.stage,
                fraction: Some(s.fraction),
                predicted_ns: Some(s.predicted_cost.as_nanos() as u64),
                predicted_blocks: None,
                actual_ns: Some(actual),
                blocks: Some(s.blocks_drawn),
                within_quota: Some(s.within_quota),
                cumulative_ns: cumulative,
            }
        })
        .collect()
}

// ---------------------------------------------------------------
// Convergence timeline
// ---------------------------------------------------------------

/// One point of the estimator-convergence timeline (one per stage's
/// `convergence` record — i.e. per draw batch).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ConvergencePoint {
    /// Stage number.
    pub stage: usize,
    /// Clock-charged timestamp of the record.
    pub t_ns: u64,
    /// The running estimate.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub estimate: Option<f64>,
    /// 95% CI relative half-width (the quantity precision targets
    /// bound).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub rel_half_width: Option<f64>,
    /// Sample points banked so far.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub points_sampled: Option<f64>,
    /// Whether the stage landed within the quota.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub within_quota: Option<bool>,
}

/// Extracts the convergence timeline (CI width per draw batch).
pub fn convergence_timeline(records: &[TraceRecord]) -> Vec<ConvergencePoint> {
    records
        .iter()
        .filter(|r| r.kind == TraceKind::Stage && r.name == "convergence")
        .map(|r| ConvergencePoint {
            stage: r.stage,
            t_ns: r.t_ns,
            estimate: f_f64(r, "estimate"),
            rel_half_width: f_f64(r, "rel_half_width"),
            points_sampled: f_f64(r, "points_sampled"),
            within_quota: f_bool(r, "within_quota"),
        })
        .collect()
}

/// A group-freeze event: at `stage`, `newly_frozen` groups' CIs
/// converged and they stopped drawing.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct GroupFreeze {
    /// Stage at which the freeze was recorded.
    pub stage: usize,
    /// Clock-charged timestamp.
    pub t_ns: u64,
    /// Group keys that froze at this stage.
    pub newly_frozen: Vec<i64>,
    /// Total frozen groups after this stage.
    pub frozen: u64,
    /// Total groups.
    pub groups: u64,
}

/// Extracts group-freeze events from `group_convergence` records: one
/// event per stage where the frozen set grew.
pub fn group_freezes(records: &[TraceRecord]) -> Vec<GroupFreeze> {
    let mut already: BTreeMap<i64, bool> = BTreeMap::new();
    let mut freezes = Vec::new();
    for r in records {
        if r.kind != TraceKind::Stage || r.name != "group_convergence" {
            continue;
        }
        let keys: Vec<i64> = r
            .fields
            .get("keys")
            .and_then(JsonValue::as_array)
            .map(|a| a.iter().filter_map(JsonValue::as_i64).collect())
            .unwrap_or_default();
        let flags: Vec<bool> = r
            .fields
            .get("frozen_flags")
            .and_then(JsonValue::as_array)
            .map(|a| a.iter().filter_map(JsonValue::as_bool).collect())
            .unwrap_or_default();
        let mut newly = Vec::new();
        for (key, frozen) in keys.iter().zip(flags.iter()) {
            if *frozen && !already.get(key).copied().unwrap_or(false) {
                newly.push(*key);
            }
            already.insert(*key, *frozen);
        }
        if !newly.is_empty() {
            freezes.push(GroupFreeze {
                stage: r.stage,
                t_ns: r.t_ns,
                newly_frozen: newly,
                frozen: f_u64(r, "frozen").unwrap_or(0),
                groups: f_u64(r, "groups").unwrap_or(0),
            });
        }
    }
    freezes
}

// ---------------------------------------------------------------
// Deadline-miss attribution
// ---------------------------------------------------------------

/// One consumer of slack inside the overrunning scope.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SlackConsumer {
    /// What consumed the time: a span name (`block_draw`), a fault
    /// cost (`retry_backoff`), or a loss marker
    /// (`block_lost:<reason>`).
    pub name: String,
    /// Charged nanoseconds attributed to this consumer.
    pub spent_ns: u64,
    /// Occurrences.
    pub count: u64,
}

/// Where the slack went: the overrunning stage and the ranked
/// consumers inside it.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MissAttribution {
    /// The quota the attribution is judged against.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub quota_ns: Option<u64>,
    /// Total charged time of the scope.
    pub spent_ns: u64,
    /// The stage whose stopping check fired on abort/expiry, when the
    /// run overran at all.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub overrun_stage: Option<usize>,
    /// True when the overrunning stage was aborted mid-draw by the
    /// hard deadline.
    #[serde(default)]
    pub aborted: bool,
    /// The top slack consumer — the phase/operator/fault the
    /// postmortem names.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub culprit: Option<String>,
    /// All consumers in the attributed scope, heaviest first.
    pub consumers: Vec<SlackConsumer>,
}

/// Attributes the slack of a trace (or a per-job slice of one): finds
/// the overrunning stage — the one whose `stopping_check` fired on
/// `aborted` or `deadline_expired` — and ranks the charged time
/// consumers inside it. When nothing overran, the whole trace is the
/// scope (the ranking then describes where the quota went, which is
/// the same question without the blame).
pub fn attribute(records: &[TraceRecord], quota_ns: Option<u64>) -> MissAttribution {
    let spent_ns = records
        .iter()
        .rev()
        .find(|r| r.kind == TraceKind::End && r.name == "execute")
        .and_then(|r| r.dur_ns)
        .or_else(|| match (records.first(), records.last()) {
            (Some(first), Some(last)) => Some(last.t_ns.saturating_sub(first.t_ns)),
            _ => None,
        })
        .unwrap_or(0);
    let deciding = records
        .iter()
        .find(|r| r.name == "stopping_check" && f_bool(r, "stop") == Some(true));
    let aborted = deciding.and_then(|r| f_bool(r, "aborted")).unwrap_or(false);
    let expired = deciding
        .and_then(|r| f_bool(r, "deadline_expired"))
        .unwrap_or(false);
    let overrun_stage = if aborted || expired {
        deciding.map(|r| r.stage)
    } else {
        None
    };
    let mut consumers: BTreeMap<String, SlackConsumer> = BTreeMap::new();
    let mut add = |name: String, spent: u64| {
        let c = consumers.entry(name.clone()).or_insert(SlackConsumer {
            name,
            spent_ns: 0,
            count: 0,
        });
        c.spent_ns += spent;
        c.count += 1;
    };
    for r in records {
        if let Some(stage) = overrun_stage {
            if r.stage != stage {
                continue;
            }
        }
        match (r.kind, r.name.as_str()) {
            // Inner spans: block draws and anything the executor
            // nests inside a stage. The stage/execute spans are the
            // scope itself, not consumers of it.
            (TraceKind::End, name) if name != "stage" && name != "execute" => {
                add(name.to_string(), r.dur_ns.unwrap_or(0));
            }
            (TraceKind::Event, "retry") => {
                add(
                    "retry_backoff".to_string(),
                    f_u64(r, "backoff_ns").unwrap_or(0),
                );
            }
            (TraceKind::Event, "block_lost") => {
                let reason = f_str(r, "reason").unwrap_or("unknown");
                add(format!("block_lost:{reason}"), 0);
            }
            _ => {}
        }
    }
    let mut consumers: Vec<SlackConsumer> = consumers.into_values().collect();
    consumers.sort_by(|a, b| b.spent_ns.cmp(&a.spent_ns).then(a.name.cmp(&b.name)));
    let culprit = consumers.first().map(|c| c.name.clone());
    MissAttribution {
        quota_ns,
        spent_ns,
        overrun_stage,
        aborted,
        culprit,
        consumers,
    }
}

// ---------------------------------------------------------------
// Server-trace carving and tenant tables
// ---------------------------------------------------------------

/// One job's slice of a serving trace, carved at its grant and
/// terminal `server.decision` records. Jobs execute one at a time, so
/// the records between the two belong to this job's engine run.
#[derive(Debug, Clone, PartialEq)]
pub struct JobWindow {
    /// The job (tenant) name.
    pub job: String,
    /// Index of the grant record in the trace.
    pub start: usize,
    /// Index one past the terminal (done/fail) record.
    pub end: usize,
    /// The granted quota.
    pub grant_ns: Option<u64>,
    /// Time the job consumed.
    pub spent_ns: Option<u64>,
    /// Whether it answered by its deadline (done records only).
    pub met: Option<bool>,
}

/// Carves a serving trace into per-job windows using the
/// `server.decision` audit events.
pub fn job_windows(records: &[TraceRecord]) -> Vec<JobWindow> {
    let mut windows: Vec<JobWindow> = Vec::new();
    let mut open: Option<JobWindow> = None;
    for (i, r) in records.iter().enumerate() {
        if r.name != "server.decision" {
            continue;
        }
        let (Some(action), Some(job)) = (f_str(r, "action"), f_str(r, "job")) else {
            continue;
        };
        match action {
            "grant" => {
                open = Some(JobWindow {
                    job: job.to_string(),
                    start: i,
                    end: i + 1,
                    grant_ns: f_u64(r, "grant_ns"),
                    spent_ns: None,
                    met: None,
                });
            }
            "done" | "fail" => {
                if let Some(mut w) = open.take() {
                    if w.job == job {
                        w.end = i + 1;
                        w.spent_ns = f_u64(r, "spent_ns");
                        w.met = f_bool(r, "met");
                        windows.push(w);
                    }
                }
            }
            _ => {}
        }
    }
    windows
}

/// One tenant's SLO row as rendered in the postmortem.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TenantRow {
    /// Tenant (job) name.
    pub tenant: String,
    /// Jobs submitted.
    pub offered: u64,
    /// Jobs that passed admission.
    pub admitted: u64,
    /// Jobs refused at admission.
    pub refused: u64,
    /// Admitted jobs evicted by shedding.
    pub shed: u64,
    /// Jobs that failed.
    pub failed: u64,
    /// Admitted jobs that ran to completion.
    pub completed: u64,
    /// Completed jobs that answered in time.
    pub deadlines_met: u64,
    /// Completed jobs that answered late.
    pub deadlines_missed: u64,
    /// Watchdog trips.
    pub watchdog_overruns: u64,
    /// Total quota granted.
    pub granted_ns: u64,
    /// Total engine time consumed.
    pub spent_ns: u64,
    /// `spent / granted` (0 when nothing was granted).
    pub spend_ratio: f64,
    /// Σ value × remaining-slack seconds over completed jobs.
    pub value_weighted_slack_secs: f64,
    /// Block draws served from a co-resident job's charged read
    /// (interleaved serving only; absent/0 in older artifacts and
    /// under the sequential oracle).
    #[serde(default)]
    pub blocks_shared: u64,
    /// Device time (ns) those shared draws spared the simulated disk.
    #[serde(default)]
    pub charge_saved_ns: u64,
}

/// Tenant SLO rows from a ledger (tenant-name order).
pub fn tenant_rows_from_ledger(ledger: &TenantLedger) -> Vec<TenantRow> {
    ledger
        .tenants
        .iter()
        .map(|(name, slo)| TenantRow {
            tenant: name.clone(),
            offered: slo.offered,
            admitted: slo.admitted,
            refused: slo.refused,
            shed: slo.shed,
            failed: slo.failed,
            completed: slo.completed,
            deadlines_met: slo.deadlines_met,
            deadlines_missed: slo.deadlines_missed,
            watchdog_overruns: slo.watchdog_overruns,
            granted_ns: slo.granted_ns,
            spent_ns: slo.spent_ns,
            spend_ratio: slo.spend_ratio(),
            value_weighted_slack_secs: slo.value_weighted_slack_secs,
            blocks_shared: slo.blocks_shared,
            charge_saved_ns: slo.charge_saved_ns,
        })
        .collect()
}

/// Tenant SLO rows derived from the outcome's job reports — the
/// fallback when the serve ran without `--ledger`. Watchdog overruns
/// are a server-wide stat and cannot be attributed per tenant from
/// reports alone, so that column stays 0 here.
pub fn tenant_rows_from_jobs(outcome: &ServerOutcome) -> Vec<TenantRow> {
    let mut rows: BTreeMap<String, TenantRow> = BTreeMap::new();
    for job in &outcome.jobs {
        let row = rows.entry(job.name.clone()).or_insert_with(|| TenantRow {
            tenant: job.name.clone(),
            ..TenantRow::default()
        });
        row.offered += 1;
        match &job.state {
            JobState::Done => {
                row.admitted += 1;
                row.completed += 1;
                if job.met() {
                    row.deadlines_met += 1;
                } else {
                    row.deadlines_missed += 1;
                }
                let spent = job.finished_at.saturating_sub(job.started_at);
                row.spent_ns += spent.as_nanos() as u64;
                row.value_weighted_slack_secs +=
                    job.value * job.deadline.saturating_sub(job.finished_at).as_secs_f64();
            }
            JobState::Refused { reason } => {
                if reason.as_str() == "shed" {
                    row.admitted += 1;
                    row.shed += 1;
                } else {
                    row.refused += 1;
                }
            }
            JobState::Failed { .. } => {
                row.failed += 1;
                let spent = job.finished_at.saturating_sub(job.started_at);
                row.spent_ns += spent.as_nanos() as u64;
            }
        }
        row.granted_ns += job.granted_quota.as_nanos() as u64;
        row.spend_ratio = if row.granted_ns == 0 {
            0.0
        } else {
            row.spent_ns as f64 / row.granted_ns as f64
        };
    }
    rows.into_values().collect()
}

/// Tenant SLO rows from an outcome: the ledger when present, else
/// derived from the job reports.
pub fn tenant_rows(outcome: &ServerOutcome) -> Vec<TenantRow> {
    match &outcome.ledger {
        Some(ledger) => tenant_rows_from_ledger(ledger),
        None => tenant_rows_from_jobs(outcome),
    }
}

// ---------------------------------------------------------------
// Postmortem assembly
// ---------------------------------------------------------------

/// One served job's summary line.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct JobSummary {
    /// Job name.
    pub job: String,
    /// Terminal state label: `done`, `refused:<reason>`, `failed`.
    pub state: String,
    /// Whether it answered by its deadline.
    pub met: bool,
    /// Granted quota.
    pub granted_ns: u64,
    /// Engine time consumed.
    pub spent_ns: u64,
    /// Shedding value.
    pub value: f64,
}

/// A per-job slack attribution inside a serving trace.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct JobAttribution {
    /// The job the window belongs to.
    pub job: String,
    /// Whether it answered by its deadline (absent for failed jobs).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub met: Option<bool>,
    /// The attribution over the job's engine records.
    pub attribution: MissAttribution,
}

/// The assembled postmortem — everything the forensics plane can say
/// about one run, deterministic and serializable.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Postmortem {
    /// The schema version this postmortem was built against.
    pub schema_version: u32,
    /// The quota (from the report, when one was given).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub quota_ns: Option<u64>,
    /// The engine's final stop reason (from the trace).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub stop_reason: Option<String>,
    /// Per-stage quota-spend waterfall.
    pub waterfall: Vec<WaterfallRow>,
    /// Estimator-convergence timeline.
    pub convergence: Vec<ConvergencePoint>,
    /// GROUP BY freeze events.
    pub group_freezes: Vec<GroupFreeze>,
    /// Whole-trace slack attribution.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub miss_attribution: Option<MissAttribution>,
    /// Per-job summaries (serving outcomes).
    pub jobs: Vec<JobSummary>,
    /// Per-job slack attributions for jobs that missed their deadline
    /// or overshot their grant (serving traces).
    pub job_attributions: Vec<JobAttribution>,
    /// Per-tenant SLO table (serving outcomes).
    pub tenants: Vec<TenantRow>,
}

/// Builds a postmortem from whichever artifacts are at hand. All
/// inputs are optional, but at least one should be present for the
/// result to say anything.
pub fn postmortem(
    trace: Option<&[TraceRecord]>,
    outcome: Option<&ServerOutcome>,
    report: Option<&ExecutionReport>,
) -> Postmortem {
    let mut pm = Postmortem {
        schema_version: SUPPORTED_SCHEMA_VERSION,
        ..Postmortem::default()
    };
    if let Some(report) = report {
        pm.quota_ns = Some(report.quota.as_nanos() as u64);
        pm.waterfall = waterfall_from_report(report);
    }
    if let Some(records) = trace {
        if pm.waterfall.is_empty() {
            pm.waterfall = waterfall(records);
        }
        pm.convergence = convergence_timeline(records);
        pm.group_freezes = group_freezes(records);
        pm.stop_reason = records
            .iter()
            .rev()
            .find(|r| r.kind == TraceKind::Event && r.name == "stop")
            .and_then(|r| f_str(r, "reason").map(str::to_string));
        pm.miss_attribution = Some(attribute(records, pm.quota_ns));
        for w in job_windows(records) {
            let overshot = match (w.spent_ns, w.grant_ns) {
                (Some(spent), Some(grant)) => spent > grant,
                _ => false,
            };
            if w.met == Some(false) || overshot {
                pm.job_attributions.push(JobAttribution {
                    job: w.job.clone(),
                    met: w.met,
                    attribution: attribute(&records[w.start..w.end], w.grant_ns),
                });
            }
        }
    }
    if let Some(outcome) = outcome {
        pm.jobs = outcome
            .jobs
            .iter()
            .map(|j| JobSummary {
                job: j.name.clone(),
                state: match &j.state {
                    JobState::Done => "done".to_string(),
                    JobState::Refused { reason } => format!("refused:{}", reason.as_str()),
                    JobState::Failed { .. } => "failed".to_string(),
                },
                met: j.met(),
                granted_ns: j.granted_quota.as_nanos() as u64,
                spent_ns: j.finished_at.saturating_sub(j.started_at).as_nanos() as u64,
                value: j.value,
            })
            .collect();
        pm.tenants = tenant_rows(outcome);
        // Without a trace, the ledger's decision log still names
        // watchdog overruns per job; surface them as attributions so
        // `--outcome`-only postmortems can answer "who overshot".
        if pm.job_attributions.is_empty() {
            if let Some(ledger) = &outcome.ledger {
                for d in &ledger.decisions {
                    if d.action == DecisionAction::Watchdog {
                        pm.job_attributions.push(JobAttribution {
                            job: d.job.clone(),
                            met: None,
                            attribution: MissAttribution {
                                quota_ns: d.grant_ns,
                                spent_ns: d.spent_ns.unwrap_or(0),
                                overrun_stage: None,
                                aborted: false,
                                culprit: Some("watchdog_overrun".to_string()),
                                consumers: Vec::new(),
                            },
                        });
                    }
                }
            }
        }
    }
    pm
}

// ---------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------

/// Output format for [`Postmortem::render`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// Fixed-width human tables.
    Text,
    /// Deterministic pretty JSON (for CI and `jq`).
    Json,
}

impl std::str::FromStr for Format {
    type Err = ExplainError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "text" => Ok(Format::Text),
            "json" => Ok(Format::Json),
            other => Err(ExplainError::Usage(format!(
                "--format must be text|json, got {other:?}"
            ))),
        }
    }
}

fn ms(ns: u64) -> String {
    format!("{:.3}", ns as f64 / 1e6)
}

impl Postmortem {
    /// Renders the postmortem. Deterministic: byte-identical output
    /// for byte-identical inputs.
    pub fn render(&self, format: Format) -> String {
        match format {
            Format::Json => {
                serde_json::to_string_pretty(self).expect("postmortem serializes") + "\n"
            }
            Format::Text => self.render_text(),
        }
    }

    fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "postmortem (schema v{})", self.schema_version);
        if let Some(q) = self.quota_ns {
            let _ = writeln!(out, "quota: {} ms", ms(q));
        }
        if let Some(reason) = &self.stop_reason {
            let _ = writeln!(out, "stop reason: {reason}");
        }
        if !self.waterfall.is_empty() {
            let _ = writeln!(out, "\n== quota-spend waterfall ==");
            let _ = writeln!(
                out,
                "{:>5} {:>10} {:>12} {:>12} {:>12} {:>8} {:>6}",
                "stage", "fraction", "predict(ms)", "actual(ms)", "cumul(ms)", "blocks", "in-q"
            );
            for row in &self.waterfall {
                let _ = writeln!(
                    out,
                    "{:>5} {:>10} {:>12} {:>12} {:>12} {:>8} {:>6}",
                    row.stage,
                    row.fraction.map_or("-".into(), |f| format!("{f:.4}")),
                    row.predicted_ns.map_or("-".into(), ms),
                    row.actual_ns.map_or("-".into(), ms),
                    ms(row.cumulative_ns),
                    row.blocks.map_or("-".into(), |b| b.to_string()),
                    row.within_quota
                        .map_or("-", |w| if w { "yes" } else { "NO" }),
                );
            }
        }
        if !self.convergence.is_empty() {
            let _ = writeln!(out, "\n== estimator convergence ==");
            let _ = writeln!(
                out,
                "{:>5} {:>14} {:>14} {:>12}",
                "stage", "estimate", "rel-half-width", "points"
            );
            for p in &self.convergence {
                let _ = writeln!(
                    out,
                    "{:>5} {:>14} {:>14} {:>12}",
                    p.stage,
                    p.estimate.map_or("-".into(), |e| format!("{e:.3}")),
                    p.rel_half_width.map_or("-".into(), |w| format!("{w:.5}")),
                    p.points_sampled.map_or("-".into(), |n| format!("{n:.0}")),
                );
            }
        }
        if !self.group_freezes.is_empty() {
            let _ = writeln!(out, "\n== group freezes ==");
            for f in &self.group_freezes {
                let _ = writeln!(
                    out,
                    "stage {:>3}: {}/{} frozen (new: {:?})",
                    f.stage, f.frozen, f.groups, f.newly_frozen
                );
            }
        }
        if let Some(attr) = &self.miss_attribution {
            let _ = writeln!(out, "\n== slack attribution ==");
            render_attribution(&mut out, attr);
        }
        if !self.jobs.is_empty() {
            let _ = writeln!(out, "\n== jobs ==");
            let _ = writeln!(
                out,
                "{:<16} {:<18} {:>4} {:>12} {:>12} {:>7}",
                "job", "state", "met", "granted(ms)", "spent(ms)", "value"
            );
            for j in &self.jobs {
                let _ = writeln!(
                    out,
                    "{:<16} {:<18} {:>4} {:>12} {:>12} {:>7}",
                    j.job,
                    j.state,
                    if j.met { "yes" } else { "NO" },
                    ms(j.granted_ns),
                    ms(j.spent_ns),
                    format!("{:.2}", j.value),
                );
            }
        }
        for ja in &self.job_attributions {
            let _ = writeln!(
                out,
                "\n== slack attribution: job {} (met: {}) ==",
                ja.job,
                ja.met.map_or("-", |m| if m { "yes" } else { "NO" }),
            );
            render_attribution(&mut out, &ja.attribution);
        }
        if !self.tenants.is_empty() {
            let _ = writeln!(out, "\n== tenant SLO table ==");
            let _ = writeln!(
                out,
                "{:<16} {:>4} {:>4} {:>4} {:>4} {:>4} {:>4} {:>4} {:>4} {:>4} {:>10} {:>10} {:>7}",
                "tenant",
                "off",
                "adm",
                "ref",
                "shed",
                "fail",
                "done",
                "met",
                "miss",
                "wdog",
                "grant(ms)",
                "spent(ms)",
                "ratio"
            );
            for t in &self.tenants {
                let _ = writeln!(
                    out,
                    "{:<16} {:>4} {:>4} {:>4} {:>4} {:>4} {:>4} {:>4} {:>4} {:>4} {:>10} {:>10} {:>7}",
                    t.tenant,
                    t.offered,
                    t.admitted,
                    t.refused,
                    t.shed,
                    t.failed,
                    t.completed,
                    t.deadlines_met,
                    t.deadlines_missed,
                    t.watchdog_overruns,
                    ms(t.granted_ns),
                    ms(t.spent_ns),
                    format!("{:.3}", t.spend_ratio),
                );
            }
            // Sharing savings: only rendered when the batch actually
            // pooled draws (interleaved serving), so postmortems of
            // sequential or pre-sharing artifacts are byte-unchanged.
            let shared: u64 = self.tenants.iter().map(|t| t.blocks_shared).sum();
            if shared > 0 {
                let saved: u64 = self.tenants.iter().map(|t| t.charge_saved_ns).sum();
                let _ = writeln!(
                    out,
                    "sharing savings: {shared} block draw(s) fed from co-resident reads, \
                     {} ms of device time spared",
                    ms(saved)
                );
                for t in self.tenants.iter().filter(|t| t.blocks_shared > 0) {
                    let _ = writeln!(
                        out,
                        "  {:<16} {:>6} shared  {:>10} ms spared",
                        t.tenant,
                        t.blocks_shared,
                        ms(t.charge_saved_ns)
                    );
                }
            }
        }
        out
    }
}

fn render_attribution(out: &mut String, attr: &MissAttribution) {
    match attr.overrun_stage {
        Some(stage) => {
            let _ = writeln!(
                out,
                "overrun at stage {stage}{}; spent {} ms{}",
                if attr.aborted {
                    " (aborted mid-draw)"
                } else {
                    ""
                },
                ms(attr.spent_ns),
                attr.quota_ns
                    .map_or(String::new(), |q| format!(" of {} ms quota", ms(q))),
            );
        }
        None => {
            let _ = writeln!(
                out,
                "no overrun; spent {} ms{}",
                ms(attr.spent_ns),
                attr.quota_ns
                    .map_or(String::new(), |q| format!(" of {} ms quota", ms(q))),
            );
        }
    }
    if let Some(culprit) = &attr.culprit {
        let _ = writeln!(out, "top consumer: {culprit}");
    }
    for c in &attr.consumers {
        let _ = writeln!(
            out,
            "  {:<24} {:>12} ms  x{}",
            c.name,
            ms(c.spent_ns),
            c.count
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(
        t_ns: u64,
        kind: TraceKind,
        name: &str,
        stage: usize,
        dur_ns: Option<u64>,
        fields: &[(&str, JsonValue)],
    ) -> TraceRecord {
        TraceRecord {
            t_ns,
            kind,
            name: name.to_string(),
            stage,
            dur_ns,
            fields: fields
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        }
    }

    fn overrun_trace() -> Vec<TraceRecord> {
        vec![
            rec(0, TraceKind::Begin, "execute", 0, None, &[]),
            rec(
                0,
                TraceKind::Event,
                "plan_stage",
                1,
                None,
                &[
                    ("fraction", JsonValue::from(0.01)),
                    ("predicted_ns", JsonValue::from(40u64)),
                    ("predicted_blocks", JsonValue::from(4u64)),
                ],
            ),
            rec(0, TraceKind::Begin, "stage", 1, None, &[]),
            rec(10, TraceKind::End, "block_draw", 1, Some(10), &[]),
            rec(50, TraceKind::End, "stage", 1, Some(50), &[]),
            rec(
                50,
                TraceKind::Stage,
                "convergence",
                1,
                None,
                &[
                    ("estimate", JsonValue::from(100.0)),
                    ("rel_half_width", JsonValue::from(0.2)),
                    ("points_sampled", JsonValue::from(10.0)),
                    ("blocks_stage", JsonValue::from(4u64)),
                    ("within_quota", JsonValue::from(true)),
                ],
            ),
            rec(
                50,
                TraceKind::Event,
                "stopping_check",
                1,
                None,
                &[
                    ("aborted", JsonValue::from(false)),
                    ("deadline_expired", JsonValue::from(false)),
                    ("precision_satisfied", JsonValue::from(false)),
                    ("stop", JsonValue::from(false)),
                ],
            ),
            rec(50, TraceKind::Begin, "stage", 2, None, &[]),
            rec(90, TraceKind::End, "block_draw", 2, Some(40), &[]),
            rec(
                95,
                TraceKind::Event,
                "retry",
                2,
                None,
                &[
                    ("attempt", JsonValue::from(1u64)),
                    ("backoff_ns", JsonValue::from(5u64)),
                ],
            ),
            rec(
                95,
                TraceKind::Event,
                "block_lost",
                2,
                None,
                &[
                    ("block", JsonValue::from(7u64)),
                    ("reason", JsonValue::from("retry_exhausted")),
                ],
            ),
            rec(120, TraceKind::End, "stage", 2, Some(70), &[]),
            rec(
                120,
                TraceKind::Event,
                "stopping_check",
                2,
                None,
                &[
                    ("aborted", JsonValue::from(true)),
                    ("deadline_expired", JsonValue::from(true)),
                    ("precision_satisfied", JsonValue::from(false)),
                    ("stop", JsonValue::from(true)),
                ],
            ),
            rec(
                120,
                TraceKind::Event,
                "stop",
                2,
                None,
                &[("reason", JsonValue::from("aborted"))],
            ),
            rec(120, TraceKind::End, "execute", 2, Some(120), &[]),
        ]
    }

    #[test]
    fn waterfall_merges_plan_span_and_convergence() {
        let rows = waterfall(&overrun_trace());
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].stage, 1);
        assert_eq!(rows[0].fraction, Some(0.01));
        assert_eq!(rows[0].predicted_ns, Some(40));
        assert_eq!(rows[0].actual_ns, Some(50));
        assert_eq!(rows[0].blocks, Some(4));
        assert_eq!(rows[0].within_quota, Some(true));
        assert_eq!(rows[0].cumulative_ns, 50);
        assert_eq!(rows[1].cumulative_ns, 120);
    }

    #[test]
    fn attribution_names_the_overrunning_stage_and_culprit() {
        let attr = attribute(&overrun_trace(), Some(100));
        assert_eq!(attr.overrun_stage, Some(2));
        assert!(attr.aborted);
        assert_eq!(attr.spent_ns, 120);
        assert_eq!(attr.culprit.as_deref(), Some("block_draw"));
        // Only stage-2 consumers are in scope: the 40 ns draw, the
        // retry backoff, and the lost block.
        assert_eq!(attr.consumers.len(), 3);
        assert_eq!(attr.consumers[0].name, "block_draw");
        assert_eq!(attr.consumers[0].spent_ns, 40);
        assert_eq!(attr.consumers[1].name, "retry_backoff");
        assert_eq!(attr.consumers[1].spent_ns, 5);
        assert_eq!(attr.consumers[2].name, "block_lost:retry_exhausted");
        assert_eq!(attr.consumers[2].count, 1);
    }

    #[test]
    fn attribution_without_overrun_scopes_the_whole_trace() {
        let mut records = overrun_trace();
        // Rewrite the deciding stopping_check as a clean stop.
        for r in &mut records {
            if r.name == "stopping_check" {
                r.fields.insert("aborted".into(), JsonValue::from(false));
                r.fields
                    .insert("deadline_expired".into(), JsonValue::from(false));
            }
        }
        let attr = attribute(&records, None);
        assert_eq!(attr.overrun_stage, None);
        assert!(!attr.aborted);
        // Both stages' draws are in scope now.
        let draw = attr
            .consumers
            .iter()
            .find(|c| c.name == "block_draw")
            .unwrap();
        assert_eq!(draw.spent_ns, 50);
        assert_eq!(draw.count, 2);
    }

    #[test]
    fn convergence_timeline_reads_stage_records() {
        let points = convergence_timeline(&overrun_trace());
        assert_eq!(points.len(), 1);
        assert_eq!(points[0].stage, 1);
        assert_eq!(points[0].estimate, Some(100.0));
        assert_eq!(points[0].rel_half_width, Some(0.2));
    }

    #[test]
    fn group_freezes_emit_only_when_the_frozen_set_grows() {
        let gc = |stage: usize, flags: [bool; 3], frozen: u64| {
            rec(
                0,
                TraceKind::Stage,
                "group_convergence",
                stage,
                None,
                &[
                    ("groups", JsonValue::from(3u64)),
                    ("frozen", JsonValue::from(frozen)),
                    (
                        "keys",
                        JsonValue::Array(vec![
                            JsonValue::from(1i64),
                            JsonValue::from(2i64),
                            JsonValue::from(3i64),
                        ]),
                    ),
                    (
                        "frozen_flags",
                        JsonValue::Array(flags.iter().map(|f| JsonValue::from(*f)).collect()),
                    ),
                ],
            )
        };
        let records = vec![
            gc(1, [false, false, false], 0),
            gc(2, [true, false, false], 1),
            gc(3, [true, false, true], 2),
            gc(4, [true, false, true], 2),
        ];
        let freezes = group_freezes(&records);
        assert_eq!(freezes.len(), 2);
        assert_eq!(freezes[0].stage, 2);
        assert_eq!(freezes[0].newly_frozen, vec![1]);
        assert_eq!(freezes[1].stage, 3);
        assert_eq!(freezes[1].newly_frozen, vec![3]);
        assert_eq!(freezes[1].frozen, 2);
    }

    fn decision(t_ns: u64, action: &str, job: &str, extra: &[(&str, JsonValue)]) -> TraceRecord {
        let mut fields = vec![
            ("action", JsonValue::from(action)),
            ("job", JsonValue::from(job)),
        ];
        fields.extend(extra.iter().cloned());
        rec(t_ns, TraceKind::Event, "server.decision", 0, None, &fields)
    }

    #[test]
    fn job_windows_carve_grant_to_terminal() {
        let records = vec![
            decision(0, "admit", "a", &[]),
            decision(0, "admit", "b", &[]),
            decision(0, "grant", "a", &[("grant_ns", JsonValue::from(100u64))]),
            rec(10, TraceKind::End, "block_draw", 1, Some(10), &[]),
            decision(
                120,
                "done",
                "a",
                &[
                    ("spent_ns", JsonValue::from(120u64)),
                    ("met", JsonValue::from(true)),
                ],
            ),
            decision(120, "grant", "b", &[("grant_ns", JsonValue::from(50u64))]),
            decision(200, "fail", "b", &[("spent_ns", JsonValue::from(80u64))]),
        ];
        let windows = job_windows(&records);
        assert_eq!(windows.len(), 2);
        assert_eq!(windows[0].job, "a");
        assert_eq!(windows[0].grant_ns, Some(100));
        assert_eq!(windows[0].spent_ns, Some(120));
        assert_eq!(windows[0].met, Some(true));
        // The engine record between grant and done is inside a's window.
        assert!(records[windows[0].start..windows[0].end]
            .iter()
            .any(|r| r.name == "block_draw"));
        assert_eq!(windows[1].job, "b");
        assert_eq!(windows[1].met, None);
    }

    #[test]
    fn postmortem_flags_overshot_jobs() {
        let records = vec![
            decision(0, "grant", "a", &[("grant_ns", JsonValue::from(100u64))]),
            rec(10, TraceKind::End, "block_draw", 1, Some(150), &[]),
            decision(
                150,
                "done",
                "a",
                &[
                    ("spent_ns", JsonValue::from(150u64)),
                    ("met", JsonValue::from(true)),
                ],
            ),
        ];
        let pm = postmortem(Some(&records), None, None);
        assert_eq!(pm.job_attributions.len(), 1, "spent 150 > grant 100");
        assert_eq!(pm.job_attributions[0].job, "a");
        assert!(pm.miss_attribution.is_some());
    }

    #[test]
    fn unknown_schema_version_is_a_structured_error() {
        if serde_json::from_str::<u32>("1").is_err() {
            eprintln!("skipped: offline serde stub cannot deserialize");
            return;
        }
        let newer = SUPPORTED_SCHEMA_VERSION + 5;
        let input = format!("{{\"schema_version\":{newer}}}\n");
        match parse_trace(&input) {
            Err(ExplainError::UnknownSchemaVersion {
                what,
                found,
                supported,
            }) => {
                assert_eq!(what, "trace");
                assert_eq!(found, newer);
                assert_eq!(supported, SUPPORTED_SCHEMA_VERSION);
            }
            other => panic!("expected UnknownSchemaVersion, got {other:?}"),
        }
        // The error names the version in its rendering.
        let err = parse_trace(&input).unwrap_err();
        assert!(err.to_string().contains(&newer.to_string()), "{err}");
    }

    #[test]
    fn empty_trace_is_a_parse_error_not_a_panic() {
        match parse_trace("") {
            Err(ExplainError::Parse { what, .. }) => assert_eq!(what, "trace"),
            other => panic!("expected Parse error, got {other:?}"),
        }
    }

    #[test]
    fn sharing_savings_render_only_when_draws_were_pooled() {
        let mut pm = Postmortem {
            schema_version: SUPPORTED_SCHEMA_VERSION,
            ..Postmortem::default()
        };
        pm.tenants.push(TenantRow {
            tenant: "solo".into(),
            offered: 1,
            admitted: 1,
            completed: 1,
            deadlines_met: 1,
            granted_ns: 2_000_000,
            spent_ns: 1_000_000,
            spend_ratio: 0.5,
            ..TenantRow::default()
        });
        let without = pm.render(Format::Text);
        assert!(
            !without.contains("sharing savings"),
            "sequential artifacts must render unchanged:\n{without}"
        );
        pm.tenants.push(TenantRow {
            tenant: "pooled".into(),
            offered: 1,
            admitted: 1,
            completed: 1,
            deadlines_met: 1,
            granted_ns: 2_000_000,
            spent_ns: 1_500_000,
            spend_ratio: 0.75,
            blocks_shared: 12,
            charge_saved_ns: 36_000_000,
            ..TenantRow::default()
        });
        let with = pm.render(Format::Text);
        assert!(with.contains("sharing savings: 12 block draw(s)"), "{with}");
        assert!(with.contains("pooled"), "{with}");
        assert!(
            !with.contains("solo             ") || !with.contains("solo   0 shared"),
            "tenants with no sharing stay out of the savings list"
        );
    }

    #[test]
    fn render_text_is_deterministic() {
        let pm = postmortem(Some(&overrun_trace()), None, None);
        let a = pm.render(Format::Text);
        let b = pm.render(Format::Text);
        assert_eq!(a, b);
        assert!(a.contains("quota-spend waterfall"));
        assert!(a.contains("slack attribution"));
        assert!(a.contains("block_draw"));
    }

    #[test]
    fn render_json_round_trips() {
        if serde_json::to_string(&0u32).is_err() {
            eprintln!("skipped: offline serde stub cannot serialize");
            return;
        }
        let pm = postmortem(Some(&overrun_trace()), None, None);
        let json = pm.render(Format::Json);
        let back: Postmortem = serde_json::from_str(&json).unwrap();
        assert_eq!(back, pm);
        assert_eq!(back.render(Format::Json), json);
    }
}
