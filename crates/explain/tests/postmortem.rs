//! End-to-end forensics: real engine runs → postmortems.
//!
//! 1. **Waterfall/convergence** — a traced Figure 5.1 selection's
//!    postmortem reconstructs the stage table the report carries.
//! 2. **Deadline-miss attribution** — a deliberately overrun,
//!    fault-stormed run's postmortem names the overrunning stage and
//!    the phase that consumed the slack.
//! 3. **Serving forensics** — a ledger-enabled serve yields tenant
//!    SLO rows that cross-check the outcome's job reports, and the
//!    trace carves into per-job windows.
//! 4. **Golden postmortem** — the JSON rendering of the Figure 5.1
//!    postmortem is pinned under `tests/golden/`; drift fails.
//!    Regenerate with `BLESS=1 cargo test -p eram-explain` after an
//!    intentional change.
//!
//! Analysis tests run off in-memory [`TraceRecord`]s, so they work
//! under the offline stand-in crates too; only the JSON-touching
//! tests skip there.

use std::path::Path;
use std::time::Duration;

use eram_core::{Database, ExecutionReport, QueryServer, ServerJob, TraceRecord, Tracer};
use eram_explain::{
    attribute, convergence_timeline, job_windows, parse_trace, postmortem, tenant_rows, waterfall,
    waterfall_from_report, Format,
};
use eram_relalg::{CmpOp, Expr, Predicate};
use eram_storage::{ColumnType, FaultPlan, Schema, Tuple, Value};

/// True under the offline stand-in crates: the stub serde cannot
/// serialize, so JSON-producing tests skip.
fn stub_serde() -> bool {
    serde_json::to_string(&0u32).is_err()
}

/// The paper's Figure 5.1 artificial relation: 10 000 tuples of
/// 200 bytes, value column uniform over 0..100.
fn fig51_db(seed: u64) -> Database {
    let mut db = Database::sim_default(seed);
    let schema = Schema::new(vec![("k", ColumnType::Int), ("v", ColumnType::Int)]).padded_to(200);
    db.load_relation(
        "r",
        schema,
        (0..10_000).map(|i| Tuple::new(vec![Value::Int(i), Value::Int(i % 100)])),
    )
    .unwrap();
    db
}

fn fig51_expr() -> Expr {
    Expr::relation("r").select(Predicate::col_cmp(1, CmpOp::Lt, 50))
}

/// One deterministic traced run; returns the records and the report.
fn traced_run(
    seed: u64,
    quota: Duration,
    faults: Option<FaultPlan>,
) -> (Vec<TraceRecord>, ExecutionReport) {
    let mut db = fig51_db(seed);
    if let Some(plan) = faults {
        db.inject_faults(plan);
    }
    let tracer = Tracer::recording(db.disk().clock().clone());
    let result = db
        .count(fig51_expr())
        .within(quota)
        .seed(7)
        .tracer(tracer.clone())
        .run()
        .unwrap();
    (tracer.records(), result.report)
}

#[test]
fn waterfall_reconstructs_the_report_stage_table() {
    let (records, report) = traced_run(42, Duration::from_secs(10), None);
    let from_trace = waterfall(&records);
    let from_report = waterfall_from_report(&report);
    assert!(!from_trace.is_empty());
    assert_eq!(
        from_trace.len(),
        from_report.len(),
        "trace and report must agree on the stage count"
    );
    for (t, r) in from_trace.iter().zip(from_report.iter()) {
        assert_eq!(t.stage, r.stage);
        assert_eq!(t.fraction, r.fraction, "stage {}", t.stage);
        assert_eq!(t.blocks, r.blocks, "stage {}", t.stage);
        assert_eq!(t.within_quota, r.within_quota, "stage {}", t.stage);
    }
    // The charged stage spans sum into the cumulative column.
    let last = from_trace.last().unwrap();
    assert_eq!(
        last.cumulative_ns,
        from_trace
            .iter()
            .map(|r| r.actual_ns.unwrap_or(0))
            .sum::<u64>()
    );
    let timeline = convergence_timeline(&records);
    assert_eq!(timeline.len(), from_trace.len(), "one batch per stage");
    // CI half-widths are recorded and finite.
    for p in &timeline {
        let w = p.rel_half_width.expect("half-width recorded");
        assert!(w.is_finite() && w >= 0.0);
    }
}

#[test]
fn deadline_missed_run_names_the_phase_that_consumed_the_slack() {
    // A fault storm of transient errors plus latency spikes the
    // admission-time cost model never saw: the in-flight stage blows
    // past its prediction and the hard deadline aborts it mid-draw.
    let (records, report) = traced_run(
        42,
        Duration::from_millis(1500),
        Some(
            FaultPlan::new(0xFA11)
                .with_transient(0.4)
                .with_spikes(0.4, Duration::from_millis(100)),
        ),
    );
    let quota_ns = report.quota.as_nanos() as u64;
    assert!(report.overspent(), "the run was engineered to overrun");
    let attr = attribute(&records, Some(quota_ns));
    assert!(
        attr.overrun_stage.is_some(),
        "the aborted stage is named; health: {:?}",
        report.health
    );
    assert!(attr.aborted, "the stage was cut mid-draw");
    assert!(attr.spent_ns > quota_ns, "slack was consumed past quota");
    let culprit = attr.culprit.as_deref().expect("a culprit is named");
    assert!(
        attr.consumers.iter().any(|c| c.name == "block_draw"),
        "draw spans are the consumers: {:?}",
        attr.consumers
    );
    // The top consumer is a real phase, not an empty label.
    assert!(!culprit.is_empty());
    // The postmortem carries the same attribution.
    let pm = postmortem(Some(&records), None, Some(&report));
    let pm_attr = pm.miss_attribution.as_ref().expect("attribution present");
    assert_eq!(pm_attr.culprit.as_deref(), Some(culprit));
    assert_eq!(pm.quota_ns, Some(quota_ns));
    let text = pm.render(Format::Text);
    assert!(
        text.contains(&format!("top consumer: {culprit}")),
        "rendering names the culprit:\n{text}"
    );
}

#[test]
fn serving_postmortem_builds_tenant_tables_and_job_windows() {
    let mut db = fig51_db(37);
    db.inject_faults(FaultPlan::new(3).with_transient(0.05));
    let tracer = Tracer::recording(db.disk().clock().clone());
    let jobs = vec![
        ServerJob::count("alpha", fig51_expr(), Duration::from_secs(6)),
        ServerJob::count("beta", fig51_expr(), Duration::from_secs(14)),
        ServerJob::count("tiny", fig51_expr(), Duration::from_millis(1)),
    ];
    let outcome = QueryServer::new()
        .ledger(true)
        .tracer(tracer.clone())
        .run(&mut db, jobs);
    let records = tracer.records();

    // Tenant rows come from the ledger and cross-check the stats.
    let rows = tenant_rows(&outcome);
    assert_eq!(rows.len(), 3);
    assert_eq!(
        rows.iter().map(|r| r.offered).sum::<u64>(),
        outcome.stats.offered
    );
    assert_eq!(
        rows.iter().map(|r| r.deadlines_met).sum::<u64>(),
        outcome.stats.deadlines_met
    );
    let alpha = rows.iter().find(|r| r.tenant == "alpha").unwrap();
    assert_eq!(alpha.completed, 1);
    assert!(alpha.granted_ns > 0 && alpha.spent_ns > 0);
    assert!(alpha.spend_ratio > 0.0);

    // The trace carves into one window per executed job, and each
    // window encloses that job's engine records.
    let windows = job_windows(&records);
    assert_eq!(windows.len(), 2, "two admitted jobs executed");
    for w in &windows {
        assert!(w.grant_ns.unwrap_or(0) > 0, "{} got a grant", w.job);
        assert_eq!(w.met, Some(true), "{} met its deadline", w.job);
        assert!(
            records[w.start..w.end].iter().any(|r| r.name == "execute"),
            "{}'s window holds its engine run",
            w.job
        );
    }

    // The assembled postmortem has all three planes.
    let pm = postmortem(Some(&records), Some(&outcome), None);
    assert_eq!(pm.tenants.len(), 3);
    assert_eq!(pm.jobs.len(), 3);
    let text = pm.render(Format::Text);
    assert!(text.contains("tenant SLO table"));
    assert!(text.contains("alpha"));

    // The fallback rows (no ledger) agree with the ledger rows on
    // every count the job reports can reconstruct.
    let mut stripped = outcome.clone();
    stripped.ledger = None;
    let fallback = tenant_rows(&stripped);
    assert_eq!(fallback.len(), rows.len());
    for (f, l) in fallback.iter().zip(rows.iter()) {
        assert_eq!(f.tenant, l.tenant);
        assert_eq!(f.offered, l.offered);
        assert_eq!(f.completed, l.completed);
        assert_eq!(f.deadlines_met, l.deadlines_met);
        assert_eq!(f.refused, l.refused);
    }
}

const GOLDEN: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../tests/golden/fig5_1_select.postmortem.json"
);

#[test]
fn golden_postmortem_is_stable() {
    if stub_serde() {
        // Also keeps the stub toolchain from blessing a bogus golden.
        eprintln!("skipped: offline serde stub cannot serialize");
        return;
    }
    let mut db = fig51_db(42);
    let tracer = Tracer::recording(db.disk().clock().clone());
    let result = db
        .count(fig51_expr())
        .within(Duration::from_secs(10))
        .seed(7)
        .tracer(tracer.clone())
        .run()
        .unwrap();
    // Through the same ingestion path the binary uses: JSONL → records.
    let records = parse_trace(&tracer.to_jsonl()).expect("own trace parses");
    assert_eq!(records, tracer.records(), "JSONL round-trips the records");
    let pm = postmortem(Some(&records), None, Some(&result.report));
    let rendered = pm.render(Format::Json);
    let path = Path::new(GOLDEN);
    if std::env::var_os("BLESS").is_some() || !path.exists() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(path, &rendered).unwrap();
        eprintln!("blessed golden postmortem at {}", path.display());
        return;
    }
    let golden = std::fs::read_to_string(path).unwrap();
    assert_eq!(
        rendered, golden,
        "postmortem drifted from golden (re-bless with BLESS=1 if intentional)"
    );
}
