//! The estimator algebra: unbiased aggregate estimators as
//! composable values.
//!
//! [HoOT 88] builds each of its COUNT estimators from the same three
//! ingredients — a point estimate, a second moment (variance), and a
//! normal-theory confidence interval — and composes them through
//! sampling operators (SRS of points, cluster sampling of space
//! blocks, Goodman's correction for projections) and the linear
//! inclusion–exclusion rewrite. This module names that structure: an
//! [`AggregateEstimator`] carries `(estimate, second moment, CI)` and
//! every concrete estimator in the workspace is one of its instances:
//!
//! * [`SrsCount`] — `û(E) = N·(y/m)`, SRS of points;
//! * [`ClusterCount`] — `Ŷᵦ(E) = B·(Σyᵢ/b)`, cluster sampling of
//!   space blocks;
//! * [`DistinctCount`] — Goodman/Chao1/jackknife over sampled group
//!   occupancies (projection roots);
//! * [`SrsSum`] — `SUM(col) ≈ N·z̄` over per-point contributions;
//! * [`RatioAvg`] — `AVG(col)` as the sample mean of qualifying
//!   tuples (a ratio estimator — only valid on a trivial rewrite);
//! * [`Linear`] — `Σᵢ cᵢ·fᵢ(Eᵢ)`, the inclusion–exclusion
//!   composition with `Var = Σᵢ cᵢ²·Varᵢ` under the paper's
//!   independent-terms simplification.
//!
//! Snapshots are materialized as [`CountEstimate`] — the currency the
//! engine's stopping criteria, reports, and traces already speak.
//! Every instance reproduces the exact f64 arithmetic of the code it
//! re-expresses, so seeded runs are byte-identical across the
//! refactor.

use crate::distinct::DistinctEstimator;
use crate::estimator::CountEstimate;
use crate::srs::srs_proportion_variance;
use crate::stats::RunningMoments;

/// An unbiased aggregate estimator: a value that can, at any point of
/// a sampling plan, produce its current estimate, variance (second
/// central moment), and confidence interval.
///
/// Implementations are cheap views over accumulated sampling state —
/// constructing one allocates nothing and [`snapshot`](Self::snapshot)
/// is pure, so estimators compose freely (see [`Linear`]).
pub trait AggregateEstimator {
    /// Materializes the current state as a [`CountEstimate`]
    /// (estimate, variance, sample accounting for CI clamping).
    fn snapshot(&self) -> CountEstimate;

    /// The current point estimate.
    fn estimate(&self) -> f64 {
        self.snapshot().estimate
    }

    /// The estimated variance of the estimator.
    fn variance(&self) -> f64 {
        self.snapshot().variance
    }

    /// The second (raw) moment `E[X²] ≈ Var + estimate²` — the form
    /// in which variances travel through linear composition.
    fn second_moment(&self) -> f64 {
        let s = self.snapshot();
        s.variance + s.estimate * s.estimate
    }

    /// Two-sided normal-theory CI at `confidence` (e.g. `0.95`).
    fn ci(&self, confidence: f64) -> (f64, f64) {
        self.snapshot().ci(confidence)
    }
}

/// SRS-of-points COUNT: `û(E) = N·(y/m)` with the Cochran
/// without-replacement proportion variance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SrsCount {
    /// Point-space size `N`.
    pub total_points: f64,
    /// Points sampled so far, `m`.
    pub points_sampled: f64,
    /// 1-points found so far, `y`.
    pub ones: f64,
}

impl AggregateEstimator for SrsCount {
    fn snapshot(&self) -> CountEstimate {
        let n = self.total_points;
        let m = self.points_sampled;
        let s = if m <= 0.0 { 0.0 } else { self.ones / m };
        CountEstimate {
            estimate: n * s,
            variance: n * n * srs_proportion_variance(s, n, m),
            points_sampled: m,
            total_points: n,
        }
    }
}

/// Cluster-sampling COUNT: `Ŷᵦ(E) = B·(Σyᵢ/b)` with the one-stage
/// cluster-total variance `B²·(1−b/B)·s²_y/b`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterCount<'a> {
    /// Space blocks in the whole point space, `B`.
    pub total_space_blocks: f64,
    /// Space blocks evaluated so far, `b`.
    pub blocks_seen: f64,
    /// Running moments of the per-block 1-point totals `yᵢ`.
    pub block_ones: &'a RunningMoments,
    /// Point-space size `N` (CI clamping only).
    pub total_points: f64,
    /// Points covered by the evaluated blocks (sample accounting).
    pub points_seen: f64,
}

impl AggregateEstimator for ClusterCount<'_> {
    fn snapshot(&self) -> CountEstimate {
        if self.blocks_seen < 1.0 {
            return CountEstimate {
                estimate: 0.0,
                variance: 0.0,
                points_sampled: 0.0,
                total_points: self.total_points,
            };
        }
        let b = self.blocks_seen;
        let big_b = self.total_space_blocks;
        let estimate = big_b * self.block_ones.mean();
        let fpc = if big_b > 0.0 {
            (1.0 - b / big_b).max(0.0)
        } else {
            0.0
        };
        let variance = big_b * big_b * fpc * self.block_ones.variance() / b;
        CountEstimate {
            estimate,
            variance,
            points_sampled: self.points_seen,
            total_points: self.total_points,
        }
    }
}

/// Distinct-count over sampled group occupancies (projection roots):
/// Goodman's unbiased estimator by default, Chao1/jackknife for the
/// small-fraction regime, with the SRS plug-in variance on the
/// distinct rate (the paper reports no closed-form Goodman variance).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistinctCount<'a> {
    /// Which distinct-classes estimator corrects the raw count.
    pub distinct: DistinctEstimator,
    /// Pre-projection population size the correction extrapolates to.
    pub population: f64,
    /// Sampled occupancy of each distinct class seen so far.
    pub occupancies: &'a [u64],
    /// Points sampled so far, `m` (sample accounting).
    pub points_sampled: f64,
    /// Point-space size `N` (CI clamping only).
    pub total_points: f64,
}

impl AggregateEstimator for DistinctCount<'_> {
    fn snapshot(&self) -> CountEstimate {
        let sample: u64 = self.occupancies.iter().sum();
        let estimate = self.distinct.estimate(self.population, self.occupancies);
        let d = self.occupancies.len() as f64;
        let rate = if sample > 0 { d / sample as f64 } else { 0.0 };
        let variance = self.population
            * self.population
            * srs_proportion_variance(rate, self.population, sample as f64);
        CountEstimate {
            estimate,
            variance,
            points_sampled: self.points_sampled,
            total_points: self.total_points,
        }
    }
}

/// SRS SUM: attach `z = col(tuple)` to every 1-point (0 elsewhere);
/// then `SUM ≈ N·z̄` with variance `N²·(1−m/N)·s²_z/m`. The snapshot
/// reports `total_points = ∞` so the CI is not clamped at `N` (sums
/// are not bounded by the point-space size).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SrsSum {
    /// Point-space size `N`.
    pub total_points: f64,
    /// Points sampled so far, `m`.
    pub points_sampled: f64,
    /// `Σz` over the sampled points.
    pub sum: f64,
    /// `Σz²` over the sampled points.
    pub sum_sq: f64,
}

impl AggregateEstimator for SrsSum {
    fn snapshot(&self) -> CountEstimate {
        let m = self.points_sampled;
        if m <= 0.0 {
            return CountEstimate {
                estimate: 0.0,
                variance: 0.0,
                points_sampled: 0.0,
                total_points: f64::INFINITY,
            };
        }
        let total_points = self.total_points;
        let mean = self.sum / m;
        let estimate = total_points * mean;
        let variance = if m > 1.0 && total_points > m {
            let s2 = ((self.sum_sq - self.sum * self.sum / m) / (m - 1.0)).max(0.0);
            total_points * total_points * (1.0 - m / total_points) * s2 / m
        } else {
            0.0
        };
        CountEstimate {
            estimate,
            variance,
            points_sampled: m,
            total_points: f64::INFINITY,
        }
    }
}

/// Ratio-estimator AVG: the sampled 1-points are an SRS of the
/// qualifying population, so their sample mean estimates `AVG(col)`
/// with variance `s²_v/y`, finite-population-corrected against the
/// estimated qualifying total `N·(y/m)`. Not additive — valid only on
/// a trivial (union/difference-free) rewrite.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RatioAvg {
    /// Qualifying tuples found so far, `y`.
    pub ones: f64,
    /// Points sampled so far, `m`.
    pub points_sampled: f64,
    /// Point-space size `N` (for the qualifying-total extrapolation).
    pub total_points: f64,
    /// `Σv` over the qualifying tuples.
    pub sum: f64,
    /// `Σv²` over the qualifying tuples.
    pub sum_sq: f64,
}

impl AggregateEstimator for RatioAvg {
    fn snapshot(&self) -> CountEstimate {
        let y = self.ones;
        if y <= 0.0 {
            return CountEstimate {
                estimate: 0.0,
                variance: 0.0,
                points_sampled: self.points_sampled,
                total_points: f64::INFINITY,
            };
        }
        let mean = self.sum / y;
        let variance = if y > 1.0 {
            let s2 = ((self.sum_sq - self.sum * self.sum / y) / (y - 1.0)).max(0.0);
            let est_qualifying = if self.points_sampled > 0.0 {
                self.total_points * y / self.points_sampled
            } else {
                y
            };
            let fpc = (1.0 - y / est_qualifying.max(y)).max(0.0);
            fpc * s2 / y
        } else {
            0.0
        };
        CountEstimate {
            estimate: mean,
            variance,
            points_sampled: self.points_sampled,
            total_points: f64::INFINITY,
        }
    }
}

/// Linear composition `Σᵢ cᵢ·fᵢ(Eᵢ)` — the inclusion–exclusion
/// rewrite applied to any additive member estimators. Variances add
/// as `Σᵢ cᵢ²·Varᵢ` (terms treated as independent, the paper's own
/// simplification), the estimate is clamped at 0 (counts and
/// non-negative sums cannot go below it), and the support columns
/// accumulate so stopping criteria keep working on the composite.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Linear {
    terms: Vec<(i64, CountEstimate)>,
}

impl Linear {
    /// An empty composition (estimate 0, variance 0).
    pub fn new() -> Self {
        Linear::default()
    }

    /// Adds a member estimate with its inclusion–exclusion
    /// coefficient.
    pub fn push(&mut self, coefficient: i64, term: CountEstimate) {
        self.terms.push((coefficient, term));
    }

    /// Builder-style [`push`](Self::push).
    #[must_use]
    pub fn with(mut self, coefficient: i64, term: CountEstimate) -> Self {
        self.push(coefficient, term);
        self
    }

    /// The member terms added so far.
    pub fn terms(&self) -> &[(i64, CountEstimate)] {
        &self.terms
    }
}

impl AggregateEstimator for Linear {
    fn snapshot(&self) -> CountEstimate {
        let mut estimate = 0.0;
        let mut variance = 0.0;
        let mut points = 0.0;
        let mut total = 0.0;
        for (c, e) in &self.terms {
            let cf = *c as f64;
            estimate += cf * e.estimate;
            variance += cf * cf * e.variance;
            points += e.points_sampled;
            total += cf.abs() * e.total_points;
        }
        CountEstimate {
            estimate: estimate.max(0.0),
            variance,
            points_sampled: points,
            total_points: total,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn srs_count_matches_hand_formula() {
        let e = SrsCount {
            total_points: 10_000.0,
            points_sampled: 10.0,
            ones: 3.0,
        };
        let s = e.snapshot();
        assert!((s.estimate - 3_000.0).abs() < 1e-9);
        assert!(s.variance > 0.0);
        assert_eq!(s.total_points, 10_000.0);
        // Degenerate: no sample yet.
        let empty = SrsCount {
            total_points: 10_000.0,
            points_sampled: 0.0,
            ones: 0.0,
        };
        assert_eq!(empty.estimate(), 0.0);
        assert_eq!(empty.variance(), 0.0);
    }

    #[test]
    fn cluster_count_matches_hand_formula() {
        let mut moments = RunningMoments::new();
        for ones in [2.0, 1.0, 0.0, 3.0] {
            moments.push(ones);
        }
        let e = ClusterCount {
            total_space_blocks: 2_000.0,
            blocks_seen: 4.0,
            block_ones: &moments,
            total_points: 10_000.0,
            points_seen: 20.0,
        };
        let s = e.snapshot();
        assert!((s.estimate - 3_000.0).abs() < 1e-9);
        assert!(s.variance > 0.0);
    }

    #[test]
    fn sum_scales_sample_mean_and_reports_unclamped_support() {
        let e = SrsSum {
            total_points: 100.0,
            points_sampled: 10.0,
            sum: 30.0,
            sum_sq: 200.0,
        };
        let s = e.snapshot();
        assert!((s.estimate - 300.0).abs() < 1e-9);
        assert!(s.variance > 0.0);
        assert_eq!(s.total_points, f64::INFINITY);
    }

    #[test]
    fn avg_is_sample_mean_of_qualifiers() {
        let e = RatioAvg {
            ones: 5.0,
            points_sampled: 50.0,
            total_points: 1_000.0,
            sum: 25.0,
            sum_sq: 135.0,
        };
        let s = e.snapshot();
        assert!((s.estimate - 5.0).abs() < 1e-9);
        assert!(s.variance > 0.0);
    }

    #[test]
    fn second_moment_is_variance_plus_square() {
        let e = SrsCount {
            total_points: 1_000.0,
            points_sampled: 100.0,
            ones: 40.0,
        };
        let s = e.snapshot();
        assert!((e.second_moment() - (s.variance + s.estimate * s.estimate)).abs() < 1e-9);
    }

    #[test]
    fn linear_composes_terms_with_coefficients() {
        let a = SrsCount {
            total_points: 1_000.0,
            points_sampled: 100.0,
            ones: 40.0,
        }
        .snapshot();
        let b = SrsCount {
            total_points: 1_000.0,
            points_sampled: 100.0,
            ones: 10.0,
        }
        .snapshot();
        let composite = Linear::new().with(1, a).with(-1, b).snapshot();
        assert!((composite.estimate - (a.estimate - b.estimate)).abs() < 1e-9);
        assert!((composite.variance - (a.variance + b.variance)).abs() < 1e-9);
        assert_eq!(
            composite.points_sampled,
            a.points_sampled + b.points_sampled
        );
        // Negative linear combinations clamp at 0.
        let clamped = Linear::new().with(-1, a).snapshot();
        assert_eq!(clamped.estimate, 0.0);
    }

    #[test]
    fn distinct_count_uses_the_configured_estimator() {
        let occ = [3u64, 1, 1, 2];
        let goodman = DistinctCount {
            distinct: DistinctEstimator::Goodman,
            population: 100.0,
            occupancies: &occ,
            points_sampled: 7.0,
            total_points: 100.0,
        };
        let s = goodman.snapshot();
        assert_eq!(s.estimate, DistinctEstimator::Goodman.estimate(100.0, &occ));
        assert!(s.variance > 0.0);
        // Empty occupancy set is degenerate, not a panic.
        let empty = DistinctCount {
            distinct: DistinctEstimator::Goodman,
            population: 100.0,
            occupancies: &[],
            points_sampled: 0.0,
            total_points: 100.0,
        };
        assert_eq!(empty.snapshot().variance, 0.0);
    }
}
