//! Simple random sampling without replacement.
//!
//! "Simple random sampling is a method of selecting m elements out of
//! N such that each one of the possible samples that contain m
//! elements has an equal chance of being selected. Since a unit that
//! is already selected is removed from the population for all
//! subsequent draws, this method is also called random sampling
//! *without* replacement."

use rand::Rng;
use std::collections::HashSet;

/// Draws `m` distinct indices uniformly from `0..n` (Floyd's
/// algorithm: O(m) expected time, O(m) space).
///
/// # Panics
/// Panics if `m > n`.
pub fn sample_without_replacement<R: Rng + ?Sized>(n: u64, m: u64, rng: &mut R) -> Vec<u64> {
    assert!(m <= n, "cannot draw {m} of {n} without replacement");
    let mut chosen: HashSet<u64> = HashSet::with_capacity(usize::try_from(m).expect("fits"));
    let mut out = Vec::with_capacity(usize::try_from(m).expect("fits"));
    for j in (n - m)..n {
        let t = rng.gen_range(0..=j);
        let pick = if chosen.contains(&t) { j } else { t };
        chosen.insert(pick);
        out.push(pick);
    }
    out
}

/// Variance of a sample proportion under SRS without replacement
/// (Cochran 1977): for a population of `n` points with true
/// proportion `s`, a sample of `m` points has
/// `Var(ŝ) = s(1−s)(n−m) / (m(n−1))`.
///
/// This is the approximation the paper plugs into equation (3.3):
/// "we have chosen to use the variance formula for simple random
/// sampling (without replacement of points) as an approximation to
/// `Var(selᵢ)`" — with the sampled selectivity standing in for `s`.
///
/// Returns 0 for degenerate inputs (`m = 0`, `n ≤ 1`, or `m ≥ n`,
/// where a census has no sampling error).
pub fn srs_proportion_variance(s: f64, n: f64, m: f64) -> f64 {
    if m <= 0.0 || n <= 1.0 || m >= n {
        return 0.0;
    }
    let s = s.clamp(0.0, 1.0);
    s * (1.0 - s) * (n - m) / (m * (n - 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashMap;

    #[test]
    fn draws_are_distinct_and_in_range() {
        let mut rng = StdRng::seed_from_u64(9);
        for &(n, m) in &[(10u64, 10u64), (100, 7), (1, 1), (5, 0), (1000, 999)] {
            let s = sample_without_replacement(n, m, &mut rng);
            assert_eq!(s.len() as u64, m);
            let set: HashSet<u64> = s.iter().copied().collect();
            assert_eq!(set.len() as u64, m, "duplicates for n={n} m={m}");
            assert!(s.iter().all(|&x| x < n));
        }
    }

    #[test]
    fn full_draw_is_permutation_of_population() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut s = sample_without_replacement(20, 20, &mut rng);
        s.sort_unstable();
        assert_eq!(s, (0..20).collect::<Vec<u64>>());
    }

    #[test]
    #[should_panic(expected = "without replacement")]
    fn oversized_draw_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = sample_without_replacement(3, 4, &mut rng);
    }

    #[test]
    fn inclusion_probability_is_uniform() {
        // Each of 10 items should appear in a 3-of-10 sample with
        // probability 3/10.
        let mut rng = StdRng::seed_from_u64(1234);
        let trials = 30_000;
        let mut counts: HashMap<u64, u64> = HashMap::new();
        for _ in 0..trials {
            for x in sample_without_replacement(10, 3, &mut rng) {
                *counts.entry(x).or_default() += 1;
            }
        }
        for x in 0..10 {
            let p = *counts.get(&x).unwrap_or(&0) as f64 / trials as f64;
            assert!((p - 0.3).abs() < 0.02, "item {x}: p={p}");
        }
    }

    #[test]
    fn variance_formula_matches_census_and_degenerate_cases() {
        assert_eq!(srs_proportion_variance(0.5, 100.0, 100.0), 0.0);
        assert_eq!(srs_proportion_variance(0.5, 100.0, 0.0), 0.0);
        assert_eq!(srs_proportion_variance(0.5, 1.0, 1.0), 0.0);
        // Known value: s=0.5, n=100, m=10 → 0.25*90/(10*99).
        let v = srs_proportion_variance(0.5, 100.0, 10.0);
        assert!((v - 0.25 * 90.0 / 990.0).abs() < 1e-12);
    }

    #[test]
    fn variance_formula_matches_monte_carlo() {
        // Population of 200 points, 60 ones. Sample 40 without
        // replacement; empirical Var(ŝ) should match the formula.
        let n = 200u64;
        let ones = 60u64;
        let m = 40u64;
        let mut rng = StdRng::seed_from_u64(77);
        let mut moments = crate::stats::RunningMoments::new();
        for _ in 0..20_000 {
            let sample = sample_without_replacement(n, m, &mut rng);
            let y = sample.iter().filter(|&&x| x < ones).count() as f64;
            moments.push(y / m as f64);
        }
        let s = ones as f64 / n as f64;
        let expected = srs_proportion_variance(s, n as f64, m as f64);
        let observed = moments.variance();
        assert!(
            (observed - expected).abs() < 0.15 * expected,
            "observed {observed} vs expected {expected}"
        );
    }
}
