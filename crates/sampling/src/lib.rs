//! # eram-sampling
//!
//! Sampling plans and statistical estimators for `COUNT(E)` queries —
//! the machinery of [HoOT 88] ("Statistical Estimators for Relational
//! Algebra Expressions", PODS 1988) that the SIGMOD 1989 paper's
//! time-constrained evaluator iterates.
//!
//! An RA expression `E` over operand relations `r₁,…,rₙ` is modeled
//! as an n-dimensional **point space** with `∏|rᵢ|` points; a point is
//! 1 iff the corresponding tuple combination yields an output tuple.
//! `COUNT(E)` is then the number of 1-points, estimated from samples:
//!
//! * [`srs`] — simple random sampling without replacement, including
//!   *staged* draws (each stage samples from the not-yet-drawn rest,
//!   as the stage loop requires);
//! * [`plan`] — the **cluster sampling plan**: one disk block per
//!   relation forms a *space block*, and blocks are the sample units;
//! * [`estimator`] — the point-space accumulator producing the
//!   `û(E) = N·(y/m)` and `Ŷᵦ(E) = B·(Σyᵢ/b)` estimates with their
//!   variance formulas and normal-theory confidence intervals;
//! * [`algebra`] — the estimator algebra those estimates instantiate:
//!   the [`AggregateEstimator`] trait carrying
//!   `(estimate, second moment, CI)` through sampling-operator
//!   composition, with COUNT/SUM/AVG/distinct instances and the
//!   [`Linear`] inclusion–exclusion combinator;
//! * [`goodman`] — Goodman's (1949) unbiased estimator of the number
//!   of distinct classes, used when `E` contains a projection;
//! * [`distinct`] — stable alternatives (Chao1, first-order
//!   jackknife) for the small-fraction regime where Goodman's
//!   unbiased estimator is too volatile;
//! * [`zerosel`] — the combinatorial zero-selectivity correction of
//!   Section 3.4 (a sampled selectivity of 0 must not be taken at
//!   face value or later stages blow the quota);
//! * [`stats`] — normal quantiles/CDF and running moments.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod algebra;
pub mod distinct;
pub mod estimator;
pub mod goodman;
pub mod plan;
pub mod srs;
pub mod stats;
pub mod zerosel;

pub use algebra::{
    AggregateEstimator, ClusterCount, DistinctCount, Linear, RatioAvg, SrsCount, SrsSum,
};
pub use distinct::{chao1, jackknife1, DistinctEstimator};
pub use estimator::{CountEstimate, PointSpaceAccumulator};
pub use goodman::goodman_estimate;
pub use plan::BlockSampler;
pub use srs::{sample_without_replacement, srs_proportion_variance};
pub use stats::{normal_cdf, normal_quantile, RunningMoments};
pub use zerosel::{zero_selectivity_closed, zero_selectivity_hypergeometric};
