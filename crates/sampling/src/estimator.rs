//! Point-space COUNT estimators.
//!
//! For a Select–Join–Intersect expression `E` with operand relations
//! `r₁,…,rₙ`, `COUNT(E)` equals the number of 1-valued points in the
//! n-dimensional point space. [HoOT 88] estimates it two ways:
//!
//! * **Simple random sampling of points**: `û(E) = N·(y/m)` where `N`
//!   is the point-space size, `m` the sampled points and `y` the
//!   sampled 1-points.
//! * **Cluster sampling of space blocks**: `Ŷᵦ(E) = B·(Σᵢ yᵢ / b)`
//!   where `B` is the number of space blocks (one disk block per
//!   relation), `b` the sampled space blocks and `yᵢ` the 1-points in
//!   the i-th sampled space block.
//!
//! [`PointSpaceAccumulator`] accumulates the per-space-block tallies
//! the evaluator produces stage by stage and exposes both estimators
//! with their variances.

use serde::{Deserialize, Serialize};

use crate::algebra::{AggregateEstimator, ClusterCount, SrsCount};
use crate::stats::{normal_quantile, RunningMoments};

/// A point estimate of `COUNT(E)` with an attached variance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CountEstimate {
    /// The estimated count.
    pub estimate: f64,
    /// The estimated variance of the estimator.
    pub variance: f64,
    /// Points sampled so far (`m`).
    pub points_sampled: f64,
    /// Point-space size (`N`).
    pub total_points: f64,
}

impl CountEstimate {
    /// Standard error of the estimate.
    pub fn std_error(&self) -> f64 {
        self.variance.max(0.0).sqrt()
    }

    /// Two-sided normal-theory confidence interval at `confidence`
    /// (e.g. `0.95`), clamped to `[0, N]`.
    ///
    /// # Panics
    /// Panics if `confidence` is outside `(0, 1)`.
    pub fn ci(&self, confidence: f64) -> (f64, f64) {
        assert!(
            confidence > 0.0 && confidence < 1.0,
            "confidence must be in (0,1)"
        );
        let z = normal_quantile(0.5 + confidence / 2.0);
        let half = z * self.std_error();
        (
            (self.estimate - half).max(0.0),
            (self.estimate + half).min(self.total_points),
        )
    }

    /// Half-width of the CI divided by the estimate; `f64::INFINITY`
    /// when the estimate is 0 (used by error-constrained stopping).
    pub fn relative_half_width(&self, confidence: f64) -> f64 {
        let (lo, hi) = self.ci(confidence);
        if self.estimate <= 0.0 {
            f64::INFINITY
        } else {
            (hi - lo) / 2.0 / self.estimate
        }
    }

    /// Fraction of the point space inspected.
    pub fn sampling_fraction(&self) -> f64 {
        if self.total_points <= 0.0 {
            1.0
        } else {
            self.points_sampled / self.total_points
        }
    }
}

/// Accumulates sampled space blocks of one point space.
#[derive(Debug, Clone, PartialEq)]
pub struct PointSpaceAccumulator {
    total_points: f64,
    total_space_blocks: f64,
    points_seen: f64,
    ones_seen: f64,
    space_blocks_seen: f64,
    block_ones: RunningMoments,
}

impl PointSpaceAccumulator {
    /// Creates an accumulator for a point space of `total_points`
    /// points organized into `total_space_blocks` space blocks.
    pub fn new(total_points: f64, total_space_blocks: f64) -> Self {
        assert!(total_points >= 0.0 && total_space_blocks >= 0.0);
        PointSpaceAccumulator {
            total_points,
            total_space_blocks,
            points_seen: 0.0,
            ones_seen: 0.0,
            space_blocks_seen: 0.0,
            block_ones: RunningMoments::new(),
        }
    }

    /// Records one evaluated space block containing `points` points of
    /// which `ones` produced output tuples.
    pub fn record_space_block(&mut self, points: f64, ones: f64) {
        debug_assert!(ones <= points, "more ones than points in a block");
        self.points_seen += points;
        self.ones_seen += ones;
        self.space_blocks_seen += 1.0;
        self.block_ones.push(ones);
    }

    /// Point-space size `N`.
    pub fn total_points(&self) -> f64 {
        self.total_points
    }

    /// Space blocks in the whole point space, `B`.
    pub fn total_space_blocks(&self) -> f64 {
        self.total_space_blocks
    }

    /// Points sampled so far, `m`.
    pub fn points_seen(&self) -> f64 {
        self.points_seen
    }

    /// 1-points found so far, `y`.
    pub fn ones_seen(&self) -> f64 {
        self.ones_seen
    }

    /// Space blocks evaluated so far, `b`.
    pub fn space_blocks_seen(&self) -> f64 {
        self.space_blocks_seen
    }

    /// The sample selectivity `y/m` (0 before any point is seen).
    pub fn selectivity(&self) -> f64 {
        if self.points_seen <= 0.0 {
            0.0
        } else {
            self.ones_seen / self.points_seen
        }
    }

    /// The SRS-of-points estimator `û = N·(y/m)` with the
    /// without-replacement proportion variance (an
    /// [`SrsCount`] instance of the estimator algebra).
    pub fn estimate_srs(&self) -> CountEstimate {
        SrsCount {
            total_points: self.total_points,
            points_sampled: self.points_seen,
            ones: self.ones_seen,
        }
        .snapshot()
    }

    /// The cluster estimator `Ŷᵦ = B·(Σyᵢ/b)` with the standard
    /// one-stage cluster-total variance
    /// `B²·(1−b/B)·s²_y/b`, `s²_y` the sample variance of block
    /// totals (a [`ClusterCount`] instance of the estimator algebra).
    pub fn estimate_cluster(&self) -> CountEstimate {
        ClusterCount {
            total_space_blocks: self.total_space_blocks,
            blocks_seen: self.space_blocks_seen,
            block_ones: &self.block_ones,
            total_points: self.total_points,
            points_seen: self.points_seen,
        }
        .snapshot()
    }

    /// The estimator the prototype reports: cluster when at least two
    /// space blocks have been evaluated (its variance needs a sample
    /// variance), SRS-of-points otherwise.
    pub fn estimate(&self) -> CountEstimate {
        if self.space_blocks_seen >= 2.0 {
            self.estimate_cluster()
        } else {
            self.estimate_srs()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::srs::sample_without_replacement;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn srs_estimator_formula() {
        let mut acc = PointSpaceAccumulator::new(10_000.0, 2_000.0);
        acc.record_space_block(5.0, 2.0);
        acc.record_space_block(5.0, 1.0);
        // y/m = 3/10 → û = 3000.
        let e = acc.estimate_srs();
        assert!((e.estimate - 3_000.0).abs() < 1e-9);
        assert!(e.variance > 0.0);
        assert!((acc.selectivity() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn cluster_estimator_formula() {
        let mut acc = PointSpaceAccumulator::new(10_000.0, 2_000.0);
        for &ones in &[2.0, 1.0, 0.0, 3.0] {
            acc.record_space_block(5.0, ones);
        }
        // mean block total = 1.5 → Ŷ = 2000·1.5 = 3000.
        let e = acc.estimate_cluster();
        assert!((e.estimate - 3_000.0).abs() < 1e-9);
        assert!(e.variance > 0.0);
        assert_eq!(acc.space_blocks_seen(), 4.0);
    }

    #[test]
    fn default_estimator_switches_to_cluster() {
        let mut acc = PointSpaceAccumulator::new(100.0, 20.0);
        acc.record_space_block(5.0, 1.0);
        assert_eq!(acc.estimate(), acc.estimate_srs());
        acc.record_space_block(5.0, 3.0);
        assert_eq!(acc.estimate(), acc.estimate_cluster());
    }

    #[test]
    fn empty_accumulator_is_degenerate() {
        let acc = PointSpaceAccumulator::new(100.0, 20.0);
        assert_eq!(acc.selectivity(), 0.0);
        assert_eq!(acc.estimate_srs().estimate, 0.0);
        assert_eq!(acc.estimate_cluster().estimate, 0.0);
        assert_eq!(acc.estimate().variance, 0.0);
    }

    #[test]
    fn census_has_zero_variance() {
        let mut acc = PointSpaceAccumulator::new(10.0, 2.0);
        acc.record_space_block(5.0, 2.0);
        acc.record_space_block(5.0, 1.0);
        let e = acc.estimate_cluster();
        assert!((e.estimate - 3.0).abs() < 1e-9);
        assert_eq!(e.variance, 0.0);
        assert_eq!(acc.estimate_srs().variance, 0.0);
    }

    #[test]
    fn confidence_interval_brackets_estimate() {
        let mut acc = PointSpaceAccumulator::new(10_000.0, 2_000.0);
        for i in 0..40 {
            acc.record_space_block(5.0, f64::from(i % 3));
        }
        let e = acc.estimate();
        let (lo, hi) = e.ci(0.95);
        assert!(lo <= e.estimate && e.estimate <= hi);
        let (lo90, hi90) = e.ci(0.90);
        assert!(hi90 - lo90 < hi - lo, "narrower interval at lower level");
        assert!(e.relative_half_width(0.95) > 0.0);
        assert!((e.sampling_fraction() - 200.0 / 10_000.0).abs() < 1e-12);
    }

    #[test]
    fn srs_estimator_is_unbiased_monte_carlo() {
        // Point space of 500 points, 120 ones. Sample 50 points per
        // trial; the mean of û should approach 120.
        let n = 500u64;
        let ones = 120u64;
        let m = 50u64;
        let mut rng = StdRng::seed_from_u64(21);
        let mut mean = RunningMoments::new();
        for _ in 0..4_000 {
            let sample = sample_without_replacement(n, m, &mut rng);
            let y = sample.iter().filter(|&&x| x < ones).count() as f64;
            let mut acc = PointSpaceAccumulator::new(n as f64, 100.0);
            acc.record_space_block(m as f64, y);
            mean.push(acc.estimate_srs().estimate);
        }
        assert!(
            (mean.mean() - ones as f64).abs() < 2.0,
            "mean estimate {} vs true {}",
            mean.mean(),
            ones
        );
    }

    #[test]
    fn cluster_estimator_is_unbiased_monte_carlo() {
        // 40 blocks of 5 points; block i has (i % 4) ones. Sample 10
        // blocks per trial.
        let block_ones: Vec<f64> = (0..40).map(|i| f64::from(i % 4)).collect();
        let truth: f64 = block_ones.iter().sum();
        let mut rng = StdRng::seed_from_u64(33);
        let mut mean = RunningMoments::new();
        for _ in 0..4_000 {
            let picks = sample_without_replacement(40, 10, &mut rng);
            let mut acc = PointSpaceAccumulator::new(200.0, 40.0);
            for &b in &picks {
                acc.record_space_block(5.0, block_ones[b as usize]);
            }
            mean.push(acc.estimate_cluster().estimate);
        }
        assert!(
            (mean.mean() - truth).abs() < 0.02 * truth,
            "mean estimate {} vs true {truth}",
            mean.mean()
        );
    }

    #[test]
    fn ci_coverage_is_near_nominal() {
        // Coverage of the 90% cluster CI should be near 0.9.
        let block_ones: Vec<f64> = (0..100).map(|i| f64::from((i * 7) % 5)).collect();
        let truth: f64 = block_ones.iter().sum();
        let mut rng = StdRng::seed_from_u64(55);
        let trials = 3_000;
        let mut covered = 0u32;
        for _ in 0..trials {
            let picks = sample_without_replacement(100, 30, &mut rng);
            let mut acc = PointSpaceAccumulator::new(500.0, 100.0);
            for &b in &picks {
                acc.record_space_block(5.0, block_ones[b as usize]);
            }
            let (lo, hi) = acc.estimate_cluster().ci(0.90);
            if lo <= truth && truth <= hi {
                covered += 1;
            }
        }
        let coverage = f64::from(covered) / f64::from(trials);
        assert!(
            (coverage - 0.90).abs() < 0.04,
            "coverage {coverage} far from nominal 0.90"
        );
    }
}
