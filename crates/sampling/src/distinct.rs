//! Alternative distinct-count estimators.
//!
//! Goodman's estimator ([`crate::goodman`]) is the unique *unbiased*
//! estimator of the number of classes but is notoriously unstable at
//! small sampling fractions (its signed-coefficient series grows like
//! `((N−n)/n)^i`). Practical systems therefore use biased but stable
//! estimators; we provide the two classics so the engine can be
//! configured per-query:
//!
//! * [`chao1`] — Chao's (1984) lower-bound estimator
//!   `D̂ = d + f₁²/(2·f₂)`: the unseen-class mass is extrapolated from
//!   the singleton/doubleton ratio. Stable, biased low for even class
//!   sizes, asymptotically a lower bound.
//! * [`jackknife1`] — the first-order jackknife
//!   `D̂ = d + ((n−1)/n)·f₁`, finite-population-corrected by the
//!   sampling fraction: `D̂ = d + (1−q)·((n−1)/n)·f₁` with
//!   `q = n/N`, so a census estimates exactly `d`.
//!
//! Both consume the same occupancy profile Goodman does (how many
//! classes were seen exactly `i` times).

/// Occupancy frequencies from class counts: `freq[i]` = number of
/// classes seen exactly `i` times (index 0 unused).
fn frequencies(class_counts: &[u64]) -> Vec<u64> {
    let max = class_counts.iter().copied().max().unwrap_or(0);
    let mut freq = vec![0u64; usize::try_from(max).expect("fits") + 1];
    for &c in class_counts {
        freq[usize::try_from(c).expect("fits")] += 1;
    }
    freq
}

/// Chao's 1984 estimator `d + f₁²/(2·f₂)` (with the standard
/// `f₁·(f₁−1)/2` correction when no doubletons were seen), clamped to
/// the feasible range `[d, d + (N − n)]`.
pub fn chao1(population_size: f64, class_counts: &[u64]) -> f64 {
    let n: u64 = class_counts.iter().sum();
    let d = class_counts.len() as f64;
    if n == 0 {
        return 0.0;
    }
    let freq = frequencies(class_counts);
    let f1 = freq.get(1).copied().unwrap_or(0) as f64;
    let f2 = freq.get(2).copied().unwrap_or(0) as f64;
    let unseen = if f2 > 0.0 {
        f1 * f1 / (2.0 * f2)
    } else {
        f1 * (f1 - 1.0).max(0.0) / 2.0
    };
    let upper = d + (population_size - n as f64).max(0.0);
    (d + unseen).clamp(d, upper)
}

/// First-order jackknife with finite-population correction:
/// `d + (1 − n/N)·((n−1)/n)·f₁`, clamped to `[d, d + (N − n)]`.
pub fn jackknife1(population_size: f64, class_counts: &[u64]) -> f64 {
    let n: u64 = class_counts.iter().sum();
    let d = class_counts.len() as f64;
    if n == 0 {
        return 0.0;
    }
    let nf = n as f64;
    let freq = frequencies(class_counts);
    let f1 = freq.get(1).copied().unwrap_or(0) as f64;
    let q = if population_size > 0.0 {
        (nf / population_size).min(1.0)
    } else {
        1.0
    };
    let upper = d + (population_size - nf).max(0.0);
    (d + (1.0 - q) * ((nf - 1.0) / nf) * f1).clamp(d, upper)
}

/// Which distinct-count estimator a projection root should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DistinctEstimator {
    /// Goodman's unbiased estimator (the paper's choice) — exact in
    /// expectation, high variance at small fractions.
    Goodman,
    /// Chao's lower-bound estimator — stable, biased low.
    Chao1,
    /// First-order jackknife with finite-population correction —
    /// stable, moderate bias. The default: closest to how later AQP
    /// systems ship.
    #[default]
    Jackknife1,
}

impl DistinctEstimator {
    /// Applies the chosen estimator to a sample occupancy profile.
    pub fn estimate(self, population_size: f64, class_counts: &[u64]) -> f64 {
        match self {
            DistinctEstimator::Goodman => {
                crate::goodman::goodman_estimate(population_size, class_counts)
            }
            DistinctEstimator::Chao1 => chao1(population_size, class_counts),
            DistinctEstimator::Jackknife1 => jackknife1(population_size, class_counts),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::srs::sample_without_replacement;
    use crate::stats::RunningMoments;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashMap;

    fn occupancies(classes: &[u64], sample: &[u64]) -> Vec<u64> {
        let mut counts: HashMap<u64, u64> = HashMap::new();
        for &i in sample {
            *counts.entry(classes[i as usize]).or_default() += 1;
        }
        counts.into_values().collect()
    }

    /// Monte-Carlo root-mean-square error of an estimator on a given
    /// class structure.
    fn rmse(
        est: DistinctEstimator,
        classes: &[u64],
        truth: f64,
        n: u64,
        trials: u64,
        seed: u64,
    ) -> f64 {
        let big_n = classes.len() as u64;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut acc = RunningMoments::new();
        for _ in 0..trials {
            let s = sample_without_replacement(big_n, n, &mut rng);
            let occ = occupancies(classes, &s);
            let e = est.estimate(big_n as f64, &occ);
            acc.push((e - truth) * (e - truth));
        }
        acc.mean().sqrt()
    }

    #[test]
    fn census_recovers_exact_for_all() {
        // 12 elements in 4 classes of 3; a full sample must give 4.
        let counts = [3u64, 3, 3, 3];
        for est in [
            DistinctEstimator::Goodman,
            DistinctEstimator::Chao1,
            DistinctEstimator::Jackknife1,
        ] {
            assert_eq!(est.estimate(12.0, &counts), 4.0, "{est:?}");
        }
    }

    #[test]
    fn empty_sample_gives_zero() {
        for est in [
            DistinctEstimator::Goodman,
            DistinctEstimator::Chao1,
            DistinctEstimator::Jackknife1,
        ] {
            assert_eq!(est.estimate(100.0, &[]), 0.0);
        }
    }

    #[test]
    fn all_estimates_stay_in_feasible_range() {
        let classes: Vec<u64> = (0..200u64).map(|i| i % 23).collect();
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..300 {
            let s = sample_without_replacement(200, 30, &mut rng);
            let occ = occupancies(&classes, &s);
            let d = occ.len() as f64;
            for est in [
                DistinctEstimator::Goodman,
                DistinctEstimator::Chao1,
                DistinctEstimator::Jackknife1,
            ] {
                let e = est.estimate(200.0, &occ);
                assert!(e >= d && e <= d + 170.0, "{est:?}: {e} vs d={d}");
            }
        }
    }

    #[test]
    fn stable_estimators_beat_goodman_at_small_fractions() {
        // 1000 elements, 100 classes of 10; sample 5 % — Goodman's
        // known blow-up regime.
        let classes: Vec<u64> = (0..1_000u64).map(|i| i / 10).collect();
        let g = rmse(DistinctEstimator::Goodman, &classes, 100.0, 50, 400, 11);
        let c = rmse(DistinctEstimator::Chao1, &classes, 100.0, 50, 400, 11);
        let j = rmse(DistinctEstimator::Jackknife1, &classes, 100.0, 50, 400, 11);
        assert!(
            c < g && j < g,
            "stable estimators must have lower RMSE: goodman {g:.1}, chao {c:.1}, jk {j:.1}"
        );
    }

    #[test]
    fn jackknife_shrinks_correction_as_sample_grows() {
        // With a near-census sample the FPC kills the f1 correction.
        let classes: Vec<u64> = (0..100u64).map(|i| i % 40).collect();
        let mut rng = StdRng::seed_from_u64(8);
        let s95 = sample_without_replacement(100, 95, &mut rng);
        let occ = occupancies(&classes, &s95);
        let d = occ.len() as f64;
        let e = jackknife1(100.0, &occ);
        assert!(
            e - d <= 5.0,
            "correction must be small near census: {e} vs {d}"
        );
    }

    #[test]
    fn chao_handles_no_doubletons() {
        // All singletons, no f2: uses f1(f1−1)/2 fallback.
        let occ = [1u64, 1, 1, 1];
        let e = chao1(100.0, &occ);
        assert!((4.0..=100.0).contains(&e));
        assert_eq!(e, (4.0 + 6.0f64).min(100.0)); // d + 4·3/2
    }

    #[test]
    fn jackknife_is_less_biased_than_raw_d() {
        // Ensemble mean of jackknife1 should land nearer the truth
        // than the naive "classes seen" count.
        let classes: Vec<u64> = (0..500u64).map(|i| i % 120).collect();
        let mut rng = StdRng::seed_from_u64(15);
        let mut mean_jk = RunningMoments::new();
        let mut mean_d = RunningMoments::new();
        for _ in 0..500 {
            let s = sample_without_replacement(500, 100, &mut rng);
            let occ = occupancies(&classes, &s);
            mean_jk.push(jackknife1(500.0, &occ));
            mean_d.push(occ.len() as f64);
        }
        let bias_jk = (mean_jk.mean() - 120.0).abs();
        let bias_d = (mean_d.mean() - 120.0).abs();
        assert!(
            bias_jk < bias_d,
            "jackknife bias {bias_jk:.1} vs naive {bias_d:.1}"
        );
    }
}
