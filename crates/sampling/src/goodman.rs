//! Goodman's estimator of the number of classes.
//!
//! "A set of tuples which have the same values for the projected
//! attributes become a single tuple. For a Select-Join-Intersect-
//! Project expression E, computing COUNT(E) is equivalent to counting
//! the number of different groups ... Goodman's estimator, based on
//! the occupancies of groups in the sample, is proposed in [HoOT 88]
//! for estimating COUNT(E)." (Goodman, *Ann. Math. Stat.* 20, 1949.)
//!
//! For a simple random sample of `n` from a population of `N`
//! partitioned into classes, with `fᵢ` = number of classes observed
//! exactly `i` times and `d = Σfᵢ` distinct classes observed:
//!
//! ```text
//! D̂ = d + Σ_{i≥1} (−1)^{i+1} · Aᵢ · fᵢ,
//! Aᵢ = Π_{j=0}^{i−1} (N−n+j)/(n−j)
//! ```
//!
//! `D̂` is the unique unbiased estimator of the number of classes when
//! `n` is at least the largest class multiplicity; it is famously
//! high-variance at small sampling fractions (Goodman himself warned
//! about this), which is why the paper pairs it with iterative
//! refinement. [`goodman_estimate`] clamps the raw value to the
//! feasible range `[d, N − n + d]`.

/// Raw (unclamped, unbiased) Goodman estimate from the sample class
/// occupancies. `class_counts[k]` is how many times the k-th distinct
/// observed class occurred in the sample; `population_size` is `N`.
///
/// # Panics
/// Panics if the occupancies sum to more than `population_size`.
pub fn goodman_raw(population_size: f64, class_counts: &[u64]) -> f64 {
    let n: u64 = class_counts.iter().sum();
    assert!(
        (n as f64) <= population_size,
        "sample larger than population"
    );
    let d = class_counts.len() as f64;
    if n == 0 {
        return 0.0;
    }

    // Occupancy frequencies f_i.
    let max_occ = class_counts.iter().copied().max().unwrap_or(0);
    let mut freq = vec![0u64; usize::try_from(max_occ).expect("fits") + 1];
    for &c in class_counts {
        freq[usize::try_from(c).expect("fits")] += 1;
    }

    let nf = n as f64;
    let big_n = population_size;
    let mut correction = 0.0;
    let mut a_i = 1.0;
    for i in 1..=max_occ {
        let j = (i - 1) as f64;
        a_i *= (big_n - nf + j) / (nf - j);
        let f_i = freq[usize::try_from(i).expect("fits")] as f64;
        if f_i > 0.0 {
            let sign = if i % 2 == 1 { 1.0 } else { -1.0 };
            correction += sign * a_i * f_i;
        }
    }
    d + correction
}

/// Goodman estimate clamped to the feasible range: at least the `d`
/// classes already observed, at most `d` plus the unobserved
/// population remainder.
pub fn goodman_estimate(population_size: f64, class_counts: &[u64]) -> f64 {
    let n: u64 = class_counts.iter().sum();
    let d = class_counts.len() as f64;
    let upper = d + (population_size - n as f64).max(0.0);
    goodman_raw(population_size, class_counts).clamp(d, upper)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::srs::sample_without_replacement;
    use crate::stats::RunningMoments;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashMap;

    /// Occupancy vector of a sample of indices given the class of
    /// each population element.
    fn occupancies(classes: &[u64], sample: &[u64]) -> Vec<u64> {
        let mut counts: HashMap<u64, u64> = HashMap::new();
        for &i in sample {
            *counts.entry(classes[i as usize]).or_default() += 1;
        }
        counts.into_values().collect()
    }

    #[test]
    fn census_recovers_exact_class_count() {
        // Population of 6 in 3 classes, full sample.
        let counts = [3u64, 2, 1];
        assert_eq!(goodman_raw(6.0, &counts), 3.0);
        assert_eq!(goodman_estimate(6.0, &counts), 3.0);
    }

    #[test]
    fn textbook_three_element_case() {
        // Population {a,a,b}, n=2. Sample {a,a}: d=1, f_2=1,
        // A_2 = (1/2)(2/1) = 1 → raw = 0. Sample {a,b}: d=2, f_1=2,
        // A_1 = 1/2 → raw = 3. Expectation = (1/3)·0 + (2/3)·3 = 2 = D.
        assert_eq!(goodman_raw(3.0, &[2]), 0.0);
        assert_eq!(goodman_raw(3.0, &[1, 1]), 3.0);
    }

    #[test]
    fn empty_sample_estimates_zero() {
        assert_eq!(goodman_raw(10.0, &[]), 0.0);
        assert_eq!(goodman_estimate(10.0, &[]), 0.0);
    }

    #[test]
    fn clamping_respects_feasible_range() {
        // Raw estimate of the {a,a} sample is 0, below d=1.
        assert_eq!(goodman_estimate(3.0, &[2]), 1.0);
    }

    #[test]
    #[should_panic(expected = "sample larger than population")]
    fn oversample_rejected() {
        let _ = goodman_raw(2.0, &[2, 1]);
    }

    #[test]
    fn unbiased_when_sample_covers_max_multiplicity() {
        // 60 elements in 20 classes of size 3; sample n=20 ≥ 3.
        let classes: Vec<u64> = (0..60u64).map(|i| i / 3).collect();
        let mut rng = StdRng::seed_from_u64(101);
        let mut mean = RunningMoments::new();
        for _ in 0..20_000 {
            let sample = sample_without_replacement(60, 20, &mut rng);
            let occ = occupancies(&classes, &sample);
            mean.push(goodman_raw(60.0, &occ));
        }
        assert!(
            (mean.mean() - 20.0).abs() < 0.25,
            "mean {} vs true 20",
            mean.mean()
        );
    }

    #[test]
    fn skewed_classes_still_unbiased() {
        // One class of size 5, plus 15 singletons (N=20, D=16), n=10.
        let mut classes: Vec<u64> = vec![0; 5];
        classes.extend(1..=15u64);
        let mut rng = StdRng::seed_from_u64(202);
        let mut mean = RunningMoments::new();
        for _ in 0..40_000 {
            let sample = sample_without_replacement(20, 10, &mut rng);
            let occ = occupancies(&classes, &sample);
            mean.push(goodman_raw(20.0, &occ));
        }
        assert!(
            (mean.mean() - 16.0).abs() < 0.2,
            "mean {} vs true 16",
            mean.mean()
        );
    }

    #[test]
    fn clamped_estimate_stays_in_range() {
        let classes: Vec<u64> = (0..100u64).map(|i| i % 7).collect();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..200 {
            let sample = sample_without_replacement(100, 10, &mut rng);
            let occ = occupancies(&classes, &sample);
            let d = occ.len() as f64;
            let e = goodman_estimate(100.0, &occ);
            assert!(e >= d && e <= d + 90.0);
        }
    }
}
