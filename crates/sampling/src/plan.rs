//! Staged block sampling — the cluster sampling plan's draw mechanism.
//!
//! "In the cluster sampling plan, a disk block is taken as a sample
//! unit (i.e., all the tuples in a disk block are taken as a whole)
//! from each operand relation." The stage loop draws a *new* set of
//! blocks at every stage ("NEW-SAMPLE-SET := New-Sample-Select(fᵢ)"),
//! never re-drawing a block sampled at an earlier stage.
//!
//! [`BlockSampler`] implements staged sampling without replacement as
//! a lazily consumed random permutation: taking the next `d` elements
//! of a uniform permutation is distributionally identical to drawing
//! `d` more blocks uniformly from the not-yet-sampled remainder, and
//! it is O(d) per stage with no rejection.

use rand::seq::SliceRandom;
use rand::Rng;

/// Draws disk blocks of one relation, without replacement, across
/// stages.
#[derive(Debug, Clone)]
pub struct BlockSampler {
    perm: Vec<u64>,
    cursor: usize,
}

impl BlockSampler {
    /// Creates a sampler over blocks `0..num_blocks`.
    pub fn new<R: Rng + ?Sized>(num_blocks: u64, rng: &mut R) -> Self {
        let mut perm: Vec<u64> = (0..num_blocks).collect();
        perm.shuffle(rng);
        BlockSampler { perm, cursor: 0 }
    }

    /// Total blocks in the relation.
    pub fn population(&self) -> u64 {
        self.perm.len() as u64
    }

    /// Blocks drawn so far (all stages combined).
    pub fn drawn(&self) -> u64 {
        self.cursor as u64
    }

    /// Blocks not yet drawn.
    pub fn remaining(&self) -> u64 {
        (self.perm.len() - self.cursor) as u64
    }

    /// Draws up to `d` new blocks (fewer if the relation is nearly
    /// exhausted), returning their indices.
    pub fn draw(&mut self, d: u64) -> &[u64] {
        let take = usize::try_from(d)
            .unwrap_or(usize::MAX)
            .min(self.perm.len() - self.cursor);
        let slice = &self.perm[self.cursor..self.cursor + take];
        self.cursor += take;
        slice
    }

    /// All blocks drawn so far, in draw order (the paper's
    /// `SAMPLE-SET`).
    pub fn sample_set(&self) -> &[u64] {
        &self.perm[..self.cursor]
    }

    /// Returns the `n` most recently drawn blocks to the population
    /// (clamped to the number actually drawn).
    ///
    /// Used when a stage aborts mid-draw: indices handed out by
    /// [`BlockSampler::draw`] whose blocks were never read must come
    /// back, or those clusters become permanently unsampleable and
    /// the estimator's renormalization silently loses their points.
    /// Rewinding the permutation cursor is exact: the un-consumed
    /// blocks are re-drawn first on the next draw, preserving the
    /// without-replacement guarantee and the draw distribution.
    pub fn unconsume(&mut self, n: u64) {
        let back = usize::try_from(n).unwrap_or(usize::MAX).min(self.cursor);
        self.cursor -= back;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashSet;

    #[test]
    fn staged_draws_never_repeat() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut s = BlockSampler::new(100, &mut rng);
        let mut seen = HashSet::new();
        for d in [10u64, 25, 40, 50] {
            for &b in s.draw(d) {
                assert!(seen.insert(b), "block {b} drawn twice");
                assert!(b < 100);
            }
        }
        assert_eq!(s.drawn(), 100);
        assert_eq!(s.remaining(), 0);
        assert!(s.draw(10).is_empty());
    }

    #[test]
    fn sample_set_accumulates_in_draw_order() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut s = BlockSampler::new(20, &mut rng);
        let first: Vec<u64> = s.draw(5).to_vec();
        let second: Vec<u64> = s.draw(3).to_vec();
        let combined: Vec<u64> = first.iter().chain(second.iter()).copied().collect();
        assert_eq!(s.sample_set(), combined.as_slice());
    }

    #[test]
    fn first_stage_draw_is_uniform() {
        // Under repeated seeding, each block should be in a 2-of-10
        // first draw with probability 0.2.
        let trials = 20_000;
        let mut counts = [0u64; 10];
        for seed in 0..trials {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut s = BlockSampler::new(10, &mut rng);
            for &b in s.draw(2) {
                counts[b as usize] += 1;
            }
        }
        for (b, &c) in counts.iter().enumerate() {
            let p = c as f64 / trials as f64;
            assert!((p - 0.2).abs() < 0.02, "block {b}: p={p}");
        }
    }

    #[test]
    fn unconsume_returns_last_drawn_blocks_in_order() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut s = BlockSampler::new(30, &mut rng);
        let first: Vec<u64> = s.draw(10).to_vec();
        assert_eq!(s.drawn(), 10);
        // Give back the last 4: the next draw must hand out exactly
        // those 4 again, in the same permutation order.
        s.unconsume(4);
        assert_eq!(s.drawn(), 6);
        assert_eq!(s.remaining(), 24);
        let redraw: Vec<u64> = s.draw(4).to_vec();
        assert_eq!(redraw, first[6..]);
        // Clamped: cannot rewind past the start.
        s.unconsume(1_000);
        assert_eq!(s.drawn(), 0);
        assert_eq!(s.remaining(), 30);
    }

    #[test]
    fn empty_relation_yields_nothing() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut s = BlockSampler::new(0, &mut rng);
        assert_eq!(s.population(), 0);
        assert!(s.draw(4).is_empty());
    }
}
