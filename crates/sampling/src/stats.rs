//! Statistical primitives: standard-normal CDF/quantile and running
//! moments.
//!
//! The time-control strategies (Section 3.3) are "based on the
//! concepts of confidence interval and level"; converting a desired
//! risk `α` or `β` into the paper's `d_α` / `d_β` multipliers needs
//! the standard-normal quantile, and the adaptive cost formulas need
//! running means/variances of measured step costs.

/// Standard-normal cumulative distribution function `Φ(x)`.
///
/// Uses the Abramowitz–Stegun 7.1.26 rational approximation of
/// `erf` (absolute error < 1.5e-7), which is ample for risk control.
pub fn normal_cdf(x: f64) -> f64 {
    let z = x / std::f64::consts::SQRT_2;
    0.5 * (1.0 + erf(z))
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    sign * (1.0 - poly * (-x * x).exp())
}

/// Standard-normal quantile `Φ⁻¹(p)` for `p ∈ (0, 1)`.
///
/// Peter Acklam's rational approximation (relative error < 1.15e-9),
/// refined with one Halley step against [`normal_cdf`].
///
/// # Panics
/// Panics if `p` is outside `(0, 1)`.
pub fn normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "quantile needs p in (0,1), got {p}");

    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley refinement step.
    let e = normal_cdf(x) - p;
    let u = e * (std::f64::consts::TAU).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

/// Welford-style running mean and variance.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunningMoments {
    n: u64,
    mean: f64,
    m2: f64,
}

impl RunningMoments {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_known_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-9);
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-4);
        assert!((normal_cdf(-1.96) - 0.025).abs() < 1e-4);
        assert!(normal_cdf(8.0) > 0.999_999);
        assert!(normal_cdf(-8.0) < 1e-6);
    }

    #[test]
    fn quantile_known_values() {
        assert!((normal_quantile(0.5)).abs() < 1e-7);
        assert!((normal_quantile(0.975) - 1.959_964).abs() < 1e-5);
        assert!((normal_quantile(0.025) + 1.959_964).abs() < 1e-5);
        assert!((normal_quantile(0.9) - 1.281_552).abs() < 1e-5);
        assert!((normal_quantile(0.999) - 3.090_232).abs() < 1e-4);
    }

    #[test]
    fn quantile_inverts_cdf() {
        for &p in &[0.001, 0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99, 0.999] {
            let x = normal_quantile(p);
            assert!((normal_cdf(x) - p).abs() < 1e-8, "p={p}");
        }
    }

    #[test]
    #[should_panic(expected = "quantile needs p")]
    fn quantile_rejects_bounds() {
        let _ = normal_quantile(1.0);
    }

    #[test]
    fn running_moments_match_direct_computation() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut m = RunningMoments::new();
        for &x in &data {
            m.push(x);
        }
        assert_eq!(m.count(), 8);
        assert!((m.mean() - 5.0).abs() < 1e-12);
        // Unbiased variance of this classic data set is 32/7.
        assert!((m.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert!((m.std_dev() - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn moments_degenerate_cases() {
        let mut m = RunningMoments::new();
        assert_eq!(m.mean(), 0.0);
        assert_eq!(m.variance(), 0.0);
        m.push(3.5);
        assert_eq!(m.mean(), 3.5);
        assert_eq!(m.variance(), 0.0);
    }
}
