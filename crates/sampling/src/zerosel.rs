//! The zero-selectivity correction (Section 3.4).
//!
//! "It is quite possible that at the first stage some of the operators
//! have sample selectivities of zero, due to the small sample sizes.
//! ... there will be no improvement for the sample selectivity ...
//! unless there are no output tuples at the second stage, the quota
//! will be overspent. Our solution is to compute a different
//! selectivity (> 0) for the operation using a combinatorial formula
//! (which is closed and easy to compute)."
//!
//! The tech report [HoOT 88a] with the exact formula is not available;
//! we reconstruct the standard combinatorial upper confidence bound:
//! having observed **zero** 1-points in `m` sampled points, find the
//! largest 1-point count `K` that would still produce an all-zero
//! sample with probability at least `1 − confidence`, and use `K/N`
//! as the working selectivity. Two variants:
//!
//! * [`zero_selectivity_closed`] — the with-replacement (binomial)
//!   bound `sel = 1 − (1−confidence)^{1/m}`, a closed formula exactly
//!   as the paper describes;
//! * [`zero_selectivity_hypergeometric`] — the without-replacement
//!   (hypergeometric) bound, exact for SRS-WOR, solved by binary
//!   search on `K` with a log-space product.

/// Closed-form (binomial) zero-selectivity bound: the selectivity
/// `s` with `(1−s)^m = 1 − confidence`.
///
/// Returns 1.0 when `m = 0` (nothing observed constrains nothing).
///
/// # Panics
/// Panics if `confidence` is outside `(0, 1)`.
pub fn zero_selectivity_closed(m: f64, confidence: f64) -> f64 {
    assert!(
        confidence > 0.0 && confidence < 1.0,
        "confidence must be in (0,1)"
    );
    if m <= 0.0 {
        return 1.0;
    }
    1.0 - (1.0 - confidence).powf(1.0 / m)
}

/// Exact (hypergeometric) zero-selectivity bound for sampling `m` of
/// `n` points without replacement: `K*/n` where `K*` is the largest
/// count of 1-points with `P(no 1-point in the sample) ≥ 1 −
/// confidence`, i.e. `Π_{j=0}^{m−1} (n−K−j)/(n−j) ≥ 1 − confidence`.
///
/// Returns 1.0 when `m = 0` and 0.0 when `m = n` (a census that saw
/// no 1-points proves there are none).
///
/// # Panics
/// Panics if `m > n` or `confidence` is outside `(0, 1)`.
pub fn zero_selectivity_hypergeometric(n: u64, m: u64, confidence: f64) -> f64 {
    assert!(m <= n, "sample larger than population");
    assert!(
        confidence > 0.0 && confidence < 1.0,
        "confidence must be in (0,1)"
    );
    if m == 0 {
        return 1.0;
    }
    if m == n {
        return 0.0;
    }
    let log_alpha = (1.0 - confidence).ln();

    // log P(zero ones | K) is decreasing in K; binary search the
    // largest K with log P ≥ log α.
    let log_p_zero = |k: u64| -> f64 {
        if k > n - m {
            return f64::NEG_INFINITY;
        }
        let mut lp = 0.0;
        for j in 0..m {
            lp += ((n - k - j) as f64).ln() - ((n - j) as f64).ln();
        }
        lp
    };

    let (mut lo, mut hi) = (0u64, n); // invariant: log_p_zero(lo) ≥ log α
    while lo + 1 < hi {
        let mid = lo + (hi - lo) / 2;
        if log_p_zero(mid) >= log_alpha {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo as f64 / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_form_matches_identity() {
        // (1 − s)^m should equal 1 − confidence.
        for &(m, conf) in &[(10.0, 0.95), (50.0, 0.9), (3.0, 0.5)] {
            let s = zero_selectivity_closed(m, conf);
            assert!(((1.0 - s).powf(m) - (1.0 - conf)).abs() < 1e-12);
        }
    }

    #[test]
    fn closed_form_shrinks_with_sample_size() {
        let s10 = zero_selectivity_closed(10.0, 0.95);
        let s100 = zero_selectivity_closed(100.0, 0.95);
        assert!(s100 < s10);
        assert!(s10 > 0.0 && s10 < 1.0);
    }

    #[test]
    fn closed_form_degenerate_sample() {
        assert_eq!(zero_selectivity_closed(0.0, 0.95), 1.0);
    }

    #[test]
    fn hypergeometric_bound_is_consistent() {
        let n = 10_000u64;
        let m = 100u64;
        let s = zero_selectivity_hypergeometric(n, m, 0.95);
        assert!(s > 0.0 && s < 1.0);
        // K = s·n must make an all-zero sample plausible at 5%:
        // with replacement bound is close for small m/n.
        let closed = zero_selectivity_closed(m as f64, 0.95);
        assert!(
            (s - closed).abs() < 0.2 * closed,
            "hyper {s} vs closed {closed}"
        );
        // Without replacement is (weakly) tighter or equal.
        assert!(s <= closed + 1.0 / n as f64);
    }

    #[test]
    fn census_proves_zero() {
        assert_eq!(zero_selectivity_hypergeometric(50, 50, 0.95), 0.0);
    }

    #[test]
    fn no_sample_is_uninformative() {
        assert_eq!(zero_selectivity_hypergeometric(50, 0, 0.95), 1.0);
    }

    #[test]
    fn bound_verified_against_direct_probability() {
        // For the returned K* = s·n, P(all-zero sample) ≥ α must hold,
        // and fail for K*+1.
        let n = 500u64;
        let m = 20u64;
        let conf = 0.9;
        let alpha = 1.0 - conf;
        let s = zero_selectivity_hypergeometric(n, m, conf);
        let k_star = (s * n as f64).round() as u64;
        let p = |k: u64| -> f64 {
            (0..m)
                .map(|j| (n - k - j) as f64 / (n - j) as f64)
                .product()
        };
        assert!(p(k_star) >= alpha - 1e-12);
        assert!(p(k_star + 1) < alpha);
    }

    #[test]
    #[should_panic(expected = "sample larger")]
    fn hyper_rejects_oversample() {
        let _ = zero_selectivity_hypergeometric(5, 6, 0.9);
    }

    #[test]
    #[should_panic(expected = "confidence")]
    fn hyper_rejects_bad_confidence() {
        let _ = zero_selectivity_hypergeometric(5, 2, 1.0);
    }
}
