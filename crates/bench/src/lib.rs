//! # eram-bench
//!
//! Workload generators, the experiment harness, and table printers
//! that regenerate the evaluation section (Section 5) of Hou,
//! Özsoyoğlu & Taneja, SIGMOD 1989.
//!
//! The paper's three result tables are reproduced by the binaries in
//! `src/bin/`:
//!
//! | binary              | paper table | workload |
//! |---------------------|-------------|----------|
//! | `fig5_1_select`     | Figure 5.1  | selection with 0 / 5 000 / 10 000 output tuples, 10 s quota |
//! | `fig5_2_intersect`  | Figure 5.2  | intersection, 2.5 s quota |
//! | `fig5_3_join`       | Figure 5.3  | join with 70 000 output tuples, 2.5 s quota, assumed stage-1 selectivity 0.1 |
//!
//! plus ablations (`abl_strategies`, `abl_adaptive_costs`,
//! `abl_fulfillment`, `abl_estimator_accuracy`, `abl_memory_mode`,
//! `abl_prestored`, `abl_clustering`, `abl_faults`,
//! `abl_convergence`, `abl_parallel`) for the design choices the
//! paper discusses qualitatively.
//!
//! Every binary also emits a machine-readable `BENCH_<suite>.json`
//! ([`bench_json::BenchReport`]): exact-compared `simulated` columns,
//! wall-clock stats, and the phase profile from the flight recorder.
//! The `bench-diff` binary ([`diff`]) compares two such files and
//! gates regressions in CI.
//!
//! "Each artificial relation instance has 10,000 tuples, with the
//! tuple size of 200 bytes ... 2,000 disk blocks (1K bytes in each
//! disk block) with 5 tuples in each disk block ... Every entry in
//! any table has been obtained from 200 independent experiments."
//! [`workload`] builds exactly those relations; [`harness`] runs the
//! 200 seeded trials per row and aggregates the paper's columns
//! (stages, risk, ovsp, utilization, blocks).

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod bench_json;
pub mod diff;
pub mod harness;
pub mod table;
pub mod workload;

pub use bench_json::{BenchReport, BenchRow, WallStats, BENCH_SCHEMA_VERSION};
pub use diff::{diff_reports, DiffOptions};
pub use harness::{measure_row, run_row, MeasuredRow, RowStats, TrialConfig, TrialResult};
pub use table::{render_jsonl, render_table, PaperRow};
pub use workload::{Workload, WorkloadKind};
