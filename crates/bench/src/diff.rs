//! Regression comparison of two `BENCH_*.json` reports.
//!
//! The comparison rules mirror the schema split in
//! [`bench_json`](crate::bench_json):
//!
//! - `schema_version`, `suite`, `config`, row count, row labels, and
//!   every row's `simulated` value must be **exactly** equal — any
//!   difference means the seeded simulation diverged (or the sweep
//!   was run with a different configuration) and is always a failure.
//! - every row's `wall` medians and p95s are compared with a relative
//!   threshold (default ±20%): host timings are noisy, so only a
//!   deviation beyond the threshold counts. `--ignore-wall` skips
//!   wall comparison entirely (CI compares across machines, where
//!   absolute wall numbers are meaningless).
//! - `profile` payloads are informational and never compared.
//!
//! [`diff_reports`] returns the list of human-readable findings; the
//! `bench-diff` binary turns a non-empty list into exit code 1.

use crate::bench_json::{BenchReport, BENCH_SCHEMA_VERSION};

/// Rejects a report whose `schema_version` is newer than this build
/// understands, naming the offending version — a structured ingest
/// failure, not a parse panic or a spurious field-by-field diff.
/// Versions at or below [`BENCH_SCHEMA_VERSION`] pass (0 covers
/// pre-versioning reports, whose field defaults still deserialize).
pub fn validate_schema_version(what: &str, report: &BenchReport) -> Result<(), String> {
    if report.schema_version > BENCH_SCHEMA_VERSION {
        return Err(format!(
            "{what}: unknown schema_version {} (this build supports <= {BENCH_SCHEMA_VERSION})",
            report.schema_version
        ));
    }
    Ok(())
}

/// Tolerances and toggles for a diff run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiffOptions {
    /// Maximum allowed relative deviation of wall-clock columns
    /// (0.2 = ±20%).
    pub wall_tol: f64,
    /// When false, wall-clock columns are not compared at all.
    pub check_wall: bool,
}

impl Default for DiffOptions {
    fn default() -> Self {
        DiffOptions {
            wall_tol: 0.2,
            check_wall: true,
        }
    }
}

fn wall_deviation(
    issues: &mut Vec<String>,
    label: &str,
    col: &str,
    base: f64,
    cand: f64,
    tol: f64,
) {
    if !(base.is_finite() && cand.is_finite()) || base <= 0.0 {
        return;
    }
    let rel = (cand - base) / base;
    if rel.abs() > tol {
        let direction = if rel > 0.0 { "regressed" } else { "improved" };
        issues.push(format!(
            "row {label:?}: wall {col} {direction} beyond ±{:.0}%: {base:.4}s -> {cand:.4}s ({:+.1}%)",
            tol * 100.0,
            rel * 100.0
        ));
    }
}

/// Compares `candidate` against `baseline`; returns one finding per
/// violated rule (empty = pass).
pub fn diff_reports(
    baseline: &BenchReport,
    candidate: &BenchReport,
    opts: &DiffOptions,
) -> Vec<String> {
    let mut issues = Vec::new();
    if baseline.schema_version != candidate.schema_version {
        issues.push(format!(
            "schema_version mismatch: baseline {} vs candidate {}",
            baseline.schema_version, candidate.schema_version
        ));
    }
    if baseline.suite != candidate.suite {
        issues.push(format!(
            "suite mismatch: baseline {:?} vs candidate {:?}",
            baseline.suite, candidate.suite
        ));
    }
    if baseline.config != candidate.config {
        issues.push(format!(
            "config mismatch (sweeps are only comparable at identical configs): baseline {} vs candidate {}",
            serde_json::to_string(&baseline.config).unwrap_or_default(),
            serde_json::to_string(&candidate.config).unwrap_or_default()
        ));
    }
    if baseline.rows.len() != candidate.rows.len() {
        issues.push(format!(
            "row count mismatch: baseline {} vs candidate {}",
            baseline.rows.len(),
            candidate.rows.len()
        ));
    }
    for (b, c) in baseline.rows.iter().zip(&candidate.rows) {
        if b.label != c.label {
            issues.push(format!(
                "row label mismatch: baseline {:?} vs candidate {:?}",
                b.label, c.label
            ));
            continue;
        }
        if b.simulated != c.simulated {
            issues.push(format!(
                "row {:?}: simulated columns diverged (seeded runs must be byte-identical):\n  baseline:  {}\n  candidate: {}",
                b.label,
                serde_json::to_string(&b.simulated).unwrap_or_default(),
                serde_json::to_string(&c.simulated).unwrap_or_default()
            ));
        }
        if opts.check_wall {
            if let (Some(bw), Some(cw)) = (&b.wall, &c.wall) {
                wall_deviation(
                    &mut issues,
                    &b.label,
                    "median",
                    bw.median_secs,
                    cw.median_secs,
                    opts.wall_tol,
                );
                wall_deviation(
                    &mut issues,
                    &b.label,
                    "p95",
                    bw.p95_secs,
                    cw.p95_secs,
                    opts.wall_tol,
                );
            }
        }
    }
    issues
}

/// Parsed `bench-diff` command line.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffCli {
    /// Path of the committed baseline report.
    pub baseline: std::path::PathBuf,
    /// Path of the freshly generated candidate report.
    pub candidate: std::path::PathBuf,
    /// Comparison options.
    pub opts: DiffOptions,
}

/// Parses `BASELINE CANDIDATE [--wall-tol FRAC] [--ignore-wall]`.
/// Returns a usage string on malformed input.
pub fn parse_diff_args<I: IntoIterator<Item = String>>(args: I) -> Result<DiffCli, String> {
    const USAGE: &str =
        "usage: bench-diff BASELINE.json CANDIDATE.json [--wall-tol FRAC] [--ignore-wall]";
    let mut paths = Vec::new();
    let mut opts = DiffOptions::default();
    let mut args = args.into_iter();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--wall-tol" => {
                let v: f64 = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| format!("--wall-tol needs a fraction\n{USAGE}"))?;
                if !(v.is_finite() && v >= 0.0) {
                    return Err(format!(
                        "--wall-tol must be a non-negative fraction\n{USAGE}"
                    ));
                }
                opts.wall_tol = v;
            }
            "--ignore-wall" => opts.check_wall = false,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other if !other.starts_with('-') => paths.push(std::path::PathBuf::from(other)),
            other => return Err(format!("unknown argument: {other}\n{USAGE}")),
        }
    }
    if paths.len() != 2 {
        return Err(format!("expected exactly two report paths\n{USAGE}"));
    }
    let candidate = paths.pop().expect("two paths");
    let baseline = paths.pop().expect("two paths");
    Ok(DiffCli {
        baseline,
        candidate,
        opts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench_json::WallStats;

    fn report(median: f64, stages: f64) -> BenchReport {
        let mut r = BenchReport::new("fig5_1_select");
        r.config_kv("quota_secs", 10.0);
        r.push_value(
            "d_beta=12",
            serde_json::json!({"stages": stages, "blocks": 126.0}),
            &[],
            None,
        );
        r.rows[0].wall = Some(WallStats {
            runs: 8,
            mean_secs: median,
            median_secs: median,
            p95_secs: median * 1.5,
            min_secs: median * 0.8,
            max_secs: median * 2.0,
        });
        r
    }

    #[test]
    fn identical_reports_pass() {
        let a = report(0.5, 2.0);
        assert!(diff_reports(&a, &a.clone(), &DiffOptions::default()).is_empty());
    }

    #[test]
    fn simulated_mismatch_always_fails() {
        let base = report(0.5, 2.0);
        let cand = report(0.5, 2.25);
        let issues = diff_reports(&base, &cand, &DiffOptions::default());
        assert_eq!(issues.len(), 1, "{issues:?}");
        assert!(issues[0].contains("simulated columns diverged"));
        // ...even when wall comparison is off: determinism is not
        // negotiable.
        let issues = diff_reports(
            &base,
            &cand,
            &DiffOptions {
                check_wall: false,
                ..DiffOptions::default()
            },
        );
        assert_eq!(issues.len(), 1);
    }

    #[test]
    fn wall_regression_beyond_threshold_fails() {
        let base = report(0.5, 2.0);
        let slower = report(0.65, 2.0); // +30% > ±20%
        let issues = diff_reports(&base, &slower, &DiffOptions::default());
        assert!(
            issues.iter().any(|i| i.contains("median regressed")),
            "{issues:?}"
        );
        // Within threshold: quiet.
        let ok = report(0.55, 2.0); // +10%
        assert!(diff_reports(&base, &ok, &DiffOptions::default()).is_empty());
        // A looser threshold admits the slower run.
        assert!(diff_reports(
            &base,
            &slower,
            &DiffOptions {
                wall_tol: 0.5,
                ..DiffOptions::default()
            }
        )
        .is_empty());
        // --ignore-wall admits anything on the wall axis.
        assert!(diff_reports(
            &base,
            &slower,
            &DiffOptions {
                check_wall: false,
                ..DiffOptions::default()
            }
        )
        .is_empty());
    }

    #[test]
    fn large_improvements_are_flagged_too() {
        // ±20% is symmetric: a 3x speedup on a simulated-clock bench
        // usually means the sweep silently did less work.
        let base = report(0.9, 2.0);
        let fast = report(0.3, 2.0);
        let issues = diff_reports(&base, &fast, &DiffOptions::default());
        assert!(issues.iter().any(|i| i.contains("improved")), "{issues:?}");
    }

    #[test]
    fn structural_mismatches_fail() {
        let base = report(0.5, 2.0);
        let mut cand = report(0.5, 2.0);
        cand.suite = "fig5_3_join".into();
        cand.config_kv("quota_secs", 2.5);
        cand.rows[0].label = "d_beta=24".into();
        cand.rows.push(cand.rows[0].clone());
        let issues = diff_reports(&base, &cand, &DiffOptions::default());
        assert!(issues.iter().any(|i| i.contains("suite mismatch")));
        assert!(issues.iter().any(|i| i.contains("config mismatch")));
        assert!(issues.iter().any(|i| i.contains("row count mismatch")));
        assert!(issues.iter().any(|i| i.contains("row label mismatch")));
    }

    #[test]
    fn schema_version_mismatch_fails() {
        let base = report(0.5, 2.0);
        let mut cand = report(0.5, 2.0);
        cand.schema_version += 1;
        let issues = diff_reports(&base, &cand, &DiffOptions::default());
        assert!(issues.iter().any(|i| i.contains("schema_version mismatch")));
    }

    #[test]
    fn unknown_schema_versions_are_refused_by_name() {
        let mut report = report(0.5, 2.0);
        assert!(validate_schema_version("baseline", &report).is_ok());
        report.schema_version = BENCH_SCHEMA_VERSION + 3;
        let err = validate_schema_version("candidate", &report).unwrap_err();
        assert!(
            err.contains(&format!("schema_version {}", BENCH_SCHEMA_VERSION + 3)),
            "the error names the version: {err}"
        );
        assert!(err.starts_with("candidate:"), "{err}");
        // Pre-versioning reports (version 0) still ingest.
        report.schema_version = 0;
        assert!(validate_schema_version("baseline", &report).is_ok());
    }

    #[test]
    fn cli_parsing_covers_flags_and_misuse() {
        let ok = parse_diff_args(["a.json".into(), "b.json".into()]).unwrap();
        assert_eq!(ok.baseline, std::path::PathBuf::from("a.json"));
        assert_eq!(ok.candidate, std::path::PathBuf::from("b.json"));
        assert_eq!(ok.opts, DiffOptions::default());

        let tuned = parse_diff_args([
            "a.json".into(),
            "--wall-tol".into(),
            "0.35".into(),
            "b.json".into(),
            "--ignore-wall".into(),
        ])
        .unwrap();
        assert!((tuned.opts.wall_tol - 0.35).abs() < 1e-12);
        assert!(!tuned.opts.check_wall);

        assert!(parse_diff_args(["a.json".into()]).is_err());
        assert!(parse_diff_args(Vec::<String>::new()).is_err());
        assert!(parse_diff_args(["a".into(), "b".into(), "c".into()]).is_err());
        assert!(parse_diff_args(["--wall-tol".into(), "nope".into()]).is_err());
        assert!(parse_diff_args(["--bogus".into()]).is_err());
    }
}
