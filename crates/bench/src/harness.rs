//! The experiment harness: 200 independent trials per table row.
//!
//! The paper's measurement protocol: "In order to provide additional
//! information about the time control strategy, the ERAM does not
//! abort a query (stage) as it should do in a hard time constrained
//! environment when the query overspends" — i.e. measurement runs use
//! a *soft* deadline so the overrunning stage's completion time (and
//! hence "ovsp") is observable, while "stages", "utilization", and
//! "blocks" are computed as a hard-deadline caller would have
//! experienced them. [`TrialResult`] extracts exactly those columns
//! from an [`eram_core::ExecutionReport`]; [`run_row`] aggregates
//! them over seeded independent runs.

use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use eram_core::{
    BlockLayout, CostModel, ExecutionReport, Fulfillment, MemoryMode, ProfileSnapshot, Profiler,
    QueryConfig, SelectivityDefaults, StoppingCriterion, TimeControlStrategy,
};
use eram_storage::{FaultPlan, SeedSeq};

use crate::workload::{Workload, WorkloadKind};

/// What one trial produced, in the paper's units.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrialResult {
    /// Stages completed within the quota.
    pub stages: usize,
    /// True if a stage ran past the quota.
    pub overspent: bool,
    /// Seconds needed beyond the quota to finish the overrunning
    /// stage (0 if none).
    pub ovsp_secs: f64,
    /// Fraction of the quota spent in completed stages.
    pub utilization: f64,
    /// Disk blocks evaluated in completed stages.
    pub blocks: u64,
    /// The (hard-view) estimate.
    pub estimate: f64,
    /// Relative error against the exact answer (`NaN` when the truth
    /// is 0).
    pub rel_error: f64,
    /// Relative 95% CI half-width of the delivered estimate (`NaN`
    /// when the estimate is 0) — the precision the caller would have
    /// been quoted.
    pub rel_half_width: f64,
    /// Storage faults observed during the run.
    pub faults: u64,
    /// Blocks lost to corruption or retry exhaustion.
    pub blocks_lost: u64,
    /// True if the estimate was delivered over a reduced sample.
    pub degraded: bool,
}

impl TrialResult {
    /// Extracts the paper's columns from a report.
    pub fn from_report(report: &ExecutionReport, truth: u64) -> TrialResult {
        let estimate = report.final_estimate.estimate;
        let rel_error = if truth == 0 {
            f64::NAN
        } else {
            (estimate - truth as f64).abs() / truth as f64
        };
        TrialResult {
            stages: report.completed_stages(),
            overspent: report.overspent(),
            ovsp_secs: report.overspend().as_secs_f64(),
            utilization: report.utilization(),
            blocks: report.blocks_evaluated(),
            estimate,
            rel_error,
            rel_half_width: report.final_estimate.relative_half_width(0.95),
            faults: report.health.faults_seen,
            blocks_lost: report.health.blocks_lost,
            degraded: report.health.degraded,
        }
    }
}

/// Aggregates over the trials of one table row.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RowStats {
    /// Number of trials.
    pub runs: usize,
    /// Mean completed stages — the paper's "stages".
    pub stages: f64,
    /// Percentage of trials that overspent — the paper's "risk".
    pub risk_pct: f64,
    /// Mean overspend in seconds *among overspending trials* — the
    /// paper's "ovsp" ("the average amount of time overspent in those
    /// experiments where overspending has occurred").
    pub ovsp_secs: f64,
    /// Mean utilization percentage.
    pub utilization_pct: f64,
    /// Mean blocks evaluated.
    pub blocks: f64,
    /// Mean relative estimation error (ignoring zero-truth trials).
    pub mean_rel_error: f64,
    /// Mean relative 95% CI half-width (ignoring trials where it is
    /// undefined) — the convergence column.
    pub mean_rel_hw: f64,
    /// Mean storage faults observed per trial.
    pub faults: f64,
    /// Mean blocks lost per trial.
    pub blocks_lost: f64,
    /// Percentage of trials that degraded (lost at least one block).
    pub degraded_pct: f64,
}

impl RowStats {
    /// Aggregates trial results.
    pub fn aggregate(trials: &[TrialResult]) -> RowStats {
        let n = trials.len().max(1) as f64;
        let overspenders: Vec<&TrialResult> = trials.iter().filter(|t| t.overspent).collect();
        let ovsp = if overspenders.is_empty() {
            0.0
        } else {
            overspenders.iter().map(|t| t.ovsp_secs).sum::<f64>() / overspenders.len() as f64
        };
        let errs: Vec<f64> = trials
            .iter()
            .map(|t| t.rel_error)
            .filter(|e| e.is_finite())
            .collect();
        let hws: Vec<f64> = trials
            .iter()
            .map(|t| t.rel_half_width)
            .filter(|h| h.is_finite())
            .collect();
        RowStats {
            runs: trials.len(),
            stages: trials.iter().map(|t| t.stages as f64).sum::<f64>() / n,
            risk_pct: 100.0 * overspenders.len() as f64 / n,
            ovsp_secs: ovsp,
            utilization_pct: 100.0 * trials.iter().map(|t| t.utilization).sum::<f64>() / n,
            blocks: trials.iter().map(|t| t.blocks as f64).sum::<f64>() / n,
            mean_rel_error: if errs.is_empty() {
                f64::NAN
            } else {
                errs.iter().sum::<f64>() / errs.len() as f64
            },
            mean_rel_hw: if hws.is_empty() {
                f64::NAN
            } else {
                hws.iter().sum::<f64>() / hws.len() as f64
            },
            faults: trials.iter().map(|t| t.faults as f64).sum::<f64>() / n,
            blocks_lost: trials.iter().map(|t| t.blocks_lost as f64).sum::<f64>() / n,
            degraded_pct: 100.0 * trials.iter().filter(|t| t.degraded).count() as f64 / n,
        }
    }
}

/// Everything one trial needs besides its seed.
pub struct TrialConfig {
    /// The workload to instantiate per trial.
    pub kind: WorkloadKind,
    /// The quota `T`.
    pub quota: Duration,
    /// Strategy factory (a fresh strategy per trial).
    pub strategy: Box<dyn Fn() -> Box<dyn TimeControlStrategy> + Sync>,
    /// Stage-1 selectivity assumptions.
    pub defaults: SelectivityDefaults,
    /// Fulfillment plan.
    pub fulfillment: Fulfillment,
    /// Disk-resident or main-memory evaluation.
    pub memory: MemoryMode,
    /// Initial cost model per trial.
    pub cost_model: CostModel,
    /// LRU buffer-cache blocks in front of the device (0 = none).
    pub cache_blocks: usize,
    /// Spend unusable leftovers on a partial-fulfillment stage.
    pub hybrid_leftover: bool,
    /// When true, stage-1 selectivities are seeded from prestored
    /// equi-depth histograms (the PsCo 84 / MuDe 88 alternative the
    /// paper contrasts with) instead of the Figure 3.3 maxima.
    pub seed_from_stats: bool,
    /// Fault plan to arm on each trial's device (`None` = clean). The
    /// plan seed is XOR-folded with the trial seed so independent
    /// trials see independent fault sites.
    pub fault_plan: Option<FaultPlan>,
    /// Worker threads for the pure-CPU stage work inside each trial.
    /// Every trial's results are byte-identical regardless; only
    /// wall-clock time changes.
    pub workers: usize,
    /// In-memory layout for sampled blocks (row tuples or per-column
    /// arrays). Like `workers`, a pure wall-clock choice: results are
    /// byte-identical under either layout.
    pub block_layout: BlockLayout,
}

impl TrialConfig {
    /// The paper's configuration for a `d_β` row: One-at-a-Time
    /// strategy, full fulfillment, generic cost model.
    pub fn paper(kind: WorkloadKind, quota: Duration, d_beta: f64) -> TrialConfig {
        let defaults = match kind {
            WorkloadKind::Join { .. } => SelectivityDefaults::paper_join_experiment(),
            _ => SelectivityDefaults::default(),
        };
        TrialConfig {
            kind,
            quota,
            strategy: Box::new(move || Box::new(eram_core::OneAtATimeInterval::new(d_beta))),
            defaults,
            fulfillment: Fulfillment::Full,
            memory: MemoryMode::DiskResident,
            cost_model: CostModel::generic_default(),
            cache_blocks: 0,
            hybrid_leftover: false,
            seed_from_stats: false,
            fault_plan: None,
            workers: 1,
            block_layout: BlockLayout::default(),
        }
    }
}

/// Seeds stage-1 selectivity assumptions from prestored equi-depth
/// histograms over the workload's base relations (16 buckets per
/// column). Falls back to `base` when statistics cannot cover the
/// expression — the flexibility gap the paper's run-time approach
/// fills.
pub fn stats_seeded_defaults(
    workload: &Workload,
    base: SelectivityDefaults,
) -> SelectivityDefaults {
    let mut stats = eram_relalg::StatsCatalog::new();
    for name in workload.db.catalog().names() {
        if let Some(file) = workload.db.catalog().relation(name) {
            if let Ok(ts) = eram_relalg::TableStats::build(file, 16) {
                stats.insert(name, ts);
            }
        }
    }
    let Some(sel) = stats.top_operator_selectivity(&workload.expr) else {
        return base;
    };
    let sel = sel.clamp(1e-9, 1.0);
    let mut defaults = base;
    match workload.expr.op_kind() {
        Some(eram_relalg::OpKind::Select) => defaults.select = sel,
        Some(eram_relalg::OpKind::Join) => defaults.join = sel,
        Some(eram_relalg::OpKind::Project) => defaults.project = sel,
        Some(eram_relalg::OpKind::Intersect) => defaults.intersect = Some(sel),
        _ => {}
    }
    defaults
}

/// Runs one seeded trial.
pub fn run_trial(config: &TrialConfig, seed: u64) -> TrialResult {
    run_trial_with(config, seed, false).0
}

/// Runs one seeded trial, optionally with a recording phase profiler
/// attached. Profiling is pure observation, so the [`TrialResult`] is
/// byte-identical whether `profile` is on or off; the snapshot is the
/// extra wall/simulated phase breakdown the flight recorder emits
/// into `BENCH_*.json`.
pub fn run_trial_with(
    config: &TrialConfig,
    seed: u64,
    profile: bool,
) -> (TrialResult, Option<ProfileSnapshot>) {
    let mut workload = Workload::build_on(config.kind, seed, config.cache_blocks);
    let truth = workload.truth;
    let defaults = if config.seed_from_stats {
        stats_seeded_defaults(&workload, config.defaults)
    } else {
        config.defaults
    };
    // Arm faults only after ground truth and prestored statistics are
    // in hand: the injected rot afflicts the measured query alone.
    if let Some(plan) = config.fault_plan {
        let mut plan = plan;
        plan.seed ^= seed;
        workload.db.inject_faults(plan);
    }
    let profiler = if profile {
        Profiler::recording(workload.db.disk().clock().clone())
    } else {
        Profiler::disabled()
    };
    let qc = QueryConfig {
        strategy: (config.strategy)(),
        // Soft deadline: let the overrunning stage finish so ovsp is
        // measurable; the hard-view columns come from the report.
        stopping: StoppingCriterion::SoftDeadline,
        cost_model: config.cost_model.clone(),
        defaults,
        fulfillment: config.fulfillment,
        memory: config.memory,
        max_stages: 1_000,
        hybrid_leftover: config.hybrid_leftover,
        workers: config.workers.max(1),
        block_layout: config.block_layout,
        profiler: profiler.clone(),
        ..QueryConfig::default()
    };
    let out = workload
        .db
        .count(workload.expr.clone())
        .within(config.quota)
        .config(qc)
        .seed(seed ^ 0x5EED)
        .run()
        .expect("experiment query must execute");
    (
        TrialResult::from_report(&out.report, truth),
        out.report.profile,
    )
}

/// Runs `runs` independent trials (in parallel) and aggregates them.
pub fn run_row(config: &TrialConfig, runs: usize, master_seed: u64) -> RowStats {
    let seeds = SeedSeq::new(master_seed);
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(runs.max(1));
    let mut results: Vec<Option<TrialResult>> = vec![None; runs];
    let chunks: Vec<(usize, &mut [Option<TrialResult>])> = {
        let chunk = runs.div_ceil(threads).max(1);
        results.chunks_mut(chunk).enumerate().collect()
    };
    std::thread::scope(|scope| {
        let chunk_len = runs.div_ceil(threads).max(1);
        for (ci, slot) in chunks {
            scope.spawn(move || {
                for (j, out) in slot.iter_mut().enumerate() {
                    let run_index = ci * chunk_len + j;
                    *out = Some(run_trial(config, seeds.derive(run_index as u64)));
                }
            });
        }
    });
    let trials: Vec<TrialResult> = results.into_iter().map(|r| r.expect("trial ran")).collect();
    RowStats::aggregate(&trials)
}

/// One table row measured by the flight recorder: the deterministic
/// simulated aggregate, the host wall-clock seconds of every trial
/// (in trial-index order), and the phase profile of the first trial.
#[derive(Debug, Clone)]
pub struct MeasuredRow {
    /// Aggregate over the trials — identical to what [`run_row`]
    /// returns for the same config and master seed.
    pub stats: RowStats,
    /// Wall-clock seconds each trial took, indexed by trial number.
    /// Host measurements: nondeterministic, threshold-compared only.
    pub wall_secs: Vec<f64>,
    /// Phase breakdown of trial 0 (the only profiled trial — one is
    /// enough for attribution and keeps the overhead off the other
    /// trials' wall clocks).
    pub profile: Option<ProfileSnapshot>,
}

/// Like [`run_row`], but records per-trial wall-clock durations and
/// profiles trial 0. The aggregated simulated stats are byte-identical
/// to [`run_row`]'s: profiling and timing are pure observation.
pub fn measure_row(config: &TrialConfig, runs: usize, master_seed: u64) -> MeasuredRow {
    let seeds = SeedSeq::new(master_seed);
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(runs.max(1));
    type MeasuredSlot = Option<(TrialResult, f64, Option<ProfileSnapshot>)>;
    let mut results: Vec<MeasuredSlot> = vec![None; runs];
    let chunks: Vec<(usize, &mut [MeasuredSlot])> = {
        let chunk = runs.div_ceil(threads).max(1);
        results.chunks_mut(chunk).enumerate().collect()
    };
    std::thread::scope(|scope| {
        let chunk_len = runs.div_ceil(threads).max(1);
        for (ci, slot) in chunks {
            scope.spawn(move || {
                for (j, out) in slot.iter_mut().enumerate() {
                    let run_index = ci * chunk_len + j;
                    let started = Instant::now();
                    let (trial, profile) =
                        run_trial_with(config, seeds.derive(run_index as u64), run_index == 0);
                    *out = Some((trial, started.elapsed().as_secs_f64(), profile));
                }
            });
        }
    });
    let mut trials = Vec::with_capacity(runs);
    let mut wall_secs = Vec::with_capacity(runs);
    let mut profile = None;
    for r in results {
        let (trial, wall, prof) = r.expect("trial ran");
        trials.push(trial);
        wall_secs.push(wall);
        if prof.is_some() {
            profile = prof;
        }
    }
    MeasuredRow {
        stats: RowStats::aggregate(&trials),
        wall_secs,
        profile,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trial_produces_sane_columns() {
        let cfg = TrialConfig::paper(
            WorkloadKind::Select {
                output_tuples: 5_000,
            },
            Duration::from_secs(10),
            12.0,
        );
        let t = run_trial(&cfg, 42);
        assert!(t.stages >= 1);
        assert!(t.utilization > 0.0 && t.utilization <= 1.0);
        assert!(t.blocks > 0);
        assert!(t.rel_error.is_finite());
        assert!(t.rel_half_width.is_finite() && t.rel_half_width >= 0.0);
    }

    #[test]
    fn row_aggregation_is_deterministic_and_parallel_consistent() {
        let cfg = TrialConfig::paper(
            WorkloadKind::Select {
                output_tuples: 5_000,
            },
            Duration::from_secs(4),
            0.0,
        );
        let a = run_row(&cfg, 8, 7);
        let b = run_row(&cfg, 8, 7);
        assert_eq!(a, b);
        assert_eq!(a.runs, 8);
        assert!(a.stages >= 1.0);
    }

    #[test]
    fn zero_truth_yields_nan_error_but_valid_stats() {
        let cfg = TrialConfig::paper(
            WorkloadKind::Select { output_tuples: 0 },
            Duration::from_secs(4),
            12.0,
        );
        let t = run_trial(&cfg, 3);
        assert!(t.rel_error.is_nan());
        let stats = RowStats::aggregate(&[t]);
        assert!(stats.mean_rel_error.is_nan());
        assert!(stats.utilization_pct <= 100.0);
    }

    #[test]
    fn ovsp_averages_only_overspenders() {
        let mk = |overspent: bool, ovsp: f64| TrialResult {
            stages: 1,
            overspent,
            ovsp_secs: ovsp,
            utilization: 0.5,
            blocks: 10,
            estimate: 1.0,
            rel_error: 0.0,
            rel_half_width: 0.1,
            faults: 2,
            blocks_lost: 1,
            degraded: true,
        };
        let stats = RowStats::aggregate(&[mk(true, 0.2), mk(false, 0.0), mk(true, 0.4)]);
        assert!((stats.ovsp_secs - 0.3).abs() < 1e-12);
        assert!((stats.risk_pct - 200.0_f64 / 3.0).abs() < 1e-9);
        assert!((stats.faults - 2.0).abs() < 1e-12);
        assert!((stats.blocks_lost - 1.0).abs() < 1e-12);
        assert!((stats.degraded_pct - 100.0).abs() < 1e-12);
    }

    #[test]
    fn profiled_trial_is_byte_identical_to_unprofiled() {
        let cfg = TrialConfig::paper(
            WorkloadKind::Select {
                output_tuples: 5_000,
            },
            Duration::from_secs(6),
            12.0,
        );
        let plain = run_trial(&cfg, 17);
        let (profiled, snapshot) = run_trial_with(&cfg, 17, true);
        assert_eq!(plain, profiled, "profiling must not perturb the simulation");
        let snap = snapshot.expect("profiled trial returns a snapshot");
        assert!(snap.phases.contains_key("planning"));
        assert!(snap.phases.contains_key("stopping_check"));
        assert!(snap.total_wall_ns() > 0);
    }

    #[test]
    fn measure_row_matches_run_row_and_captures_wall() {
        let cfg = TrialConfig::paper(
            WorkloadKind::Select {
                output_tuples: 5_000,
            },
            Duration::from_secs(4),
            12.0,
        );
        let plain = run_row(&cfg, 6, 11);
        let measured = measure_row(&cfg, 6, 11);
        assert_eq!(plain, measured.stats);
        assert_eq!(measured.wall_secs.len(), 6);
        assert!(measured.wall_secs.iter().all(|w| *w > 0.0));
        assert!(measured.profile.is_some());
    }

    #[test]
    fn faulted_trials_degrade_but_still_deliver() {
        let mut cfg = TrialConfig::paper(
            WorkloadKind::Select {
                output_tuples: 5_000,
            },
            Duration::from_secs(8),
            12.0,
        );
        cfg.fault_plan = Some(
            FaultPlan::new(0xFA17)
                .with_transient(0.08)
                .with_corruption(0.02),
        );
        let stats = run_row(&cfg, 6, 21);
        assert_eq!(stats.runs, 6);
        // Every trial returned an estimate; faults showed up in the
        // columns rather than as failures.
        assert!(stats.faults > 0.0);
        assert!(stats.utilization_pct <= 100.0);
        // Replay determinism survives the fault path.
        assert_eq!(stats, run_row(&cfg, 6, 21));
    }
}
