//! Compares two `BENCH_*.json` sweep reports for regressions.
//!
//! ```text
//! bench-diff BASELINE.json CANDIDATE.json [--wall-tol FRAC] [--ignore-wall]
//! ```
//!
//! Simulated columns must match byte for byte (seeded runs are
//! deterministic); wall-clock columns tolerate ±20% by default
//! (`--wall-tol 0.35` loosens, `--ignore-wall` skips them — use the
//! latter when baseline and candidate ran on different machines).
//!
//! Exit codes: `0` match, `1` regression (findings on stderr), `2`
//! usage or I/O error.

use eram_bench::bench_json::BenchReport;
use eram_bench::diff::{diff_reports, parse_diff_args, validate_schema_version};

fn main() {
    let cli = match parse_diff_args(std::env::args().skip(1)) {
        Ok(cli) => cli,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let load = |path: &std::path::Path| match BenchReport::read(path) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("bench-diff: cannot read {}: {err}", path.display());
            std::process::exit(2);
        }
    };
    let baseline = load(&cli.baseline);
    let candidate = load(&cli.candidate);
    for (what, report) in [("baseline", &baseline), ("candidate", &candidate)] {
        if let Err(err) = validate_schema_version(what, report) {
            eprintln!("bench-diff: {err}");
            std::process::exit(2);
        }
    }
    let issues = diff_reports(&baseline, &candidate, &cli.opts);
    if issues.is_empty() {
        println!(
            "bench-diff: {} ok — {} rows match ({})",
            baseline.suite,
            baseline.rows.len(),
            if cli.opts.check_wall {
                format!("wall within ±{:.0}%", cli.opts.wall_tol * 100.0)
            } else {
                "wall ignored".to_string()
            }
        );
        return;
    }
    eprintln!(
        "bench-diff: {} — {} finding(s) comparing {} -> {}:",
        baseline.suite,
        issues.len(),
        cli.baseline.display(),
        cli.candidate.display()
    );
    for issue in &issues {
        eprintln!("  - {issue}");
    }
    std::process::exit(1);
}
