//! Ablation — **estimator accuracy vs. sample fraction** ([HoOT 88]).
//!
//! The paper defers estimator-quality results to its companion papers
//! ("We do not report the performance of the estimation, which is
//! already reported in [HoOT 88] ... and in [HouO 88]"). This
//! ablation reproduces that companion experiment on our substrate:
//! for each operator, sweep the sample fraction and report mean
//! relative error and 95 % CI coverage of the count estimators
//! (`û` for select/join/intersect, Goodman for projection).
//!
//! Usage: `abl_estimator_accuracy [--runs N] [--json PATH]`

use std::time::Instant;

use eram_bench::{BenchReport, Workload, WorkloadKind};
use eram_core::{ops, term_estimate, term_estimate_with, SelectivityDefaults};
use eram_relalg::PieRewrite;
use eram_sampling::DistinctEstimator;
use eram_storage::SeedSeq;
use rand::rngs::StdRng;
use rand::SeedableRng;

mod common;

fn measure(
    kind: WorkloadKind,
    name: &str,
    fractions: &[f64],
    runs: usize,
    bench: &mut BenchReport,
) {
    println!("Estimator accuracy — {name} ({runs} runs per fraction, 95% CI coverage)");
    println!(
        "{:>9} | {:>12} | {:>10}",
        "fraction", "mean rel.err", "coverage%"
    );
    println!("{}", "-".repeat(38));
    let seeds = SeedSeq::new(0xACC0);
    for &fraction in fractions {
        let started = Instant::now();
        let mut errs = Vec::new();
        let mut covered = 0usize;
        for run in 0..runs {
            let seed = seeds.child(fraction.to_bits()).derive(run as u64);
            let w = Workload::build(kind, seed);
            let truth = w.truth as f64;
            // Drive the physical tree directly at a fixed fraction —
            // no time control, pure estimator quality.
            let rewrite = PieRewrite::rewrite(&w.expr).unwrap();
            let mut rng = StdRng::seed_from_u64(seed ^ 0xFACE);
            let mut tree = ops::PhysTree::build(
                &rewrite.terms[0].expr,
                w.db.catalog(),
                w.db.disk(),
                &SelectivityDefaults::default(),
                ops::Fulfillment::Full,
                &mut rng,
            )
            .unwrap();
            let mut env = ops::StageEnv::new(w.db.disk().clone(), None, fraction);
            tree.advance(&mut env).expect("no deadline to abort");
            let est = term_estimate(&tree);
            if truth > 0.0 {
                errs.push((est.estimate - truth).abs() / truth);
            }
            let (lo, hi) = est.ci(0.95);
            if lo <= truth && truth <= hi {
                covered += 1;
            }
        }
        let mean_rel_err = errs.iter().sum::<f64>() / errs.len().max(1) as f64;
        let coverage_pct = 100.0 * covered as f64 / runs as f64;
        println!("{fraction:>9.3} | {mean_rel_err:>12.4} | {coverage_pct:>10.1}");
        bench.push_value(
            format!("{name} f={fraction}"),
            serde_json::json!({
                "fraction": fraction,
                "mean_rel_err": mean_rel_err,
                "coverage_pct": coverage_pct,
            }),
            &[started.elapsed().as_secs_f64()],
            None,
        );
    }
    println!();
}

/// Compares the distinct-count estimators on the projection workload
/// (Goodman is the paper's choice; Chao1/jackknife are the stable
/// alternatives this library adds).
fn measure_distinct(fractions: &[f64], runs: usize, bench: &mut BenchReport) {
    let kind = WorkloadKind::Project { groups: 100 };
    println!("Distinct-count estimators — project workload, truth 100 groups ({runs} runs)");
    println!(
        "{:>9} | {:>14} | {:>14} | {:>14}",
        "fraction", "goodman", "chao1", "jackknife1"
    );
    println!("{}", "-".repeat(60));
    let seeds = SeedSeq::new(0xD157);
    for &fraction in fractions {
        let started = Instant::now();
        let mut errs = [0.0f64; 3];
        for run in 0..runs {
            let seed = seeds.child(fraction.to_bits()).derive(run as u64);
            let w = Workload::build(kind, seed);
            let truth = w.truth as f64;
            let rewrite = PieRewrite::rewrite(&w.expr).unwrap();
            let mut rng = StdRng::seed_from_u64(seed ^ 0xFACE);
            let mut tree = ops::PhysTree::build(
                &rewrite.terms[0].expr,
                w.db.catalog(),
                w.db.disk(),
                &SelectivityDefaults::default(),
                ops::Fulfillment::Full,
                &mut rng,
            )
            .unwrap();
            let mut env = ops::StageEnv::new(w.db.disk().clone(), None, fraction);
            tree.advance(&mut env).expect("no deadline");
            for (i, est) in [
                DistinctEstimator::Goodman,
                DistinctEstimator::Chao1,
                DistinctEstimator::Jackknife1,
            ]
            .into_iter()
            .enumerate()
            {
                let e = term_estimate_with(&tree, est);
                errs[i] += (e.estimate - truth).abs() / truth;
            }
        }
        let [goodman, chao1, jackknife1] = errs.map(|e| e / runs as f64);
        println!("{fraction:>9.3} | {goodman:>14.3} | {chao1:>14.3} | {jackknife1:>14.3}");
        bench.push_value(
            format!("distinct f={fraction}"),
            serde_json::json!({
                "fraction": fraction,
                "goodman": goodman,
                "chao1": chao1,
                "jackknife1": jackknife1,
            }),
            &[started.elapsed().as_secs_f64()],
            None,
        );
    }
    println!();
}

fn main() {
    let opts = common::Opts::parse("abl_estimator_accuracy");
    let runs = opts.runs.min(400);

    let mut bench = BenchReport::new("abl_estimator_accuracy");
    bench.config_kv("runs", runs as u64);

    measure(
        WorkloadKind::Select {
            output_tuples: 5_000,
        },
        "COUNT(select), truth 5000",
        &[0.01, 0.02, 0.05, 0.1, 0.2],
        runs,
        &mut bench,
    );
    measure(
        WorkloadKind::Join {
            output_tuples: 70_000,
        },
        "COUNT(join), truth 70000",
        &[0.01, 0.02, 0.05, 0.1],
        runs,
        &mut bench,
    );
    measure(
        WorkloadKind::Intersect { overlap: 5_000 },
        "COUNT(intersect), truth 5000",
        &[0.02, 0.05, 0.1, 0.2],
        runs,
        &mut bench,
    );
    measure(
        WorkloadKind::Project { groups: 100 },
        "COUNT(project), truth 100 groups",
        &[0.01, 0.02, 0.05, 0.1],
        runs,
        &mut bench,
    );
    measure_distinct(&[0.01, 0.05, 0.2, 0.5], runs, &mut bench);
    common::write_bench(&opts, &bench);
}
