//! Ablation — **time-control strategy comparison** (Section 3.3).
//!
//! The paper argues qualitatively that One-at-a-Time-Interval is
//! simpler and likely more efficient than Single-Interval (which
//! "requires more effort in computing the expected time cost ... a
//! very expensive procedure") and mentions an undescribed heuristic.
//! This ablation puts all three on the same workloads and reports the
//! paper's columns, so the trade-off (risk control vs. quota
//! utilization vs. stages) is measurable.
//!
//! Usage: `abl_strategies [--runs N] [--quota SECS] [--jsonl] [--json PATH]`

use std::time::Duration;

use eram_bench::{measure_row, render_table, BenchReport, PaperRow, TrialConfig, WorkloadKind};
use eram_core::{
    CostModel, Fulfillment, HeuristicStrategy, OneAtATimeInterval, SelectivityDefaults,
    SingleInterval, TimeControlStrategy,
};

mod common;

/// A named factory producing a fresh strategy per trial.
type StrategyFactory = Box<dyn Fn() -> Box<dyn TimeControlStrategy> + Sync>;

fn main() {
    let opts = common::Opts::parse("abl_strategies");
    let workloads: [(&str, WorkloadKind, f64); 2] = [
        (
            "select(5000)",
            WorkloadKind::Select {
                output_tuples: 5_000,
            },
            opts.quota.unwrap_or(10.0),
        ),
        (
            "join(70000)",
            WorkloadKind::Join {
                output_tuples: 70_000,
            },
            opts.quota.unwrap_or(10.0).min(2.5),
        ),
    ];

    let mut bench = BenchReport::new("abl_strategies");
    bench.config_kv("runs", opts.runs as u64);
    bench.config_kv("quota_secs", opts.quota.unwrap_or(10.0));

    for (wname, kind, quota_secs) in workloads {
        let quota = Duration::from_secs_f64(quota_secs);
        let strategies: Vec<(&str, StrategyFactory)> = vec![
            (
                "one-at-a-time(d=12)",
                Box::new(|| Box::new(OneAtATimeInterval::new(12.0))),
            ),
            (
                "one-at-a-time(d=0)",
                Box::new(|| Box::new(OneAtATimeInterval::new(0.0))),
            ),
            (
                "single-interval(d=2)",
                Box::new(|| Box::new(SingleInterval::new(2.0))),
            ),
            (
                "heuristic(0.5,1.25)",
                Box::new(|| Box::new(HeuristicStrategy::new(0.5, 1.25))),
            ),
        ];
        let mut rows = Vec::new();
        for (sname, factory) in strategies {
            let defaults = match kind {
                WorkloadKind::Join { .. } => SelectivityDefaults::paper_join_experiment(),
                _ => SelectivityDefaults::default(),
            };
            let cfg = TrialConfig {
                kind,
                quota,
                strategy: factory,
                defaults,
                fulfillment: Fulfillment::Full,
                memory: eram_core::MemoryMode::DiskResident,
                cost_model: CostModel::generic_default(),
                cache_blocks: 0,
                hybrid_leftover: false,
                seed_from_stats: false,
                fault_plan: None,
                workers: 1,
                block_layout: eram_core::BlockLayout::default(),
            };
            let measured = measure_row(
                &cfg,
                opts.runs,
                common::row_seed("abl-strategy", quota_secs.to_bits(), 0.0),
            );
            bench.push_measured(format!("{wname} {sname}"), &measured);
            rows.push(PaperRow {
                label: sname.to_string(),
                stats: measured.stats,
            });
        }
        let title = format!(
            "Ablation — strategies on {wname}, quota {quota_secs:.1} s, {} runs/row",
            opts.runs
        );
        common::emit(&opts, &title, "strategy", &rows);
        println!("{}", render_table(&title, "strategy", &rows));
    }
    common::write_bench(&opts, &bench);
}
