//! Regenerates **Figure 5.3** — performance of the time-control
//! algorithm for the join operation.
//!
//! Paper setup: `COUNT(r₁ ⋈ r₂)` over two 10 000-tuple relations with
//! 70 000 output tuples (actual selectivity `70 000/10 000² =
//! 7·10⁻⁴`), one join attribute, time quota 2.5 s, **assumed stage-1
//! selectivity 0.1** ("if the maximum selectivity of 1 were assumed,
//! the sample size was so small that the system clock did not provide
//! enough accuracy"), `d_β` sweep, 200 runs per row. The paper
//! observed early termination at `d_β ∈ {24, 48, 72}` — the leftover
//! could not fund another full-fulfillment stage.
//!
//! Usage: `fig5_3_join [--runs N] [--quota SECS] [--jsonl] [--json PATH]`

use std::time::Duration;

use eram_bench::{measure_row, render_table, BenchReport, PaperRow, TrialConfig, WorkloadKind};

mod common;

fn main() {
    let opts = common::Opts::parse("fig5_3_join");
    let quota = Duration::from_secs_f64(opts.quota.unwrap_or(2.5));
    let output_tuples = 70_000u64;

    let mut bench = BenchReport::new("fig5_3_join");
    bench.config_kv("quota_secs", quota.as_secs_f64());
    bench.config_kv("runs", opts.runs as u64);
    bench.config_kv("output_tuples", output_tuples);

    let mut rows = Vec::new();
    for d_beta in [0.0, 12.0, 24.0, 48.0, 72.0] {
        let cfg = TrialConfig::paper(WorkloadKind::Join { output_tuples }, quota, d_beta);
        let measured = measure_row(
            &cfg,
            opts.runs,
            common::row_seed("fig5.3", output_tuples, d_beta),
        );
        bench.push_measured(format!("d_beta={d_beta}"), &measured);
        rows.push(PaperRow {
            label: format!("{d_beta}"),
            stats: measured.stats,
        });
    }
    let title = format!(
        "Figure 5.3 — Join, {output_tuples} output tuples, quota {:.1} s, {} runs/row",
        quota.as_secs_f64(),
        opts.runs
    );
    common::emit(&opts, &title, "d_beta", &rows);
    println!("{}", render_table(&title, "d_beta", &rows));
    common::write_bench(&opts, &bench);
}
