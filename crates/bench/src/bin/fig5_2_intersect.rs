//! Regenerates **Figure 5.2** — performance of the time-control
//! algorithm for the intersection operation.
//!
//! Paper setup: `COUNT(r₁ ∩ r₂)` over two 10 000-tuple relations,
//! time quota 2.5 s, stage-1 selectivity `1/max(|r₁|,|r₂|)`
//! (Figure 3.3), full-fulfillment cluster sampling,
//! `d_β ∈ {0, 12, 24, 48, 72}`, 200 runs per row. The paper observed
//! that at high `d_β` "the amount of time left was not enough for a
//! further stage" and that blocks *decrease* from `d_β = 48` to `72`
//! "due to the increase in the overhead and the increase in the time
//! complexity of Intersection".
//!
//! Usage: `fig5_2_intersect [--runs N] [--quota SECS] [--jsonl] [--json PATH]`

use std::time::Duration;

use eram_bench::{measure_row, render_table, BenchReport, PaperRow, TrialConfig, WorkloadKind};

mod common;

fn main() {
    let opts = common::Opts::parse("fig5_2_intersect");
    let quota = Duration::from_secs_f64(opts.quota.unwrap_or(2.5));
    let overlap = 5_000u64;

    let mut bench = BenchReport::new("fig5_2_intersect");
    bench.config_kv("quota_secs", quota.as_secs_f64());
    bench.config_kv("runs", opts.runs as u64);
    bench.config_kv("overlap", overlap);

    let mut rows = Vec::new();
    for d_beta in [0.0, 12.0, 24.0, 48.0, 72.0] {
        let cfg = TrialConfig::paper(WorkloadKind::Intersect { overlap }, quota, d_beta);
        let measured = measure_row(&cfg, opts.runs, common::row_seed("fig5.2", overlap, d_beta));
        bench.push_measured(format!("d_beta={d_beta}"), &measured);
        rows.push(PaperRow {
            label: format!("{d_beta}"),
            stats: measured.stats,
        });
    }
    let title = format!(
        "Figure 5.2 — Intersection, overlap {overlap}, quota {:.1} s, {} runs/row",
        quota.as_secs_f64(),
        opts.runs
    );
    common::emit(&opts, &title, "d_beta", &rows);
    println!("{}", render_table(&title, "d_beta", &rows));
    common::write_bench(&opts, &bench);
}
