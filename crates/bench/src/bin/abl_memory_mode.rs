//! Ablation — **disk-resident vs. main-memory evaluation**
//! (Section 4's anticipated variant).
//!
//! "We have made a design decision that all the input relations and
//! all the intermediate relations are always kept on disks ... A
//! main-memory-only version of the prototype DBMS is also being
//! developed now ... We believe that when large main memory is
//! available, the sampling approach with a time-control mechanism can
//! be efficiently implemented and will be very promising for
//! real-time database applications."
//!
//! This ablation quantifies that belief: the same intersection and
//! join workloads under both modes. Main-memory evaluation skips all
//! temporary-file writes and re-reads, so a given quota buys far more
//! sample blocks — and a correspondingly better estimate.
//!
//! Usage: `abl_memory_mode [--runs N] [--quota SECS] [--jsonl] [--json PATH]`

use std::time::Duration;

use eram_bench::{measure_row, render_table, BenchReport, PaperRow, TrialConfig, WorkloadKind};
use eram_core::{CostModel, Fulfillment, MemoryMode, OneAtATimeInterval, SelectivityDefaults};

mod common;

fn main() {
    let opts = common::Opts::parse("abl_memory_mode");
    let quota = Duration::from_secs_f64(opts.quota.unwrap_or(2.5));
    let d_beta = 12.0;

    let mut bench = BenchReport::new("abl_memory_mode");
    bench.config_kv("quota_secs", quota.as_secs_f64());
    bench.config_kv("runs", opts.runs as u64);
    bench.config_kv("d_beta", d_beta);

    for (wname, kind, defaults) in [
        (
            "intersect(5000)",
            WorkloadKind::Intersect { overlap: 5_000 },
            SelectivityDefaults::default(),
        ),
        (
            "join(70000)",
            WorkloadKind::Join {
                output_tuples: 70_000,
            },
            SelectivityDefaults::paper_join_experiment(),
        ),
    ] {
        let mut rows = Vec::new();
        for (name, memory, cache_blocks) in [
            ("disk-resident", MemoryMode::DiskResident, 0usize),
            ("disk+cache(4k)", MemoryMode::DiskResident, 4_096),
            ("main-memory", MemoryMode::MainMemory, 0),
        ] {
            let cfg = TrialConfig {
                kind,
                quota,
                strategy: Box::new(move || Box::new(OneAtATimeInterval::new(d_beta))),
                defaults,
                fulfillment: Fulfillment::Full,
                memory,
                cost_model: CostModel::generic_default(),
                cache_blocks,
                hybrid_leftover: false,
                seed_from_stats: false,
                fault_plan: None,
                workers: 1,
                block_layout: eram_core::BlockLayout::default(),
            };
            let measured = measure_row(&cfg, opts.runs, common::row_seed(wname, 1, d_beta));
            bench.push_measured(format!("{wname} {name}"), &measured);
            rows.push(PaperRow {
                label: name.to_string(),
                stats: measured.stats,
            });
        }
        let title = format!(
            "Ablation — disk vs main-memory evaluation, {wname}, quota {:.1} s, {} runs/row",
            quota.as_secs_f64(),
            opts.runs
        );
        common::emit(&opts, &title, "mode", &rows);
        println!("{}", render_table(&title, "mode", &rows));
    }
    common::write_bench(&opts, &bench);
}
