//! Ablation — **run-time estimation vs. prestored statistics**
//! (Section 3.1).
//!
//! The paper weighs two ways to get the selectivities its cost
//! formulas need: "prestored selectivities [PSCo 84, Rowe 85,
//! MuDe 88] ... simple and may have a very good performance \[but\]
//! best suited for database environments where only a fixed set of
//! query types are to be issued", versus the run-time estimation it
//! adopts ("the greatest flexibility because it does not need any
//! specific information about a query").
//!
//! This ablation measures the trade: the same sweep with stage-1
//! selectivities (a) assumed at the Figure 3.3 maxima and revised at
//! run time (the paper), and (b) seeded from prestored equi-depth
//! histograms. Better stage-1 guesses size the first stage closer to
//! optimal, so (b) should reach the same sample in fewer stages —
//! the "very good performance" the paper concedes — while (a) needs
//! no statistics maintenance and covers every expression.
//!
//! Usage: `abl_prestored [--runs N] [--quota SECS] [--jsonl] [--json PATH]`

use std::time::Duration;

use eram_bench::{measure_row, render_table, BenchReport, PaperRow, TrialConfig, WorkloadKind};

mod common;

fn main() {
    let opts = common::Opts::parse("abl_prestored");

    let mut bench = BenchReport::new("abl_prestored");
    bench.config_kv("runs", opts.runs as u64);
    bench.config_kv(
        "quota_secs",
        opts.quota.unwrap_or(10.0), // per-workload min(2.5) applies to the join
    );

    for (wname, kind, quota_secs) in [
        (
            "select(5000)",
            WorkloadKind::Select {
                output_tuples: 5_000,
            },
            opts.quota.unwrap_or(10.0),
        ),
        (
            "join(70000)",
            WorkloadKind::Join {
                output_tuples: 70_000,
            },
            opts.quota.unwrap_or(10.0).min(2.5),
        ),
    ] {
        let quota = Duration::from_secs_f64(quota_secs);
        let mut rows = Vec::new();
        for (label, seed_from_stats) in [("run-time (paper)", false), ("histogram-seeded", true)] {
            let mut cfg = TrialConfig::paper(kind, quota, 12.0);
            cfg.seed_from_stats = seed_from_stats;
            let measured = measure_row(&cfg, opts.runs, common::row_seed(wname, 2, 12.0));
            bench.push_measured(format!("{wname} {label}"), &measured);
            rows.push(PaperRow {
                label: label.to_string(),
                stats: measured.stats,
            });
        }
        let title = format!(
            "Ablation — run-time vs prestored selectivities, {wname}, quota {quota_secs:.1} s, {} runs/row",
            opts.runs
        );
        common::emit(&opts, &title, "source", &rows);
        println!("{}", render_table(&title, "source", &rows));
    }
    common::write_bench(&opts, &bench);
}
