//! Ablation — per-stage convergence of the running estimate.
//!
//! Runs the Figure 5.1 selection workload (5 000 output tuples) once
//! per swept `d_β` with a recording [`Tracer`] attached, then prints
//! the `convergence` trace records as a per-stage table: estimate,
//! relative 95% CI half-width, blocks drawn, and quota spent. This is
//! the trajectory the paper's tables summarize into a single row —
//! watching it per stage shows *how* the interval tightens as stages
//! bank more sample.
//!
//! With `--jsonl` the raw convergence records are emitted to stderr,
//! ready for the `jq` recipes in the README.
//!
//! Usage: `abl_convergence [--quota SECS] [--jsonl]`

use std::time::Duration;

use eram_bench::{Workload, WorkloadKind};
use eram_core::{StoppingCriterion, TraceKind, Tracer};

mod common;

fn field_f64(rec: &eram_core::TraceRecord, name: &str) -> f64 {
    rec.fields.get(name).and_then(|v| v.as_f64()).unwrap_or(0.0)
}

fn main() {
    let opts = common::Opts::parse("abl_convergence");
    let quota = Duration::from_secs_f64(opts.quota.unwrap_or(10.0));

    for (i, d_beta) in [0.0, 12.0, 24.0, 48.0].into_iter().enumerate() {
        let seed = common::row_seed("abl-convergence", i as u64, d_beta);
        let mut workload = Workload::build_on(
            WorkloadKind::Select {
                output_tuples: 5_000,
            },
            seed,
            0,
        );
        let tracer = Tracer::recording(workload.db.disk().clock().clone());
        let out = workload
            .db
            .count(workload.expr.clone())
            .within(quota)
            .strategy(eram_core::OneAtATimeInterval::new(d_beta))
            .stopping(StoppingCriterion::SoftDeadline)
            .seed(seed ^ 0x5EED)
            .tracer(tracer.clone())
            .run()
            .expect("experiment query must execute");

        println!(
            "Convergence — selection 5000/10000, d_beta {d_beta}, quota {:.1} s (truth {})",
            quota.as_secs_f64(),
            workload.truth
        );
        println!(
            "{:>5} | {:>10} | {:>8} | {:>7} | {:>9}",
            "stage", "estimate", "rel.hw", "blocks", "spent(s)"
        );
        println!("{}", "-".repeat(52));
        let records = tracer.records();
        for rec in records
            .iter()
            .filter(|r| r.kind == TraceKind::Stage && r.name == "convergence")
        {
            println!(
                "{:>5} | {:>10.1} | {:>8.4} | {:>7.0} | {:>9.3}",
                rec.stage,
                field_f64(rec, "estimate"),
                field_f64(rec, "rel_half_width"),
                field_f64(rec, "blocks_stage"),
                field_f64(rec, "spent_ns") / 1e9,
            );
        }
        println!(
            "final estimate {:.1} after {} stages ({} trace records)\n",
            out.estimate.estimate,
            out.report.stages.len(),
            tracer.record_count()
        );
        if opts.jsonl {
            eprintln!("# convergence d_beta {d_beta}");
            for rec in records
                .iter()
                .filter(|r| r.kind == TraceKind::Stage && r.name == "convergence")
            {
                eprintln!("{}", serde_json::to_string(rec).expect("record serializes"));
            }
        }
    }
}
