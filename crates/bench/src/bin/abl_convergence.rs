//! Ablation — per-stage convergence of the running estimate.
//!
//! Runs the Figure 5.1 selection workload (5 000 output tuples) once
//! per swept `d_β` with a recording [`Tracer`] attached, then prints
//! the `convergence` trace records as a per-stage table: estimate,
//! relative 95% CI half-width, blocks drawn, and quota spent. This is
//! the trajectory the paper's tables summarize into a single row —
//! watching it per stage shows *how* the interval tightens as stages
//! bank more sample.
//!
//! With `--jsonl` the raw convergence records are emitted to stderr,
//! ready for the `jq` recipes in the README. The machine-readable
//! `BENCH_abl_convergence.json` stores the full trajectory per row
//! (as the `simulated` payload — it is clock-charged and therefore
//! deterministic) plus the run's phase profile.
//!
//! Usage: `abl_convergence [--quota SECS] [--jsonl] [--json PATH]`

use std::time::{Duration, Instant};

use eram_bench::{BenchReport, Workload, WorkloadKind};
use eram_core::{Profiler, StoppingCriterion, TraceKind, Tracer};

mod common;

fn field_f64(rec: &eram_core::TraceRecord, name: &str) -> f64 {
    rec.fields.get(name).and_then(|v| v.as_f64()).unwrap_or(0.0)
}

fn main() {
    let opts = common::Opts::parse("abl_convergence");
    let quota = Duration::from_secs_f64(opts.quota.unwrap_or(10.0));

    let mut bench = BenchReport::new("abl_convergence");
    bench.config_kv("quota_secs", quota.as_secs_f64());
    bench.config_kv("output_tuples", 5_000u64);

    for (i, d_beta) in [0.0, 12.0, 24.0, 48.0].into_iter().enumerate() {
        let seed = common::row_seed("abl-convergence", i as u64, d_beta);
        let mut workload = Workload::build_on(
            WorkloadKind::Select {
                output_tuples: 5_000,
            },
            seed,
            0,
        );
        let tracer = Tracer::recording(workload.db.disk().clock().clone());
        let profiler = Profiler::recording(workload.db.disk().clock().clone());
        let started = Instant::now();
        let out = workload
            .db
            .count(workload.expr.clone())
            .within(quota)
            .strategy(eram_core::OneAtATimeInterval::new(d_beta))
            .stopping(StoppingCriterion::SoftDeadline)
            .seed(seed ^ 0x5EED)
            .tracer(tracer.clone())
            .profiler(profiler)
            .run()
            .expect("experiment query must execute");
        let wall = started.elapsed().as_secs_f64();

        println!(
            "Convergence — selection 5000/10000, d_beta {d_beta}, quota {:.1} s (truth {})",
            quota.as_secs_f64(),
            workload.truth
        );
        println!(
            "{:>5} | {:>10} | {:>8} | {:>7} | {:>9}",
            "stage", "estimate", "rel.hw", "blocks", "spent(s)"
        );
        println!("{}", "-".repeat(52));
        let records = tracer.records();
        let convergence: Vec<&eram_core::TraceRecord> = records
            .iter()
            .filter(|r| r.kind == TraceKind::Stage && r.name == "convergence")
            .collect();
        for rec in &convergence {
            println!(
                "{:>5} | {:>10.1} | {:>8.4} | {:>7.0} | {:>9.3}",
                rec.stage,
                field_f64(rec, "estimate"),
                field_f64(rec, "rel_half_width"),
                field_f64(rec, "blocks_stage"),
                field_f64(rec, "spent_ns") / 1e9,
            );
        }
        println!(
            "final estimate {:.1} after {} stages ({} trace records)\n",
            out.estimate.estimate,
            out.report.stages.len(),
            tracer.record_count()
        );
        if opts.jsonl {
            eprintln!("# convergence d_beta {d_beta}");
            for rec in &convergence {
                eprintln!("{}", serde_json::to_string(rec).expect("record serializes"));
            }
        }
        // The trajectory is clock-charged, so it belongs to the
        // exact-compared simulated payload.
        bench.push_value(
            format!("d_beta={d_beta}"),
            serde_json::json!({
                "truth": workload.truth,
                "final_estimate": out.estimate.estimate,
                "stages": out.report.stages.len(),
                "trajectory": convergence,
            }),
            &[wall],
            out.report.profile.clone(),
        );
    }
    common::write_bench(&opts, &bench);
}
