//! Ablation — **random vs. clustered tuple placement**.
//!
//! The paper's experiments state, almost in passing, "Tuples in a
//! relation are randomly distributed" — a load-bearing sentence:
//! cluster sampling (whole disk blocks as sample units) has variance
//! proportional to the *between-block* variance of the quantity being
//! counted. With qualifying tuples scattered randomly, a block total
//! is a small binomial and the cluster estimator behaves like simple
//! random sampling; with qualifying tuples packed into contiguous
//! blocks (a clustered index, a sorted load), block totals are all-or-
//! nothing and the same sample size buys a far worse estimate.
//!
//! Usage: `abl_clustering [--runs N] [--quota SECS] [--jsonl] [--json PATH]`

use std::time::Duration;

use eram_bench::{measure_row, render_table, BenchReport, PaperRow, TrialConfig, WorkloadKind};

mod common;

fn main() {
    let opts = common::Opts::parse("abl_clustering");
    let quota = Duration::from_secs_f64(opts.quota.unwrap_or(10.0));
    let d_beta = 12.0;
    let output_tuples = 2_000u64;

    let mut bench = BenchReport::new("abl_clustering");
    bench.config_kv("quota_secs", quota.as_secs_f64());
    bench.config_kv("runs", opts.runs as u64);
    bench.config_kv("d_beta", d_beta);
    bench.config_kv("output_tuples", output_tuples);

    let mut rows = Vec::new();
    for (label, kind) in [
        ("random (paper)", WorkloadKind::Select { output_tuples }),
        ("clustered", WorkloadKind::SelectClustered { output_tuples }),
    ] {
        let cfg = TrialConfig::paper(kind, quota, d_beta);
        let measured = measure_row(&cfg, opts.runs, common::row_seed(label, 3, d_beta));
        bench.push_measured(label, &measured);
        rows.push(PaperRow {
            label: label.to_string(),
            stats: measured.stats,
        });
    }
    let title = format!(
        "Ablation — tuple placement, select({output_tuples}), quota {:.1} s, {} runs/row",
        quota.as_secs_f64(),
        opts.runs
    );
    common::emit(&opts, &title, "layout", &rows);
    println!("{}", render_table(&title, "layout", &rows));
    println!(
        "Same control loop, same blocks — the clustered layout's estimate error is the\n\
         between-block variance the paper dodged by loading tuples in random order."
    );
    common::write_bench(&opts, &bench);
}
