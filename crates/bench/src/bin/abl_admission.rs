//! Ablation — admission control and overload shedding under offered
//! load and fault storms.
//!
//! Sweeps the [`QueryServer`](eram_core::QueryServer) over a grid of
//! offered load (how many tenants contend for the same horizon) and
//! device weather (clean, transient faults, latency-spike storms),
//! and reports where each offered job landed: admitted-and-met,
//! refused at admission, shed mid-batch, or failed. The table shows
//! the robustness contract the serving layer adds on top of the
//! paper's fixed-time engine: as load and faults climb, the
//! refused/shed columns grow while **deadlines missed stays zero**.
//!
//! Every cell is also run under both `--concurrency` modes and the
//! stripped outcomes cross-checked for equality, surfacing the
//! sharing win: on the overlapping-tenant grid the interleaved
//! turnstile feeds co-resident scans from one pool, so the simulated
//! makespan and physical block count drop strictly below the
//! sequential oracle's while per-job results stay byte-identical.
//!
//! Usage: `abl_admission [--runs N] [--quota SECS] [--jsonl] [--json PATH]`
//! (`--quota` overrides the per-batch deadline horizon; `--runs`
//! repeats each cell with distinct seeds and sums the buckets.)

use std::time::Duration;

use eram_core::{Concurrency, Database, QueryServer, ServerJob, ServerOutcome};
use eram_relalg::{CmpOp, Expr, Predicate};
use eram_storage::{ColumnType, FaultPlan, Schema, Tuple, Value};

mod common;

/// One sweep cell: tenants contending for one deadline horizon under
/// one kind of device weather.
struct Cell {
    label: &'static str,
    tenants: usize,
    transient: f64,
    spike_rate: f64,
}

fn build_db(seed: u64) -> Database {
    let mut db = Database::sim_default(seed);
    let schema = Schema::new(vec![("k", ColumnType::Int), ("g", ColumnType::Int)]).padded_to(200);
    // Small enough that co-resident samplers (cluster sampling
    // without replacement, one seeded permutation per job) collide on
    // blocks within a granted quota — that collision is what the
    // shared-draw broker pools, and what the clean-grid asserts below
    // measure.
    db.load_relation(
        "t",
        schema,
        (0..1_000).map(|i| Tuple::new(vec![Value::Int(i), Value::Int(i % 10)])),
    )
    .expect("workload relation loads");
    db
}

/// The offered batch: `tenants` jobs with staggered deadlines inside
/// `horizon`, descending value so shedding has a meaningful ordering.
fn offered_jobs(tenants: usize, horizon: Duration) -> Vec<ServerJob> {
    (0..tenants)
        .map(|i| {
            let frac = (i + 1) as f64 / tenants as f64;
            let expr = Expr::relation("t").select(Predicate::col_cmp(1, CmpOp::Lt, 3 + i as i64));
            ServerJob::count(
                format!("tenant-{i}"),
                expr,
                Duration::from_secs_f64(horizon.as_secs_f64() * frac),
            )
            .with_desired_quota(Duration::from_secs_f64(2.0))
            .with_value(1.0 / (1.0 + i as f64))
        })
        .collect()
}

fn run_cell(cell: &Cell, horizon: Duration, seed: u64, mode: Concurrency) -> ServerOutcome {
    let mut db = build_db(seed);
    if cell.transient > 0.0 || cell.spike_rate > 0.0 {
        db.inject_faults(
            FaultPlan::new(seed ^ 0xAD01_5510)
                .with_transient(cell.transient)
                .with_spikes(cell.spike_rate, Duration::from_millis(500)),
        );
    }
    QueryServer::new()
        .concurrency(mode)
        .run(&mut db, offered_jobs(cell.tenants, horizon))
}

fn main() {
    let opts = common::Opts::parse("abl_admission");
    let horizon = Duration::from_secs_f64(opts.quota.unwrap_or(12.0));
    // Cap the per-cell repeat count: each run is a whole multi-job
    // batch, not one trial, so the paper's 200-run default would
    // dominate the suite's wall time for no extra signal.
    let runs = opts.runs.clamp(1, 20);

    let sweep = [
        Cell {
            label: "n=2 clean",
            tenants: 2,
            transient: 0.0,
            spike_rate: 0.0,
        },
        Cell {
            label: "n=4 clean",
            tenants: 4,
            transient: 0.0,
            spike_rate: 0.0,
        },
        Cell {
            label: "n=8 clean",
            tenants: 8,
            transient: 0.0,
            spike_rate: 0.0,
        },
        Cell {
            label: "n=16 clean",
            tenants: 16,
            transient: 0.0,
            spike_rate: 0.0,
        },
        Cell {
            label: "n=4 t=10%",
            tenants: 4,
            transient: 0.10,
            spike_rate: 0.0,
        },
        Cell {
            label: "n=8 t=10%",
            tenants: 8,
            transient: 0.10,
            spike_rate: 0.0,
        },
        Cell {
            label: "n=8 spikes=30%",
            tenants: 8,
            transient: 0.0,
            spike_rate: 0.30,
        },
        Cell {
            label: "n=16 t=5% spikes=30%",
            tenants: 16,
            transient: 0.05,
            spike_rate: 0.30,
        },
    ];

    let mut bench = eram_bench::BenchReport::new("abl_admission");
    bench.config_kv("horizon_secs", horizon.as_secs_f64());
    bench.config_kv("runs", runs as u64);

    println!(
        "Ablation — admission & shedding, horizon {:.1} s, {} runs/cell",
        horizon.as_secs_f64(),
        runs
    );
    println!(
        "{:<22} {:>8} {:>9} {:>8} {:>6} {:>7} {:>5} {:>7} {:>9} {:>9} {:>7}",
        "cell",
        "offered",
        "admitted",
        "refused",
        "shed",
        "failed",
        "met",
        "missed",
        "mk-seq(s)",
        "mk-int(s)",
        "shared"
    );
    for (i, cell) in sweep.iter().enumerate() {
        let mut sums = [0u64; 7]; // offered admitted refused shed failed met missed
        let mut makespan_seq = 0.0f64;
        let mut makespan_int = 0.0f64;
        let mut physical_seq = 0u64;
        let mut physical_int = 0u64;
        let mut charged = 0u64;
        let mut shared = 0u64;
        let mut saved_ns = 0u64;
        let mut walls = Vec::with_capacity(runs);
        for run in 0..runs {
            let seed = common::row_seed("abl-admission", (i * 1000 + run) as u64, 0.0);
            let t0 = std::time::Instant::now();
            let outcome = run_cell(cell, horizon, seed, Concurrency::Sequential);
            let inter = run_cell(cell, horizon, seed, Concurrency::Interleaved);
            walls.push(t0.elapsed().as_secs_f64());
            assert_eq!(
                outcome.stripped_of_schedule(),
                inter.stripped_of_schedule(),
                "{}: interleaved serving changed a per-job result",
                cell.label
            );
            let (s_sched, i_sched) = (
                outcome.schedule.as_ref().expect("schedule always reported"),
                inter.schedule.as_ref().expect("schedule always reported"),
            );
            makespan_seq += s_sched.makespan.as_secs_f64();
            makespan_int += i_sched.makespan.as_secs_f64();
            physical_seq += s_sched.physical_blocks;
            physical_int += i_sched.physical_blocks;
            charged += s_sched.charged_blocks;
            shared += i_sched.blocks_shared;
            saved_ns += i_sched.charge_saved_ns;
            let s = outcome.stats;
            for (slot, v) in sums.iter_mut().zip([
                s.offered,
                s.admitted,
                s.refused,
                s.shed,
                s.failed,
                s.deadlines_met,
                s.deadlines_missed,
            ]) {
                *slot += v;
            }
        }
        assert_eq!(
            sums[6], 0,
            "{}: an admitted job missed its deadline",
            cell.label
        );
        // The sharing win: on the clean overlapping-tenant grid the
        // interleaved mode must strictly beat the oracle on both
        // simulated makespan and physical device reads. Storm cells
        // may shed (speculative lane work can eat the margin), and at
        // n=2 two short sampling permutations can miss each other
        // entirely, so those cells only report.
        if cell.transient == 0.0 && cell.spike_rate == 0.0 && cell.tenants >= 4 {
            assert!(shared > 0, "{}: co-resident scans never pooled", cell.label);
            assert!(
                makespan_int < makespan_seq,
                "{}: interleaved makespan {makespan_int:.3}s did not beat sequential \
                 {makespan_seq:.3}s",
                cell.label
            );
            assert!(
                physical_int < physical_seq,
                "{}: interleaved physical reads {physical_int} did not beat sequential \
                 {physical_seq}",
                cell.label
            );
        }
        println!(
            "{:<22} {:>8} {:>9} {:>8} {:>6} {:>7} {:>5} {:>7} {:>9.2} {:>9.2} {:>7}",
            cell.label,
            sums[0],
            sums[1],
            sums[2],
            sums[3],
            sums[4],
            sums[5],
            sums[6],
            makespan_seq,
            makespan_int,
            shared
        );
        bench.push_value(
            cell.label,
            serde_json::json!({
                "offered": sums[0],
                "admitted": sums[1],
                "refused": sums[2],
                "shed": sums[3],
                "failed": sums[4],
                "deadlines_met": sums[5],
                "deadlines_missed": sums[6],
                "makespan_seq_secs": makespan_seq,
                "makespan_interleaved_secs": makespan_int,
                "charged_blocks": charged,
                "physical_blocks_seq": physical_seq,
                "physical_blocks_interleaved": physical_int,
                "blocks_shared": shared,
                "charge_saved_secs": saved_ns as f64 / 1e9,
            }),
            &walls,
            None,
        );
    }
    common::write_bench(&opts, &bench);
}
