//! Ablation: **block layout for sampled-block traversal**.
//!
//! Sweeps `layout ∈ {row, columnar}` over the Figure 5.1 selection
//! workload and the Figure 5.3 join workload (2.5 s quota,
//! `d_β = 12`) and reports, per layout, the usual paper columns plus
//! the *wall-clock* time the sweep's trials took and the speedup over
//! the row layout. The simulated-clock columns must be **identical**
//! within each workload — the columnar layout only changes how the
//! pure-CPU kernels walk a decoded block (per-column predicate
//! bitmaps, key columns read off typed arrays) — and the binary
//! asserts exactly that before printing.
//!
//! The selection workload is where the layout pays: the predicate
//! runs over one typed array and only survivors are ever materialized
//! as row tuples. The join workload bounds the cost of the other
//! extreme — ingest must materialize every sampled row anyway, so the
//! layouts should be within noise of each other there.
//!
//! Trials run serially so the wall-clock column isolates the layout
//! choice. The emitted `BENCH_abl_layout.json` carries per-row wall
//! stats and the trial-0 phase profile.
//!
//! Usage: `abl_layout [--runs N] [--quota SECS] [--jsonl] [--json PATH]`

use std::time::{Duration, Instant};

use eram_bench::harness::run_trial_with;
use eram_bench::{
    render_table, BenchReport, MeasuredRow, PaperRow, RowStats, TrialConfig, TrialResult,
    WorkloadKind,
};
use eram_core::BlockLayout;
use eram_storage::SeedSeq;

mod common;

fn main() {
    let opts = common::Opts::parse("abl_layout");
    let quota = Duration::from_secs_f64(opts.quota.unwrap_or(2.5));
    let output_tuples = 70_000u64;
    let d_beta = 12.0;

    let mut bench = BenchReport::new("abl_layout");
    bench.config_kv("quota_secs", quota.as_secs_f64());
    bench.config_kv("runs", opts.runs as u64);
    bench.config_kv("d_beta", d_beta);
    bench.config_kv("output_tuples", output_tuples);

    // Selection caps at the base relation size (10 000 tuples); the
    // join uses the Figure 5.3 sizing.
    let workloads = [
        (
            "select",
            WorkloadKind::Select {
                output_tuples: 5_000,
            },
        ),
        ("join", WorkloadKind::Join { output_tuples }),
    ];
    let mut all_rows: Vec<PaperRow> = Vec::new();
    let mut walls: Vec<(String, f64)> = Vec::new();
    for (wname, kind) in workloads {
        let seeds = SeedSeq::new(common::row_seed("abl-layout", output_tuples, d_beta));
        let mut rows: Vec<PaperRow> = Vec::new();
        for (label, layout) in [
            ("row", BlockLayout::Row),
            ("columnar", BlockLayout::Columnar),
        ] {
            let mut cfg = TrialConfig::paper(kind, quota, d_beta);
            cfg.block_layout = layout;
            let started = Instant::now();
            let mut trials: Vec<TrialResult> = Vec::with_capacity(opts.runs);
            let mut wall_secs: Vec<f64> = Vec::with_capacity(opts.runs);
            let mut profile = None;
            for i in 0..opts.runs {
                let trial_started = Instant::now();
                let (trial, prof) = run_trial_with(&cfg, seeds.derive(i as u64), i == 0);
                wall_secs.push(trial_started.elapsed().as_secs_f64());
                trials.push(trial);
                if prof.is_some() {
                    profile = prof;
                }
            }
            let wall = started.elapsed().as_secs_f64();
            let stats = RowStats::aggregate(&trials);
            if let Some(first) = rows.first() {
                assert_eq!(
                    first.stats, stats,
                    "{wname}: layout={label} changed the simulated results — determinism broken"
                );
            }
            bench.push_measured(
                format!("{wname} layout={label}"),
                &MeasuredRow {
                    stats,
                    wall_secs,
                    profile,
                },
            );
            rows.push(PaperRow {
                label: format!("{wname}/{label}"),
                stats,
            });
            walls.push((format!("{wname}/{label}"), wall));
        }
        all_rows.append(&mut rows);
    }

    let title = format!(
        "Ablation — block layout, select+join, {output_tuples} output tuples, quota {:.1} s, {} runs/row",
        quota.as_secs_f64(),
        opts.runs
    );
    common::emit(&opts, &title, "layout", &all_rows);
    println!("{}", render_table(&title, "layout", &all_rows));
    println!("simulated columns identical under both layouts ✓");
    println!(
        "{:>16} | {:>9} | {:>7}",
        "workload/layout", "wall (s)", "speedup"
    );
    for pair in walls.chunks(2) {
        let base = pair[0].1;
        for (label, wall) in pair {
            println!(
                "{label:>16} | {wall:>9.3} | {:>6.2}x",
                if *wall > 0.0 { base / wall } else { 1.0 }
            );
        }
    }
    common::write_bench(&opts, &bench);
}
