//! Ablation — **full vs. partial fulfillment** (Section 4 /
//! [HoOT 88a]).
//!
//! "The full fulfillment approach has the advantage of making the
//! most use of the sampled data, and hence it is time-efficient. The
//! disadvantage is that the intermediate results, from all the
//! previous stages, have to be kept ... (Another implementation, a
//! partial fulfillment, is less costly)". The paper also suggests
//! partial fulfillment "may have its place" to use small leftover
//! slices that cannot fund a full-fulfillment stage.
//!
//! This ablation runs the intersection workload under both plans and
//! reports points covered (via blocks and estimate quality) and the
//! usual time-control columns.
//!
//! Usage: `abl_fulfillment [--runs N] [--quota SECS] [--jsonl] [--json PATH]`

use std::time::Duration;

use eram_bench::{measure_row, render_table, BenchReport, PaperRow, TrialConfig, WorkloadKind};
use eram_core::{CostModel, Fulfillment, OneAtATimeInterval, SelectivityDefaults};

mod common;

fn main() {
    let opts = common::Opts::parse("abl_fulfillment");
    let quota = Duration::from_secs_f64(opts.quota.unwrap_or(2.5));
    let kind = WorkloadKind::Intersect { overlap: 5_000 };
    let d_beta = 12.0;

    let mut bench = BenchReport::new("abl_fulfillment");
    bench.config_kv("quota_secs", quota.as_secs_f64());
    bench.config_kv("runs", opts.runs as u64);
    bench.config_kv("d_beta", d_beta);

    let mut rows = Vec::new();
    for (name, fulfillment) in [
        ("full", Fulfillment::Full),
        ("partial", Fulfillment::Partial),
    ] {
        let cfg = TrialConfig {
            kind,
            quota,
            strategy: Box::new(move || Box::new(OneAtATimeInterval::new(d_beta))),
            defaults: SelectivityDefaults::default(),
            fulfillment,
            memory: eram_core::MemoryMode::DiskResident,
            cost_model: CostModel::generic_default(),
            cache_blocks: 0,
            hybrid_leftover: false,
            seed_from_stats: false,
            fault_plan: None,
            workers: 1,
            block_layout: eram_core::BlockLayout::default(),
        };
        let measured = measure_row(&cfg, opts.runs, common::row_seed("abl-fulfill", 0, d_beta));
        bench.push_measured(name, &measured);
        rows.push(PaperRow {
            label: name.to_string(),
            stats: measured.stats,
        });
    }
    let title = format!(
        "Ablation — full vs partial fulfillment, intersect(5000), quota {:.1} s, {} runs/row",
        quota.as_secs_f64(),
        opts.runs
    );
    common::emit(&opts, &title, "plan", &rows);
    println!("{}", render_table(&title, "plan", &rows));
    common::write_bench(&opts, &bench);
}
