#![allow(dead_code)] // each experiment binary uses a subset of these helpers

//! Shared CLI plumbing for the experiment binaries.

use std::path::PathBuf;

use eram_bench::{render_jsonl, BenchReport, PaperRow};
use eram_storage::SeedSeq;

/// Parsed command-line options.
pub struct Opts {
    /// Independent runs per row (paper: 200).
    pub runs: usize,
    /// Quota override in seconds.
    pub quota: Option<f64>,
    /// Also emit JSON lines (provenance for EXPERIMENTS.md).
    pub jsonl: bool,
    /// Override for the machine-readable `BENCH_<suite>.json` path.
    pub json: Option<PathBuf>,
}

impl Opts {
    /// Parses `--runs N`, `--quota SECS`, `--jsonl`, `--json PATH`.
    pub fn parse(name: &str) -> Opts {
        let mut runs = 200usize;
        let mut quota = None;
        let mut jsonl = false;
        let mut json = None;
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--runs" => {
                    runs = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage(name));
                }
                "--quota" => {
                    quota = Some(
                        args.next()
                            .and_then(|v| v.parse().ok())
                            .unwrap_or_else(|| usage(name)),
                    );
                }
                "--jsonl" => jsonl = true,
                "--json" => {
                    json = Some(PathBuf::from(args.next().unwrap_or_else(|| usage(name))));
                }
                "--help" | "-h" => usage(name),
                other => {
                    eprintln!("unknown argument: {other}");
                    usage(name)
                }
            }
        }
        Opts {
            runs,
            quota,
            jsonl,
            json,
        }
    }
}

fn usage(name: &str) -> ! {
    eprintln!("usage: {name} [--runs N] [--quota SECS] [--jsonl] [--json PATH]");
    std::process::exit(2)
}

/// Writes the machine-readable sweep report. Default destination is
/// `results/BENCH_<suite>.json` when a `results/` directory exists in
/// the working directory (the repo layout), else
/// `BENCH_<suite>.json`; `--json PATH` overrides either.
pub fn write_bench(opts: &Opts, report: &BenchReport) {
    if serde_json::to_string(&0u32).is_err() {
        eprintln!("offline serde stubs: skipping BENCH_{}.json", report.suite);
        return;
    }
    let path = opts.json.clone().unwrap_or_else(|| {
        let name = format!("BENCH_{}.json", report.suite);
        if std::path::Path::new("results").is_dir() {
            PathBuf::from("results").join(name)
        } else {
            PathBuf::from(name)
        }
    });
    match report.write(&path) {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(err) => {
            eprintln!("cannot write {}: {err}", path.display());
            std::process::exit(2);
        }
    }
}

/// Deterministic per-row master seed from the experiment id and sweep
/// parameters.
pub fn row_seed(experiment: &str, sub: u64, d_beta: f64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in experiment
        .bytes()
        .chain(sub.to_le_bytes())
        .chain(d_beta.to_bits().to_le_bytes())
    {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    SeedSeq::new(h).derive(1)
}

/// Emits JSONL provenance when requested.
pub fn emit(opts: &Opts, title: &str, _param: &str, rows: &[PaperRow]) {
    if opts.jsonl {
        eprintln!("# {title}");
        eprintln!("{}", render_jsonl(rows));
    }
}
