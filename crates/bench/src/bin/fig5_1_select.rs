//! Regenerates **Figure 5.1** — performance of the time-control
//! algorithm for the selection operation.
//!
//! Paper setup: `COUNT(σ(r))` over a 10 000-tuple relation, time
//! quota 10 s, selection formula with one integer comparison, assumed
//! maximum selectivity 1 at the first stage; sub-tables for 0, 5 000,
//! and 10 000 output tuples; `d_β ∈ {0, 12, 24, 48, 72}`;
//! 200 independent runs per row.
//!
//! Usage: `fig5_1_select [--runs N] [--quota SECS] [--jsonl] [--json PATH]`

use std::time::Duration;

use eram_bench::{measure_row, render_table, BenchReport, PaperRow, TrialConfig, WorkloadKind};

mod common;

fn main() {
    let opts = common::Opts::parse("fig5_1_select");
    let quota = Duration::from_secs_f64(opts.quota.unwrap_or(10.0));
    let d_betas = [0.0, 12.0, 24.0, 48.0, 72.0];

    let mut bench = BenchReport::new("fig5_1_select");
    bench.config_kv("quota_secs", quota.as_secs_f64());
    bench.config_kv("runs", opts.runs as u64);

    for output_tuples in [0u64, 5_000, 10_000] {
        let mut rows = Vec::new();
        for d_beta in d_betas {
            let cfg = TrialConfig::paper(WorkloadKind::Select { output_tuples }, quota, d_beta);
            let measured = measure_row(
                &cfg,
                opts.runs,
                common::row_seed("fig5.1", output_tuples, d_beta),
            );
            bench.push_measured(format!("out={output_tuples} d_beta={d_beta}"), &measured);
            rows.push(PaperRow {
                label: format!("{d_beta}"),
                stats: measured.stats,
            });
        }
        let title = format!(
            "Figure 5.1 — Selection, {output_tuples} output tuples, quota {:.1} s, {} runs/row",
            quota.as_secs_f64(),
            opts.runs
        );
        common::emit(&opts, &title, "d_beta", &rows);
        println!("{}", render_table(&title, "d_beta", &rows));
    }
    common::write_bench(&opts, &bench);
}
