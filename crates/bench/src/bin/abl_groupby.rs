//! Ablation — **per-group stopping for grouped aggregates**.
//!
//! The paper's time-control loop stops a query as a whole; the
//! grouped-aggregate extension stops each group on its own precision
//! target, freezing converged groups so the remaining quota
//! concentrates on the loose ones. This ablation measures what that
//! buys on a skewed grouped relation:
//!
//! 1. **Precision sweep** — GROUP BY SUM under `GroupErrorBound` at
//!    several targets: simulated time to deliver, how many groups
//!    froze early, and the realized per-group relative error.
//! 2. **Hard-deadline sweep** — the same query under plain quotas:
//!    per-group error and 95 % CI coverage of the partial answers an
//!    abort leaves behind (the paper's "approximate answer instead of
//!    missed deadline" contract, now per group).
//!
//! Usage: `abl_groupby [--runs N] [--json PATH]`

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use eram_bench::BenchReport;
use eram_core::{AggregateFn, Database, StoppingCriterion};
use eram_relalg::{eval, CmpOp, Expr, Predicate};
use eram_storage::{ColumnType, Schema, SeedSeq, Tuple, Value};

mod common;

/// Group layout: (tuples, base amount, amount spread). Group 0 is
/// large and near-constant (freezes fast); group 1 is the skew tail
/// (wide dispersion, slow to converge); groups 2–3 sit in between.
const GROUPS: [(i64, i64, i64); 4] = [
    (5_000, 1_000, 3),
    (3_000, 0, 9_999),
    (1_500, 200, 400),
    (500, 800, 50),
];

fn grouped_db(seed: u64) -> Database {
    let mut db = Database::sim_default(seed);
    let schema = Schema::new(vec![
        ("k", ColumnType::Int),
        ("amount", ColumnType::Int),
        ("grp", ColumnType::Int),
    ])
    .padded_to(200);
    let mut tuples = Vec::new();
    let mut k = 0i64;
    for (g, (n, base, spread)) in GROUPS.into_iter().enumerate() {
        for i in 0..n {
            tuples.push(Tuple::new(vec![
                Value::Int(k),
                Value::Int(base + (i * 37) % spread.max(1)),
                Value::Int(g as i64),
            ]));
            k += 1;
        }
    }
    // Interleave the groups so sampled blocks mix them.
    tuples.sort_by_key(|t| t.value(0).as_int().unwrap() % 997);
    db.load_relation("g", schema, tuples).unwrap();
    db
}

fn query_expr() -> Expr {
    Expr::relation("g").select(Predicate::col_cmp(0, CmpOp::Lt, 10_000))
}

/// Exact per-group SUM of `amount` under the query expression.
fn truth_sums(db: &Database) -> BTreeMap<i64, f64> {
    let mut out = BTreeMap::new();
    for t in eval::eval(&query_expr(), db.catalog()).unwrap().iter() {
        let key = t.value(2).as_int().unwrap();
        *out.entry(key).or_insert(0.0) += t.value(1).as_int().unwrap() as f64;
    }
    out
}

fn measure_precision_sweep(runs: usize, bench: &mut BenchReport) {
    println!("GROUP BY SUM — per-group stopping, precision sweep ({runs} runs per target)");
    println!(
        "{:>7} | {:>10} | {:>12} | {:>12}",
        "target", "frozen", "mean rel.err", "sim ms"
    );
    println!("{}", "-".repeat(50));
    let seeds = SeedSeq::new(0x6B09);
    for target in [0.05f64, 0.10, 0.20] {
        let started = Instant::now();
        let mut frozen = 0.0f64;
        let mut rel_err = 0.0f64;
        let mut sim_ms = 0.0f64;
        for run in 0..runs {
            let seed = seeds.child(target.to_bits()).derive(run as u64);
            let mut db = grouped_db(seed);
            let truth = truth_sums(&db);
            let out = db
                .aggregate(
                    AggregateFn::SumBy {
                        column: 1,
                        group: 2,
                    },
                    query_expr(),
                )
                .within(Duration::from_secs(60))
                .stopping(StoppingCriterion::GroupErrorBound {
                    target,
                    confidence: 0.95,
                    min_tuples: 25,
                })
                .seed(seed ^ 0x9B0B)
                .run()
                .expect("grouped query must execute");
            sim_ms += out.report.total_elapsed.as_secs_f64() * 1_000.0;
            for g in &out.report.groups {
                if g.converged_at_stage.is_some() {
                    frozen += 1.0;
                }
                let t = truth[&g.key];
                rel_err += (g.estimate.estimate - t).abs() / t / GROUPS.len() as f64;
            }
        }
        let frozen = frozen / runs as f64;
        let rel_err = rel_err / runs as f64;
        let sim_ms = sim_ms / runs as f64;
        println!("{target:>7.2} | {frozen:>10.2} | {rel_err:>12.4} | {sim_ms:>12.1}");
        bench.push_value(
            format!("precision target={target}"),
            serde_json::json!({
                "target": target,
                "groups_frozen": frozen,
                "mean_rel_err": rel_err,
                "sim_ms": sim_ms,
            }),
            &[started.elapsed().as_secs_f64()],
            None,
        );
    }
    println!();
}

fn measure_deadline_sweep(runs: usize, bench: &mut BenchReport) {
    println!("GROUP BY SUM — hard-deadline partial answers ({runs} runs per quota)");
    println!(
        "{:>7} | {:>12} | {:>10} | {:>12}",
        "quota s", "mean rel.err", "coverage%", "sim ms"
    );
    println!("{}", "-".repeat(50));
    let seeds = SeedSeq::new(0x6B0A);
    for quota_s in [1u64, 2, 4, 8] {
        let started = Instant::now();
        let mut rel_err = 0.0f64;
        let mut covered = 0u64;
        let mut cells = 0u64;
        let mut sim_ms = 0.0f64;
        for run in 0..runs {
            let seed = seeds.child(quota_s).derive(run as u64);
            let mut db = grouped_db(seed);
            let truth = truth_sums(&db);
            let out = db
                .aggregate(
                    AggregateFn::SumBy {
                        column: 1,
                        group: 2,
                    },
                    query_expr(),
                )
                .within(Duration::from_secs(quota_s))
                .seed(seed ^ 0x9B0B)
                .run()
                .expect("grouped query must execute");
            sim_ms += out.report.total_elapsed.as_secs_f64() * 1_000.0;
            for g in &out.report.groups {
                let t = truth[&g.key];
                rel_err += (g.estimate.estimate - t).abs() / t;
                let (lo, hi) = g.estimate.ci(0.95);
                if lo <= t && t <= hi {
                    covered += 1;
                }
                cells += 1;
            }
        }
        let rel_err = rel_err / cells.max(1) as f64;
        let coverage_pct = 100.0 * covered as f64 / cells.max(1) as f64;
        let sim_ms = sim_ms / runs as f64;
        println!("{quota_s:>7} | {rel_err:>12.4} | {coverage_pct:>10.1} | {sim_ms:>12.1}");
        bench.push_value(
            format!("deadline quota={quota_s}s"),
            serde_json::json!({
                "quota_s": quota_s,
                "mean_rel_err": rel_err,
                "coverage_pct": coverage_pct,
                "sim_ms": sim_ms,
            }),
            &[started.elapsed().as_secs_f64()],
            None,
        );
    }
    println!();
}

fn main() {
    let opts = common::Opts::parse("abl_groupby");
    let runs = opts.runs.min(200);

    let mut bench = BenchReport::new("abl_groupby");
    bench.config_kv("runs", runs as u64);

    measure_precision_sweep(runs, &mut bench);
    measure_deadline_sweep(runs, &mut bench);
    common::write_bench(&opts, &bench);
}
