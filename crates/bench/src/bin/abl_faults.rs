//! Ablation — estimator degradation under injected storage faults.
//!
//! Runs the Figure 5.1 selection workload (5 000 output tuples,
//! `d_β = 12`) while the device suffers seeded transient read errors
//! and permanent block corruption at swept rates. The health columns
//! show the trade the engine makes: every trial still returns an
//! estimate within the quota, but lost blocks shrink the sample, so
//! accuracy decays gracefully instead of the query failing.
//!
//! Usage: `abl_faults [--runs N] [--quota SECS] [--jsonl] [--json PATH]`

use std::time::Duration;

use eram_bench::{measure_row, render_table, BenchReport, PaperRow, TrialConfig, WorkloadKind};
use eram_storage::FaultPlan;

mod common;

fn main() {
    let opts = common::Opts::parse("abl_faults");
    let quota = Duration::from_secs_f64(opts.quota.unwrap_or(10.0));
    let d_beta = 12.0;

    // (label, transient rate, corruption rate)
    let sweep = [
        ("clean", 0.0, 0.0),
        ("t=1%", 0.01, 0.0),
        ("t=5%", 0.05, 0.0),
        ("t=10%", 0.10, 0.0),
        ("c=1%", 0.0, 0.01),
        ("c=5%", 0.0, 0.05),
        ("t=5% c=1%", 0.05, 0.01),
    ];

    let mut bench = BenchReport::new("abl_faults");
    bench.config_kv("quota_secs", quota.as_secs_f64());
    bench.config_kv("runs", opts.runs as u64);
    bench.config_kv("d_beta", d_beta);

    let mut rows = Vec::new();
    for (i, (label, transient, corrupt)) in sweep.iter().enumerate() {
        let mut cfg = TrialConfig::paper(
            WorkloadKind::Select {
                output_tuples: 5_000,
            },
            quota,
            d_beta,
        );
        if *transient > 0.0 || *corrupt > 0.0 {
            cfg.fault_plan = Some(
                FaultPlan::new(0xFA17_0000 + i as u64)
                    .with_transient(*transient)
                    .with_corruption(*corrupt),
            );
        }
        let measured = measure_row(
            &cfg,
            opts.runs,
            common::row_seed("abl-faults", i as u64, d_beta),
        );
        bench.push_measured(*label, &measured);
        rows.push(PaperRow {
            label: (*label).to_string(),
            stats: measured.stats,
        });
    }
    let title = format!(
        "Ablation — storage faults, selection 5000/10000, d_beta {d_beta}, quota {:.1} s, {} runs/row",
        quota.as_secs_f64(),
        opts.runs
    );
    common::emit(&opts, &title, "faults", &rows);
    println!("{}", render_table(&title, "faults", &rows));
    common::write_bench(&opts, &bench);
}
