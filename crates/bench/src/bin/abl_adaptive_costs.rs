//! Ablation — **adaptive vs. fixed-form cost formulas** (Section 4).
//!
//! "We think that using a fixed-form cost formula for an operation
//! (i.e., one with all the values of coefficients fixed) is not
//! flexible enough..." This ablation quantifies the claim: the same
//! workload is run with (a) adaptive coefficients from generic
//! initial values (the paper's design), (b) the same generic values
//! *frozen* (fixed-form with a bad guess), and (c) frozen *oracle*
//! values derived from the true device profile (the best any
//! fixed-form formula could do — but note the oracle cannot track
//! per-query specifics either).
//!
//! Usage: `abl_adaptive_costs [--runs N] [--quota SECS] [--jsonl] [--json PATH]`

use std::time::Duration;

use eram_bench::{measure_row, render_table, BenchReport, PaperRow, TrialConfig, WorkloadKind};
use eram_core::{CostModel, Fulfillment, OneAtATimeInterval, SelectivityDefaults};
use eram_storage::DeviceProfile;

mod common;

fn main() {
    let opts = common::Opts::parse("abl_adaptive_costs");
    let quota = Duration::from_secs_f64(opts.quota.unwrap_or(10.0));
    let kind = WorkloadKind::Select {
        output_tuples: 5_000,
    };
    let d_beta = 12.0;

    let models: Vec<(&str, CostModel)> = vec![
        ("adaptive", CostModel::generic_default()),
        ("frozen-generic", CostModel::generic_default().frozen()),
        (
            "frozen-oracle",
            CostModel::oracle(&DeviceProfile::sun_3_60(), 5.0).frozen(),
        ),
    ];

    let mut bench = BenchReport::new("abl_adaptive_costs");
    bench.config_kv("quota_secs", quota.as_secs_f64());
    bench.config_kv("runs", opts.runs as u64);
    bench.config_kv("d_beta", d_beta);

    let mut rows = Vec::new();
    for (name, model) in models {
        let cfg = TrialConfig {
            kind,
            quota,
            strategy: Box::new(move || Box::new(OneAtATimeInterval::new(d_beta))),
            defaults: SelectivityDefaults::default(),
            fulfillment: Fulfillment::Full,
            memory: eram_core::MemoryMode::DiskResident,
            cost_model: model,
            cache_blocks: 0,
            hybrid_leftover: false,
            seed_from_stats: false,
            fault_plan: None,
            workers: 1,
            block_layout: eram_core::BlockLayout::default(),
        };
        let measured = measure_row(&cfg, opts.runs, common::row_seed("abl-adaptive", 0, d_beta));
        bench.push_measured(name, &measured);
        rows.push(PaperRow {
            label: name.to_string(),
            stats: measured.stats,
        });
    }
    let title = format!(
        "Ablation — adaptive vs fixed cost formulas, select(5000), quota {:.1} s, {} runs/row",
        quota.as_secs_f64(),
        opts.runs
    );
    common::emit(&opts, &title, "model", &rows);
    println!("{}", render_table(&title, "model", &rows));
    common::write_bench(&opts, &bench);
}
