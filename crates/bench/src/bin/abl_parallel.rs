//! Ablation: **worker threads for the pure-CPU stage work**.
//!
//! Sweeps `workers ∈ {1, 2, 4, 8}` over the Figure 5.3 join workload
//! (`COUNT(r₁ ⋈ r₂)`, 70 000 output tuples, 2.5 s quota, `d_β = 12`)
//! and reports, per worker count, the usual paper columns plus the
//! *wall-clock* time the sweep's trials took and the speedup over one
//! worker. The simulated-clock columns must be **identical** in every
//! row — charges, traces, and estimator state all stay on the calling
//! thread in canonical order; workers only decode blocks and merge
//! runs — and the binary asserts exactly that before printing.
//!
//! Trials run serially here (unlike `run_row`) so the wall-clock
//! column isolates intra-stage parallelism instead of mixing it with
//! inter-trial parallelism. The emitted `BENCH_abl_parallel.json`
//! carries per-row wall stats and the trial-0 phase profile, so the
//! flight recorder shows *where* the speedup lands (block decode and
//! run merge shrink; the serial phases do not).
//!
//! Usage: `abl_parallel [--runs N] [--quota SECS] [--jsonl] [--json PATH]`

use std::time::{Duration, Instant};

use eram_bench::harness::run_trial_with;
use eram_bench::{
    render_table, BenchReport, MeasuredRow, PaperRow, RowStats, TrialConfig, TrialResult,
    WorkloadKind,
};
use eram_storage::SeedSeq;

mod common;

fn main() {
    let opts = common::Opts::parse("abl_parallel");
    let quota = Duration::from_secs_f64(opts.quota.unwrap_or(2.5));
    let output_tuples = 70_000u64;
    let d_beta = 12.0;
    let seeds = SeedSeq::new(common::row_seed("abl-parallel", output_tuples, d_beta));

    let mut bench = BenchReport::new("abl_parallel");
    bench.config_kv("quota_secs", quota.as_secs_f64());
    bench.config_kv("runs", opts.runs as u64);
    bench.config_kv("d_beta", d_beta);
    bench.config_kv("output_tuples", output_tuples);

    let mut rows: Vec<PaperRow> = Vec::new();
    let mut walls: Vec<(usize, f64)> = Vec::new();
    for workers in [1usize, 2, 4, 8] {
        let mut cfg = TrialConfig::paper(WorkloadKind::Join { output_tuples }, quota, d_beta);
        cfg.workers = workers;
        let started = Instant::now();
        let mut trials: Vec<TrialResult> = Vec::with_capacity(opts.runs);
        let mut wall_secs: Vec<f64> = Vec::with_capacity(opts.runs);
        let mut profile = None;
        for i in 0..opts.runs {
            let trial_started = Instant::now();
            let (trial, prof) = run_trial_with(&cfg, seeds.derive(i as u64), i == 0);
            wall_secs.push(trial_started.elapsed().as_secs_f64());
            trials.push(trial);
            if prof.is_some() {
                profile = prof;
            }
        }
        let wall = started.elapsed().as_secs_f64();
        let stats = RowStats::aggregate(&trials);
        if let Some(first) = rows.first() {
            assert_eq!(
                first.stats, stats,
                "workers={workers} changed the simulated results — determinism broken"
            );
        }
        bench.push_measured(
            format!("workers={workers}"),
            &MeasuredRow {
                stats,
                wall_secs,
                profile,
            },
        );
        rows.push(PaperRow {
            label: format!("{workers}"),
            stats,
        });
        walls.push((workers, wall));
    }

    let title = format!(
        "Ablation — worker threads, join {output_tuples} output tuples, quota {:.1} s, {} runs/row",
        quota.as_secs_f64(),
        opts.runs
    );
    common::emit(&opts, &title, "workers", &rows);
    println!("{}", render_table(&title, "workers", &rows));
    println!("simulated columns identical at every worker count ✓");
    println!("{:>8} | {:>9} | {:>7}", "workers", "wall (s)", "speedup");
    let base = walls[0].1;
    for (workers, wall) in &walls {
        println!(
            "{workers:>8} | {wall:>9.3} | {:>6.2}x",
            if *wall > 0.0 { base / wall } else { 1.0 }
        );
    }
    common::write_bench(&opts, &bench);
}
