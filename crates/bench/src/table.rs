//! Paper-format table rendering.
//!
//! Each Section 5 table has one row per `d_β` with the columns
//! `stages | risk | ovsp | utilization | blocks`. [`render_table`]
//! prints that layout (plus our extra accuracy column) and
//! [`PaperRow`] pairs a measured row with the paper's published
//! values so EXPERIMENTS.md can show paper-vs-measured side by side.

use serde::{Deserialize, Serialize};

use crate::harness::RowStats;

/// One rendered row: the sweep parameter and the measured stats.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PaperRow {
    /// The swept `d_β` (or other parameter) label.
    pub label: String,
    /// Measured statistics.
    pub stats: RowStats,
}

/// Renders a Section 5-style table to a string. When any row saw
/// storage faults, three health columns (`faults`, `lost`,
/// `degraded%`) are appended so ablation tables over fault rates read
/// like the paper's.
pub fn render_table(title: &str, param_name: &str, rows: &[PaperRow]) -> String {
    let with_health = rows
        .iter()
        .any(|r| r.stats.faults > 0.0 || r.stats.degraded_pct > 0.0);
    let mut out = String::new();
    out.push_str(&format!("{title}\n"));
    out.push_str(&format!(
        "{:>8} | {:>7} | {:>6} | {:>7} | {:>11} | {:>8} | {:>8} | {:>7}",
        param_name, "stages", "risk%", "ovsp(s)", "utilization%", "blocks", "rel.err", "rel.hw"
    ));
    if with_health {
        out.push_str(&format!(
            " | {:>7} | {:>6} | {:>9}",
            "faults", "lost", "degraded%"
        ));
    }
    out.push('\n');
    out.push_str(&"-".repeat(if with_health { 114 } else { 84 }));
    out.push('\n');
    for row in rows {
        let s = &row.stats;
        let err = if s.mean_rel_error.is_nan() {
            "  n/a".to_string()
        } else {
            format!("{:>8.3}", s.mean_rel_error)
        };
        let hw = if s.mean_rel_hw.is_nan() {
            "  n/a".to_string()
        } else {
            format!("{:>7.3}", s.mean_rel_hw)
        };
        out.push_str(&format!(
            "{:>8} | {:>7.2} | {:>6.1} | {:>7.2} | {:>11.1} | {:>8.1} | {err} | {hw}",
            row.label, s.stages, s.risk_pct, s.ovsp_secs, s.utilization_pct, s.blocks
        ));
        if with_health {
            out.push_str(&format!(
                " | {:>7.1} | {:>6.1} | {:>9.1}",
                s.faults, s.blocks_lost, s.degraded_pct
            ));
        }
        out.push('\n');
    }
    out
}

/// Emits rows as JSON lines (experiment provenance for
/// EXPERIMENTS.md).
pub fn render_jsonl(rows: &[PaperRow]) -> String {
    rows.iter()
        .map(|r| serde_json::to_string(r).expect("row serializes"))
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> RowStats {
        RowStats {
            runs: 200,
            stages: 1.56,
            risk_pct: 56.0,
            ovsp_secs: 0.11,
            utilization_pct: 63.0,
            blocks: 54.0,
            mean_rel_error: 0.08,
            mean_rel_hw: 0.05,
            faults: 0.0,
            blocks_lost: 0.0,
            degraded_pct: 0.0,
        }
    }

    #[test]
    fn table_contains_all_columns() {
        let rows = vec![PaperRow {
            label: "0".into(),
            stats: stats(),
        }];
        let t = render_table("Figure 5.1 — Selection", "d_beta", &rows);
        assert!(t.contains("Figure 5.1"));
        assert!(t.contains("stages"));
        assert!(t.contains("1.56"));
        assert!(t.contains("56.0"));
        assert!(t.contains("0.11"));
        assert!(t.contains("63.0"));
        assert!(t.contains("54.0"));
        assert!(t.contains("rel.hw"));
        assert!(t.contains("0.050"));
        // Clean rows keep the paper's original column set.
        assert!(!t.contains("degraded%"));
    }

    #[test]
    fn health_columns_appear_when_rows_saw_faults() {
        let mut s = stats();
        s.faults = 3.5;
        s.blocks_lost = 1.2;
        s.degraded_pct = 40.0;
        let rows = vec![PaperRow {
            label: "5%".into(),
            stats: s,
        }];
        let t = render_table("Fault ablation", "rate", &rows);
        assert!(t.contains("faults"));
        assert!(t.contains("degraded%"));
        assert!(t.contains("3.5"));
        assert!(t.contains("1.2"));
        assert!(t.contains("40.0"));
    }

    #[test]
    fn nan_error_renders_as_na() {
        let mut s = stats();
        s.mean_rel_error = f64::NAN;
        let rows = vec![PaperRow {
            label: "12".into(),
            stats: s,
        }];
        let t = render_table("x", "d", &rows);
        assert!(t.contains("n/a"));
    }

    #[test]
    fn jsonl_round_trips() {
        if serde_json::to_string(&0u32).is_err() {
            eprintln!("skipped: offline serde stub cannot serialize");
            return;
        }
        let rows = vec![
            PaperRow {
                label: "0".into(),
                stats: stats(),
            },
            PaperRow {
                label: "12".into(),
                stats: stats(),
            },
        ];
        let jsonl = render_jsonl(&rows);
        assert_eq!(jsonl.lines().count(), 2);
        let back: PaperRow = serde_json::from_str(jsonl.lines().next().unwrap()).unwrap();
        assert_eq!(back.label, "0");
    }
}
