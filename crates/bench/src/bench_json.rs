//! Machine-readable sweep output: the `BENCH_<suite>.json` schema.
//!
//! Every experiment binary writes one [`BenchReport`] next to its
//! `.txt` table (default `results/BENCH_<suite>.json`, overridable
//! with `--json PATH`). The schema splits each row into two parts
//! with different comparison rules:
//!
//! - **`simulated`** — columns computed on the simulated clock from
//!   seeded trials. Byte-identical across runs, machines, and worker
//!   counts at a fixed seed; [`crate::diff`] compares them *exactly*.
//! - **`wall`** — host wall-clock statistics (median/p95/... over the
//!   row's trials). Nondeterministic; compared with a noise-tolerant
//!   threshold (default ±20%).
//!
//! A row may also carry the phase [`ProfileSnapshot`] of its first
//! trial; it is informational and never gated on (its `sim_ns`
//! columns are deterministic, its `wall_*` columns are not, and the
//! diff tool must not fail a run for a shifted-but-in-budget phase
//! mix).

use std::collections::BTreeMap;
use std::io;
use std::path::Path;

use serde::{Deserialize, Serialize};
use serde_json::Value;

use eram_core::{Histogram, ProfileSnapshot};

use crate::harness::MeasuredRow;

/// Version stamp of the `BENCH_*.json` schema — kept in lockstep with
/// the observability schema version (the profile payload embeds
/// [`ProfileSnapshot`], versioned by the same constant).
pub const BENCH_SCHEMA_VERSION: u32 = eram_core::SCHEMA_VERSION;

/// Host wall-clock statistics over one row's trials, in seconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WallStats {
    /// Number of timed trials.
    pub runs: usize,
    /// Mean wall seconds per trial.
    pub mean_secs: f64,
    /// Median (nearest-rank p50) wall seconds per trial.
    pub median_secs: f64,
    /// 95th-percentile (nearest-rank) wall seconds per trial.
    pub p95_secs: f64,
    /// Fastest trial.
    pub min_secs: f64,
    /// Slowest trial.
    pub max_secs: f64,
}

impl WallStats {
    /// Aggregates per-trial wall durations; `None` for an empty slice.
    pub fn from_trials(secs: &[f64]) -> Option<WallStats> {
        let mut h = Histogram::default();
        for s in secs {
            h.observe(*s);
        }
        Some(WallStats {
            runs: secs.len(),
            mean_secs: h.mean()?,
            median_secs: h.p50()?,
            p95_secs: h.p95()?,
            min_secs: h.min()?,
            max_secs: h.max()?,
        })
    }
}

/// One sweep row of a [`BenchReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchRow {
    /// Row label (the swept parameter rendering, unique per report).
    pub label: String,
    /// Deterministic simulated columns — compared exactly by
    /// `bench-diff`. Usually a serialized
    /// [`RowStats`](crate::harness::RowStats); special sweeps
    /// (convergence, estimator accuracy) store their own shapes.
    pub simulated: Value,
    /// Host wall-clock stats — threshold-compared.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub wall: Option<WallStats>,
    /// Phase profile of the row's first trial — informational.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub profile: Option<ProfileSnapshot>,
}

/// The `BENCH_<suite>.json` document.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchReport {
    /// Schema version ([`BENCH_SCHEMA_VERSION`]).
    #[serde(default)]
    pub schema_version: u32,
    /// Suite name — the experiment binary, e.g. `fig5_1_select`.
    pub suite: String,
    /// The sweep configuration (quota, runs, swept values...). Part
    /// of the exact comparison: rows from different configs are not
    /// comparable, so a config change must re-bless the baseline.
    #[serde(default)]
    pub config: BTreeMap<String, Value>,
    /// The sweep rows, in emission order.
    #[serde(default)]
    pub rows: Vec<BenchRow>,
}

impl BenchReport {
    /// An empty report for `suite` at the current schema version.
    pub fn new(suite: &str) -> BenchReport {
        BenchReport {
            schema_version: BENCH_SCHEMA_VERSION,
            suite: suite.to_string(),
            config: BTreeMap::new(),
            rows: Vec::new(),
        }
    }

    /// Records one configuration key.
    pub fn config_kv(&mut self, key: &str, value: impl Into<Value>) {
        self.config.insert(key.to_string(), value.into());
    }

    /// Appends a row from the harness's measured output: the
    /// aggregated stats become the exact-compared `simulated` value,
    /// the per-trial walls collapse to [`WallStats`], and the trial-0
    /// profile rides along.
    ///
    /// Under the offline serde stand-ins (which cannot serialize) the
    /// simulated payload degrades to `null` so the experiment binaries
    /// still run and print their tables; `BENCH_*.json` files are only
    /// ever written with real serde.
    pub fn push_measured(&mut self, label: impl Into<String>, row: &MeasuredRow) {
        self.rows.push(BenchRow {
            label: label.into(),
            simulated: serde_json::to_value(row.stats).unwrap_or(Value::Null),
            wall: WallStats::from_trials(&row.wall_secs),
            profile: row.profile.clone(),
        });
    }

    /// Appends a row with a custom simulated payload (the special
    /// sweeps: convergence trajectories, estimator-accuracy grids).
    pub fn push_value(
        &mut self,
        label: impl Into<String>,
        simulated: Value,
        wall_secs: &[f64],
        profile: Option<ProfileSnapshot>,
    ) {
        self.rows.push(BenchRow {
            label: label.into(),
            simulated,
            wall: WallStats::from_trials(wall_secs),
            profile,
        });
    }

    /// Pretty JSON rendering. Deterministic for deterministic
    /// contents: struct field order is fixed and all maps are
    /// `BTreeMap`s.
    pub fn to_json(&self) -> String {
        let mut out = serde_json::to_string_pretty(self).expect("bench report serializes");
        out.push('\n');
        out
    }

    /// Writes the report to `path`, creating parent directories.
    pub fn write(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, self.to_json())
    }

    /// Reads a report back from `path`.
    pub fn read(path: &Path) -> io::Result<BenchReport> {
        let text = std::fs::read_to_string(path)?;
        serde_json::from_str(&text).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{}: {e}", path.display()),
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_stats_use_nearest_rank_quantiles() {
        let secs: Vec<f64> = (1..=100).map(|i| i as f64 / 100.0).collect();
        let w = WallStats::from_trials(&secs).unwrap();
        assert_eq!(w.runs, 100);
        assert!((w.median_secs - 0.50).abs() < 1e-12);
        assert!((w.p95_secs - 0.95).abs() < 1e-12);
        assert!((w.min_secs - 0.01).abs() < 1e-12);
        assert!((w.max_secs - 1.00).abs() < 1e-12);
        assert!((w.mean_secs - 0.505).abs() < 1e-12);
        assert!(WallStats::from_trials(&[]).is_none());
    }

    #[test]
    fn report_round_trips_and_renders_deterministically() {
        if serde_json::to_string(&0u32).is_err() {
            eprintln!("skipped: offline serde stub cannot serialize");
            return;
        }
        let mut r = BenchReport::new("fig5_x");
        r.config_kv("quota_secs", 10.0);
        r.config_kv("runs", 200);
        r.push_value(
            "d_beta=12",
            serde_json::json!({"stages": 2.0, "blocks": 126.0}),
            &[0.5, 0.7, 0.6],
            None,
        );
        let a = r.to_json();
        let b = r.to_json();
        assert_eq!(a, b);
        assert!(a.ends_with('\n'));
        let back: BenchReport = serde_json::from_str(&a).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.schema_version, BENCH_SCHEMA_VERSION);
        assert_eq!(back.rows[0].wall.unwrap().runs, 3);
    }

    #[test]
    fn write_and_read_round_trip_on_disk() {
        if serde_json::to_string(&0u32).is_err() {
            eprintln!("skipped: offline serde stub cannot serialize");
            return;
        }
        let dir = std::env::temp_dir().join(format!("eram-bench-json-{}", std::process::id()));
        let path = dir.join("nested").join("BENCH_test.json");
        let mut r = BenchReport::new("test");
        r.push_value("row", serde_json::json!(1), &[0.1], None);
        r.write(&path).unwrap();
        let back = BenchReport::read(&path).unwrap();
        assert_eq!(back, r);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unreadable_report_is_an_invalid_data_error() {
        let dir = std::env::temp_dir().join(format!("eram-bench-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.json");
        std::fs::write(&path, "not json").unwrap();
        let err = BenchReport::read(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_dir_all(&dir).ok();
    }
}
