//! The paper's artificial relations and queries.
//!
//! All relations follow the Section 5 geometry: 10 000 tuples of
//! 200 bytes, 5 per 1 KB block, 2 000 blocks, values "randomly
//! distributed" across blocks. Each workload controls the exact
//! output cardinality of its query so the experiment rows match the
//! paper's ("zero output tuples", "5,000 output tuples", "70,000
//! output tuples", …).

use eram_core::Database;
use eram_relalg::{CmpOp, Expr, Predicate};
use eram_storage::{ColumnType, Schema, Tuple, Value};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Paper geometry: tuples per relation.
pub const RELATION_TUPLES: u64 = 10_000;
/// Paper geometry: bytes per tuple.
pub const TUPLE_BYTES: usize = 200;

/// Which Section 5 experiment a workload reproduces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadKind {
    /// `COUNT(σ(r))` with a fixed output cardinality (Figure 5.1).
    Select {
        /// Exact number of qualifying tuples (0, 5 000, 10 000 in the
        /// paper).
        output_tuples: u64,
    },
    /// Like `Select`, but the qualifying tuples are *clustered* into
    /// contiguous disk blocks instead of the paper's "randomly
    /// distributed" layout — the adversarial case for cluster
    /// sampling (the block-total variance is maximal).
    SelectClustered {
        /// Exact number of qualifying tuples.
        output_tuples: u64,
    },
    /// `COUNT(r₁ ∩ r₂)` with a fixed overlap (Figure 5.2).
    Intersect {
        /// Number of common tuples.
        overlap: u64,
    },
    /// `COUNT(r₁ ⋈ r₂)` with a fixed join output (Figure 5.3:
    /// 70 000, actual selectivity ≈ 7·10⁻⁴).
    Join {
        /// Exact join output cardinality. Must decompose as
        /// `keys × left_per_key × right_per_key` with the paper's
        /// relation sizes; 70 000 = 1 000 keys × 10 × 7.
        output_tuples: u64,
    },
    /// `COUNT(π(r))` with a fixed number of distinct groups
    /// (estimator-accuracy ablation; "results of projection operation
    /// are not discussed" in the paper's Section 5).
    Project {
        /// Number of distinct groups.
        groups: u64,
    },
}

/// A loaded database plus the query reproducing one experiment.
pub struct Workload {
    /// The database with the artificial relation instance(s).
    pub db: Database,
    /// The experiment query.
    pub expr: Expr,
    /// The exact answer (for accuracy reporting).
    pub truth: u64,
    /// Which experiment this is.
    pub kind: WorkloadKind,
}

fn paper_schema() -> Schema {
    Schema::new(vec![
        ("id", ColumnType::Int),
        ("sel_key", ColumnType::Int),
        ("join_key", ColumnType::Int),
    ])
    .padded_to(TUPLE_BYTES)
}

/// Tuples with a shuffled `sel_key` permutation (so any prefix
/// predicate selects a random subset) and a shuffled `join_key`
/// layout.
fn paper_tuples(join_keys: Vec<i64>, seed: u64) -> Vec<Tuple> {
    let n = RELATION_TUPLES as i64;
    assert_eq!(join_keys.len() as i64, n);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sel_keys: Vec<i64> = (0..n).collect();
    sel_keys.shuffle(&mut rng);
    let mut join_keys = join_keys;
    join_keys.shuffle(&mut rng);
    (0..n)
        .map(|i| {
            Tuple::new(vec![
                Value::Int(i),
                Value::Int(sel_keys[i as usize]),
                Value::Int(join_keys[i as usize]),
            ])
        })
        .collect()
}

impl Workload {
    /// Builds the workload with the paper's relation geometry.
    ///
    /// # Panics
    /// Panics if the requested cardinality is not realizable with
    /// 10 000-tuple relations.
    pub fn build(kind: WorkloadKind, seed: u64) -> Workload {
        Self::build_on(kind, seed, 0)
    }

    /// [`Workload::build`] with an LRU buffer cache of `cache_blocks`
    /// blocks in front of the simulated device (0 = none, the
    /// paper's setup).
    pub fn build_on(kind: WorkloadKind, seed: u64, cache_blocks: usize) -> Workload {
        let mut db = if cache_blocks > 0 {
            Database::sim_cached(eram_storage::DeviceProfile::sun_3_60(), seed, cache_blocks)
        } else {
            Database::sim_default(seed)
        };
        let n = RELATION_TUPLES as i64;
        match kind {
            WorkloadKind::Select { output_tuples } => {
                assert!(output_tuples <= RELATION_TUPLES);
                let tuples = paper_tuples((0..n).collect(), seed ^ 0xA11CE);
                db.load_relation("r", paper_schema(), tuples).unwrap();
                // sel_key is a permutation of 0..n: `< K` selects
                // exactly K tuples, spread randomly over the blocks.
                let expr = Expr::relation("r").select(Predicate::col_cmp(
                    1,
                    CmpOp::Lt,
                    output_tuples as i64,
                ));
                Workload {
                    db,
                    expr,
                    truth: output_tuples,
                    kind,
                }
            }
            WorkloadKind::SelectClustered { output_tuples } => {
                assert!(output_tuples <= RELATION_TUPLES);
                // sel_key = row position: the `< K` tuples occupy the
                // first K/5 blocks back to back.
                let tuples: Vec<Tuple> = (0..n)
                    .map(|i| Tuple::new(vec![Value::Int(i), Value::Int(i), Value::Int(i)]))
                    .collect();
                db.load_relation("r", paper_schema(), tuples).unwrap();
                let expr = Expr::relation("r").select(Predicate::col_cmp(
                    1,
                    CmpOp::Lt,
                    output_tuples as i64,
                ));
                Workload {
                    db,
                    expr,
                    truth: output_tuples,
                    kind,
                }
            }
            WorkloadKind::Intersect { overlap } => {
                assert!(overlap <= RELATION_TUPLES);
                // r1 holds ids 0..n; r2 holds ids (n−overlap)..(2n−overlap):
                // exactly `overlap` tuples in common. All three columns
                // are functions of id so whole tuples match.
                let make = |offset: i64, seed: u64| -> Vec<Tuple> {
                    let mut rng = StdRng::seed_from_u64(seed);
                    let mut ids: Vec<i64> = (offset..offset + n).collect();
                    ids.shuffle(&mut rng);
                    ids.into_iter()
                        .map(|i| Tuple::new(vec![Value::Int(i), Value::Int(i), Value::Int(i)]))
                        .collect()
                };
                db.load_relation("r1", paper_schema(), make(0, seed ^ 0xB0B))
                    .unwrap();
                db.load_relation("r2", paper_schema(), make(n - overlap as i64, seed ^ 0xC0C))
                    .unwrap();
                let expr = Expr::relation("r1").intersect(Expr::relation("r2"));
                Workload {
                    db,
                    expr,
                    truth: overlap,
                    kind,
                }
            }
            WorkloadKind::Join { output_tuples } => {
                // 70 000 = 1 000 matching keys × 10 (r1) × 7 (r2).
                // Generalize: keys = 1 000, left 10 per key, right
                // output/(keys·left) per key; remaining r2 tuples get
                // non-matching keys.
                let keys = 1_000u64;
                let left_per_key = RELATION_TUPLES / keys; // 10
                assert!(
                    output_tuples % (keys * left_per_key) == 0,
                    "join output must be a multiple of {}",
                    keys * left_per_key
                );
                let right_per_key = output_tuples / (keys * left_per_key);
                assert!(right_per_key * keys <= RELATION_TUPLES);
                let left_keys: Vec<i64> = (0..RELATION_TUPLES as i64)
                    .map(|i| i % keys as i64)
                    .collect();
                let right_keys: Vec<i64> = (0..RELATION_TUPLES)
                    .map(|i| {
                        if i < right_per_key * keys {
                            (i % keys) as i64
                        } else {
                            // Non-matching filler keys.
                            (keys + i) as i64
                        }
                    })
                    .collect();
                db.load_relation("r1", paper_schema(), paper_tuples(left_keys, seed ^ 0xD0D))
                    .unwrap();
                db.load_relation("r2", paper_schema(), paper_tuples(right_keys, seed ^ 0xE0E))
                    .unwrap();
                let expr = Expr::relation("r1").join(Expr::relation("r2"), vec![(2, 2)]);
                Workload {
                    db,
                    expr,
                    truth: output_tuples,
                    kind,
                }
            }
            WorkloadKind::Project { groups } => {
                assert!(groups > 0 && groups <= RELATION_TUPLES);
                // join_key column cycles over `groups` values.
                let keys: Vec<i64> = (0..n).map(|i| i % groups as i64).collect();
                db.load_relation("r", paper_schema(), paper_tuples(keys, seed ^ 0xF0F))
                    .unwrap();
                let expr = Expr::relation("r").project(vec![2]);
                Workload {
                    db,
                    expr,
                    truth: groups,
                    kind,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn select_workload_has_exact_cardinality() {
        for out in [0u64, 5_000, 10_000] {
            let w = Workload::build(WorkloadKind::Select { output_tuples: out }, 1);
            assert_eq!(w.db.exact_count(&w.expr).unwrap(), out);
        }
    }

    #[test]
    fn paper_relation_geometry() {
        let w = Workload::build(WorkloadKind::Select { output_tuples: 0 }, 2);
        let r = w.db.catalog().relation("r").unwrap();
        assert_eq!(r.num_tuples(), 10_000);
        assert_eq!(r.num_blocks(), 2_000);
        assert_eq!(r.blocking_factor(), 5);
        assert_eq!(r.schema().record_size(), 200);
    }

    #[test]
    fn intersect_workload_overlap_is_exact() {
        let w = Workload::build(WorkloadKind::Intersect { overlap: 2_500 }, 3);
        assert_eq!(w.db.exact_count(&w.expr).unwrap(), 2_500);
    }

    #[test]
    fn join_workload_is_paper_cardinality() {
        let w = Workload::build(
            WorkloadKind::Join {
                output_tuples: 70_000,
            },
            4,
        );
        assert_eq!(w.db.exact_count(&w.expr).unwrap(), 70_000);
        // Actual selectivity ≈ 7e-4, as the paper notes.
        let sel: f64 = 70_000.0 / (10_000.0 * 10_000.0);
        assert!((sel - 7e-4).abs() < 1e-12);
    }

    #[test]
    fn project_workload_groups() {
        let w = Workload::build(WorkloadKind::Project { groups: 100 }, 5);
        assert_eq!(w.db.exact_count(&w.expr).unwrap(), 100);
    }

    #[test]
    fn workloads_are_seed_deterministic() {
        let a = Workload::build(
            WorkloadKind::Select {
                output_tuples: 5_000,
            },
            7,
        );
        let b = Workload::build(
            WorkloadKind::Select {
                output_tuples: 5_000,
            },
            7,
        );
        let ta =
            a.db.catalog()
                .relation("r")
                .unwrap()
                .read_block_uncharged(0)
                .unwrap();
        let tb =
            b.db.catalog()
                .relation("r")
                .unwrap()
                .read_block_uncharged(0)
                .unwrap();
        assert_eq!(ta, tb);
    }

    #[test]
    #[should_panic]
    fn unrealizable_join_output_rejected() {
        let _ = Workload::build(
            WorkloadKind::Join {
                output_tuples: 12_345,
            },
            0,
        );
    }
}
