//! Criterion microbenches for the engine's hot components: the PIE
//! rewrite, block sampling, heap-file block decode, the normal
//! quantile, and Sample-Size-Determine (the per-stage bisection that
//! runs inside every stage of every query).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

use eram_core::{ops, predict, CostModel, SelectivityDefaults};
use eram_relalg::{Catalog, CmpOp, Expr, PieRewrite, Predicate};
use eram_sampling::{normal_quantile, BlockSampler};
use eram_storage::{parse_schema_spec, read_csv, BlockCache};
use eram_storage::{
    Block, ColumnType, DeviceProfile, Disk, HeapFile, Schema, SimClock, Tuple, Value,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn nested_expr() -> Expr {
    let a = Expr::relation("a");
    let b = Expr::relation("b");
    let c = Expr::relation("c");
    a.clone()
        .union(b.clone())
        .difference(c.clone())
        .union(a.clone().intersect(c))
        .select(Predicate::col_cmp(0, CmpOp::Lt, 5))
        .union(a.union(b))
}

fn bench_pie_rewrite(c: &mut Criterion) {
    let expr = nested_expr();
    c.bench_function("pie_rewrite_nested", |b| {
        b.iter(|| black_box(PieRewrite::rewrite(black_box(&expr)).unwrap()))
    });
}

fn bench_block_sampler(c: &mut Criterion) {
    c.bench_function("block_sampler_2000_blocks", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| {
            let mut s = BlockSampler::new(2_000, &mut rng);
            black_box(s.draw(100).len())
        })
    });
}

fn bench_normal_quantile(c: &mut Criterion) {
    c.bench_function("normal_quantile", |b| {
        let mut p = 0.0001f64;
        b.iter(|| {
            p = if p > 0.999 { 0.0001 } else { p + 0.00037 };
            black_box(normal_quantile(black_box(p)))
        })
    });
}

fn paper_setup() -> (Arc<Disk>, Catalog) {
    let disk = Disk::new(
        Arc::new(SimClock::new()),
        DeviceProfile::sun_3_60().without_jitter(),
        7,
    );
    let schema = Schema::new(vec![("a", ColumnType::Int), ("b", ColumnType::Int)]).padded_to(200);
    let hf = HeapFile::load(
        disk.clone(),
        schema,
        (0..10_000).map(|i| Tuple::new(vec![Value::Int(i), Value::Int(i % 10)])),
    )
    .unwrap();
    let mut cat = Catalog::new();
    cat.register("r", hf);
    (disk, cat)
}

fn bench_heapfile_block_read(c: &mut Criterion) {
    let (_, cat) = paper_setup();
    let hf = cat.relation("r").unwrap();
    c.bench_function("heapfile_read_block_decode", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % hf.num_blocks();
            black_box(hf.read_block_uncharged(i).unwrap().len())
        })
    });
}

fn bench_sample_size_determine(c: &mut Criterion) {
    let (disk, cat) = paper_setup();
    let expr = Expr::relation("r").select(Predicate::col_cmp(1, CmpOp::Lt, 5));
    let tree = ops::PhysTree::build(
        &expr,
        &cat,
        &disk,
        &SelectivityDefaults::default(),
        ops::Fulfillment::Full,
        &mut StdRng::seed_from_u64(3),
    )
    .unwrap();
    let trees = [tree];
    let model = CostModel::generic_default();
    c.bench_function("sample_size_determine_bisection", |b| {
        b.iter(|| {
            black_box(predict::solve_fraction(
                &trees,
                &model,
                &predict::SelPolicy::Inflated { d_beta: 12.0 },
                black_box(10.0),
                0.05,
            ))
        })
    });
}

fn bench_expr_parser(c: &mut Criterion) {
    let text = "select[#1 < 5000 and #2 >= 10](join[#0=#0]((a union b), select[#1 != 3](c)))";
    c.bench_function("parse_expr_nested", |b| {
        b.iter(|| black_box(eram_relalg::parse_expr(black_box(text)).unwrap()))
    });
}

fn bench_block_cache(c: &mut Criterion) {
    c.bench_function("block_cache_hit", |b| {
        let cache = BlockCache::new(1_024);
        for i in 0..1_024u64 {
            cache.put(0, i, Block::zeroed(1_024).into());
        }
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 1_024;
            black_box(cache.get(0, i).is_some())
        })
    });
}

fn bench_csv_parse(c: &mut Criterion) {
    let schema = parse_schema_spec("id:int,price:float,name:str12", None).unwrap();
    let mut csv = String::new();
    for i in 0..1_000 {
        csv.push_str(&format!("{i},{}.5,\"row {i}\"\n", i % 97));
    }
    c.bench_function("csv_parse_1000_rows", |b| {
        b.iter(|| {
            black_box(
                read_csv(std::io::Cursor::new(csv.as_bytes()), &schema, false)
                    .unwrap()
                    .len(),
            )
        })
    });
}

criterion_group! {
    name = components;
    config = Criterion::default().measurement_time(Duration::from_secs(5));
    targets = bench_pie_rewrite, bench_block_sampler, bench_normal_quantile,
              bench_heapfile_block_read, bench_sample_size_determine,
              bench_expr_parser, bench_block_cache, bench_csv_parse
}
criterion_main!(components);
